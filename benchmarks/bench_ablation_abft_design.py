"""Ablations on the ABFT design choices (paper Sec. IV-B).

The paper reports trying checksums entirely on the tensor cores first
(~50% overhead) before settling on the fused SIMT-accumulate /
tensor-verify split (~11%); and that the theoretical 3/(m_w*n_w) MMA
overhead is mostly absorbed.  These benches regenerate that design-space
comparison, plus a pipeline-depth ablation.
"""

import numpy as np
import pytest
from conftest import record

from repro.bench.figures import FigureResult
from repro.bench.workloads import M_PAPER
from repro.codegen.selector import KernelSelector
from repro.gpusim.device import A100_PCIE_40GB
from repro.gpusim.timing import TimingModel


def _overheads(dtype):
    model = TimingModel(A100_PCIE_40GB)
    sel = KernelSelector.for_device("a100", dtype)
    res = FigureResult("ablation_abft",
                       f"ABFT design ablation ({np.dtype(dtype).name})",
                       "K (clusters)")
    for nc in (32, 64, 128, 256):
        tile = sel.best_tile(M_PAPER, nc, 128)

        def t(abft):
            return model.distance_tensorop(
                M_PAPER, nc, 128, dtype, tile.tb.m, tile.tb.n, tile.tb.k,
                tile.warp.m, tile.warp.n, stages=tile.stages,
                abft=abft).time_s

        base = t("none")
        for scheme in ("ftkmeans", "tensor_only", "kosaian", "wu"):
            res.add(scheme, nc, 100.0 * (t(scheme) / base - 1.0))
    res.summary = {
        "mean_overhead_pct": {name: float(np.mean([y for _, y in pts]))
                              for name, pts in res.series.items()},
        "paper": {"ftkmeans": "~11% avg", "tensor_only": "~50%",
                  "theoretical": "3/(m_w*n_w) = 18.75-37.5%"},
    }
    return res


def test_ablation_checksum_placement_fp32(benchmark):
    res = benchmark(_overheads, np.float32)
    record(res)
    m = res.summary["mean_overhead_pct"]
    # fused scheme beats the all-tensor-core design decisively
    assert m["ftkmeans"] < m["tensor_only"] / 3
    assert m["tensor_only"] > 30.0      # the rejected design's ~50%
    assert m["ftkmeans"] < m["wu"]      # and Wu's sync-path scheme


def test_ablation_checksum_placement_fp64(benchmark):
    res = benchmark(_overheads, np.float64)
    record(res)
    m = res.summary["mean_overhead_pct"]
    # FP64 pays near the theoretical MMA ratio but still beats tensor-only
    assert m["ftkmeans"] < m["tensor_only"]


def test_ablation_pipeline_depth(benchmark):
    """Stage-count ablation: deeper pipelines pay at short feature dims."""
    model = TimingModel(A100_PCIE_40GB)

    def run():
        out = {}
        for stages in (2, 3, 4, 5):
            for nf in (16, 128):
                t = model.distance_tensorop(
                    M_PAPER, 128, nf, np.float32, 128, 64, 16, 64, 32,
                    stages=stages)
                out[(stages, nf)] = t.gflops
        return out

    out = benchmark(run)
    # at N=16 (1 k-iter) a 2-stage pipeline beats a 5-stage one
    assert out[(2, 16)] > out[(5, 16)]
    # the deep-pipeline penalty shrinks as the main loop lengthens
    gap_short = out[(2, 16)] / out[(5, 16)]
    gap_long = out[(2, 128)] / out[(5, 128)]
    assert gap_long < gap_short
