"""Wall-clock smoke benchmark of the blocked streaming fast path.

Unlike the ``bench_figXX`` files (simulated clock), this measures real
host time: the chunked :class:`FastPathEngine` against the seed one-shot
``unchunked_assign`` over a multi-iteration Lloyd fit.  Finishes well
under 60 s, so it is suitable for tier-1 gating.
"""

from repro.bench.fastpath import run_smoke, write_record


def test_fastpath_walltime_smoke(benchmark):
    res = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    write_record(res)
    print()
    print(f"engine {res['engine']['wall_s']:.3f}s vs "
          f"unchunked {res['unchunked']['wall_s']:.3f}s "
          f"-> {res['speedup_vs_unchunked']:.2f}x")
    # chunked + hoisted invariants must not lose to the seed path, and
    # both paths must agree on the clustering
    assert res["speedup_vs_unchunked"] > 0.9
    # cascade-free agreement at shared centroids: chunked vs one-shot
    # BLAS bits may tie-break the odd argmin apart, nothing more
    assert res["label_mismatch_frac"] < 1e-3
    # the memory contract: scratch never exceeded the configured budget
    assert res["engine"]["peak_scratch_bytes"] <= res["config"]["chunk_bytes"]
