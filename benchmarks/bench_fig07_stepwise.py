"""Figure 7 — step-wise optimisation of the distance kernel.

Paper bars (FP32, A100, M=131072, N=128): naive 482 -> V1 4662 -> V2 5902
-> V3 6916 -> FT K-means 17686 GFLOPS vs cuML 9676.
"""

from conftest import record

from repro.bench.figures import fig7_stepwise


def test_fig7_stepwise(benchmark):
    res = benchmark(fig7_stepwise)
    record(res)
    s = res.summary
    # the full optimisation ladder must be strictly increasing
    assert s["v1_over_naive"] > 3
    assert s["v2_over_v1"] > 1
    assert s["v3_over_v2"] > 1
    assert s["ft_over_v3"] > 1.4
    # and the final kernel beats cuML (paper: 1.83x)
    assert s["ft_over_cuml"] > 1.4
