"""Figure 8 — FP32 distance step vs feature dimension N (A100).

cuML vs Parameter1/2 vs FT K-means at K in {8, 128}; paper: FT K-means
averages 2.35x over cuML, Parameter1 is ~15% slower than cuML.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig8_fig9_distance_vs_features


def test_fig8_fp32(benchmark):
    res = benchmark(fig8_fig9_distance_vs_features, np.float32)
    record(res)
    assert res.summary["ft_vs_cuml_mean"] > 1.8
    # Parameter1 ("by experience") loses to cuML on average
    assert res.summary["param1_vs_cuml_mean"] < 1.1
