"""Figure 9 — FP64 distance step vs feature dimension N (A100).

Paper: the FT K-means and cuML curves nearly coincide (avg 1.04x).
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig8_fig9_distance_vs_features


def test_fig9_fp64(benchmark):
    res = benchmark(fig8_fig9_distance_vs_features, np.float64)
    record(res)
    # FP64 headroom is small (paper: 1.04x; nothing like FP32's 2.35x)
    assert 1.0 <= res.summary["ft_vs_cuml_mean"] < 1.6
