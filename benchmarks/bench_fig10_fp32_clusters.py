"""Figure 10 — FP32 distance step vs cluster count K (A100).

Paper: 2.39x average speedup over cuML with N in {8, 128}.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig10_fig11_distance_vs_clusters


def test_fig10_fp32(benchmark):
    res = benchmark(fig10_fig11_distance_vs_clusters, np.float32)
    record(res)
    assert res.summary["ft_vs_cuml_mean"] > 1.8
