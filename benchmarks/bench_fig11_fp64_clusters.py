"""Figure 11 — FP64 distance step vs cluster count K (A100).

Paper: 8% overall gain, larger (15%) at small N.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig10_fig11_distance_vs_clusters


def test_fig11_fp64(benchmark):
    res = benchmark(fig10_fig11_distance_vs_clusters, np.float64)
    record(res)
    assert 1.0 <= res.summary["ft_vs_cuml_mean"] < 1.6
