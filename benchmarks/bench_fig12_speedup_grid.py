"""Figure 12 — FT K-means / cuML speedup heat map over (K, N).

Paper: FP32 avg 2.49x / max 4.55x with gains shrinking past N=64;
FP64 avg 1.04x / max 1.39x.
"""

import numpy as np
import pytest
from conftest import record

from repro.bench.figures import fig12_speedup_grid


def test_fig12_fp32(benchmark):
    res = benchmark(fig12_speedup_grid, np.float32)
    record(res, max_rows=None)
    s = res.summary
    assert 1.8 < s["avg_speedup"] < 3.2
    assert s["min_speedup"] >= 1.0


def test_fig12_fp64(benchmark):
    res = benchmark(fig12_speedup_grid, np.float64)
    record(res, max_rows=None)
    assert 1.0 <= res.summary["avg_speedup"] < 1.45
