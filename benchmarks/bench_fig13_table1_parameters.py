"""Figure 13 / Table I — the parameter groups the selector chooses.

Paper: of ~157 FP32 / ~145 FP64 generated kernels, only 7 / 4 are ever
selected; Table I lists the main winners next to cuML's fixed group.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig13_table1_selected_parameters


def test_fig13_fp32(benchmark):
    res = benchmark(fig13_table1_selected_parameters, np.float32)
    record(res)
    assert res.summary["n_candidates"] >= 100
    assert res.summary["n_selected"] <= 20


def test_fig13_fp64(benchmark):
    res = benchmark(fig13_table1_selected_parameters, np.float64)
    record(res)
    assert res.summary["n_selected"] <= 20
