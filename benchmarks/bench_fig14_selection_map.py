"""Figure 14 — winning parameter id at each (K, N) grid point.

Paper: FP32 splits into regions along the feature dimension
(N<=32 / 32<N<=64 / N>64); FP64 into two.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig14_selection_map


def test_fig14_fp32(benchmark):
    res = benchmark(fig14_selection_map, np.float32)
    record(res, max_rows=None)
    rows = res.summary["winners_by_feature_row"]
    assert len({tuple(v) for v in rows.values()}) >= 2  # region structure


def test_fig14_fp64(benchmark):
    res = benchmark(fig14_selection_map, np.float64)
    record(res, max_rows=None)
