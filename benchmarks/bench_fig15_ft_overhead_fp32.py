"""Figure 15 — FP32 fault-tolerance overhead (A100).

Paper: -0.24% at K=8, 1.93% at K=128, 0.96% at fixed N — the warp-level
checksums hide in the TF32 pipes' idle issue slots.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig15_fig16_ft_overhead


def test_fig15_fp32(benchmark):
    res = benchmark(fig15_fig16_ft_overhead, np.float32)
    record(res)
    assert res.summary["overhead_pct_avg"] < 5.0
