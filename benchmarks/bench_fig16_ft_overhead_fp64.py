"""Figure 16 — FP64 fault-tolerance overhead (A100).

Paper: ~13% average; 7.9% at K=8, 20% at K=128 (the DMMA pipe runs near
the roofline, so the three checksum MMAs cost real time).
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig15_fig16_ft_overhead


def test_fig16_fp64(benchmark):
    res = benchmark(fig15_fig16_ft_overhead, np.float64)
    record(res)
    assert 5.0 < res.summary["overhead_pct_avg"] < 30.0
    assert res.summary["overhead_pct_by_panel"]["K=128"] > 10.0
