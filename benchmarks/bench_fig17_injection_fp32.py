"""Figure 17 — FP32 error injection (A100).

Paper: FT K-means pays ~2.36% under injection (online in-place
correction); Wu's register-reuse scheme pays ~30% for losing cp.async.
Also exercises the functional kernels: injected faults must leave the
final assignment identical to the clean run.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig17_fig18_error_injection
from repro.core.ft_kmeans import FtTensorOpGemm
from repro.core.assignment import setup_gmem
from repro.gemm.reference import reference_assignment
from repro.gemm.shapes import GemmShape
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB
from repro.gpusim.faults import FaultInjector


def test_fig17_fp32(benchmark):
    res = benchmark(fig17_fig18_error_injection, np.float32)
    record(res)
    assert res.summary["injection_overhead_pct_avg"] < 6.0
    assert res.summary["wu_overhead_pct_avg"] > 20.0


def test_fig17_functional_correction(benchmark):
    """Wall-clock the functional FT kernel under 100% block injection and
    verify the correction guarantee."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((256, 64)).astype(np.float32)
    y = rng.standard_normal((32, 64)).astype(np.float32)
    tile = TileConfig.make((64, 32, 16), (32, 32, 16), np.float32)
    ref, _ = reference_assignment(x, y, tf32=True)
    state = {"trial": 0}

    dref = (np.sum(x * x, 1)[:, None] + np.sum(y * y, 1)[None, :]
            - 2.0 * x @ y.T)
    # sub-delta corruptions may legally flip *near-tied* argmins; anything
    # larger than the noise-band bound would be a real correction failure
    tie_band = 4.0 * 2.0 ** -10 * float(np.abs(x @ y.T).max()) * 64

    def run():
        state["trial"] += 1
        inj = FaultInjector(state["trial"], p_block=1.0, dtype=np.float32)
        c = PerfCounters()
        gmem = setup_gmem(x, y, c)
        kern = FtTensorOpGemm(A100_PCIE_40GB, tile, np.float32, counters=c,
                              injector=inj)
        kern.run(gmem, GemmShape(256, 32, 64))
        labels = gmem["assign"][:, 1].astype(np.int64)
        for i in np.flatnonzero(labels != ref):
            gap = abs(dref[i, labels[i]] - dref[i, ref[i]])
            assert gap < tie_band, (i, gap, tie_band)
        return c

    c = benchmark(run)
    assert c.errors_injected > 0
