"""Figure 18 — FP64 error injection (A100).

Paper: ~9.21% average overhead; K=8 10.12%, K=128 24.07%.
"""

import numpy as np
from conftest import record

from repro.bench.figures import fig17_fig18_error_injection


def test_fig18_fp64(benchmark):
    res = benchmark(fig17_fig18_error_injection, np.float64)
    record(res)
    assert 4.0 < res.summary["injection_overhead_pct_avg"] < 15.0
