"""Figure 19 — T4 FP32 distance step vs N.

Paper: FT K-means 4.13x over cuML on T4 (more headroom than A100: no
cp.async and a 64 KB shared-memory budget hurt the fixed parameters more).
"""

from conftest import record

from repro.bench.figures import fig19_t4_vs_features


def test_fig19_t4(benchmark):
    res = benchmark(fig19_t4_vs_features)
    record(res)
    assert res.summary["ft_vs_cuml_mean"] > 2.0
