"""Figure 20 — T4 FP32 distance step vs K.

Paper: FT K-means 3.81x over cuML.
"""

from conftest import record

from repro.bench.figures import fig20_t4_vs_clusters


def test_fig20_t4(benchmark):
    res = benchmark(fig20_t4_vs_clusters)
    record(res)
    assert res.summary["ft_vs_cuml_mean"] > 2.0
