"""Figure 21 — T4 FP32 under error injection.

Paper: FT overhead 18% with FT, 30% under injection; ~60% better than
Wu's scheme (threadblock-level synchronisation eliminated).
"""

from conftest import record

from repro.bench.figures import fig21_t4_injection


def test_fig21_t4(benchmark):
    res = benchmark(fig21_t4_injection)
    record(res)
    assert res.summary["ft_vs_wu_mean"] > 1.25
