"""Wall-clock benchmarks of the functional simulator itself.

Not a paper figure: keeps the tile-accurate kernels' host cost visible so
regressions in the simulator are caught (the figure benches above use the
analytic model and are host-cheap by design).
"""

import numpy as np
import pytest

from repro.core.api import FTKMeans
from repro.data.synthetic import gaussian_blobs


@pytest.fixture(scope="module")
def blob_data():
    x, _, _ = gaussian_blobs(2048, 32, 16, seed=0)
    return x


@pytest.mark.parametrize("variant", ["v3", "tensorop", "ft"])
def test_functional_fit(benchmark, blob_data, variant):
    def run():
        return FTKMeans(n_clusters=16, variant=variant, seed=0,
                        mode="functional", max_iter=3, tol=0.0).fit(blob_data)

    km = benchmark.pedantic(run, rounds=1, iterations=1)
    assert km.n_iter_ == 3


def test_fast_mode_fit(benchmark, blob_data):
    def run():
        return FTKMeans(n_clusters=16, variant="ft", seed=0, mode="fast",
                        max_iter=10, tol=0.0).fit(blob_data)

    km = benchmark(run)
    assert km.inertia_ > 0
