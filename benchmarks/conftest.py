"""Shared helpers for the per-figure benchmark harness.

Each ``bench_figXX_*.py`` regenerates one table/figure of the paper:
it prints the paper-style series, records them under
``benchmarks/results/`` and times the full experiment with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.tables import format_figure

RESULTS_DIR = Path(__file__).parent / "results"


def record(res, *, max_rows: int | None = 10) -> None:
    """Print a figure result and persist it under benchmarks/results/."""
    text = format_figure(res, max_rows=max_rows)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{res.figure_id}.txt").write_text(
        format_figure(res) + "\n")


@pytest.fixture(scope="session", autouse=True)
def _warm_selectors():
    """Build the kernel selectors once so per-figure timings are stable."""
    import numpy as np

    from repro.bench.figures import _selector

    for dev in ("a100", "t4"):
        for dt in (np.float32, np.float64):
            _selector(dev, dt)
    yield
