"""Kernel auto-tuning with the code-generation framework (paper Fig. 3).

Enumerates the rule-respecting tile-parameter space, filters it through
the feasibility check, selects per-shape winners with the timing model,
and prints a Table-I-style comparison against cuML's fixed parameters —
including the generated kernel source for one winner.

    python examples/autotune_kernels.py
"""

import numpy as np

from repro.codegen import (
    KernelSelector,
    cuml_tile,
    enumerate_space,
    render_kernel_source,
    score_candidate,
)
from repro.gpusim.device import A100_PCIE_40GB
from repro.gpusim.timing import TimingModel

M = 131072


def main() -> None:
    for dtype in (np.float32, np.float64):
        name = np.dtype(dtype).name
        space = enumerate_space(dtype)
        sel = KernelSelector.for_device("a100", dtype)
        print(f"=== {name}: {len(space)} generated kernels, "
              f"{len(sel.candidates)} pass the feasibility demo ===")

        model = TimingModel(A100_PCIE_40GB)
        cu = cuml_tile(dtype)
        print(f"{'shape (K, N)':>16s} | {'selected parameters':>42s} | "
              f"{'FT GFLOPS':>10s} | {'cuML':>8s} | {'speedup':>7s}")
        for nc, nf in [(8, 32), (8, 128), (64, 16), (128, 64), (128, 128),
                       (448, 96)]:
            best = sel.best_score(M, nc, nf)
            cus = score_candidate(model, cu, M, nc, nf, dtype)
            print(f"  ({nc:4d}, {nf:4d})  | {best.tile.label():>42s} | "
                  f"{best.gflops:10.0f} | {cus.gflops:8.0f} | "
                  f"{best.gflops / cus.gflops:6.2f}x")
        print(f"  cuML fixed:     {cu.label()}")
        ids = sel.selected_param_ids()
        print(f"  distinct winning parameter groups: {len(ids)} "
              f"(paper: 7 FP32 / 4 FP64)\n")

    # show one generated translation unit, as the codegen emits it
    tile = KernelSelector.for_device("a100", np.float32).best_tile(M, 128, 128)
    print("=== generated kernel source (winning FP32 parameters) ===")
    print(render_kernel_source(tile, np.float32))


if __name__ == "__main__":
    main()
