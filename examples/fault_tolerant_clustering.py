"""Fault-tolerant clustering under SEU injection.

Demonstrates the paper's core claim end to end on the tile-accurate
functional simulator: with the warp-level ABFT scheme, a K-means run
bombarded with bit flips (one per threadblock, per the paper's fault
model) produces the *same* clustering as the fault-free run, while the
unprotected kernel visibly corrupts results.

    python examples/fault_tolerant_clustering.py
"""

import numpy as np

from repro import FTKMeans
from repro.data.synthetic import gaussian_blobs


def run(variant: str, p_inject: float, seed: int) -> FTKMeans:
    x, _, _ = gaussian_blobs(3_000, 24, 12, dtype=np.float32, seed=9)
    return FTKMeans(n_clusters=12, variant=variant, seed=seed,
                    mode="functional", p_inject=p_inject, max_iter=15).fit(x)


def main() -> None:
    print("clean run (no faults, no protection)...")
    clean = run("tensorop", p_inject=0.0, seed=0)
    print(f"  inertia {clean.inertia_:.2f} after {clean.n_iter_} iterations")

    print("\nunprotected runs under SEU injection (p_block = 1.0):")
    corrupted = 0
    for trial in range(5):
        noisy = run("tensorop", p_inject=0.999, seed=0)
        same = np.array_equal(noisy.labels_, clean.labels_)
        corrupted += not same
        print(f"  trial {trial}: injected={noisy.counters_.errors_injected:4d}"
              f"  labels match clean: {same}"
              f"  inertia {noisy.inertia_:.2f}")
    print(f"  -> {corrupted}/5 runs corrupted without protection")

    print("\nFT K-means runs under the same injection:")
    for trial in range(5):
        ft = run("ft", p_inject=0.999, seed=0)
        c = ft.counters_
        same = np.array_equal(ft.labels_, clean.labels_)
        print(f"  trial {trial}: injected={c.errors_injected:4d} "
              f"detected={c.errors_detected:4d} corrected={c.errors_corrected:4d}"
              f"  labels match clean: {same}")
        assert same, "ABFT failed to protect the run!"
    print("  -> every FT run matches the fault-free clustering exactly")

    print("\noverhead (simulated time, distance stage):")
    base = run("tensorop", p_inject=0.0, seed=0)
    ft = run("ft", p_inject=0.0, seed=0)
    ratio = ft.assignment_time_s_ / base.assignment_time_s_
    print(f"  FT vs no-FT: {100 * (ratio - 1):.1f}% "
          f"(paper: ~11% average across shapes and precisions)")


if __name__ == "__main__":
    main()
