"""Colour quantisation — the paper's motivating VQ application.

Builds a synthetic RGB image, clusters its pixels into a small palette
with FT K-Means (with fault injection enabled, because a corrupted
palette is very visible), and reports the reconstruction PSNR at several
palette sizes.

    python examples/image_quantization.py
"""

import numpy as np

from repro import FTKMeans
from repro.data.quantization import (
    quantize_pixels,
    reconstruction_psnr,
    synthetic_image,
)


def main() -> None:
    img = synthetic_image(96, 96, seed=11, n_modes=7, noise=0.04)
    pixels = quantize_pixels(img)
    print(f"image: {img.shape[0]}x{img.shape[1]} "
          f"({pixels.shape[0]} pixels, {pixels.shape[1]} channels)")

    print(f"{'palette':>8s} | {'PSNR (dB)':>9s} | {'iters':>5s} | "
          f"{'corrected faults':>16s}")
    results = {}
    for k in (2, 4, 8, 16):
        km = FTKMeans(n_clusters=k, variant="ft", seed=0, mode="functional",
                      p_inject=0.5, max_iter=25).fit(pixels)
        psnr = reconstruction_psnr(img, km.labels_, km.cluster_centers_)
        c = km.counters_
        print(f"{k:8d} | {psnr:9.2f} | {km.n_iter_:5d} | "
              f"{c.errors_corrected:4d} of {c.errors_injected:4d} injected")
        results[k] = psnr

    # the trend must hold end to end (individual steps may hit local optima)
    assert results[16] > results[2], "a 16-colour palette must beat 2 colours"

    print("\npalette (16 colours, RGB):")
    km = FTKMeans(n_clusters=16, seed=0).fit(pixels)
    for row in km.cluster_centers_:
        print("  ", np.round(row, 3))


if __name__ == "__main__":
    main()
