"""Online K-means over a drifting stream, with fault-injected batches.

Simulates a production telemetry stream: Gaussian blobs whose centres
drift a little every batch.  A single :class:`FTKMeans` estimator
consumes the stream through ``partial_fit`` — each batch runs one
assignment pass through the fault-tolerant variant (SEU injection and
ABFT correction apply per mini-batch) followed by the decayed online
centroid update.  A clean twin consumes the identical stream without
injection: the ABFT scheme keeps the two models in lock-step.

Run:  PYTHONPATH=src python examples/minibatch_online.py
"""

import numpy as np

from repro import FTKMeans

CLUSTERS = 8
FEATURES = 16
BATCH = 512
BATCHES = 40
DRIFT = 0.02  # per-batch centre drift (fraction of the feature scale)


def drifting_stream(rng: np.random.Generator):
    """Yield (batch, true_centres): blobs whose centres random-walk."""
    centres = rng.uniform(-4.0, 4.0, size=(CLUSTERS, FEATURES))
    while True:
        labels = rng.integers(0, CLUSTERS, BATCH)
        batch = centres[labels] + 0.35 * rng.standard_normal(
            (BATCH, FEATURES))
        yield batch.astype(np.float32), centres.copy()
        centres += DRIFT * rng.standard_normal(centres.shape)


def main() -> None:
    rng = np.random.default_rng(0)
    stream = drifting_stream(rng)

    # two estimators, identical seed/config, one under SEU injection —
    # the ft variant's ABFT detects and corrects the flips in-flight
    noisy = FTKMeans(n_clusters=CLUSTERS, variant="ft", seed=0,
                     p_inject=0.2, tol=1e-3)
    clean = FTKMeans(n_clusters=CLUSTERS, variant="ft", seed=0, tol=1e-3)

    # a third model stops learning after the first batch: the stale
    # baseline the drifting stream leaves behind
    stale = FTKMeans(n_clusters=CLUSTERS, variant="ft", seed=0, tol=1e-3)

    print(f"stream: {BATCHES} batches x {BATCH} samples, "
          f"{FEATURES} features, drift {DRIFT}/batch\n")
    for step in range(BATCHES):
        batch, _ = next(stream)
        noisy.partial_fit(batch)
        clean.partial_fit(batch)
        if step == 0:
            stale.partial_fit(batch)
        if step % 8 == 0 or step == BATCHES - 1:
            agree = float(np.mean(noisy.labels_ == clean.labels_))
            print(f"batch {step:3d}: ewa inertia {noisy.ewa_inertia_:8.3f} "
                  f"(per sample)  injected so far "
                  f"{noisy.counters_.errors_injected:4d}  "
                  f"corrected {noisy.counters_.errors_corrected:4d}  "
                  f"label agreement vs clean {agree:.3f}")

    assert noisy.counters_.errors_injected > 0

    # the per-batch fault trace: which batches saw flips, and what the
    # ABFT/DMR machinery did about them (faulty batches only)
    trace = noisy.fault_trace_
    print(f"\nfault trace: {len(trace)} of {noisy.n_batches_seen_} "
          f"batches saw faults")
    for entry in trace[:6]:
        print(f"  batch {entry['batch']:3d}: injected {entry['injected']}"
              f"  detected {entry['detected']}"
              f"  corrected {entry['corrected']}"
              f"  dmr mismatches {entry['dmr_mismatches']}")
    if len(trace) > 6:
        print(f"  ... {len(trace) - 6} more")
    assert not clean.fault_trace_  # the clean twin's trace stays empty

    print(f"\nafter {noisy.n_batches_seen_} batches: "
          f"converged={noisy.converged_}")
    drift_dist = np.linalg.norm(
        noisy.cluster_centers_.astype(np.float64)
        - clean.cluster_centers_.astype(np.float64))
    print(f"centroid distance noisy-vs-clean: {drift_dist:.2e} "
          f"(ABFT held the streams together)")

    # the online model tracks the *current* blob positions; the stale
    # model (frozen after batch 0) pays for the accumulated drift
    fresh, _ = next(stream)
    print(f"fresh-batch score: online {noisy.score(fresh):.1f} vs "
          f"stale-after-batch-0 {stale.score(fresh):.1f} "
          f"(higher is better)")


if __name__ == "__main__":
    main()
