"""Quickstart: cluster Gaussian blobs with FT K-Means.

Runs the fault-tolerant estimator on synthetic data, reports clustering
quality and the simulated-GPU performance numbers, and cross-checks the
result against a plain NumPy Lloyd reference.

    python examples/quickstart.py
"""

import numpy as np

from repro import FTKMeans
from repro.baselines.sklearn_like import lloyd_reference
from repro.data.synthetic import gaussian_blobs


def main() -> None:
    # 20k samples, 32 features, 16 well-separated clusters
    x, true_centers, true_labels = gaussian_blobs(
        20_000, 32, 16, dtype=np.float32, seed=42)

    km = FTKMeans(n_clusters=16, variant="ft", dtype="float32",
                  device="a100", seed=0)
    km.fit(x)

    print(f"samples:              {x.shape[0]} x {x.shape[1]}")
    print(f"iterations:           {km.n_iter_}")
    print(f"final inertia:        {km.inertia_:.1f}")
    print(f"simulated time:       {km.sim_time_s_ * 1e3:.3f} ms "
          f"({km.config.device.name})")
    print(f"distance-step rate:   {km.distance_gflops_():.0f} GFLOPS (simulated)")

    # compare against the plain NumPy Lloyd reference
    ref = lloyd_reference(x, 16, seed=0)
    rel = abs(km.inertia_ - ref.inertia_) / ref.inertia_
    print(f"vs NumPy Lloyd:       inertia within {rel * 100:.3f}%")

    # clustering quality against the ground truth: purity per true cluster
    purity = np.mean([
        np.mean(km.labels_[true_labels == c]
                == np.bincount(km.labels_[true_labels == c]).argmax())
        for c in range(16)
    ])
    print(f"cluster purity:       {purity * 100:.1f}%")

    # assign new points
    fresh = true_centers + 0.01
    print(f"predict(centers):     {np.sort(km.predict(fresh))}")


if __name__ == "__main__":
    main()
