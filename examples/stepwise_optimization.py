"""Walk the paper's step-wise optimisation ladder (Sec. III-A / Fig. 7).

Runs each kernel variant functionally on the same data (verifying they
all produce the same clustering) and prints the simulated distance-stage
performance at the paper's problem scale.

    python examples/stepwise_optimization.py
"""

import numpy as np

from repro import FTKMeans
from repro.bench.figures import fig7_stepwise
from repro.bench.tables import print_figure
from repro.data.synthetic import gaussian_blobs

DESCRIPTIONS = {
    "naive": "one thread per sample, serial centroid scan",
    "v1": "GEMM distances + separate reduction kernel",
    "v2": "argmin fused at thread/threadblock level",
    "v3": "+ threadblock broadcast (per-row atomic locks)",
    "tensorop": "tensor cores + cp.async pipeline + tuned tiles",
    "ft": "+ fused warp-level ABFT (online correction)",
}


def main() -> None:
    x, _, _ = gaussian_blobs(4_000, 32, 16, dtype=np.float32, seed=1)

    print("functional run of every variant (same data, same seed):")
    base_labels = None
    for variant, desc in DESCRIPTIONS.items():
        km = FTKMeans(n_clusters=16, variant=variant, seed=0,
                      mode="functional", max_iter=10).fit(x)
        if base_labels is None:
            base_labels = km.labels_
        agree = float(np.mean(km.labels_ == base_labels))
        print(f"  {variant:9s} inertia={km.inertia_:10.2f} "
              f"agreement={agree * 100:5.1f}%  ({desc})")

    print("\nsimulated distance-kernel performance at paper scale "
          "(M=131072, N=128, FP32, A100):")
    print_figure(fig7_stepwise(), max_rows=6)
    print("\npaper's bars: naive 482 | V1 4662 | V2 5902 | V3 6916 | "
          "FT 17686 | cuML 9676 GFLOPS")


if __name__ == "__main__":
    main()
