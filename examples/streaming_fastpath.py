"""The blocked streaming fast-path engine on a production-scale workload.

Demonstrates the engine's memory-budget knob: the same fit, executed
with a full-size accumulator budget vs a tight chunked budget, produces
the *bit-identical* clustering while the chunked run never allocates
more than ``chunk_bytes`` of scratch.  Also shows the wall-clock win of
the hoisted per-fit invariants over the seed one-shot path.

Run:  PYTHONPATH=src python examples/streaming_fastpath.py
"""

import time

import numpy as np

from repro import FTKMeans
from repro.core.engine import FastPathEngine, unchunked_assign
from repro.core.tensorop import default_tensorop_tile
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB

M, FEATURES, CLUSTERS = 120_000, 64, 48


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.random((M, FEATURES), dtype=np.float32)

    print(f"workload: M={M} samples, N={FEATURES} features, K={CLUSTERS}")
    print(f"full distance matrix would be "
          f"{M * CLUSTERS * 4 / 1e6:.0f} MB per pass\n")

    # -- chunking is invisible in the results --------------------------
    budget = 2 << 20  # 2 MB of scratch
    wide = FTKMeans(n_clusters=CLUSTERS, seed=0, max_iter=10).fit(x)
    tight = FTKMeans(n_clusters=CLUSTERS, seed=0, max_iter=10,
                     chunk_bytes=budget).fit(x)
    assert np.array_equal(wide.labels_, tight.labels_)
    assert wide.inertia_ == tight.inertia_
    print(f"chunk_bytes={budget}: bit-identical labels and inertia "
          f"({tight.inertia_:.1f})")

    # -- engine vs the seed one-shot path ------------------------------
    tile = default_tensorop_tile(np.float32)
    y = x[:CLUSTERS].copy()

    engine = FastPathEngine(A100_PCIE_40GB, np.float32, tile=tile,
                            tf32=True, chunk_bytes=budget)
    try:
        engine.begin_fit(x, CLUSTERS)
        t0 = time.perf_counter()
        for _ in range(5):
            engine.assign(x, y, PerfCounters())
        t_engine = time.perf_counter() - t0
    finally:
        engine.end_fit()

    t0 = time.perf_counter()
    for _ in range(5):
        unchunked_assign(x, y, dtype=np.float32, tf32=True)
    t_seed = time.perf_counter() - t0

    print(f"5 assignment passes: engine {t_engine:.3f}s "
          f"vs one-shot {t_seed:.3f}s -> {t_seed / t_engine:.2f}x")
    print(f"engine scratch peak: {engine.stats.peak_scratch_bytes} B "
          f"(budget {budget} B), {engine.stats.chunks_run} chunks total")


if __name__ == "__main__":
    main()
