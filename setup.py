"""Setup shim.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments whose setuptools predates built-in ``bdist_wheel`` support
(legacy ``setup.py develop`` path needs this file).
"""

from setuptools import setup

setup()
