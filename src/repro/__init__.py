"""FT K-Means reproduction.

A high-performance K-means with algorithm-based fault tolerance
(CLUSTER 2024), reproduced end-to-end on a simulated GPU execution model:

* :mod:`repro.core`     -- the FT K-Means algorithm and estimator API
* :mod:`repro.gpusim`   -- GPU execution-model simulator substrate
* :mod:`repro.gemm`     -- tiled SIMT / tensor-core GEMM kernels
* :mod:`repro.abft`     -- checksum encodings, online correction, DMR
* :mod:`repro.codegen`  -- template-based kernel generation + selection
* :mod:`repro.baselines`-- cuML-like, sklearn-like and Wu-ABFT baselines
* :mod:`repro.bench`    -- the harness regenerating every paper figure
* :mod:`repro.data`     -- synthetic workload generators
"""

from repro.core.api import FTKMeans
from repro.core.config import KMeansConfig
from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4, get_device

__version__ = "1.0.0"

__all__ = [
    "FTKMeans",
    "KMeansConfig",
    "A100_PCIE_40GB",
    "TESLA_T4",
    "get_device",
    "__version__",
]
