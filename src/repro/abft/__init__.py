"""Algorithm-based fault tolerance: encodings, detection, online
correction with location encoding, DMR, and the baseline schemes."""

from repro.abft.corrector import CorrectionKind, CorrectionResult, Corrector
from repro.abft.detector import Detector, Residuals, measure_residuals
from repro.abft.dmr import dmr_protected
from repro.abft.encoding import acc_checksum_triple, checksum_triple, e1, e2
from repro.abft.kosaian import KosaianBlockState, KosaianDetectGemm
from repro.abft.schemes import (
    FTKMEANS,
    KOSAIAN,
    NONE,
    SCHEMES,
    TENSOR_ONLY,
    WU,
    AbftScheme,
    get_scheme,
)
from repro.abft.thresholds import ThresholdPolicy, detection_threshold, unit_roundoff
from repro.abft.wu import WuBlockState, WuFtGemm

__all__ = [
    "CorrectionKind",
    "CorrectionResult",
    "Corrector",
    "Detector",
    "Residuals",
    "measure_residuals",
    "dmr_protected",
    "acc_checksum_triple",
    "checksum_triple",
    "e1",
    "e2",
    "KosaianBlockState",
    "KosaianDetectGemm",
    "FTKMEANS",
    "KOSAIAN",
    "NONE",
    "SCHEMES",
    "TENSOR_ONLY",
    "WU",
    "AbftScheme",
    "get_scheme",
    "ThresholdPolicy",
    "detection_threshold",
    "unit_roundoff",
    "WuBlockState",
    "WuFtGemm",
]
