"""Online error location and correction (the paper's core contribution).

Given residuals (r1, r2, r3) from :mod:`repro.abft.detector` over a warp
accumulator C:

* single corrupted accumulator element ε at (i, j):
  ``r1 = −ε``, ``r2 = −ε(j+1)``, ``r3 = −ε(i+1)`` ⇒ decode, fix in
  place, then *verify* (re-measure residuals) before accepting;
* non-finite corruption (flipped exponent bit → Inf/NaN): located by
  inspection, value recovered from the e1 identity
  ``C[i,j] = d1 − Σ_{(p,q)≠(i,j)} C[p,q]``;
* corrupted *checksum register* (d1/d2/d3 hit instead of C): the decoded
  index falls outside the tile / far from integral while C verifies clean
  after a resync — checksums are redundant, so they are rebuilt from C;
* detectable but unlocatable (|r1| inside the ratio-decode noise band) or
  failed verification ⇒ :data:`CorrectionKind.RECOMPUTE` — the kernel
  replays the warp tile (rare, counted, still fully automatic).

This is the warp-level scheme of Fig. 6; its tensor-core cost lives in the
timing model, its dataflow in :class:`repro.core.ft_kmeans.FtTensorOpGemm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.abft.detector import Detector, Residuals, measure_residuals
from repro.abft.encoding import acc_checksum_triple
from repro.gpusim.errors import UncorrectableError

__all__ = ["CorrectionKind", "CorrectionResult", "Corrector"]


class CorrectionKind(Enum):
    """Outcome of one detect/locate/correct pass."""

    CLEAN = "clean"                      # no fault present
    CORRECTED = "corrected"              # accumulator element fixed in place
    CHECKSUM_RESYNC = "checksum_resync"  # checksum registers rebuilt from C
    RECOMPUTE = "recompute"              # fault real but unlocatable: replay


@dataclass(frozen=True)
class CorrectionResult:
    kind: CorrectionKind
    row: int = -1
    col: int = -1
    magnitude: float = 0.0


class Corrector:
    """Locate-and-correct engine for one warp tile."""

    #: how far a decoded index may sit from an integer before the decode
    #: is declared unreliable
    INDEX_TOLERANCE = 0.45

    def __init__(self, detector: Detector):
        self.detector = detector

    # ------------------------------------------------------------------
    def check_and_correct(self, d: tuple[float, float, float],
                          acc: np.ndarray) -> tuple[CorrectionResult, tuple[float, float, float]]:
        """Verify checksums against ``acc``; fix a single error in place.

        Returns the outcome and the (possibly resynchronised) running
        checksums to carry forward.  ``CorrectionKind.RECOMPUTE`` asks the
        caller to rebuild the tile (and then the checksums) itself.
        """
        nf = self._fix_nonfinite(d, acc)
        if nf is not None:
            return nf

        res = measure_residuals(d, acc)
        if not self.detector.is_faulty(res):
            return CorrectionResult(CorrectionKind.CLEAN), d

        if not self.detector.acc_is_faulty(res):
            # r1 clean, r2/r3 large: a d2/d3 checksum register took the
            # hit; the accumulator is intact
            return (CorrectionResult(CorrectionKind.CHECKSUM_RESYNC),
                    acc_checksum_triple(acc, dtype=np.float64))

        if self.detector.location_decodable(res):
            loc = self._decode_location(res, acc.shape)
            if loc is not None:
                i, j = loc
                before = acc[i, j]
                acc[i, j] += acc.dtype.type(res.r1)
                fresh = acc_checksum_triple(acc, dtype=np.float64)
                if not self.detector.is_faulty(measure_residuals(fresh, acc)):
                    return (CorrectionResult(CorrectionKind.CORRECTED, i, j,
                                             -res.r1), fresh)
                acc[i, j] = before  # verification failed: undo, fall through

        # r1 could itself be the corrupted d1 register: a resync explains
        # everything iff the accumulator then verifies clean
        fresh = acc_checksum_triple(acc, dtype=np.float64)
        res2 = measure_residuals(fresh, acc)
        if not self.detector.is_faulty(res2):
            # cannot distinguish "d1 corrupted" from "acc corrupted but
            # unlocatable" by checksums alone; residual-consistency breaks
            # the tie: a d1 hit leaves r2, r3 ≈ 0
            consistent_d1_hit = (
                not self.detector.policy.exceeds(res.r2, res.scale, weight=res.n)
                and not self.detector.policy.exceeds(res.r3, res.scale, weight=res.m))
            if consistent_d1_hit:
                return CorrectionResult(CorrectionKind.CHECKSUM_RESYNC), fresh
            return CorrectionResult(CorrectionKind.RECOMPUTE), d
        raise UncorrectableError(  # pragma: no cover - defensive
            "residuals inconsistent with a single error "
            f"(r1={res.r1:.3e}, r2={res.r2:.3e}, r3={res.r3:.3e})")

    # ------------------------------------------------------------------
    def _fix_nonfinite(self, d, acc):
        """Handle Inf/NaN corruption by inspection + e1 identity."""
        finite = np.isfinite(acc)
        if finite.all():
            return None
        nonfinite = np.argwhere(~finite)
        if len(nonfinite) > 1:
            raise UncorrectableError(
                f"{len(nonfinite)} non-finite accumulator elements violate "
                "the single-event-upset assumption")
        if not np.isfinite(d[0]):
            # both the element and the checksum are non-finite: the flip
            # happened before this interval's accumulation split them;
            # recomputation is the only recovery
            return CorrectionResult(CorrectionKind.RECOMPUTE), d
        i, j = (int(v) for v in nonfinite[0])
        others = float(np.where(finite, acc, 0.0).sum(dtype=np.float64))
        acc[i, j] = acc.dtype.type(d[0] - others)
        fresh = acc_checksum_triple(acc, dtype=np.float64)
        return (CorrectionResult(CorrectionKind.CORRECTED, i, j,
                                 float(acc[i, j])), fresh)

    def _decode_location(self, res: Residuals, shape: tuple[int, int]):
        """(i, j) from the e2/e1 residual ratios, or None if non-decodable."""
        if res.r1 == 0.0 or not np.isfinite(res.r1):
            return None
        jf = res.r2 / res.r1 - 1.0
        if_ = res.r3 / res.r1 - 1.0
        if not (np.isfinite(jf) and np.isfinite(if_)):
            return None
        i, j = int(round(if_)), int(round(jf))
        if abs(if_ - i) > self.INDEX_TOLERANCE or abs(jf - j) > self.INDEX_TOLERANCE:
            return None
        if not (0 <= i < shape[0] and 0 <= j < shape[1]):
            return None
        return i, j
