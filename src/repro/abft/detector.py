"""Checksum-residual detection.

Separates *measuring* residuals (pure arithmetic, here) from *acting* on
them (the corrector).  The detector compares the running factored
checksums (d1, d2, d3) against the accumulator-derived triple and decides
— under a :class:`repro.abft.thresholds.ThresholdPolicy` — whether a
fault is present.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abft.encoding import acc_checksum_triple
from repro.abft.thresholds import ThresholdPolicy

__all__ = ["Residuals", "measure_residuals", "Detector"]


@dataclass(frozen=True)
class Residuals:
    """Checksum residuals for one warp tile.

    ``r1 = d1 − e1ᵀCe1``; ``r2 = d2 − e1ᵀCe2``; ``r3 = d3 − e2ᵀCe1``.
    ``scale`` is ‖C‖_F (the noise-floor reference); ``m``/``n`` are the
    tile extents (the e2-weighted residual weights).
    """

    r1: float
    r2: float
    r3: float
    scale: float
    m: int
    n: int


def measure_residuals(d: tuple[float, float, float], acc: np.ndarray,
                      check_dtype=np.float64) -> Residuals:
    """Compute residuals between running checksums and the accumulator."""
    c1, c2, c3 = acc_checksum_triple(acc, dtype=check_dtype)
    finite = np.abs(acc[np.isfinite(acc)].astype(np.float64))
    if finite.size >= 2:
        # Outlier-robust, overflow-safe ‖C‖_F estimate: the SECOND-largest
        # magnitude times sqrt(count).  Using the max would let a single
        # corrupted near-float-max element inflate its own detection
        # threshold past its own residual; the runner-up tracks the clean
        # data's scale under the single-error assumption.
        two = np.partition(finite, finite.size - 2)[-2:]
        mx = float(two[0])
        scale = min(mx, 1e290) * float(np.sqrt(finite.size))
    elif finite.size == 1:
        scale = min(float(finite[0]), 1e290)
    else:
        scale = 1.0
    with np.errstate(invalid="ignore"):
        return Residuals(r1=d[0] - c1, r2=d[1] - c2, r3=d[2] - c3,
                         scale=max(scale, 1.0), m=acc.shape[0], n=acc.shape[1])


class Detector:
    """Thresholded fault detection over :class:`Residuals`."""

    def __init__(self, policy: ThresholdPolicy):
        self.policy = policy

    def is_faulty(self, res: Residuals) -> bool:
        """Any residual above its δ ⇒ a fault somewhere (acc or checksums)."""
        return (self.policy.exceeds(res.r1, res.scale)
                or self.policy.exceeds(res.r2, res.scale, weight=res.n)
                or self.policy.exceeds(res.r3, res.scale, weight=res.m))

    def acc_is_faulty(self, res: Residuals) -> bool:
        """r1 above δ ⇒ the *accumulator* itself is corrupted (an error in
        the d2/d3 checksum registers perturbs r2/r3 but leaves r1 clean)."""
        return self.policy.exceeds(res.r1, res.scale)

    def location_decodable(self, res: Residuals) -> bool:
        """Is |r1| far enough above the noise for the e2/e1 ratios to
        resolve an index?  (Needs clearance ∝ the tile dimension.)"""
        return (self.policy.locatable(res.r1, res.scale, res.n)
                and self.policy.locatable(res.r1, res.scale, res.m))
