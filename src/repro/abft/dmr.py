"""Dual modular redundancy (DMR) for memory-bound stages.

The paper's observation (Sec. I): in the centroid-update stage the memory
latency of streaming every sample dominates, so *duplicating all
arithmetic* and comparing costs under 1% — DMR is the right tool there,
while the compute-bound distance stage needs ABFT.

:func:`dmr_protected` runs a computation twice (optionally with a fault
injected into one replica), compares, and re-executes on mismatch —
detect + recover by recomputation, which is sound for fail-continue
errors because the two replicas are independent.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gpusim.counters import PerfCounters
from repro.gpusim.errors import UncorrectableError

__all__ = ["dmr_protected"]


def dmr_protected(compute: Callable[[], np.ndarray], *,
                  counters: PerfCounters | None = None,
                  corrupt_first: Callable[[np.ndarray], None] | None = None,
                  max_retries: int = 3,
                  rtol: float = 0.0) -> np.ndarray:
    """Execute ``compute`` with duplicated-instruction protection.

    Parameters
    ----------
    compute:
        Deterministic computation returning an ndarray.  Called twice per
        attempt (the duplicated instruction stream).
    corrupt_first:
        Test hook: mutates the *first* replica's output in place, modelling
        an SEU inside one instruction stream.  Applied only on the first
        attempt, matching the single-event-upset assumption.
    max_retries:
        Recomputation budget before declaring the error persistent.
    rtol:
        Comparison tolerance (0 = bitwise, valid because replicas run the
        same instruction order).
    """
    counters = counters if counters is not None else PerfCounters()
    for attempt in range(max_retries + 1):
        first = np.asarray(compute()).copy()
        if corrupt_first is not None and attempt == 0:
            corrupt_first(first)
            counters.errors_injected += 1
        second = np.asarray(compute())
        counters.dmr_checks += 1
        if rtol == 0.0:
            ok = np.array_equal(first, second, equal_nan=True)
        else:
            ok = np.allclose(first, second, rtol=rtol, atol=0.0, equal_nan=True)
        if ok:
            return second
        counters.dmr_mismatches += 1
        counters.errors_detected += 1
    raise UncorrectableError(
        f"DMR mismatch persisted across {max_retries + 1} attempts")
