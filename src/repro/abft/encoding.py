"""Checksum encodings for algorithm-based fault tolerance.

The scheme of Sec. IV uses two encoding vectors over a (m x n) result
tile C = A·Bᵀ accumulated over K steps:

* ``e1 = [1, 1, …, 1]``   — detection (Huang & Abraham's classic sum);
* ``e2 = [1, 2, …, m]``   — *location* encoding: with a single corrupted
  element ε at (i, j),

      r1 = d1 − e1ᵀ C e1 = −ε
      r2 = d2 − e1ᵀ C e2 = −ε·(j+1)
      r3 = d3 − e2ᵀ C e1 = −ε·(i+1)

  so ``i = r3/r1 − 1`` and ``j = r2/r1 − 1`` pinpoint the error and
  ``C[i,j] += r1`` corrects it — online, without recomputation.

These helpers build the vectors and the three running checksums; the
warp-level state machine lives in :mod:`repro.abft.corrector`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["e1", "e2", "checksum_triple", "acc_checksum_triple"]


def e1(n: int, dtype=np.float64) -> np.ndarray:
    """The all-ones detection vector."""
    if n <= 0:
        raise ValueError(f"vector length must be positive, got {n}")
    return np.ones(n, dtype=dtype)


def e2(n: int, dtype=np.float64) -> np.ndarray:
    """The location-encoding vector [1, 2, …, n]."""
    if n <= 0:
        raise ValueError(f"vector length must be positive, got {n}")
    return np.arange(1, n + 1, dtype=dtype)


def checksum_triple(a: np.ndarray, b: np.ndarray, dtype=np.float64) -> tuple[float, float, float]:
    """(d1, d2, d3) = (e1ᵀAB e1, e1ᵀAB e2, e2ᵀAB e1) for one K-step.

    ``a``: (m, k) fragment; ``b``: (n, k) fragment (so AB ≡ a @ b.T).
    Computed as (e1ᵀa)(bᵀe1) etc. — the cheap factored form of Fig. 6
    lines 15-24 — never materialising the product.  Checksum registers
    accumulate in float64 by default (the kernels' behaviour).
    """
    dt = np.dtype(dtype) if dtype is not None else a.dtype
    m, n = a.shape[0], b.shape[0]
    with np.errstate(over="ignore", invalid="ignore"):
        sa1 = e1(m, dt) @ a.astype(dt)
        sa2 = e2(m, dt) @ a.astype(dt)
        sb1 = e1(n, dt) @ b.astype(dt)
        sb2 = e2(n, dt) @ b.astype(dt)
        return float(sa1 @ sb1), float(sa1 @ sb2), float(sa2 @ sb1)


def acc_checksum_triple(acc: np.ndarray, dtype=np.float64) -> tuple[float, float, float]:
    """(e1ᵀ acc e1, e1ᵀ acc e2, e2ᵀ acc e1) measured from the accumulator.

    Computed in float64 by default, matching the precision of the running
    checksum registers the kernels maintain."""
    dt = np.dtype(dtype) if dtype is not None else acc.dtype
    m, n = acc.shape
    with np.errstate(over="ignore", invalid="ignore"):
        # overflow to Inf is a legitimate state when the accumulator holds
        # a corrupted near-max-float element; the detector handles it
        a64 = acc.astype(dt)
        row = e1(m, dt) @ a64          # column sums
        row2 = e2(m, dt) @ a64
        return (float(row @ e1(n, dt)), float(row @ e2(n, dt)),
                float(row2 @ e1(n, dt)))
