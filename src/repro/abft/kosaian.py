"""Kosaian & Rashmi's warp-level detection-only scheme (SC'21 baseline).

Arithmetic-intensity-guided ABFT for tensor-core GPUs: a single e1
checksum per warp detects corruption, but there is no location encoding —
recovery is *time-redundant recomputation* of the affected block.  This
is the scheme of the paper's Fig. 5(b): warp-level, tensor-core
compatible, detection ✓, correction ✗.

The functional kernel recomputes the block's accumulator from shared
operands when a residual fires, and counts the duplicated work so tests
can show the recovery-cost asymmetry against FT K-means' in-place fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.abft.thresholds import ThresholdPolicy
from repro.gemm.tensorop_gemm import TensorOpGemm
from repro.gpusim.hierarchy import ThreadBlock, Warp

__all__ = ["KosaianDetectGemm", "KosaianBlockState"]


@dataclass
class KosaianBlockState:
    """Per-warp running d1 checksums (detection needs nothing more;
    recovery replays the block's tile from global memory)."""

    d1: dict[int, float] = field(default_factory=dict)


class KosaianDetectGemm(TensorOpGemm):
    """Tensor-core GEMM + e1-only warp checksums, recompute on detect."""

    def __init__(self, *args, safety: float = 4.0, **kwargs):
        super().__init__(*args, **kwargs)
        self._safety = safety
        self.recomputed_blocks: list[int] = []

    def block_begin(self, block: ThreadBlock, warps: list[Warp]) -> KosaianBlockState:
        return KosaianBlockState(d1={w.warp_id: 0.0 for w in warps})

    def warp_step(self, state: KosaianBlockState, warp: Warp, a_w: np.ndarray,
                  b_w: np.ndarray, acc_w: np.ndarray, k_iter: int) -> None:
        super().warp_step(state, warp, a_w, b_w, acc_w, k_iter)
        sa = a_w.sum(axis=0, dtype=np.float64)
        sb = b_w.sum(axis=0, dtype=np.float64)
        state.d1[warp.warp_id] += float(sa @ sb)
        # one checksum MMA per warp step (e1ᵀA · Be1)
        self.counters.mma_ops += 1
        self.counters.abft_mma_ops += 1
        self.counters.abft_simt_ops += a_w.size + b_w.size

    def block_end(self, state: KosaianBlockState, block: ThreadBlock,
                  warps: list[Warp], acc: np.ndarray) -> None:
        policy = ThresholdPolicy(self.dtype, tf32=self.mma_unit.use_tf32,
                                 safety=self._safety)
        faulty = False
        for w in warps:
            wm0 = w.warp_m * self.tile.warp.m
            wn0 = w.warp_n * self.tile.warp.n
            acc_w = acc[wm0: wm0 + self.tile.warp.m, wn0: wn0 + self.tile.warp.n]
            with np.errstate(over="ignore", invalid="ignore"):
                c1 = float(acc_w.sum(dtype=np.float64))
            r1 = state.d1[w.warp_id] - c1
            # robust tile-magnitude scale (|Σc| cancels for random data and
            # would false-alarm; see repro.abft.detector.measure_residuals)
            finite = np.abs(acc_w[np.isfinite(acc_w)].astype(np.float64))
            mx = float(np.partition(finite, finite.size - 2)[-2]) \
                if finite.size >= 2 else 1.0
            scale = max(1.0, min(mx, 1e290) * float(np.sqrt(max(1, finite.size))))
            self.counters.checksum_tests += 1
            if policy.exceeds(r1, scale):
                faulty = True
                self.counters.errors_detected += 1
        if faulty:
            self._recompute_block(block, warps, acc)

    # ------------------------------------------------------------------
    def _recompute_block(self, block: ThreadBlock, warps: list[Warp],
                         acc: np.ndarray) -> None:
        """Time-redundant recovery: rebuild the accumulator from global
        memory (duplicated loads + duplicated MMAs, all counted)."""
        self.recomputed_blocks.append(block.block_id)
        shape = self._replay_shape
        tile = self.tile
        tb_m, tb_n, tb_k = tile.tb.m, tile.tb.n, tile.tb.k
        row0 = block.block_m * tb_m
        col0 = block.block_n * tb_n
        rows = min(tb_m, shape.m - row0)
        cols = min(tb_n, shape.n - col0)
        acc[:] = 0
        k_iters = -(-shape.k // tb_k)
        for ki in range(k_iters):
            kk0 = ki * tb_k
            kw = min(tb_k, shape.k - kk0)
            a_tile = np.zeros((tb_m, tb_k), self.dtype)
            a_tile[:rows, :kw] = self._replay_gmem.load(
                "samples", slice(row0, row0 + rows), slice(kk0, kk0 + kw))
            b_tile = np.zeros((tb_n, tb_k), self.dtype)
            b_tile[:cols, :kw] = self._replay_gmem.load(
                "centroids", slice(col0, col0 + cols), slice(kk0, kk0 + kw))
            for w in warps:
                wm0, wn0 = w.warp_m * tile.warp.m, w.warp_n * tile.warp.n
                acc_w = acc[wm0: wm0 + tile.warp.m, wn0: wn0 + tile.warp.n]
                self.mma_unit.mma(a_tile[wm0: wm0 + tile.warp.m],
                                  b_tile[wn0: wn0 + tile.warp.n].T, acc_w)
        self.trace.emit("recompute", block.block_id, -1, scheme="kosaian")

    def run(self, gmem, shape) -> None:
        # keep handles for the recompute path (a relaunch on real HW)
        self._replay_gmem = gmem
        self._replay_shape = shape
        super().run(gmem, shape)
