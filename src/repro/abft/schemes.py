"""ABFT scheme registry — the capability matrix of the paper's Fig. 5(d).

==============  ============  =====  ===========  =========  ==========
Scheme          Level         SIMT   Tensor core  Detection  Correction
==============  ============  =====  ===========  =========  ==========
Wu's FT-GEMM    Threadblock    yes    no (cksum)      yes        yes
Kosaian's       Warp           yes      yes           yes        no
FT K-Means      Warp           yes      yes           yes        yes
==============  ============  =====  ===========  =========  ==========

Each :class:`AbftScheme` entry also records the properties the timing
model needs: how many checksum MMAs per warp step, whether the scheme is
compatible with the ``cp.async`` pipeline (Wu's register reuse is not),
and how recovery is performed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AbftScheme", "SCHEMES", "get_scheme", "NONE", "FTKMEANS", "WU",
           "KOSAIAN", "TENSOR_ONLY"]


@dataclass(frozen=True)
class AbftScheme:
    """Static description of one fault-tolerance scheme.

    Attributes
    ----------
    name / level:
        Registry key and protection granularity.
    uses_simt_checksums / uses_tensor_checksums:
        Where the checksum arithmetic executes.
    detects / corrects:
        Capability bits (Kosaian detects only → recovery is recompute).
    checksum_mmas_per_warp_step:
        Tensor-core instructions added per warp per K-step (FT K-means: 3
        — e1ᵀA·Be1, e1ᵀA·Be2, e2ᵀA·Be1; Kosaian: 1).
    async_compatible:
        False when the scheme needs the register-staged copy path (Wu's).
    recovery:
        'online' (locate & fix in place), 'recompute' (time redundancy),
        or 'none'.
    """

    name: str
    level: str
    uses_simt_checksums: bool
    uses_tensor_checksums: bool
    detects: bool
    corrects: bool
    checksum_mmas_per_warp_step: int
    async_compatible: bool
    recovery: str

    @property
    def timing_key(self) -> str:
        """Identifier understood by ``TimingModel.distance_tensorop``."""
        return self.name


NONE = AbftScheme(
    name="none", level="-", uses_simt_checksums=False,
    uses_tensor_checksums=False, detects=False, corrects=False,
    checksum_mmas_per_warp_step=0, async_compatible=True, recovery="none")

FTKMEANS = AbftScheme(
    name="ftkmeans", level="warp", uses_simt_checksums=True,
    uses_tensor_checksums=True, detects=True, corrects=True,
    checksum_mmas_per_warp_step=3, async_compatible=True, recovery="online")

WU = AbftScheme(
    name="wu", level="threadblock", uses_simt_checksums=True,
    uses_tensor_checksums=False, detects=True, corrects=True,
    checksum_mmas_per_warp_step=0, async_compatible=False, recovery="online")

KOSAIAN = AbftScheme(
    name="kosaian", level="warp", uses_simt_checksums=True,
    uses_tensor_checksums=True, detects=True, corrects=False,
    checksum_mmas_per_warp_step=1, async_compatible=True, recovery="recompute")

TENSOR_ONLY = AbftScheme(
    name="tensor_only", level="warp", uses_simt_checksums=False,
    uses_tensor_checksums=True, detects=True, corrects=True,
    checksum_mmas_per_warp_step=3, async_compatible=True, recovery="online")

SCHEMES = {s.name: s for s in (NONE, FTKMEANS, WU, KOSAIAN, TENSOR_ONLY)}


def get_scheme(name) -> AbftScheme:
    """Look up a scheme by name (accepts an AbftScheme pass-through)."""
    if isinstance(name, AbftScheme):
        return name
    try:
        return SCHEMES[str(name)]
    except KeyError:
        raise KeyError(
            f"unknown ABFT scheme {name!r}; available: {sorted(SCHEMES)}")
