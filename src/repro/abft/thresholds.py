"""Detection-threshold (δ) analysis.

A checksum residual is nonzero even without faults, because the factored
path ``(e1ᵀA)(B e1)`` and the accumulated path ``e1ᵀ C e1`` round
differently.  The threshold must sit *above* that rounding noise (else
false alarms) and *below* the corruption magnitudes worth correcting.

Empirical characterisation on the simulator (see
``tests/abft/test_thresholds.py``) shows the fault-free residual obeys::

    |r1| ≲ 0.9 · u · ‖C‖_F              (no sqrt(k) growth: errors cancel)
    |r2| ≲ 0.9 · u · ‖C‖_F · n          (e2 weights grow with tile width)
    |r3| ≲ 0.9 · u · ‖C‖_F · m

where ``u`` is the unit roundoff of the *product* arithmetic (TF32's
2⁻¹⁰ on the FP32 tensor path, else the dtype's own).  The policy is
therefore ``δ = safety · u · ‖C‖_F`` with a per-residual weight, safety
defaulting to 8 (an order of magnitude above the observed noise while
still catching any flip that could plausibly move an argmin).

A bit flip below δ escapes detection — by construction it is comparable
to the noise floor of the arithmetic itself, exactly the argument the
paper's fault model makes for its threshold test.
"""

from __future__ import annotations

import numpy as np

__all__ = ["unit_roundoff", "detection_threshold", "ThresholdPolicy"]


def unit_roundoff(dtype, *, tf32: bool = False) -> float:
    """Unit roundoff of the product arithmetic."""
    dt = np.dtype(dtype)
    if dt == np.float32:
        return 2.0 ** -10 if tf32 else 2.0 ** -23
    if dt == np.float64:
        return 2.0 ** -52
    raise ValueError(f"unsupported dtype {dt!r}")


def detection_threshold(dtype, scale: float, *, tf32: bool = False,
                        safety: float = 8.0) -> float:
    """δ for one checksum comparison; ``scale`` is ‖C‖_F of the tile."""
    u = unit_roundoff(dtype, tf32=tf32)
    return safety * u * max(1e-30, abs(scale))


class ThresholdPolicy:
    """Reusable δ policy bound to a dtype.

    ``weight`` lets callers scale δ for the e2-weighted residuals (r2
    grows with the tile width, r3 with its height).
    """

    def __init__(self, dtype, *, tf32: bool = False, safety: float = 8.0):
        self.dtype = np.dtype(dtype)
        self.tf32 = bool(tf32)
        self.safety = float(safety)
        self.u = unit_roundoff(dtype, tf32=tf32)

    def delta(self, scale: float, weight: float = 1.0) -> float:
        return self.safety * self.u * max(1e-30, abs(scale)) * max(1.0, weight)

    def exceeds(self, residual: float, scale: float, weight: float = 1.0) -> bool:
        """True when |residual| signals a genuine fault (NaN/Inf included:
        a flipped exponent bit can produce non-finite checksums, which a
        plain ``>`` comparison would silently miss)."""
        if not np.isfinite(residual):
            return True
        return abs(residual) > self.delta(scale, weight)

    def locatable(self, residual: float, scale: float, tile_dim: int) -> bool:
        """Can the e2/e1 ratio decode the location reliably?

        The ratio's noise is ~(u·‖C‖_F·dim)/|r1|; decoding needs it below
        ~0.45, so |r1| must clear the noise floor by a factor ~2·dim.
        """
        if not np.isfinite(residual):
            return False
        return abs(residual) > 2.5 * self.u * max(1e-30, abs(scale)) * tile_dim
