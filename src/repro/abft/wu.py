"""Wu's threadblock-level FT-GEMM (the ISC'23 baseline).

Pre-Ampere ABFT-GEMM fuses checksum accumulation into the *register
staging* of operand tiles: while an element passes global → register →
shared, the kernel folds it into full row/column checksum vectors at
threadblock scope.  Location uses the classic 2-D (row, column) checksum
intersection; correction is in place.

Two structural properties make this scheme lose on Ampere, both modelled
here and in the timing model:

* it *requires* the register-mediated copy path — with ``cp.async`` the
  data never visits a register, so the fusion breaks (the kernel runs
  with the synchronous path even on A100, forfeiting overlap);
* the checksum vectors live at threadblock scope, so every verification
  needs shared-memory round trips and block-wide barriers (counted via
  ``counters.barriers`` / shared traffic), unlike FT K-means' warp-local
  scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.abft.thresholds import ThresholdPolicy
from repro.gemm.simt_gemm import SimtGemm
from repro.gpusim.errors import UncorrectableError
from repro.gpusim.hierarchy import ThreadBlock, Warp

__all__ = ["WuFtGemm", "WuBlockState"]


@dataclass
class WuBlockState:
    """Threadblock-scope running checksums.

    ``col_check[j] = Σ_k (e1ᵀ A_k · B_kᵀ)[j]`` — expected column sums of C;
    ``row_check[i] = Σ_k (A_k · B_kᵀ e1)[i]`` — expected row sums of C.
    """

    col_check: np.ndarray
    row_check: np.ndarray


class WuFtGemm(SimtGemm):
    """SIMT GEMM + threadblock-level 2-D checksum ABFT."""

    def __init__(self, *args, safety: float = 4.0, **kwargs):
        super().__init__(*args, **kwargs)
        self._safety = safety

    def block_begin(self, block: ThreadBlock, warps: list[Warp]) -> WuBlockState:
        tb = self.tile.tb
        return WuBlockState(
            col_check=np.zeros(tb.n, dtype=np.float64),
            row_check=np.zeros(tb.m, dtype=np.float64),
        )

    def on_stage_register(self, state: WuBlockState, a_tile: np.ndarray,
                          b_tile: np.ndarray, k_iter: int) -> None:
        """The register-reuse window: fold staged tiles into the checksums."""
        sa = a_tile.sum(axis=0, dtype=np.float64)         # e1ᵀ A_k   (tb_k,)
        sb = b_tile.sum(axis=0, dtype=np.float64)         # e1ᵀ B_k   (tb_k,)
        state.col_check += sa @ b_tile.astype(np.float64).T
        state.row_check += a_tile.astype(np.float64) @ sb
        ops = a_tile.size + b_tile.size
        self.counters.abft_simt_ops += ops
        self.counters.simt_fma += ops

    def block_end(self, state: WuBlockState, block: ThreadBlock,
                  warps: list[Warp], acc: np.ndarray) -> None:
        """Threadblock-wide verification: shared-memory reduction + barrier,
        then 2-D locate-and-correct."""
        # the reduction of per-warp partials into block totals passes
        # through shared memory and requires two barriers
        self.counters.shared_stores += acc.shape[0] * 8 + acc.shape[1] * 8
        self.counters.shared_loads += acc.shape[0] * 8 + acc.shape[1] * 8
        block.syncthreads()
        block.syncthreads()

        with np.errstate(over="ignore", invalid="ignore"):
            col_sum = acc.sum(axis=0, dtype=np.float64)
            row_sum = acc.sum(axis=1, dtype=np.float64)
            col_res = state.col_check - col_sum
            row_res = state.row_check - row_sum
        policy = ThresholdPolicy(self.dtype, safety=self._safety)
        finite = np.abs(acc[np.isfinite(acc)].astype(np.float64))
        mx = float(finite.max()) if finite.size else 1.0
        scale = max(1.0, min(mx, 1e290) * float(np.sqrt(acc.size)))
        self.counters.checksum_tests += 1

        bad_cols = [j for j in range(col_res.size)
                    if policy.exceeds(float(col_res[j]), scale)]
        bad_rows = [i for i in range(row_res.size)
                    if policy.exceeds(float(row_res[i]), scale)]
        if not bad_cols and not bad_rows:
            return
        self.counters.errors_detected += 1
        if len(bad_cols) == 1 and len(bad_rows) == 1:
            i, j = bad_rows[0], bad_cols[0]
            if np.isfinite(acc[i, j]):
                acc[i, j] += acc.dtype.type(row_res[i])
            else:
                # Inf/NaN corruption: rebuild the element from the row
                # checksum identity C[i,j] = row_check[i] − Σ_{q≠j} C[i,q]
                row = acc[i].astype(np.float64)
                others = float(np.where(np.isfinite(row), row, 0.0).sum())
                acc[i, j] = acc.dtype.type(state.row_check[i] - others)
            self.counters.errors_corrected += 1
            self.trace.emit("correct", block.block_id, -1, row=i, col=j,
                            scheme="wu")
            return
        if len(bad_cols) <= 1 and len(bad_rows) <= 1:
            # one axis localises but the other sits inside its noise band:
            # the corruption is of threshold magnitude — too small to move
            # a result, too ambiguous to place.  Leave it (the paper's δ
            # test passes such values through by design).
            self.trace.emit("subthreshold", block.block_id, -1, scheme="wu")
            return
        raise UncorrectableError(
            f"Wu-ABFT: ambiguous residual pattern (rows={bad_rows}, "
            f"cols={bad_cols}) violates the single-error assumption")
