"""Baselines: simulated cuML, plain-NumPy Lloyd, Wu's FT K-means."""

from repro.baselines.cuml_like import CuMLKMeans, cuml_assignment
from repro.baselines.sklearn_like import LloydResult, lloyd_reference
from repro.baselines.wu_ft_kmeans import WuFTKMeans

__all__ = [
    "CuMLKMeans",
    "cuml_assignment",
    "LloydResult",
    "lloyd_reference",
    "WuFTKMeans",
]
