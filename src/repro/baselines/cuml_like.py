"""Simulated cuML K-means baseline.

Runs the *same* tensor-core fused kernels as FT K-means but pinned to
cuML's fixed tile parameters (Table I) — reproducing exactly the contrast
the paper evaluates: tuned-per-shape parameters versus one hard-coded
CUTLASS instantiation.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.cuml_params import cuml_tile
from repro.core.api import FTKMeans

__all__ = ["CuMLKMeans", "cuml_assignment"]


class CuMLKMeans(FTKMeans):
    """Drop-in estimator with cuML's hard-coded kernel parameters.

    Accepts the same arguments as :class:`repro.core.api.FTKMeans` except
    ``tile``/``variant`` (pinned to the tensor-core kernel with Table I
    parameters; cuML has no ABFT, so ``abft`` is rejected too).
    """

    def __init__(self, n_clusters: int = 8, *, dtype="float32",
                 device="a100", mode: str = "fast", p_inject: float = 0.0,
                 use_tf32: bool = True, init: str = "k-means++",
                 max_iter: int = 50, tol: float = 1e-4,
                 seed: int | None = None, init_centroids=None):
        super().__init__(
            n_clusters, variant="tensorop", dtype=dtype, device=device,
            mode=mode, tile=cuml_tile(np.dtype(dtype)), abft="none",
            p_inject=p_inject, use_tf32=use_tf32, init=init,
            max_iter=max_iter, tol=tol, seed=seed,
            init_centroids=init_centroids)


def cuml_assignment(device, dtype, *, mode: str = "fast", injector=None):
    """The cuML-parameterised assignment kernel (for benches that time the
    distance stage in isolation)."""
    from repro.core.tensorop import TensorOpAssignment

    return TensorOpAssignment(device, dtype, mode=mode, injector=injector,
                              tile=cuml_tile(np.dtype(dtype)))
