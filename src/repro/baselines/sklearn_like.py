"""Plain-NumPy Lloyd reference (the algorithmic ground truth).

No simulator, no tiles — just textbook Lloyd iterations.  Tests compare
every simulated variant's clustering against this to separate "GPU
mapping bugs" from "algorithm bugs".
"""

from __future__ import annotations

import numpy as np

from repro.core.initializers import initialize
from repro.gemm.reference import (
    reference_assignment,
    reference_inertia,
    reference_update,
)

__all__ = ["lloyd_reference", "LloydResult"]


class LloydResult:
    """Outcome of a reference Lloyd run."""

    def __init__(self, centroids, labels, inertia, n_iter, history):
        self.cluster_centers_ = centroids
        self.labels_ = labels
        self.inertia_ = inertia
        self.n_iter_ = n_iter
        self.inertia_history_ = history


def lloyd_reference(x: np.ndarray, n_clusters: int, *, max_iter: int = 50,
                    tol: float = 1e-4, seed: int | None = None,
                    init: str = "k-means++", init_centroids=None) -> LloydResult:
    """Run textbook Lloyd iterations in full precision."""
    x = np.asarray(x)
    rng = np.random.default_rng(seed)
    if init_centroids is not None:
        y = np.array(init_centroids, dtype=x.dtype, copy=True)
    else:
        y = initialize(x, n_clusters, init, rng)

    history: list[float] = []
    labels = np.zeros(x.shape[0], dtype=np.int64)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        labels, best = reference_assignment(x, y)
        inertia = float(np.sum(best.astype(np.float64)))
        new_y, counts = reference_update(x, labels, n_clusters)
        # keep empty clusters at their previous position (reference policy)
        empty = counts == 0
        new_y[empty] = y[empty]
        shift = float(np.linalg.norm(new_y.astype(np.float64) - y.astype(np.float64)))
        y = new_y
        prev = history[-1] if history else None
        history.append(inertia)
        if shift == 0.0:
            break
        if prev is not None and prev > 0 and (prev - inertia) / prev <= tol:
            break
    return LloydResult(y, labels, history[-1], n_iter, history)
