"""K-means on Wu's threadblock-level FT-GEMM (the ABFT baseline).

The error-injection figures (17, 18, 21) compare FT K-means against
"Wu's w/ err. inj." — the same K-means pipeline but with the pre-Ampere
register-reuse ABFT kernel doing the distance stage.  Its ~30% overhead
on A100 comes from forfeiting the async-copy overlap (Sec. V-C).
"""

from __future__ import annotations

import numpy as np

from repro.core.api import FTKMeans

__all__ = ["WuFTKMeans"]


class WuFTKMeans(FTKMeans):
    """Estimator using Wu's threadblock-level ABFT for the distance stage."""

    def __init__(self, n_clusters: int = 8, *, dtype="float32",
                 device="a100", mode: str = "fast", p_inject: float = 0.0,
                 init: str = "k-means++", max_iter: int = 50,
                 tol: float = 1e-4, seed: int | None = None,
                 init_centroids=None, tile=None):
        super().__init__(
            n_clusters, variant="ft", dtype=dtype, device=device, mode=mode,
            tile=tile, abft="wu", p_inject=p_inject, init=init,
            max_iter=max_iter, tol=tol, seed=seed,
            init_centroids=init_centroids)
