"""Benchmark harness: workloads, metrics and per-figure experiments."""

from repro.bench.figures import (
    FigureResult,
    fig7_stepwise,
    fig8_fig9_distance_vs_features,
    fig10_fig11_distance_vs_clusters,
    fig12_speedup_grid,
    fig13_table1_selected_parameters,
    fig14_selection_map,
    fig15_fig16_ft_overhead,
    fig17_fig18_error_injection,
    fig19_t4_vs_features,
    fig20_t4_vs_clusters,
    fig21_t4_injection,
    parameter1,
    parameter2,
)
from repro.bench.metrics import geomean, gflops, overhead_pct, speedup
from repro.bench.tables import format_figure, print_figure
from repro.bench.workloads import (
    FIG7_SWEEP,
    K_SWEEP,
    M_PAPER,
    N_SWEEP,
    Sweep,
    fig8_sweeps,
    fig10_sweeps,
    fig12_grid,
    fig15_panels,
)

__all__ = [
    "FigureResult",
    "fig7_stepwise",
    "fig8_fig9_distance_vs_features",
    "fig10_fig11_distance_vs_clusters",
    "fig12_speedup_grid",
    "fig13_table1_selected_parameters",
    "fig14_selection_map",
    "fig15_fig16_ft_overhead",
    "fig17_fig18_error_injection",
    "fig19_t4_vs_features",
    "fig20_t4_vs_clusters",
    "fig21_t4_injection",
    "parameter1",
    "parameter2",
    "run_fastpath_bench",
    "run_smoke",
    "write_record",
    "geomean",
    "gflops",
    "overhead_pct",
    "speedup",
    "format_figure",
    "print_figure",
    "FIG7_SWEEP",
    "K_SWEEP",
    "M_PAPER",
    "N_SWEEP",
    "Sweep",
    "fig8_sweeps",
    "fig10_sweeps",
    "fig12_grid",
    "fig15_panels",
]


def __getattr__(name):
    # lazy so `python -m repro.bench.fastpath` doesn't double-import it
    if name in ("run_fastpath_bench", "run_smoke", "write_record"):
        from repro.bench import fastpath

        return getattr(fastpath, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
