"""Trajectory analytics over the ``BENCH_*.json`` perf files.

The wall-clock benches (:mod:`repro.bench.fastpath`,
:mod:`repro.bench.dist`) append one record per run to a *trajectory*
file — a growing cross-PR perf history whose entries span several
schema generations.  This module is the read side of that history, in
three layers:

* **Loader / migrator** — :func:`load_trajectory` parses a trajectory
  file into a :class:`Trajectory`, validating the document shape and
  migrating every entry to an explicit schema version.  Early entries
  were written before per-entry ``schema`` keys existed, and the
  top-level ``schema`` key kept its creation-time value across appends
  (``fastpath_walltime/v1`` over v3 entries); the migrator infers each
  legacy entry's version from the keys it carries and reports the
  drift instead of choking on it.

* **Trend detection** — :func:`detect_changepoint` finds a single
  mean-shift changepoint in a wall-clock series (least-squares
  segmentation, no dependencies beyond numpy), and
  :func:`check_fastpath_trend` / :func:`check_dist_trend` gate a fresh
  record against the *whole* same-host, same-shape trajectory: a
  regression that creeps in over several runs moves the recent
  segment mean even when each individual run stays under the
  best-prior slack, so this gate is additive to the best-entry checks
  in :mod:`repro.bench.runner`.

* **Report rendering** — :func:`render_perf_report` turns the
  trajectory files into ``docs/perf.md``: per-host normalised
  trajectory tables, trend verdicts, and the per-stage wall breakdown
  sourced from the traced re-runs (schema v4/v5 records carry
  ``trace.stage_totals`` from a :class:`~repro.obs.trace.TraceRecorder`
  pass).  The report is a **pure function of the committed files** —
  no timestamps, no environment — so ``runner --smoke`` can diff the
  rendered text against the committed report and fail on staleness.

The :class:`Trajectory` accessors are lazily-computed memoized
properties: parse once, derive views on demand.
"""

from __future__ import annotations

import json
from functools import cached_property
from pathlib import Path

import numpy as np

__all__ = [
    "SchemaError", "Trajectory", "Changepoint",
    "schema_version", "schema_family", "infer_entry_schema",
    "migrate_entry", "load_trajectory", "detect_changepoint",
    "check_fastpath_trend", "check_dist_trend",
    "render_perf_report", "write_perf_report", "report_is_stale",
    "FASTPATH_SHAPE_KEYS", "DIST_SHAPE_KEYS",
    "DEFAULT_REPORT_PATH", "TREND_SLACK",
]

#: newest schema generation per trajectory family (the versions the
#: benches write today; the loader accepts every generation up to it)
SCHEMA_FAMILIES = {"fastpath_walltime": 4, "dist_scaling": 7}

#: config keys that must match for two fast-path records to share a
#: trend series (problem shape + perf-relevant engine config; the
#: runner's best-entry gate uses the same keys)
FASTPATH_SHAPE_KEYS = ("m", "n_features", "n_clusters", "iters", "dtype",
                       "workers", "chunk_bytes", "operand_cache")

#: config keys that must match for two dist records to share a series
DIST_SHAPE_KEYS = ("m_grid", "n_features", "n_clusters", "iters",
                   "dtype", "checkpoint_every")

#: the generated report (resolved against the working directory, i.e.
#: the repository root when run from a checkout)
DEFAULT_REPORT_PATH = Path("docs/perf.md")

#: the recent-segment mean may exceed the earlier-segment mean by at
#: most this factor before the trend gate fails (matches the runner's
#: best-entry slack: wall noise is expected, a sustained shift is not)
TREND_SLACK = 1.5

#: a changepoint must explain at least this fraction of the series
#: variance to count (guards against splitting pure noise)
_MIN_GAIN = 0.5

#: wall floor (s) below which trend shifts are scheduler jitter
_NOISE_FLOOR_S = 0.1


class SchemaError(ValueError):
    """A trajectory file or entry violates the documented shape."""


def schema_version(schema) -> int:
    """``"fastpath_walltime/v3"`` -> ``3``; missing/unparsable -> ``0``."""
    try:
        return int(str(schema).rsplit("/v", 1)[1])
    except (IndexError, ValueError):
        return 0


def schema_family(schema) -> str | None:
    """``"dist_scaling/v4"`` -> ``"dist_scaling"``; unknown -> ``None``."""
    fam = str(schema).rsplit("/v", 1)[0]
    return fam if fam in SCHEMA_FAMILIES else None


def infer_entry_schema(entry: dict, family: str) -> str:
    """Infer a legacy entry's schema version from the keys it carries.

    Entries written before the per-entry ``schema`` key existed are
    identified by the feature keys each generation introduced (the
    generations are strictly additive, so presence of the newest
    marker key decides).
    """
    if family == "fastpath_walltime":
        if "trace" in entry:
            version = 4
        elif "pruning" in entry:
            version = 3
        elif "unit_path_bit_identical" in entry:
            version = 2
        else:
            version = 1
    elif family == "dist_scaling":
        if "transport" in entry:
            version = 7
        elif "reduce" in entry:
            version = 6
        elif "trace" in entry:
            version = 5
        elif "selfheal" in entry:
            version = 4
        elif "checkpoint" in entry:
            version = 3
        elif "elastic" in entry:
            version = 2
        else:
            version = 1
    else:
        raise SchemaError(f"unknown trajectory family {family!r}")
    return f"{family}/v{version}"


def migrate_entry(entry: dict, family: str) -> dict:
    """Validate one entry and return a copy migrated to an explicit
    schema.

    The copy always carries ``schema`` (inferred for legacy entries)
    and ``schema_version`` (int, for cheap comparisons).  A declared
    per-entry schema must belong to ``family`` and must not postdate
    the newest generation this loader knows.
    """
    if not isinstance(entry, dict):
        raise SchemaError(f"trajectory entry is not an object: {entry!r}")
    if not isinstance(entry.get("config"), dict):
        raise SchemaError("trajectory entry has no config object")
    declared = entry.get("schema")
    if declared is not None:
        if schema_family(declared) != family:
            raise SchemaError(
                f"entry schema {declared!r} does not belong to the "
                f"{family!r} trajectory")
        version = schema_version(declared)
        if version > SCHEMA_FAMILIES[family]:
            raise SchemaError(
                f"entry schema {declared!r} postdates this loader "
                f"(newest known: v{SCHEMA_FAMILIES[family]})")
        schema = declared
    else:
        schema = infer_entry_schema(entry, family)
        version = schema_version(schema)
    out = dict(entry)
    out["schema"] = schema
    out["schema_version"] = version
    return out


class Trajectory:
    """One parsed ``BENCH_*.json`` file with lazily-derived views."""

    def __init__(self, path: Path, doc: dict, family: str):
        self.path = Path(path)
        self.doc = doc
        self.family = family

    # -- migration ----------------------------------------------------

    @cached_property
    def entries(self) -> list[dict]:
        """Every entry migrated to an explicit schema (file order)."""
        return [migrate_entry(e, self.family)
                for e in self.doc.get("entries", [])]

    @property
    def declared_schema(self) -> str:
        return self.doc.get("schema", "")

    @cached_property
    def newest_schema(self) -> str:
        """The newest per-entry schema present (what the top-level key
        *should* say)."""
        if not self.entries:
            return self.declared_schema
        return max((e["schema"] for e in self.entries), key=schema_version)

    @property
    def has_drift(self) -> bool:
        """True when the top-level key lags the entries it indexes."""
        return (schema_version(self.declared_schema)
                != schema_version(self.newest_schema))

    @cached_property
    def versions(self) -> tuple[int, ...]:
        return tuple(sorted({e["schema_version"] for e in self.entries}))

    @cached_property
    def hosts(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for e in self.entries:
            seen.setdefault(e.get("host", "?"))
        return tuple(seen)

    # -- series extraction --------------------------------------------

    @property
    def shape_keys(self) -> tuple[str, ...]:
        return (FASTPATH_SHAPE_KEYS if self.family == "fastpath_walltime"
                else DIST_SHAPE_KEYS)

    def shape_of(self, entry: dict) -> tuple:
        cfg = entry.get("config", {})

        def freeze(v):
            return tuple(v) if isinstance(v, list) else v

        return tuple(freeze(cfg.get(k)) for k in self.shape_keys)

    def wall_of(self, entry: dict) -> float | None:
        """The headline scalar a trend series tracks.

        Fast-path: the fused engine wall.  Dist: the clean recovery
        wall (present since v1 and run at a fixed shape, unlike the
        grid rows, which vary per cell).
        """
        try:
            if self.family == "fastpath_walltime":
                return float(entry["engine"]["wall_s"])
            return float(entry["recovery"]["clean_wall_s"])
        except (KeyError, TypeError, ValueError):
            return None

    def series(self, host: str, shape: tuple) -> list[float]:
        """Same-host, same-shape wall series in trajectory order."""
        return [w for e in self.entries
                if e.get("host") == host and self.shape_of(e) == shape
                and (w := self.wall_of(e)) is not None]

    @cached_property
    def host_medians(self) -> dict[str, float]:
        """Median wall per host — the per-host normalisation baseline
        (cross-host clocks are not comparable; their ratios to each
        host's own median are)."""
        walls: dict[str, list[float]] = {}
        for e in self.entries:
            w = self.wall_of(e)
            if w is not None:
                walls.setdefault(e.get("host", "?"), []).append(w)
        return {h: float(np.median(v)) for h, v in walls.items()}

    def normalized_wall(self, entry: dict) -> float | None:
        """Entry wall over its host's median wall (dimensionless)."""
        w = self.wall_of(entry)
        base = self.host_medians.get(entry.get("host", "?"))
        if w is None or not base:
            return None
        return w / base

    @cached_property
    def latest_trace(self) -> dict | None:
        """The newest entry carrying a traced-pass breakdown."""
        for e in reversed(self.entries):
            trc = e.get("trace")
            if isinstance(trc, dict) and trc.get("stage_totals"):
                return e
        return None


def load_trajectory(path: Path | str, *,
                    family: str | None = None) -> Trajectory:
    """Parse + validate one trajectory file into a :class:`Trajectory`.

    ``family`` is normally derived from the top-level ``schema`` key;
    pass it explicitly for files whose top-level key is missing or
    unparsable (the entries' own ``bench`` keys are tried as a
    fallback before giving up).
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise SchemaError(f"cannot read trajectory {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SchemaError(f"trajectory {path} is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        raise SchemaError(
            f"trajectory {path} is not a {{schema, entries: [...]}} object")
    if family is None:
        family = schema_family(doc.get("schema", ""))
    if family is None:
        for entry in doc["entries"]:
            if isinstance(entry, dict) and entry.get("bench") in SCHEMA_FAMILIES:
                family = entry["bench"]
                break
    if family not in SCHEMA_FAMILIES:
        raise SchemaError(
            f"cannot determine trajectory family of {path} "
            f"(top-level schema: {doc.get('schema')!r})")
    traj = Trajectory(path, doc, family)
    traj.entries  # force migration now: loading validates every entry
    return traj


# ---------------------------------------------------------------------------
# trend / changepoint detection
# ---------------------------------------------------------------------------

class Changepoint:
    """A single mean-shift split of a series (all costs least-squares)."""

    __slots__ = ("index", "pre_mean", "post_mean", "gain")

    def __init__(self, index: int, pre_mean: float, post_mean: float,
                 gain: float):
        self.index = index          #: first index of the post segment
        self.pre_mean = pre_mean
        self.post_mean = post_mean
        self.gain = gain            #: fraction of variance explained

    @property
    def shift(self) -> float:
        """post/pre mean ratio (> 1 means the series got slower)."""
        return self.post_mean / max(1e-12, self.pre_mean)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"Changepoint(index={self.index}, "
                f"pre={self.pre_mean:.4f}, post={self.post_mean:.4f}, "
                f"shift={self.shift:.2f}x, gain={self.gain:.2f})")


def detect_changepoint(series, *, min_segment: int = 2,
                       min_gain: float = _MIN_GAIN) -> Changepoint | None:
    """Best single mean-shift changepoint of ``series``, or ``None``.

    Scans every split leaving at least ``min_segment`` points on each
    side and keeps the one minimising the summed within-segment squared
    error.  The split only counts when it explains at least
    ``min_gain`` of the total variance — a flat-but-noisy series has
    no changepoint, it has noise.
    """
    x = np.asarray(list(series), dtype=np.float64)
    n = x.size
    if n < 2 * min_segment:
        return None
    total = float(((x - x.mean()) ** 2).sum())
    best_i, best_cost = None, total
    for i in range(min_segment, n - min_segment + 1):
        a, b = x[:i], x[i:]
        cost = float(((a - a.mean()) ** 2).sum()
                     + ((b - b.mean()) ** 2).sum())
        if cost < best_cost:
            best_i, best_cost = i, cost
    if best_i is None or total <= 0.0:
        return None
    gain = 1.0 - best_cost / total
    if gain < min_gain:
        return None
    return Changepoint(best_i, float(x[:best_i].mean()),
                       float(x[best_i:].mean()), gain)


def _check_trend(traj: Trajectory, record: dict, *, slack: float,
                 label: str) -> str:
    """Shared trend gate: changepoint over the same-host same-shape
    series *ending at the fresh record*; fail when the recent segment
    is a sustained slowdown the fresh record belongs to."""
    host = record.get("host")
    shape = traj.shape_of(migrate_entry(record, traj.family))
    series = traj.series(host, shape)
    fresh = traj.wall_of(record)
    if fresh is None:
        return f"{label} trend check skipped: record has no wall"
    if not series or abs(series[-1] - fresh) > 1e-12:
        # the fresh record is normally already appended to the file;
        # when gating a not-yet-written record, extend the series
        series = series + [fresh]
    if len(series) < 4:
        return (f"{label} trend check skipped: only {len(series)} "
                f"same-host entries at this shape")
    cp = detect_changepoint(series)
    if (cp is not None and cp.index <= len(series) - 1
            and cp.post_mean > slack * max(cp.pre_mean, _NOISE_FLOOR_S)):
        raise SystemExit(
            f"TREND REGRESSION: {label} wall shifted from "
            f"{cp.pre_mean:.3f} s to {cp.post_mean:.3f} s "
            f"({cp.shift:.2f}x, {cp.gain:.0%} of variance) over the "
            f"last {len(series) - cp.index} same-shape entries of "
            f"{traj.path.name} — a sustained slowdown, not one noisy run")
    if cp is not None:
        return (f"{label} trend check ok: changepoint at entry "
                f"{cp.index + 1}/{len(series)} ({cp.shift:.2f}x) within "
                f"slack over {len(series)} entries")
    return (f"{label} trend check ok: no changepoint over "
            f"{len(series)} same-shape entries")


def check_fastpath_trend(record: dict, path: Path | str, *,
                         slack: float = TREND_SLACK) -> str:
    """Trend-gate a fresh fast-path record against its whole series."""
    try:
        traj = load_trajectory(path, family="fastpath_walltime")
    except SchemaError as exc:
        return f"fastpath trend check skipped: {exc}"
    return _check_trend(traj, record, slack=slack, label="fastpath")


def check_dist_trend(record: dict, path: Path | str, *,
                     slack: float = TREND_SLACK) -> str:
    """Trend-gate a fresh dist record against its whole series."""
    try:
        traj = load_trajectory(path, family="dist_scaling")
    except SchemaError as exc:
        return f"dist trend check skipped: {exc}"
    return _check_trend(traj, record, slack=slack, label="dist")


# ---------------------------------------------------------------------------
# report rendering (docs/perf.md)
# ---------------------------------------------------------------------------

#: human labels of the traced stages, in report order: the fast-path
#: engine pass first, then the coordinator-side dist stages
_FASTPATH_STAGES = (
    ("gemm", "distance GEMM"),
    ("assign_chunk", "chunk assignment (incl. GEMM)"),
    ("update_feed", "centroid-update feed"),
    ("bounds_refresh", "bound maintenance"),
    ("iteration", "full iteration"),
)
_DIST_STAGES = (
    ("broadcast", "centroid broadcast"),
    ("compute", "worker compute (assign)"),
    ("gather", "partial gather"),
    ("merge", "partial merge"),
    ("combine", "pairwise combine (tree)"),
    ("update", "centroid update"),
    ("abft_check", "ABFT checksum verify"),
    ("checkpoint", "checkpoint save"),
    ("checkpoint_flush", "checkpoint flush"),
    ("recovery", "crash recovery (restore + replan)"),
)


def _fmt(value, digits=3) -> str:
    if value is None:
        return "—"
    return f"{value:.{digits}f}"


def _trajectory_section(traj: Trajectory | None, title: str,
                        error: str | None) -> list[str]:
    lines = [f"## {title}", ""]
    if traj is None:
        lines += [f"_unavailable: {error}_", ""]
        return lines
    versions = ", ".join(f"v{v}" for v in traj.versions) or "none"
    lines += [
        f"`{traj.path.name}` — {len(traj.entries)} entries "
        f"(schema {versions}; newest `{traj.newest_schema}`), "
        f"hosts: {', '.join(traj.hosts) or '—'}.",
        "",
        "| # | host | schema | wall (s) | × host median |",
        "|---:|---|---|---:|---:|",
    ]
    for i, e in enumerate(traj.entries):
        lines.append(
            f"| {i + 1} | {e.get('host', '?')} | v{e['schema_version']} "
            f"| {_fmt(traj.wall_of(e))} "
            f"| {_fmt(traj.normalized_wall(e), 2)} |")
    lines.append("")
    # per-host, per-shape trend verdicts over every series long enough
    # to segment
    seen: set[tuple] = set()
    for e in traj.entries:
        key = (e.get("host"), traj.shape_of(e))
        if key in seen:
            continue
        seen.add(key)
        series = traj.series(*key)
        if len(series) < 4:
            continue
        cp = detect_changepoint(series)
        if cp is None:
            lines.append(f"- host `{key[0]}`: no changepoint over "
                         f"{len(series)} same-shape entries "
                         f"(mean {_fmt(float(np.mean(series)))} s)")
        else:
            lines.append(
                f"- host `{key[0]}`: mean shift "
                f"{_fmt(cp.pre_mean)} s → {_fmt(cp.post_mean)} s "
                f"({cp.shift:.2f}x) at entry {cp.index + 1} of the "
                f"{len(series)}-entry same-shape series")
    if lines[-1] != "":
        lines.append("")
    return lines


def _stage_section(traj: Trajectory | None, stages, title: str) -> list[str]:
    lines = [f"## {title}", ""]
    entry = traj.latest_trace if traj is not None else None
    if entry is None:
        lines += ["_no traced entry in the trajectory yet — run "
                  "`python -m repro.bench.runner --smoke`_", ""]
        return lines
    trc = entry["trace"]
    totals = trc["stage_totals"]
    fit_wall = totals.get("fit", {}).get("wall_s", trc.get("wall_s"))
    lines += [
        f"From the traced re-run of entry {traj.entries.index(entry) + 1} "
        f"(`{entry['schema']}`, host `{entry.get('host', '?')}`): "
        f"{trc['spans']} spans, wall {_fmt(trc.get('wall_s'))} s, "
        f"bit-identical to the untraced run: "
        f"{trc.get('bit_identical_vs_untraced', '?')}.",
        "",
        "| stage | wall (s) | share of fit | spans |",
        "|---|---:|---:|---:|",
    ]
    for key, label in stages:
        tot = totals.get(key)
        if tot is None:
            continue
        share = (tot["wall_s"] / fit_wall) if fit_wall else None
        pct = "—" if share is None else f"{share:.1%}"
        lines.append(f"| {label} (`{key}`) | {_fmt(tot['wall_s'])} "
                     f"| {pct} | {tot['count']} |")
    extra = sorted(k for k in totals
                   if k not in dict(stages) and k != "fit")
    for key in extra:
        tot = totals[key]
        share = (tot["wall_s"] / fit_wall) if fit_wall else None
        pct = "—" if share is None else f"{share:.1%}"
        lines.append(f"| `{key}` | {_fmt(tot['wall_s'])} | {pct} "
                     f"| {tot['count']} |")
    lines.append("")
    return lines


def render_perf_report(fastpath_path: Path | str = "BENCH_fastpath.json",
                       dist_path: Path | str = "BENCH_dist.json") -> str:
    """Render ``docs/perf.md`` from the trajectory files.

    Deterministic: the text depends only on the two files' contents
    (no generation timestamps), so staleness is a plain string diff.
    """
    sections: dict[str, tuple[Trajectory | None, str | None]] = {}
    for name, path, family in (
            ("fastpath", fastpath_path, "fastpath_walltime"),
            ("dist", dist_path, "dist_scaling")):
        try:
            sections[name] = (load_trajectory(path, family=family), None)
        except SchemaError as exc:
            sections[name] = (None, str(exc))
    fast, fast_err = sections["fastpath"]
    dist, dist_err = sections["dist"]

    lines = [
        "# Performance report",
        "",
        "_Generated from `BENCH_fastpath.json` / `BENCH_dist.json` by_",
        "_`python -m repro.bench.runner --smoke` — do not edit by hand;_",
        "_the smoke run fails when this file lags the trajectory files._",
        "",
        "See [observability.md](observability.md) for the span taxonomy",
        "behind the stage tables and how the traced re-runs are kept",
        "bit-identical to the measured ones, and",
        "[distributed.md](distributed.md#transport-pipes-vs-shared-memory)",
        "for the pipe-vs-shm transport comparison gated alongside these",
        "trajectories.",
        "",
    ]
    lines += _trajectory_section(
        fast, "Fast-path trajectory (fused engine wall)", fast_err)
    lines += _stage_section(
        fast, _FASTPATH_STAGES, "Fast-path per-stage breakdown")
    lines += _trajectory_section(
        dist, "Distributed trajectory (clean recovery-shape wall)",
        dist_err)
    lines += _stage_section(
        dist, _DIST_STAGES, "Coordinator per-stage breakdown "
        "(traced crash-recovery fit)")
    return "\n".join(lines).rstrip() + "\n"


def write_perf_report(report_path: Path | str = DEFAULT_REPORT_PATH,
                      fastpath_path: Path | str = "BENCH_fastpath.json",
                      dist_path: Path | str = "BENCH_dist.json") -> Path:
    """Render and write the report; returns the path written."""
    report_path = Path(report_path)
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(render_perf_report(fastpath_path, dist_path))
    return report_path


def report_is_stale(report_path: Path | str = DEFAULT_REPORT_PATH,
                    fastpath_path: Path | str = "BENCH_fastpath.json",
                    dist_path: Path | str = "BENCH_dist.json") -> bool:
    """True when the committed report does not match the committed
    trajectory files (or does not exist while they do)."""
    report_path = Path(report_path)
    rendered = render_perf_report(fastpath_path, dist_path)
    try:
        return report_path.read_text() != rendered
    except OSError:
        return True
