"""Wall-clock scaling benchmark of the sharded multi-worker layer.

Drives full :class:`FTKMeans` fits through ``repro.dist`` over a
workers × M grid and records, per cell:

* real host wall time and per-iteration time;
* the *simulated* parallel makespan (the coordinator charges the
  slowest shard per round, so ``sim_time_s_`` models multi-device
  scaling even when the host serialises the workers);
* a bit-identity flag against the single-worker fast path (the
  determinism contract is re-asserted on every bench run).

A **recovery run** measures the fault-tolerance overhead: the same fit
with an injected worker crash mid-way (checkpoint/restart enabled)
against the clean sharded fit — the ``recovery`` record carries the
extra seconds, the relative overhead and the recovered-bit-identical
flag.

An **elastic run** measures the shrink-recovery path: a worker stalls
past the round deadline mid-fit (process executor, so the detector
really terminates the child) and the coordinator re-shards onto the
survivors instead of respawning — the ``elastic`` record carries the
detection + shrink overhead, the post-shrink worker count and the
bit-identity flag against the uninterrupted fit.

A **selfheal run** measures the full membership-recovery loop: a
worker is killed mid-fit with ``target_workers`` set and no spare
ready, so the fleet shrinks onto the survivors, cold-spawns a
replacement and re-expands back to the target before converging — the
``selfheal`` record carries the wall overhead, the per-recovered-round
overhead (gated by ``runner --smoke`` against the best prior same-shape
entry), the final fleet size and the bit-identity flag against the
single-worker fit.

A **reduce run** (schema v6) measures the coordinator-occupancy
scaling of the three reduce topologies over a widening fleet: for each
worker count, one fit per topology (``star`` / ``stream`` / ``tree``)
on the serial executor — arrivals are deterministic there, so the
curve measures reduce *work*, not host thread scheduling — recording
the coordinator's reduce-busy seconds (``dist_reduce_busy_s_``), the
per-fit metrics delta, and the bit-identity flag.  The expected shape,
gated by ``runner --smoke``: star's occupancy grows with the fleet
(it re-feeds every row through the coordinator's merge each round)
while stream hides commits behind later arrivals and tree leaves only
a state adoption plus the inline checksum — both strictly below star
once the fleet is wide.

A **transport run** (schema v7) measures the zero-copy shared-memory
data plane against the pickle-over-pipe baseline on the process
executor: two otherwise identical fits at the recovery shape, one per
transport, recording the per-fit broadcast/gather pipe bytes, their
reduction ratios, the shm fit's pipe bytes per round per worker
(control-token-sized — gated by ``runner --smoke``), per-kind boot
walls and the bit-identity flags (shm vs pipe and vs single-worker).

A **checkpoint run** measures the per-round checkpoint overhead of the
synchronous write path against the asynchronous background writer
(``checkpoint_sync``): three otherwise identical disk-backed fits —
no checkpoints, ``checkpoint_every=1`` synchronous, and
``checkpoint_every=1`` asynchronous — with the coordinator's own
in-loop save cost (``dist_checkpoint_save_s_``) and the async flush
barrier recorded alongside the wall-clock deltas.

Each run appends one record to ``BENCH_dist.json``::

    python -m repro.bench.dist                # full grid
    python -m repro.bench.dist --smoke        # tiny < 30 s gating run
    python -m repro.bench.runner --smoke      # fastpath + dist smoke
"""

from __future__ import annotations

import argparse
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.fastpath import write_record
from repro.core.api import FTKMeans
from repro.dist.faults import WorkerFaultInjector
from repro.obs.trace import TraceRecorder

__all__ = ["run_dist_bench", "run_smoke", "DEFAULT_RESULT_PATH", "main"]

#: perf-trajectory file of the distribution layer (sibling of
#: BENCH_fastpath.json, resolved against the working directory)
DEFAULT_RESULT_PATH = Path("BENCH_dist.json")

#: v7 added the ``transport`` record (shared-memory vs pipe data plane
#: on the process executor: walls, per-fit broadcast/gather pipe bytes,
#: bytes-reduction ratios and boot/attach walls) plus ``boot_stats`` on
#: the selfheal record — both gated by ``runner --smoke``.
#: v6 added the ``reduce`` topology-scaling record (coordinator
#: occupancy of star vs stream vs tree over a widening fleet, with
#: per-fit metrics deltas) — gated by ``runner --smoke``.
#: v5 added the traced crash-recovery pass (``trace`` key): the
#: recovery fit re-run under a :class:`~repro.obs.trace.TraceRecorder`
#: so the coordinator-side stage breakdown (gather / merge / combine /
#: update / abft_check / checkpoint / recovery) lands in the record and
#: ``docs/perf.md`` regenerates from the trajectory file alone.
#: v2 added the ``elastic`` stall-then-shrink record; v3 the
#: ``checkpoint`` sync-vs-async overhead record; v4 the ``selfheal``
#: kill → spawn → re-expand record
SCHEMA = "dist_scaling/v7"

#: full grid (CI-feasible, a few minutes)
FULL_SHAPE = dict(m_grid=(60_000, 120_000), n_features=64, n_clusters=64,
                  iters=5, workers_grid=(1, 2, 4),
                  reduce_workers_grid=(1, 2, 4, 8, 16, 32))

#: smoke/gating configuration (< 30 s wall clock)
SMOKE_SHAPE = dict(m_grid=(16_384,), n_features=32, n_clusters=16, iters=3,
                   workers_grid=(1, 2), reduce_workers_grid=(1, 2, 8))


def _fit_once(x, y0, *, n_clusters, iters, workers, executor, seed,
              checkpoint_every=0, worker_faults=None, elastic=False,
              round_timeout=None, checkpoint_sync=False,
              checkpoint_dir=None, target_workers=None, hot_spares=0,
              heartbeat_interval=None, tracer=None,
              reduce_topology="auto", transport="auto"):
    """One timed sharded (or single-worker) fit; returns (model, wall)."""
    km = FTKMeans(n_clusters=n_clusters, variant="tensorop", mode="fast",
                  n_workers=workers, tracer=tracer,
                  reduce_topology=reduce_topology,
                  transport=transport if workers > 1 else "auto",
                  executor=executor if workers > 1 else "serial",
                  checkpoint_every=checkpoint_every if workers > 1 else 0,
                  max_iter=iters, tol=0.0, seed=seed, init_centroids=y0,
                  worker_faults=worker_faults, elastic=elastic,
                  round_timeout=round_timeout,
                  checkpoint_sync=checkpoint_sync,
                  checkpoint_dir=checkpoint_dir,
                  target_workers=target_workers if workers > 1 else None,
                  hot_spares=hot_spares if workers > 1 else 0,
                  heartbeat_interval=(heartbeat_interval
                                      if workers > 1 else None))
    t0 = time.perf_counter()
    km.fit(x)
    return km, time.perf_counter() - t0


def run_dist_bench(m_grid=FULL_SHAPE["m_grid"],
                   n_features: int = FULL_SHAPE["n_features"],
                   n_clusters: int = FULL_SHAPE["n_clusters"],
                   iters: int = FULL_SHAPE["iters"], *,
                   workers_grid=FULL_SHAPE["workers_grid"],
                   reduce_workers_grid=FULL_SHAPE["reduce_workers_grid"],
                   executor: str = "thread", dtype: str = "float32",
                   seed: int = 0, checkpoint_every: int = 2,
                   round_timeout: float = 1.5,
                   trace_out: str | None = None) -> dict:
    """One workers × M scaling run + recovery + elastic overhead; JSON
    record.  ``round_timeout`` bounds the elastic run's stall detection
    (the stalled child sleeps far past it and is terminated)."""
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")
    m_grid = tuple(int(v) for v in m_grid)
    workers_grid = tuple(int(v) for v in workers_grid)
    if not m_grid or min(m_grid) < 1:
        raise ValueError(f"bad m_grid {m_grid!r}")
    if not workers_grid or min(workers_grid) < 1:
        raise ValueError(f"bad workers_grid {workers_grid!r}")
    reduce_workers_grid = tuple(int(v) for v in reduce_workers_grid)
    if not reduce_workers_grid or min(reduce_workers_grid) < 1:
        raise ValueError(f"bad reduce_workers_grid {reduce_workers_grid!r}")
    rng = np.random.default_rng(seed)

    grid = []
    rec_data = None
    for m in m_grid:
        x = rng.random((m, n_features), dtype=np.float64).astype(dtype)
        y0 = x[rng.choice(m, size=n_clusters, replace=False)].copy()
        # the baseline is always a true single-worker run — even when
        # the grid omits workers=1 — so bit_identical_vs_single really
        # re-asserts the determinism contract on every bench run
        base = _fit_once(x, y0, n_clusters=n_clusters, iters=iters,
                         workers=1, executor=executor, seed=seed)
        for workers in workers_grid:
            if workers == 1:
                km, wall = base
            else:
                km, wall = _fit_once(x, y0, n_clusters=n_clusters,
                                     iters=iters, workers=workers,
                                     executor=executor, seed=seed)
            row = {
                "workers": workers,
                "m": m,
                "executor": executor if workers > 1 else "serial",
                "wall_s": wall,
                "per_iter_s": wall / km.n_iter_,
                "sim_time_s": km.sim_time_s_,
                "assign_sim_time_s": km.assignment_time_s_,
                "n_iter": km.n_iter_,
                "inertia": km.inertia_,
                "bit_identical_vs_single": bool(
                    np.array_equal(km.labels_, base[0].labels_)
                    and np.array_equal(km.cluster_centers_,
                                       base[0].cluster_centers_)),
                "wall_speedup_vs_single": base[1] / max(1e-12, wall),
                "sim_speedup_vs_single": (
                    base[0].sim_time_s_ / max(1e-12, km.sim_time_s_)),
            }
            if workers > 1:
                # per-fit metrics delta: the unified registry view of
                # this cell (sim.* counters + dist.* scalars)
                row["metrics"] = km.dist_metrics_
            grid.append(row)
        rec_data = (x, y0)  # recovery runs at the largest M

    # -- recovery overhead: crash one worker mid-fit ------------------
    x, y0 = rec_data
    rec_workers = (max(w for w in workers_grid if w > 1)
                   if any(w > 1 for w in workers_grid) else 2)
    crash_it = max(1, iters // 2 + 1)
    clean, clean_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor=executor, seed=seed, checkpoint_every=checkpoint_every)
    crashed, crash_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor=executor, seed=seed, checkpoint_every=checkpoint_every,
        worker_faults=WorkerFaultInjector.crash_at(0, crash_it))
    recovery = {
        "workers": rec_workers,
        "m": x.shape[0],
        "executor": executor,
        "checkpoint_every": checkpoint_every,
        "crash_iteration": crash_it,
        "clean_wall_s": clean_wall,
        "crash_wall_s": crash_wall,
        "recovery_overhead_s": crash_wall - clean_wall,
        "recovery_overhead_frac": (crash_wall - clean_wall)
        / max(1e-12, clean_wall),
        "recoveries": crashed.dist_recoveries_,
        "recovered_bit_identical": bool(
            np.array_equal(crashed.cluster_centers_,
                           clean.cluster_centers_)),
        "metrics": crashed.dist_metrics_,
    }

    # -- traced pass: the crash-recovery fit once more under the span
    # recorder, run *separately* so the walls above stay comparable
    # across PRs.  The coordinator-side stage breakdown (gather /
    # merge / update / abft_check / checkpoint / recovery) lands in
    # the record — docs/perf.md regenerates from it — and the result
    # is asserted bit-identical against the untraced crash run:
    # tracing must never move a bit, re-proved on every bench run.
    stream_sink = bool(trace_out) and str(trace_out).endswith(".jsonl")
    recorder = TraceRecorder(sink=trace_out if stream_sink else None)
    traced_fit, traced_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor=executor, seed=seed, checkpoint_every=checkpoint_every,
        worker_faults=WorkerFaultInjector.crash_at(0, crash_it),
        tracer=recorder)
    assert np.array_equal(traced_fit.cluster_centers_,
                          crashed.cluster_centers_)
    trace_summary = {
        "workers": rec_workers,
        "m": x.shape[0],
        "wall_s": traced_wall,
        "spans": len(recorder),
        "dropped": recorder.dropped,
        "bit_identical_vs_untraced": True,  # asserted above
        "stage_totals": recorder.stage_totals(),
    }
    if trace_out:
        if stream_sink:
            # spans were appended live as they closed; just seal the file
            recorder.close_sink()
            trace_summary["jsonl_trace_path"] = str(trace_out)
            trace_summary["sink_spans"] = recorder.sink_spans
        else:
            with open(trace_out, "w") as fh:
                recorder.to_chrome_trace(fh)
            trace_summary["chrome_trace_path"] = str(trace_out)

    # -- elastic shrink: stall one worker past the round deadline -----
    # process executor so the detector really terminates the child; the
    # stall sleeps far past the deadline, i.e. it would hang forever
    # without detection
    stall_it = crash_it
    el_clean, el_clean_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor="process", seed=seed, checkpoint_every=checkpoint_every,
        elastic=True, round_timeout=round_timeout)
    stalled, stall_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor="process", seed=seed, checkpoint_every=checkpoint_every,
        elastic=True, round_timeout=round_timeout,
        worker_faults=WorkerFaultInjector.stall_at(0, stall_it,
                                                   stall_s=600.0))
    elastic = {
        "workers": rec_workers,
        "m": x.shape[0],
        "executor": "process",
        "round_timeout": round_timeout,
        "checkpoint_every": checkpoint_every,
        "stall_iteration": stall_it,
        "clean_wall_s": el_clean_wall,
        "stall_wall_s": stall_wall,
        "shrink_overhead_s": stall_wall - el_clean_wall,
        "shrink_overhead_frac": (stall_wall - el_clean_wall)
        / max(1e-12, el_clean_wall),
        "recoveries": stalled.dist_recoveries_,
        "stall_recoveries": stalled.dist_stall_recoveries_,
        "shrinks": stalled.dist_shrinks_,
        "workers_after_shrink": stalled.n_workers_,
        "recovered_bit_identical": bool(
            np.array_equal(stalled.cluster_centers_,
                           el_clean.cluster_centers_)),
    }

    # -- checkpoint overhead: synchronous vs background writer --------
    # three otherwise identical disk-backed fits at the recovery shape:
    # the per-round cost of checkpoint_every=1 against a no-checkpoint
    # baseline, for both write policies.  The coordinator's own in-loop
    # save cost is the robust signal; wall-clock deltas ride along.
    none_fit, none_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor=executor, seed=seed, checkpoint_every=0)
    with tempfile.TemporaryDirectory(prefix="bench_ckpt_sync_") as d_sync, \
            tempfile.TemporaryDirectory(prefix="bench_ckpt_async_") as d_async:
        sync_fit, sync_wall = _fit_once(
            x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
            executor=executor, seed=seed, checkpoint_every=1,
            checkpoint_sync=True, checkpoint_dir=d_sync)
        async_fit, async_wall = _fit_once(
            x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
            executor=executor, seed=seed, checkpoint_every=1,
            checkpoint_sync=False, checkpoint_dir=d_async)
    rounds = max(1, none_fit.n_iter_)
    # checkpoint_every=1 saves once per round PLUS the iteration-0
    # snapshot before the loop: normalise the save cost by the actual
    # save count, not the round count
    saves = rounds + 1
    checkpoint = {
        "workers": rec_workers,
        "m": x.shape[0],
        "executor": executor,
        "checkpoint_every": 1,
        "rounds": rounds,
        "saves": saves,
        "clean_wall_s": none_wall,
        "sync_wall_s": sync_wall,
        "async_wall_s": async_wall,
        "sync_save_s": sync_fit.dist_checkpoint_save_s_,
        "async_save_s": async_fit.dist_checkpoint_save_s_,
        "async_flush_s": async_fit.dist_checkpoint_flush_s_,
        "sync_save_per_checkpoint_s": sync_fit.dist_checkpoint_save_s_ / saves,
        "async_save_per_checkpoint_s": async_fit.dist_checkpoint_save_s_ / saves,
        "sync_overhead_per_round_s": (sync_wall - none_wall) / rounds,
        "async_overhead_per_round_s": (async_wall - none_wall) / rounds,
        "save_reduction": (sync_fit.dist_checkpoint_save_s_
                           / max(1e-12, async_fit.dist_checkpoint_save_s_)),
        "bit_identical_sync_vs_async": bool(
            np.array_equal(sync_fit.cluster_centers_,
                           async_fit.cluster_centers_)),
    }

    # -- self-healing: kill -> spawn -> re-expand -> converge ---------
    # process executor with membership management on but no spare
    # ready (hot_spares=0, target_workers set): the kill shrinks the
    # fleet onto the survivors to keep making progress, then a cold
    # spawn re-expands back to the target at the next round boundary —
    # the most expensive self-healing path (the promote-from-spare
    # path skips both the replan and the spawn).  Both runs carry a
    # fault injector (the kill run's is armed) so overlap is off in
    # both and the walls are comparable.
    kill_it = crash_it
    heal_clean, heal_clean_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor="process", seed=seed, checkpoint_every=checkpoint_every,
        round_timeout=round_timeout, target_workers=rec_workers,
        heartbeat_interval=1.0,
        worker_faults=WorkerFaultInjector())
    healed, heal_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor="process", seed=seed, checkpoint_every=checkpoint_every,
        round_timeout=round_timeout, target_workers=rec_workers,
        heartbeat_interval=1.0,
        worker_faults=WorkerFaultInjector.crash_at(0, kill_it))
    # rounds re-run after the checkpoint restore: the kill at round r
    # restores to the last snapshot s and replays s+1..r, so the
    # per-recovered-round overhead normalises the wall delta by that
    # replay depth (plus the round the kill itself wasted)
    restores = [e["iteration"] for e in healed.dist_trace_
                if e["kind"] == "restore"]
    kills = [e["iteration"] for e in healed.dist_trace_
             if e["kind"] in ("crash", "stall_timeout")]
    replayed = sum(max(1, k - r) for k, r in zip(sorted(kills),
                                                 sorted(restores)))
    selfheal = {
        "workers": rec_workers,
        "m": x.shape[0],
        "executor": "process",
        "target_workers": rec_workers,
        "hot_spares": 0,
        "heartbeat_interval": 1.0,
        "checkpoint_every": checkpoint_every,
        "kill_iteration": kill_it,
        "clean_wall_s": heal_clean_wall,
        "kill_wall_s": heal_wall,
        "heal_overhead_s": heal_wall - heal_clean_wall,
        "heal_overhead_frac": (heal_wall - heal_clean_wall)
        / max(1e-12, heal_clean_wall),
        "replayed_rounds": replayed,
        "recovered_round_overhead_s": (heal_wall - heal_clean_wall)
        / max(1, replayed),
        "recoveries": healed.dist_recoveries_,
        "promotions": healed.dist_promotions_,
        "expands": healed.dist_expands_,
        "heartbeat_failures": healed.dist_heartbeat_failures_,
        "workers_after": healed.n_workers_,
        "re_expanded": bool(healed.n_workers_ == rec_workers),
        "recovered_bit_identical": bool(
            np.array_equal(healed.cluster_centers_,
                           base[0].cluster_centers_)),
        # per-kind boot/attach walls (cold_spawn vs spare_promote vs
        # reconfigure) — under the shm transport the re-expand spawn
        # attaches to the existing segments instead of re-pickling the
        # shard, so this is where the boot-time win shows up
        "boot_stats": healed.dist_boot_stats_,
    }

    # -- transport: shared-memory vs pipe data plane ------------------
    # two otherwise identical process-executor fits at the recovery
    # shape.  The pipe fit ships the shard at boot and the full
    # centroid set + partials every round over the worker pipes; the
    # shm fit publishes once into /dev/shm and moves only control
    # tokens, so its pipe traffic should be control-token-sized per
    # round per worker (gated by ``runner --smoke``) while the result
    # stays bit-identical — the zero-copy plane must not move a bit.
    pipe_fit, pipe_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor="process", seed=seed, transport="pipe")
    shm_fit, shm_wall = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=rec_workers,
        executor="process", seed=seed, transport="shm")
    # one broadcast per iteration plus the init round
    tr_rounds = max(1, shm_fit.n_iter_ + 1)
    transport = {
        "workers": rec_workers,
        "m": x.shape[0],
        "executor": "process",
        "rounds": tr_rounds,
        "pipe": {
            "transport": pipe_fit.dist_transport_,
            "wall_s": pipe_wall,
            "broadcast_bytes": pipe_fit.dist_broadcast_bytes_,
            "gather_bytes": pipe_fit.dist_gather_bytes_,
            "boot_stats": pipe_fit.dist_boot_stats_,
        },
        "shm": {
            "transport": shm_fit.dist_transport_,
            "wall_s": shm_wall,
            "broadcast_bytes": shm_fit.dist_broadcast_bytes_,
            "gather_bytes": shm_fit.dist_gather_bytes_,
            "boot_stats": shm_fit.dist_boot_stats_,
        },
        "shm_broadcast_bytes_per_round_worker": (
            shm_fit.dist_broadcast_bytes_ / (tr_rounds * rec_workers)),
        "broadcast_bytes_reduction": (
            pipe_fit.dist_broadcast_bytes_
            / max(1, shm_fit.dist_broadcast_bytes_)),
        "gather_bytes_reduction": (
            pipe_fit.dist_gather_bytes_
            / max(1, shm_fit.dist_gather_bytes_)),
        "bit_identical_shm_vs_pipe": bool(
            np.array_equal(shm_fit.labels_, pipe_fit.labels_)
            and np.array_equal(shm_fit.cluster_centers_,
                               pipe_fit.cluster_centers_)),
        "bit_identical_vs_single": bool(
            np.array_equal(shm_fit.labels_, base[0].labels_)
            and np.array_equal(shm_fit.cluster_centers_,
                               base[0].cluster_centers_)),
    }

    # -- reduce topologies: coordinator occupancy over a widening fleet
    # serial executor on purpose: arrivals are deterministic, so the
    # occupancy ordering (star above stream/tree once the fleet is
    # wide) measures reduce work, not host thread scheduling
    reduce_curve = []
    single_wall = None
    for w in reduce_workers_grid:
        if w <= 1:
            _, single_wall = _fit_once(
                x, y0, n_clusters=n_clusters, iters=iters, workers=1,
                executor="serial", seed=seed)
            continue
        for topology in ("star", "stream", "tree"):
            km_t, wall_t = _fit_once(
                x, y0, n_clusters=n_clusters, iters=iters, workers=w,
                executor="serial", seed=seed, reduce_topology=topology)
            reduce_curve.append({
                "workers": w,
                "workers_effective": km_t.n_workers_,
                "topology": topology,
                "wall_s": wall_t,
                "reduce_busy_s": km_t.dist_reduce_busy_s_,
                "reduce_busy_per_round_s": (
                    km_t.dist_reduce_busy_s_ / max(1, km_t.n_iter_)),
                "bit_identical_vs_single": bool(
                    np.array_equal(km_t.labels_, base[0].labels_)
                    and np.array_equal(km_t.cluster_centers_,
                                       base[0].cluster_centers_)),
                "metrics": km_t.dist_metrics_,
            })
    widest = max(reduce_workers_grid)
    auto_km, _ = _fit_once(
        x, y0, n_clusters=n_clusters, iters=iters, workers=widest,
        executor="serial", seed=seed, reduce_topology="auto")
    reduce = {
        "m": x.shape[0],
        "executor": "serial",
        "workers_grid": list(reduce_workers_grid),
        "single_wall_s": single_wall,
        "auto_resolved": {"workers": widest,
                          "workers_effective": auto_km.n_workers_,
                          "topology": auto_km.dist_reduce_topology_},
        "curve": reduce_curve,
    }

    return {
        "bench": "dist_scaling",
        "schema": SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": platform.node(),
        "numpy": np.__version__,
        "config": {
            "m_grid": list(m_grid), "n_features": n_features,
            "n_clusters": n_clusters, "iters": iters, "dtype": dtype,
            "executor": executor, "workers_grid": list(workers_grid),
            "seed": seed, "checkpoint_every": checkpoint_every,
            "round_timeout": round_timeout,
            "reduce_workers_grid": list(reduce_workers_grid),
        },
        "grid": grid,
        "recovery": recovery,
        "elastic": elastic,
        "checkpoint": checkpoint,
        "selfheal": selfheal,
        "trace": trace_summary,
        "reduce": reduce,
        "transport": transport,
    }


def run_smoke(**overrides) -> dict:
    """The < 30 s gating configuration (tier-1 friendly)."""
    kwargs = dict(SMOKE_SHAPE)
    kwargs.update(overrides)
    return run_dist_bench(**kwargs)


def _summarise(record: dict) -> str:
    cfg = record["config"]
    lines = [
        f"dist scaling  M grid={cfg['m_grid']} "
        f"N(features)={cfg['n_features']} K={cfg['n_clusters']} "
        f"iters={cfg['iters']} executor={cfg['executor']}"]
    for row in record["grid"]:
        lines.append(
            f"  M={row['m']} workers={row['workers']}: "
            f"wall {row['wall_s']:.3f} s "
            f"({row['wall_speedup_vs_single']:.2f}x) | sim "
            f"{row['sim_time_s']:.4f} s "
            f"({row['sim_speedup_vs_single']:.2f}x) | bit-identical "
            f"{row['bit_identical_vs_single']}")
    rec = record["recovery"]
    lines.append(
        f"  recovery (crash@{rec['crash_iteration']}, "
        f"ckpt={rec['checkpoint_every']}): +{rec['recovery_overhead_s']:.3f} s"
        f" ({rec['recovery_overhead_frac']:.1%}) over "
        f"{rec['clean_wall_s']:.3f} s clean, recovered-bit-identical "
        f"{rec['recovered_bit_identical']}")
    el = record["elastic"]
    lines.append(
        f"  elastic (stall@{el['stall_iteration']}, "
        f"deadline={el['round_timeout']} s): "
        f"+{el['shrink_overhead_s']:.3f} s ({el['shrink_overhead_frac']:.1%})"
        f", {el['workers']} -> {el['workers_after_shrink']} workers, "
        f"recovered-bit-identical {el['recovered_bit_identical']}")
    ck = record["checkpoint"]
    lines.append(
        f"  checkpoint (every round, on disk): in-loop save "
        f"{ck['sync_save_per_checkpoint_s'] * 1e3:.2f} ms/save sync vs "
        f"{ck['async_save_per_checkpoint_s'] * 1e3:.2f} ms/save async "
        f"({ck['save_reduction']:.1f}x off the loop; flush "
        f"{ck['async_flush_s'] * 1e3:.2f} ms at fit end), bit-identical "
        f"{ck['bit_identical_sync_vs_async']}")
    sh = record["selfheal"]
    lines.append(
        f"  selfheal (kill@{sh['kill_iteration']}, spawn+re-expand): "
        f"+{sh['heal_overhead_s']:.3f} s ({sh['heal_overhead_frac']:.1%}), "
        f"{sh['recovered_round_overhead_s']:.3f} s/recovered round, "
        f"back to {sh['workers_after']}/{sh['target_workers']} workers, "
        f"bit-identical {sh['recovered_bit_identical']}")
    trc = record.get("trace")
    if trc:
        top = sorted(trc["stage_totals"].items(),
                     key=lambda kv: kv[1]["wall_s"], reverse=True)[:4]
        lines.append(
            f"  traced re-run  : {trc['wall_s']:.3f} s, {trc['spans']} spans"
            f" (bit-identical {trc['bit_identical_vs_untraced']}): "
            + ", ".join(f"{name} {tot['wall_s']:.3f} s"
                        for name, tot in top))
        if trc.get("chrome_trace_path"):
            lines.append(f"  chrome trace   -> {trc['chrome_trace_path']}")
        if trc.get("jsonl_trace_path"):
            lines.append(
                f"  span stream    -> {trc['jsonl_trace_path']} "
                f"({trc['sink_spans']} spans streamed)")
    tp = record.get("transport")
    if tp:
        lines.append(
            f"  transport (W={tp['workers']}): pipe "
            f"{tp['pipe']['broadcast_bytes'] / 1e6:.2f} MB bcast / "
            f"{tp['pipe']['gather_bytes'] / 1e6:.2f} MB gather vs shm "
            f"{tp['shm']['broadcast_bytes'] / 1e3:.1f} kB / "
            f"{tp['shm']['gather_bytes'] / 1e3:.1f} kB "
            f"({tp['broadcast_bytes_reduction']:.0f}x / "
            f"{tp['gather_bytes_reduction']:.0f}x less on the pipes), "
            f"{tp['shm_broadcast_bytes_per_round_worker']:.0f} B/round/worker"
            f", bit-identical {tp['bit_identical_shm_vs_pipe']}")
    red = record.get("reduce")
    if red:
        by_workers = {}
        for row in red["curve"]:
            by_workers.setdefault(row["workers"], {})[row["topology"]] = row
        for w, cells in sorted(by_workers.items()):
            lines.append(
                f"  reduce W={w}: " + " | ".join(
                    f"{t} busy {cells[t]['reduce_busy_s'] * 1e3:.2f} ms"
                    f" (bit-identical {cells[t]['bit_identical_vs_single']})"
                    for t in ("star", "stream", "tree") if t in cells))
        auto = red["auto_resolved"]
        lines.append(
            f"  reduce auto: {auto['workers']} workers "
            f"({auto['workers_effective']} effective) -> "
            f"{auto['topology']}")
    return "\n".join(lines)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(
        description="Wall-clock scaling benchmark of repro.dist")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny < 30 s configuration for CI gating")
    parser.add_argument("--m", type=int, default=None)
    parser.add_argument("--features", type=int, default=None)
    parser.add_argument("--clusters", type=int, default=None)
    parser.add_argument("--iters", type=int, default=None)
    parser.add_argument("--workers", default=None,
                        help="comma-separated workers grid, e.g. 1,2,4")
    parser.add_argument("--executor", default="thread",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--round-timeout", type=float, default=1.5,
                        help="stall-detection deadline (s) of the elastic "
                             "shrink-recovery run")
    parser.add_argument("--out", default=str(DEFAULT_RESULT_PATH),
                        help="trajectory JSON to append to ('-' to skip)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the traced run's spans to PATH: a "
                             "'.jsonl' suffix streams one span per line "
                             "as each closes (tailable mid-run), any "
                             "other suffix writes a post-hoc Chrome "
                             "trace JSON (chrome://tracing / Perfetto)")
    args = parser.parse_args(argv)

    kwargs = dict(SMOKE_SHAPE if args.smoke else FULL_SHAPE)
    if args.m is not None:
        kwargs["m_grid"] = (args.m,)
    for key, val in (("n_features", args.features),
                     ("n_clusters", args.clusters), ("iters", args.iters)):
        if val is not None:
            kwargs[key] = val
    if args.workers:
        kwargs["workers_grid"] = tuple(
            int(v) for v in args.workers.split(","))
    record = run_dist_bench(executor=args.executor,
                            round_timeout=args.round_timeout,
                            trace_out=args.trace_out, **kwargs)
    print(_summarise(record))
    if args.out != "-":
        path = write_record(record, args.out, schema=SCHEMA)
        print(f"  recorded -> {path}")
    return record


if __name__ == "__main__":
    main()
