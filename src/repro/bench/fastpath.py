"""Wall-clock benchmark of the blocked streaming fast-path engine.

Unlike the figure harness — which charges an analytic *simulated* clock —
this module measures real host time, so subsequent PRs can track genuine
speedups of the hot loop.  It drives a multi-iteration Lloyd fit at a
configurable shape through the assignment **and** update stages:

* ``unchunked`` — the seed one-shot fast path (full M x N accumulator)
  plus the seed ``np.add.at`` update accumulation, kept as the
  regression baseline;
* ``engine``    — the chunked streaming :class:`FastPathEngine` with the
  centroid-update accumulation *fused* into its chunk loop (the
  production path since the streamed-update PR);
* ``stages``    — a per-stage split run: pure chunked assignment, then
  the ``oneshot`` (``np.add.at``) and ``streamed`` (chunked bincount)
  update accumulations timed on the same labels.  All three update
  implementations are bit-identical, so every run walks the same Lloyd
  trajectory.

Each run appends one record to ``BENCH_fastpath.json`` (a perf
trajectory: list of entries, newest last).  Run from the CLI::

    python -m repro.bench.fastpath                 # paper-ish shape
    python -m repro.bench.fastpath --smoke         # < 60 s gating run
    python -m repro.bench.runner --smoke           # same, via the runner
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.accumulate import (
    StreamedAccumulator,
    accumulate_oneshot,
    accumulate_streamed,
)
from repro.core.bounds import resolve_prune_mode
from repro.core.engine import FastPathEngine, unchunked_assign
from repro.core.tensorop import default_tensorop_tile
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import get_device
from repro.obs.trace import TraceRecorder, active_tracer

__all__ = ["run_fastpath_bench", "run_smoke", "write_record",
           "DEFAULT_RESULT_PATH", "SCHEMA", "main"]

#: perf-trajectory file, resolved against the working directory (the
#: repository root when run from a checkout; installs pass --out)
DEFAULT_RESULT_PATH = Path("BENCH_fastpath.json")

#: v4 added the traced pass (``trace`` key): the same fused fit run
#: once more under a :class:`~repro.obs.trace.TraceRecorder`, with the
#: per-stage wall breakdown (gemm / assign_chunk / update_feed /
#: bounds_refresh) stored in the record so ``docs/perf.md`` can be
#: regenerated from the trajectory file alone.  v3 added the
#: bound-pruned assignment comparison (``pruning`` key); v2 the
#: fault-free fast lane (``engine.batched_chunks``, operand-cache
#: config, per-unit-path bit-identity check)
SCHEMA = "fastpath_walltime/v4"

#: shape of the acceptance benchmark (paper-scale-ish, CI-feasible)
FULL_SHAPE = dict(m=200_000, n_features=64, n_clusters=64, iters=8)

#: shape of the smoke/gating run (< 60 s wall clock including baseline)
SMOKE_SHAPE = dict(m=60_000, n_features=64, n_clusters=64, iters=3)

#: operand-cache byte budget of the bench engine: the bench measures
#: the fault-free fast lane, so the fit-lifetime operand caches are
#: admitted regardless of the problem size (recorded in the config;
#: pass --operand-cache to measure other policies)
BENCH_OPERAND_CACHE = 1 << 30

#: iterations of the pruning comparison: the workload converges (and
#: the centroids bit-freeze) after ~3, so most of the loop runs in the
#: pruned regime — pruning pays per *converged* iteration, which is
#: where real fits spend their tails (the two active warm-up passes
#: carry the Hamerly refresh overhead, one extra O(M*K) min per pass)
PRUNE_ITERS = 12


def _divide(sums: np.ndarray, dtype) -> np.ndarray:
    """Packed (K, N+1) sums -> centroids; bit-identical to the seed
    ``reference_update`` tail (empty clusters keep zero rows)."""
    k = sums.shape[1] - 1
    counts = sums[:, k]
    out = np.zeros((sums.shape[0], k), dtype=np.float64)
    nz = counts > 0
    out[nz] = sums[nz, :k] / counts[nz, None]
    return out.astype(dtype)


def _lloyd_split(x, y0, n_clusters, iters, assign_fn):
    """Per-stage Lloyd loop: time assignment, then both (bit-identical)
    update accumulations on the same labels.

    The streamed result drives the trajectory; returns the first
    iteration's labels (both benchmark paths see identical centroids
    there, so comparing them measures pure assignment agreement without
    the tie-break cascade independent trajectories accumulate) and the
    final labels.
    """
    y = y0.copy()
    assign_s, upd_streamed_s, upd_oneshot_s = [], [], []
    labels = first_labels = None
    for it in range(iters):
        t0 = time.perf_counter()
        labels, _ = assign_fn(x, y)
        assign_s.append(time.perf_counter() - t0)
        if it == 0:
            first_labels = labels.copy()
        t0 = time.perf_counter()
        sums = accumulate_streamed(x, labels, n_clusters)
        upd_streamed_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        accumulate_oneshot(x, labels, n_clusters)  # baseline impl, timed
        upd_oneshot_s.append(time.perf_counter() - t0)
        y = _divide(sums, x.dtype)
    return {
        "assign_per_iter_s": assign_s,
        "update_streamed_per_iter_s": upd_streamed_s,
        "update_oneshot_per_iter_s": upd_oneshot_s,
        "first_labels": first_labels,
        "labels": labels.copy(),
    }


def _lloyd_fused(x, y0, n_clusters, iters, engine, tracer=None):
    """The production path: fused assign+accumulate per chunk, then the
    O(K·N) divide tail.  With a ``tracer`` the loop emits the same
    ``fit -> iteration`` outer spans the API path does, so bench traces
    share the engine taxonomy."""
    tr = active_tracer(tracer)
    acc = StreamedAccumulator(n_clusters, x.shape[1])
    y = y0.copy()
    fused_s, tail_s = [], []
    labels = first_labels = first_best = None
    t_all = time.perf_counter()
    with tr.span("fit", m=int(x.shape[0]), n_features=int(x.shape[1]),
                 n_clusters=int(n_clusters)):
        for it in range(iters):
            with tr.span("iteration", iteration=int(it)):
                acc.reset()
                t0 = time.perf_counter()
                labels, best = engine.assign(x, y, PerfCounters(),
                                             accumulator=acc)
                fused_s.append(time.perf_counter() - t0)
                if it == 0:
                    first_labels = labels.copy()
                    first_best = best.copy()
                t0 = time.perf_counter()
                y = _divide(acc.packed(), x.dtype)
                tail_s.append(time.perf_counter() - t0)
    total = time.perf_counter() - t_all
    return {
        "wall_s": total,
        "per_iter_s": fused_s,
        "update_tail_per_iter_s": tail_s,
        "first_labels": first_labels,
        "first_best": first_best,
        "labels": labels.copy(),
    }


def _lloyd_unchunked(x, y0, n_clusters, iters, dtype, tf32):
    """The seed baseline: one-shot assignment + ``np.add.at`` update."""
    y = y0.copy()
    assign_s, update_s = [], []
    labels = first_labels = None
    t_all = time.perf_counter()
    for it in range(iters):
        t0 = time.perf_counter()
        labels, _ = unchunked_assign(x, y, dtype=dtype, tf32=tf32)
        assign_s.append(time.perf_counter() - t0)
        if it == 0:
            first_labels = labels.copy()
        t0 = time.perf_counter()
        sums = accumulate_oneshot(x, labels, n_clusters)
        update_s.append(time.perf_counter() - t0)
        y = _divide(sums, x.dtype)
    total = time.perf_counter() - t_all
    return {
        "wall_s": total,
        "per_iter_s": assign_s,
        "update_per_iter_s": update_s,
        "first_labels": first_labels,
        "labels": labels.copy(),
    }


def _pruning_workload(m, n_features, n_clusters, dt, seed):
    """A converging workload the bounds can prune: well-separated blobs
    laid out contiguously (frozen blobs empty whole GEMM units) and a
    near-converged warm start, so labels settle within ~2 iterations
    and the centroids bit-freeze right after."""
    rng = np.random.default_rng(seed + 1)
    centers = (rng.standard_normal((n_clusters, n_features)) * 6.0
               ).astype(dt)
    per = m // n_clusters
    sizes = [per + 1 if i < m - per * n_clusters else per
             for i in range(n_clusters)]
    x = np.concatenate([
        centers[i] + rng.normal(scale=0.1,
                                size=(sizes[i], n_features)).astype(dt)
        for i in range(n_clusters)])
    y0 = centers + rng.normal(scale=0.02, size=centers.shape).astype(dt)
    return np.ascontiguousarray(x), np.ascontiguousarray(y0)


def _pruning_bench(dev, dt, tile, tf32, *, m, n_features, n_clusters,
                   chunk_bytes, workers, operand_cache, seed,
                   iters: int = PRUNE_ITERS) -> dict:
    """Pruned vs unpruned assignment in lockstep on one trajectory.

    Both engines see the same centroids every iteration; labels and
    min-distances are asserted bit-equal per pass (the pruning
    exactness contract, re-proved on every bench run), so the timing
    difference is pure skipped work.
    """
    x, y0 = _pruning_workload(m, n_features, n_clusters, dt, seed)
    mode = resolve_prune_mode("auto")
    kw = dict(tile=tile, tf32=tf32, chunk_bytes=chunk_bytes,
              workers=workers, operand_cache=operand_cache)
    pruned = FastPathEngine(dev, dt, prune=mode, **kw)
    plain = FastPathEngine(dev, dt, prune="off", **kw)
    u = np.uint32 if dt.itemsize == 4 else np.uint64
    pruned_s, plain_s, frac = [], [], []
    try:
        pruned.begin_fit(x, n_clusters)
        plain.begin_fit(x, n_clusters)
        y = y0.copy()
        for _ in range(iters):
            t0 = time.perf_counter()
            lp, bp = pruned.assign(x, y, PerfCounters())
            pruned_s.append(time.perf_counter() - t0)
            frac.append(float(pruned.stats.last_active_frac))
            t0 = time.perf_counter()
            lu, bu = plain.assign(x, y, PerfCounters())
            plain_s.append(time.perf_counter() - t0)
            # the whole point: pruning must never move a bit
            assert np.array_equal(lp, lu)
            assert np.array_equal(bp.view(u), bu.view(u))
            y = _divide(accumulate_streamed(x, lu, n_clusters), dt)
        rows_pruned = pruned.stats.rows_pruned
        rebuilds = pruned.stats.bounds_rebuilds
    finally:
        pruned.end_fit()
        plain.end_fit()
    return {
        "mode": mode,
        "iters": iters,
        "pruned_assign_per_iter_s": pruned_s,
        "unpruned_assign_per_iter_s": plain_s,
        "pruned_assign_wall_s": sum(pruned_s),
        "unpruned_assign_wall_s": sum(plain_s),
        "active_frac_per_iter": frac,
        "final_active_frac": frac[-1],
        "rows_pruned": int(rows_pruned),
        "bounds_rebuilds": int(rebuilds),
        "assign_speedup": sum(plain_s) / max(1e-12, sum(pruned_s)),
        "bit_identical": True,
    }


def run_fastpath_bench(m: int = FULL_SHAPE["m"],
                       n_features: int = FULL_SHAPE["n_features"],
                       n_clusters: int = FULL_SHAPE["n_clusters"],
                       iters: int = FULL_SHAPE["iters"], *,
                       dtype="float32", device="a100",
                       chunk_bytes: int | None = None, workers: int = 1,
                       operand_cache=BENCH_OPERAND_CACHE,
                       seed: int = 0, include_unchunked: bool = True) -> dict:
    """One wall-clock comparison run; returns the JSON-ready record."""
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")
    dev = get_device(device)
    dt = np.dtype(dtype)
    rng = np.random.default_rng(seed)
    x = rng.random((m, n_features), dtype=np.float64).astype(dt)
    y0 = x[rng.choice(m, size=n_clusters, replace=False)].copy()
    tile = default_tensorop_tile(dt)
    tf32 = dt == np.dtype(np.float32)

    engine = FastPathEngine(dev, dt, tile=tile, tf32=tf32,
                            chunk_bytes=chunk_bytes, workers=workers,
                            operand_cache=operand_cache)

    def engine_assign(xa, ya):
        return engine.assign(xa, ya, PerfCounters())

    try:
        engine.begin_fit(x, n_clusters)
        fused = _lloyd_fused(x, y0, n_clusters, iters, engine)
        # snapshot before the diagnostic split run doubles the counters:
        # the recorded stats must describe ONE fit, comparably across PRs
        fit_stats = (engine.stats.chunks_run, engine.stats.gemm_calls,
                     engine.stats.update_chunks_fed,
                     engine.stats.batched_chunks)
        hoisted = (engine._cache.x_rounded is not None,
                   engine._cache.x_t is not None)
        split = _lloyd_split(x, y0, n_clusters, iters, engine_assign)
    finally:
        engine.end_fit()

    # fast lane vs per-unit fault lane: one reference pass through an
    # engine forced onto the legacy path (no operand caches, explicit
    # unit walk) must agree bit-for-bit on first-iteration centroids
    ref_engine = FastPathEngine(dev, dt, tile=tile, tf32=tf32,
                                chunk_bytes=chunk_bytes, workers=workers,
                                operand_cache="off", batch_chunks=False)
    try:
        ref_engine.begin_fit(x, n_clusters)
        ref_labels, ref_best = ref_engine.assign(x, y0, PerfCounters())
        unit_mismatch = float(np.mean(fused["first_labels"] != ref_labels))
        unit_bit_identical = bool(
            np.array_equal(fused["first_best"].view(np.uint32 if dt.itemsize == 4
                                                    else np.uint64),
                           ref_best.view(np.uint32 if dt.itemsize == 4
                                         else np.uint64)))
    finally:
        ref_engine.end_fit()

    pruning = _pruning_bench(dev, dt, tile, tf32, m=m,
                             n_features=n_features, n_clusters=n_clusters,
                             chunk_bytes=chunk_bytes, workers=workers,
                             operand_cache=operand_cache, seed=seed)

    # -- traced pass: the same fused fit once more under the span
    # recorder, run *separately* so the headline engine wall above
    # stays comparable across PRs.  The per-stage breakdown lands in
    # the record (docs/perf.md is regenerated from it) and the
    # trajectory is asserted bit-identical — tracing must never move
    # a bit, re-proved on every bench run.
    recorder = TraceRecorder()
    traced_engine = FastPathEngine(dev, dt, tile=tile, tf32=tf32,
                                   chunk_bytes=chunk_bytes, workers=workers,
                                   operand_cache=operand_cache,
                                   tracer=recorder)
    try:
        traced_engine.begin_fit(x, n_clusters)
        traced = _lloyd_fused(x, y0, n_clusters, iters, traced_engine,
                              tracer=recorder)
    finally:
        traced_engine.end_fit()
    assert np.array_equal(traced["labels"], fused["labels"])
    trace_summary = {
        "wall_s": traced["wall_s"],
        "spans": len(recorder),
        "dropped": recorder.dropped,
        "bit_identical_vs_untraced": True,  # asserted above
        "stage_totals": recorder.stage_totals(),
    }

    record = {
        "bench": "fastpath_walltime",
        "schema": SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": platform.node(),
        "numpy": np.__version__,
        "config": {
            "m": m, "n_features": n_features, "n_clusters": n_clusters,
            "iters": iters, "dtype": str(dt), "device": dev.name,
            "chunk_bytes": engine.chunk_bytes, "workers": workers,
            "operand_cache": operand_cache,
            "seed": seed,
        },
        "engine": {
            "wall_s": fused["wall_s"],
            "per_iter_s": fused["per_iter_s"],
            "update_tail_per_iter_s": fused["update_tail_per_iter_s"],
            "chunks_run": fit_stats[0],
            "gemm_calls": fit_stats[1],
            "update_chunks_fed": fit_stats[2],
            "batched_chunks": fit_stats[3],
            "hoisted_rounded_operand": hoisted[0],
            "hoisted_transposed_operand": hoisted[1],
            "peak_scratch_bytes": engine.stats.peak_scratch_bytes,
        },
        # the fast lane's bit-identity contract, re-asserted per run
        "unit_path_label_mismatch_frac": unit_mismatch,
        "unit_path_bit_identical": unit_bit_identical,
        # bound-pruned vs unpruned assignment on the converging blob
        # workload (bit-equality asserted inside the loop)
        "pruning": pruning,
        # per-stage wall breakdown of the traced re-run (span recorder)
        "trace": trace_summary,
        "stages": {
            "assign_per_iter_s": split["assign_per_iter_s"],
            "update_streamed_per_iter_s": split["update_streamed_per_iter_s"],
            "update_oneshot_per_iter_s": split["update_oneshot_per_iter_s"],
            "update_speedup_streamed_vs_oneshot":
                sum(split["update_oneshot_per_iter_s"])
                / max(1e-12, sum(split["update_streamed_per_iter_s"])),
            # fusing the accumulation into the assignment loop vs running
            # the two stages back-to-back unfused
            "fused_saving_s":
                sum(split["assign_per_iter_s"])
                + sum(split["update_streamed_per_iter_s"])
                - sum(fused["per_iter_s"]),
        },
    }
    # bit-identical updates => every run walks the same trajectory
    assert np.array_equal(fused["labels"], split["labels"])
    if include_unchunked:
        base = _lloyd_unchunked(x, y0, n_clusters, iters, dt, tf32)
        record["unchunked"] = {
            "wall_s": base["wall_s"],
            "per_iter_s": base["per_iter_s"],
            "update_per_iter_s": base["update_per_iter_s"],
        }
        # full-fit wall-clock ratio: chunked+fused engine vs the seed
        # one-shot assignment + np.add.at update
        record["speedup_vs_unchunked"] = base["wall_s"] / fused["wall_s"]
        record["assign_speedup_vs_unchunked"] = (
            sum(base["per_iter_s"]) / sum(split["assign_per_iter_s"]))
        # marginal cost of the update when fused: fused-loop time minus
        # the pure-assignment time, plus the divide tail
        fused_update_cost = max(
            1e-12,
            sum(fused["per_iter_s"]) + sum(fused["update_tail_per_iter_s"])
            - sum(split["assign_per_iter_s"]))
        record["update_speedup_vs_unchunked"] = (
            sum(base["update_per_iter_s"]) / fused_update_cost)
        # cascade-free agreement (identical centroids on iteration 1);
        # the end-state number only diagnoses trajectory divergence
        record["label_mismatch_frac"] = float(
            np.mean(fused["first_labels"] != base["first_labels"]))
        record["label_mismatch_frac_final"] = float(
            np.mean(fused["labels"] != base["labels"]))
    return record


def run_smoke(**overrides) -> dict:
    """The < 60 s gating configuration (tier-1 friendly)."""
    kwargs = dict(SMOKE_SHAPE)
    kwargs.update(overrides)
    return run_fastpath_bench(**kwargs)


def write_record(record: dict, path: Path | str = DEFAULT_RESULT_PATH, *,
                 schema: str = SCHEMA) -> Path:
    """Append one record to a perf-trajectory file.

    Shared by every wall-clock bench.  The top-level ``schema`` key
    always names the **newest** entry version present (per-entry
    ``schema`` keys preserve each record's own version) — appends used
    to keep the creation-time key forever, which is the drift
    :mod:`repro.bench.analysis` migrates away on load.
    """
    path = Path(path)
    doc = {"schema": schema, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if (not isinstance(loaded, dict)
                    or not isinstance(loaded.get("entries", []), list)):
                raise ValueError("trajectory shape is not {entries: [...]}")
            doc = loaded
        except (json.JSONDecodeError, OSError, ValueError):
            # never silently drop the cross-PR perf history: set the
            # unreadable file aside and start a fresh trajectory
            backup = path.with_name(path.name + ".corrupt")
            path.replace(backup)
            print(f"warning: {path.name} was unreadable; moved to "
                  f"{backup.name}")
    doc.setdefault("entries", []).append(record)
    # bump the top-level key to the newest version ever appended (never
    # downgrade it when an older-schema record is replayed in)
    from repro.bench.analysis import schema_version
    if schema_version(schema) >= schema_version(doc.get("schema")):
        doc["schema"] = schema
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def _summarise(record: dict) -> str:
    cfg = record["config"]
    st = record["stages"]
    lines = [
        f"fastpath walltime  M={cfg['m']} N(features)={cfg['n_features']} "
        f"K={cfg['n_clusters']} iters={cfg['iters']} dtype={cfg['dtype']}",
        f"  chunk_bytes={cfg['chunk_bytes']} workers={cfg['workers']} "
        f"chunks/pass={record['engine']['chunks_run'] // max(1, cfg['iters'])} "
        f"peak_scratch={record['engine']['peak_scratch_bytes']} B",
        f"  fast lane      : batched_chunks="
        f"{record['engine']['batched_chunks']}"
        f"/{record['engine']['chunks_run']} hoisted(rounded="
        f"{record['engine']['hoisted_rounded_operand']}, transposed="
        f"{record['engine']['hoisted_transposed_operand']}) "
        f"unit-path bit-identical {record['unit_path_bit_identical']} "
        f"(mismatch {record['unit_path_label_mismatch_frac']:.2e})",
        f"  engine (fused) : {record['engine']['wall_s']:.3f} s",
        f"  stages/iter    : assign {np.mean(st['assign_per_iter_s']):.4f} s"
        f" | update streamed {np.mean(st['update_streamed_per_iter_s']):.4f} s"
        f" vs oneshot {np.mean(st['update_oneshot_per_iter_s']):.4f} s"
        f" ({st['update_speedup_streamed_vs_oneshot']:.2f}x)",
    ]
    pr = record["pruning"]
    lines.append(
        f"  pruning ({pr['mode']}): assign "
        f"{pr['pruned_assign_wall_s']:.3f} s vs unpruned "
        f"{pr['unpruned_assign_wall_s']:.3f} s "
        f"({pr['assign_speedup']:.2f}x) over {pr['iters']} iters, "
        f"active_frac {pr['active_frac_per_iter'][0]:.2f} -> "
        f"{pr['final_active_frac']:.2f}, "
        f"{pr['rows_pruned']} rows pruned")
    trc = record.get("trace")
    if trc:
        top = sorted(trc["stage_totals"].items(),
                     key=lambda kv: kv[1]["wall_s"], reverse=True)[:4]
        lines.append(
            f"  traced re-run  : {trc['wall_s']:.3f} s, {trc['spans']} spans"
            f" (bit-identical {trc['bit_identical_vs_untraced']}): "
            + ", ".join(f"{name} {tot['wall_s']:.3f} s"
                        for name, tot in top))
    if "unchunked" in record:
        lines.append(f"  unchunked      : {record['unchunked']['wall_s']:.3f} s")
        lines.append(
            f"  speedup        : {record['speedup_vs_unchunked']:.2f}x fit, "
            f"{record['assign_speedup_vs_unchunked']:.2f}x assignment, "
            f"{record['update_speedup_vs_unchunked']:.2f}x update "
            f"(label mismatch {record['label_mismatch_frac']:.2e})")
    return "\n".join(lines)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(
        description="Wall-clock benchmark of the streaming fast-path engine")
    parser.add_argument("--smoke", action="store_true",
                        help="small < 60 s configuration for CI gating")
    parser.add_argument("--m", type=int, default=None)
    parser.add_argument("--features", type=int, default=None)
    parser.add_argument("--clusters", type=int, default=None)
    parser.add_argument("--iters", type=int, default=None)
    parser.add_argument("--chunk-bytes", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--operand-cache", default=None,
                        help="operand-cache policy: 'auto', 'off' or a "
                             "byte budget (default: the bench's "
                             "fast-lane budget)")
    parser.add_argument("--dtype", default="float32")
    parser.add_argument("--out", default=str(DEFAULT_RESULT_PATH),
                        help="trajectory JSON to append to ('-' to skip)")
    args = parser.parse_args(argv)

    kwargs = dict(SMOKE_SHAPE if args.smoke else FULL_SHAPE)
    for key, val in (("m", args.m), ("n_features", args.features),
                     ("n_clusters", args.clusters), ("iters", args.iters)):
        if val is not None:
            kwargs[key] = val
    operand_cache = BENCH_OPERAND_CACHE
    if args.operand_cache is not None:
        operand_cache = (args.operand_cache
                         if args.operand_cache in ("auto", "off")
                         else int(args.operand_cache))
    record = run_fastpath_bench(chunk_bytes=args.chunk_bytes,
                                workers=args.workers, dtype=args.dtype,
                                operand_cache=operand_cache,
                                **kwargs)
    print(_summarise(record))
    if args.out != "-":
        path = write_record(record, args.out)
        print(f"  recorded -> {path}")
    return record


if __name__ == "__main__":
    main()
