"""Wall-clock benchmark of the blocked streaming fast-path engine.

Unlike the figure harness — which charges an analytic *simulated* clock —
this module measures real host time, so subsequent PRs can track genuine
speedups of the hot loop.  It drives a multi-iteration Lloyd fit at a
configurable shape through two implementations of the assignment stage:

* ``unchunked`` — the seed one-shot fast path (full M x N accumulator,
  per-iteration norm recomputation), kept in
  :func:`repro.core.engine.unchunked_assign` as the regression baseline;
* ``engine``    — the chunked streaming :class:`FastPathEngine` with its
  per-fit invariant cache.

Each run appends one record to ``BENCH_fastpath.json`` (a perf
trajectory: list of entries, newest last).  Run from the CLI::

    python -m repro.bench.fastpath                 # paper-ish shape
    python -m repro.bench.fastpath --smoke         # < 60 s gating run
    python -m repro.bench.runner --smoke           # same, via the runner
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.engine import FastPathEngine, unchunked_assign
from repro.core.tensorop import default_tensorop_tile
from repro.gemm.reference import reference_update
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import get_device

__all__ = ["run_fastpath_bench", "run_smoke", "write_record",
           "DEFAULT_RESULT_PATH", "main"]

#: perf-trajectory file, resolved against the working directory (the
#: repository root when run from a checkout; installs pass --out)
DEFAULT_RESULT_PATH = Path("BENCH_fastpath.json")

#: shape of the acceptance benchmark (paper-scale-ish, CI-feasible)
FULL_SHAPE = dict(m=200_000, n_features=64, n_clusters=64, iters=8)

#: shape of the smoke/gating run (< 60 s wall clock including baseline)
SMOKE_SHAPE = dict(m=60_000, n_features=64, n_clusters=64, iters=3)


def _lloyd_walltime(x, y0, n_clusters, iters, assign_fn):
    """Time ``iters`` Lloyd iterations whose update stage is fixed, so
    only the assignment implementation under test differs.

    Also returns the *first* iteration's labels: both paths see the
    identical centroids there, so comparing them measures pure
    assignment agreement without the tie-break cascade that independent
    Lloyd trajectories accumulate over later iterations.
    """
    y = y0.copy()
    per_iter = []
    labels = first_labels = None
    t0 = time.perf_counter()
    for it in range(iters):
        ti = time.perf_counter()
        labels, best = assign_fn(x, y)
        per_iter.append(time.perf_counter() - ti)
        if it == 0:
            first_labels = labels.copy()
        y, _ = reference_update(x, labels, n_clusters)
    total = time.perf_counter() - t0
    return total, per_iter, first_labels, labels.copy()


def run_fastpath_bench(m: int = FULL_SHAPE["m"],
                       n_features: int = FULL_SHAPE["n_features"],
                       n_clusters: int = FULL_SHAPE["n_clusters"],
                       iters: int = FULL_SHAPE["iters"], *,
                       dtype="float32", device="a100",
                       chunk_bytes: int | None = None, workers: int = 1,
                       seed: int = 0, include_unchunked: bool = True) -> dict:
    """One wall-clock comparison run; returns the JSON-ready record."""
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")
    dev = get_device(device)
    dt = np.dtype(dtype)
    rng = np.random.default_rng(seed)
    x = rng.random((m, n_features), dtype=np.float64).astype(dt)
    y0 = x[rng.choice(m, size=n_clusters, replace=False)].copy()
    tile = default_tensorop_tile(dt)
    tf32 = dt == np.dtype(np.float32)

    engine = FastPathEngine(dev, dt, tile=tile, tf32=tf32,
                            chunk_bytes=chunk_bytes, workers=workers)

    def engine_assign(xa, ya):
        return engine.assign(xa, ya, PerfCounters())

    try:
        engine.begin_fit(x, n_clusters)
        eng_total, eng_iters, eng_first, eng_labels = _lloyd_walltime(
            x, y0, n_clusters, iters, engine_assign)
    finally:
        engine.end_fit()

    record = {
        "bench": "fastpath_walltime",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": platform.node(),
        "numpy": np.__version__,
        "config": {
            "m": m, "n_features": n_features, "n_clusters": n_clusters,
            "iters": iters, "dtype": str(dt), "device": dev.name,
            "chunk_bytes": engine.chunk_bytes, "workers": workers,
            "seed": seed,
        },
        "engine": {
            "wall_s": eng_total,
            "per_iter_s": eng_iters,
            "chunks_run": engine.stats.chunks_run,
            "gemm_calls": engine.stats.gemm_calls,
            "peak_scratch_bytes": engine.stats.peak_scratch_bytes,
        },
    }
    if include_unchunked:
        def seed_assign(xa, ya):
            return unchunked_assign(xa, ya, dtype=dt, tf32=tf32)

        base_total, base_iters, base_first, base_labels = _lloyd_walltime(
            x, y0, n_clusters, iters, seed_assign)
        record["unchunked"] = {"wall_s": base_total, "per_iter_s": base_iters}
        # fit wall-clock includes the (identical) update stage; the
        # assignment-only ratio isolates the engine's contribution
        record["speedup_vs_unchunked"] = base_total / eng_total
        record["assign_speedup_vs_unchunked"] = sum(base_iters) / sum(eng_iters)
        # cascade-free agreement (identical centroids on iteration 1);
        # the end-state number only diagnoses trajectory divergence
        record["label_mismatch_frac"] = float(
            np.mean(eng_first != base_first))
        record["label_mismatch_frac_final"] = float(
            np.mean(eng_labels != base_labels))
    return record


def run_smoke(**overrides) -> dict:
    """The < 60 s gating configuration (tier-1 friendly)."""
    kwargs = dict(SMOKE_SHAPE)
    kwargs.update(overrides)
    return run_fastpath_bench(**kwargs)


def write_record(record: dict, path: Path | str = DEFAULT_RESULT_PATH) -> Path:
    """Append one record to the perf-trajectory file."""
    path = Path(path)
    doc = {"schema": "fastpath_walltime/v1", "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if (not isinstance(loaded, dict)
                    or not isinstance(loaded.get("entries", []), list)):
                raise ValueError("trajectory shape is not {entries: [...]}")
            doc = loaded
        except (json.JSONDecodeError, OSError, ValueError):
            # never silently drop the cross-PR perf history: set the
            # unreadable file aside and start a fresh trajectory
            backup = path.with_name(path.name + ".corrupt")
            path.replace(backup)
            print(f"warning: {path.name} was unreadable; moved to "
                  f"{backup.name}")
    doc.setdefault("entries", []).append(record)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def _summarise(record: dict) -> str:
    cfg = record["config"]
    lines = [
        f"fastpath walltime  M={cfg['m']} N(features)={cfg['n_features']} "
        f"K={cfg['n_clusters']} iters={cfg['iters']} dtype={cfg['dtype']}",
        f"  chunk_bytes={cfg['chunk_bytes']} workers={cfg['workers']} "
        f"chunks/pass={record['engine']['chunks_run'] // max(1, cfg['iters'])} "
        f"peak_scratch={record['engine']['peak_scratch_bytes']} B",
        f"  engine    : {record['engine']['wall_s']:.3f} s",
    ]
    if "unchunked" in record:
        lines.append(f"  unchunked : {record['unchunked']['wall_s']:.3f} s")
        lines.append(f"  speedup   : {record['speedup_vs_unchunked']:.2f}x fit, "
                     f"{record['assign_speedup_vs_unchunked']:.2f}x assignment "
                     f"(label mismatch {record['label_mismatch_frac']:.2e})")
    return "\n".join(lines)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(
        description="Wall-clock benchmark of the streaming fast-path engine")
    parser.add_argument("--smoke", action="store_true",
                        help="small < 60 s configuration for CI gating")
    parser.add_argument("--m", type=int, default=None)
    parser.add_argument("--features", type=int, default=None)
    parser.add_argument("--clusters", type=int, default=None)
    parser.add_argument("--iters", type=int, default=None)
    parser.add_argument("--chunk-bytes", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--dtype", default="float32")
    parser.add_argument("--out", default=str(DEFAULT_RESULT_PATH),
                        help="trajectory JSON to append to ('-' to skip)")
    args = parser.parse_args(argv)

    kwargs = dict(SMOKE_SHAPE if args.smoke else FULL_SHAPE)
    for key, val in (("m", args.m), ("n_features", args.features),
                     ("n_clusters", args.clusters), ("iters", args.iters)):
        if val is not None:
            kwargs[key] = val
    record = run_fastpath_bench(chunk_bytes=args.chunk_bytes,
                                workers=args.workers, dtype=args.dtype,
                                **kwargs)
    print(_summarise(record))
    if args.out != "-":
        path = write_record(record, args.out)
        print(f"  recorded -> {path}")
    return record


if __name__ == "__main__":
    main()
