"""Per-figure experiment definitions.

One function per table/figure of the paper's evaluation (Sec. V).  Each
returns a :class:`FigureResult` whose ``series`` hold the same curves the
paper plots (GFLOPS vs the swept axis) and whose ``summary`` carries the
aggregate claims (average speedup, overhead %, …).  The benchmark files
under ``benchmarks/`` print these and assert the qualitative shape.

All performance numbers come from the analytic timing model — the
simulated hardware — evaluated at the paper's problem sizes.  Numerical
behaviour (fault injection / correction) is exercised separately by the
functional benches and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.metrics import geomean, gflops, overhead_pct
from repro.bench.workloads import (
    FIG7_SWEEP,
    M_PAPER,
    Sweep,
    fig8_sweeps,
    fig10_sweeps,
    fig12_grid,
    fig15_panels,
)
from repro.codegen.bench import score_candidate
from repro.codegen.cuml_params import cuml_tile
from repro.codegen.selector import KernelSelector
from repro.gemm.tiling import TileConfig
from repro.gpusim.device import get_device
from repro.gpusim.timing import TimingModel

__all__ = [
    "FigureResult",
    "parameter1",
    "parameter2",
    "fig7_stepwise",
    "fig8_fig9_distance_vs_features",
    "fig10_fig11_distance_vs_clusters",
    "fig12_speedup_grid",
    "fig13_table1_selected_parameters",
    "fig14_selection_map",
    "fig15_fig16_ft_overhead",
    "fig17_fig18_error_injection",
    "fig19_t4_vs_features",
    "fig20_t4_vs_clusters",
    "fig21_t4_injection",
]


@dataclass
class FigureResult:
    """Structured output of one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    summary: dict = field(default_factory=dict)

    def add(self, name: str, x: float, y: float) -> None:
        self.series.setdefault(name, []).append((float(x), float(y)))

    def series_mean(self, name: str) -> float:
        pts = self.series[name]
        return float(np.mean([y for _, y in pts]))


# ----------------------------------------------------------------------
# fixed "chosen by experience" parameters (Figs. 8-11, 19-20)
# ----------------------------------------------------------------------
def parameter1(dtype, device="a100") -> TileConfig:
    """Parameter1 — a big balanced tile picked 'by experience'.

    The paper reports it always slower than cuML (≈15-30% overhead).
    T4's 64 KB shared memory forces a shallower pipeline there ("consistent
    with the values on A100 to the greatest extent", Sec. V-D).
    """
    stages = 2 if get_device(device).smem_per_block <= 64 * 1024 else 5
    if np.dtype(dtype) == np.float32:
        return TileConfig.make((64, 256, 16), (16, 64, 16), dtype,
                               stages=stages, param_id=-1)
    return TileConfig.make((128, 128, 16), (32, 32, 16), dtype,
                           stages=min(stages, 3), param_id=-1)


def parameter2(dtype, device="a100") -> TileConfig:
    """Parameter2 — a mid-size tile; competitive at some small shapes."""
    if np.dtype(dtype) == np.float32:
        return TileConfig.make((64, 64, 16), (32, 32, 16), dtype, stages=3,
                               param_id=-2)
    return TileConfig.make((64, 32, 16), (16, 32, 16), dtype, stages=3,
                           param_id=-2)


_SELECTORS: dict[tuple[str, str], KernelSelector] = {}


def _selector(device, dtype) -> KernelSelector:
    dev = get_device(device)
    key = (dev.name, np.dtype(dtype).name)
    if key not in _SELECTORS:
        _SELECTORS[key] = KernelSelector.for_device(dev, dtype)
    return _SELECTORS[key]


def _tile_gflops(model: TimingModel, tile: TileConfig, shape, dtype, *,
                 abft: str = "none", p_inject: float = 0.0) -> float:
    m, nc, nf = shape
    t = model.distance_tensorop(m, nc, nf, dtype, tile.tb.m, tile.tb.n,
                                tile.tb.k, tile.warp.m, tile.warp.n,
                                stages=tile.stages, abft=abft,
                                p_block_inject=p_inject)
    return t.gflops


# ----------------------------------------------------------------------
# Fig. 7 — step-wise optimisation
# ----------------------------------------------------------------------
def fig7_stepwise(device="a100", dtype=np.float32) -> FigureResult:
    """Naive → V1 → V2 → V3 → FT K-means bars vs cuML (FP32, A100)."""
    dev = get_device(device)
    model = TimingModel(dev)
    sel = _selector(dev, dtype)
    cu = cuml_tile(dtype)
    res = FigureResult("fig7", "Step-wise optimisation (FP32, M=131072, N=128)",
                       "K (clusters)")
    simt_tile = TileConfig.make((64, 64, 16), (32, 32, 16), dtype, stages=2)
    for m, nc, nf in FIG7_SWEEP.shapes():
        res.add("naive", nc, model.distance_naive(m, nc, nf, dtype).gflops)
        for variant in ("v1", "v2", "v3"):
            t = model.distance_simt(m, nc, nf, dtype, simt_tile.tb.m,
                                    simt_tile.tb.n, simt_tile.tb.k,
                                    simt_tile.warp.m, simt_tile.warp.n,
                                    variant=variant)
            res.add(variant, nc, t.gflops)
        res.add("ftkmeans", nc, sel.best_score(m, nc, nf).gflops)
        res.add("cuml", nc, _tile_gflops(model, cu, (m, nc, nf), dtype))
    means = {name: res.series_mean(name) for name in res.series}
    res.summary = {
        "mean_gflops": means,
        "v1_over_naive": means["v1"] / means["naive"],
        "v2_over_v1": means["v2"] / means["v1"],
        "v3_over_v2": means["v3"] / means["v2"],
        "ft_over_v3": means["ftkmeans"] / means["v3"],
        "ft_over_cuml": means["ftkmeans"] / means["cuml"],
        "paper": {"naive": 482, "v1": 4662, "v2": 5902, "v3": 6916,
                  "ftkmeans": 17686, "cuml": 9676},
    }
    return res


# ----------------------------------------------------------------------
# Figs. 8/9 (A100) and 19 (T4) — distance step vs features
# ----------------------------------------------------------------------
def fig8_fig9_distance_vs_features(dtype, device="a100") -> FigureResult:
    """cuML vs Parameter1/2 vs FT K-means, sweeping N with K in {8,128}."""
    dev = get_device(device)
    model = TimingModel(dev)
    sel = _selector(dev, dtype)
    cu, p1, p2 = cuml_tile(dtype, dev), parameter1(dtype, dev), parameter2(dtype, dev)
    fid = {("float32", True): "fig8", ("float64", True): "fig9"}.get(
        (np.dtype(dtype).name, dev.sm_version >= 80), "fig19")
    res = FigureResult(fid, f"Distance step vs N ({np.dtype(dtype).name}, "
                            f"{dev.name})", "N (features)")
    for sweep in fig8_sweeps():
        for shape in sweep.shapes():
            _, nc, nf = shape
            x = nf
            res.add(f"{sweep.name}/cuml", x, _tile_gflops(model, cu, shape, dtype))
            res.add(f"{sweep.name}/param1", x, _tile_gflops(model, p1, shape, dtype))
            res.add(f"{sweep.name}/param2", x, _tile_gflops(model, p2, shape, dtype))
            res.add(f"{sweep.name}/ftkmeans", x, sel.best_score(*shape).gflops)
    ratios = []
    for sweep in ("K=8", "K=128"):
        ft = dict(res.series[f"{sweep}/ftkmeans"])
        cm = dict(res.series[f"{sweep}/cuml"])
        ratios += [ft[x] / cm[x] for x in ft]
    res.summary = {
        "ft_vs_cuml_mean": float(np.mean(ratios)),
        "param1_vs_cuml_mean": float(np.mean(
            [a / b for (_, a), (_, b) in zip(res.series["K=128/param1"],
                                             res.series["K=128/cuml"])])),
        "paper_ft_vs_cuml": 2.35 if np.dtype(dtype) == np.float32 else 1.04,
    }
    return res


# ----------------------------------------------------------------------
# Figs. 10/11 (A100) and 20 (T4) — distance step vs clusters
# ----------------------------------------------------------------------
def fig10_fig11_distance_vs_clusters(dtype, device="a100") -> FigureResult:
    """cuML vs Parameter1/2 vs FT K-means, sweeping K with N in {8,128}."""
    dev = get_device(device)
    model = TimingModel(dev)
    sel = _selector(dev, dtype)
    cu, p1, p2 = cuml_tile(dtype, dev), parameter1(dtype, dev), parameter2(dtype, dev)
    fid = {("float32", True): "fig10", ("float64", True): "fig11"}.get(
        (np.dtype(dtype).name, dev.sm_version >= 80), "fig20")
    res = FigureResult(fid, f"Distance step vs K ({np.dtype(dtype).name}, "
                            f"{dev.name})", "K (clusters)")
    for sweep in fig10_sweeps():
        for shape in sweep.shapes():
            _, nc, nf = shape
            res.add(f"{sweep.name}/cuml", nc, _tile_gflops(model, cu, shape, dtype))
            res.add(f"{sweep.name}/param1", nc, _tile_gflops(model, p1, shape, dtype))
            res.add(f"{sweep.name}/param2", nc, _tile_gflops(model, p2, shape, dtype))
            res.add(f"{sweep.name}/ftkmeans", nc, sel.best_score(*shape).gflops)
    ratios = []
    for sweep in ("N=8", "N=128"):
        ft = dict(res.series[f"{sweep}/ftkmeans"])
        cm = dict(res.series[f"{sweep}/cuml"])
        ratios += [ft[x] / cm[x] for x in ft]
    res.summary = {
        "ft_vs_cuml_mean": float(np.mean(ratios)),
        "paper_ft_vs_cuml": 2.39 if np.dtype(dtype) == np.float32 else 1.08,
    }
    return res


# ----------------------------------------------------------------------
# Fig. 12 — speedup heat map
# ----------------------------------------------------------------------
def fig12_speedup_grid(dtype, device="a100") -> FigureResult:
    """FT/cuML speedup over the (K, N) grid."""
    dev = get_device(device)
    model = TimingModel(dev)
    sel = _selector(dev, dtype)
    cu = cuml_tile(dtype)
    res = FigureResult("fig12", f"Speedup grid ({np.dtype(dtype).name})",
                       "K (clusters)")
    cells = []
    for shape in fig12_grid():
        _, nc, nf = shape
        s = sel.best_score(*shape).gflops / _tile_gflops(model, cu, shape, dtype)
        res.add(f"N={nf}", nc, s)
        cells.append(s)
    cells = np.array(cells)
    paper = ({"avg": 2.49, "max": 4.55} if np.dtype(dtype) == np.float32
             else {"avg": 1.04, "max": 1.39})
    res.summary = {"avg_speedup": float(cells.mean()),
                   "max_speedup": float(cells.max()),
                   "min_speedup": float(cells.min()),
                   "paper": paper}
    return res


# ----------------------------------------------------------------------
# Fig. 13 / Table I — selected parameters
# ----------------------------------------------------------------------
def fig13_table1_selected_parameters(dtype, device="a100") -> FigureResult:
    """Which parameter groups the selector actually chooses on the grid."""
    sel = _selector(device, dtype)
    res = FigureResult("fig13", f"Selected parameters ({np.dtype(dtype).name})",
                       "parameter id")
    for shape in fig12_grid():
        sel.best_tile(*shape)
    chosen = sel.selected_param_ids()
    tiles = {t.param_id: t for t in sel._cache.values()}
    res.summary = {
        "n_candidates": len(sel.candidates),
        "n_selected": len(chosen),
        "selected": {pid: tiles[pid].label() for pid in chosen},
        "cuml": cuml_tile(dtype).label(),
        "paper_n_selected": 7 if np.dtype(dtype) == np.float32 else 4,
        "paper_n_candidates": 157 if np.dtype(dtype) == np.float32 else 145,
    }
    return res


def fig14_selection_map(dtype, device="a100") -> FigureResult:
    """Winning parameter id at each (K, N) grid point."""
    sel = _selector(device, dtype)
    res = FigureResult("fig14", f"Selection map ({np.dtype(dtype).name})",
                       "K (clusters)")
    for shape in fig12_grid():
        _, nc, nf = shape
        res.add(f"N={nf}", nc, sel.best_tile(*shape).param_id)
    # region structure along N: distinct winners per feature row
    rows = {name: sorted({int(v) for _, v in pts})
            for name, pts in res.series.items()}
    res.summary = {"winners_by_feature_row": rows}
    return res


# ----------------------------------------------------------------------
# Figs. 15/16 — fault-tolerance overhead
# ----------------------------------------------------------------------
def fig15_fig16_ft_overhead(dtype, device="a100") -> FigureResult:
    """cuML vs FT K-means vs FT K-means w/ FT over the four panels."""
    dev = get_device(device)
    model = TimingModel(dev)
    sel = _selector(dev, dtype)
    cu = cuml_tile(dtype, dev)
    fid = "fig15" if np.dtype(dtype) == np.float32 else "fig16"
    res = FigureResult(fid, f"FT overhead ({np.dtype(dtype).name}, {dev.name})",
                       "panel axis")
    overheads: dict[str, list[float]] = {}
    for sweep in fig15_panels():
        for shape in sweep.shapes():
            _, nc, nf = shape
            x = nf if sweep.axis == "n_features" else nc
            tile = sel.best_tile(*shape)
            base = _tile_gflops(model, tile, shape, dtype)
            with_ft = _tile_gflops(model, tile, shape, dtype, abft="ftkmeans")
            res.add(f"{sweep.name}/cuml", x, _tile_gflops(model, cu, shape, dtype))
            res.add(f"{sweep.name}/ftkmeans", x, base)
            res.add(f"{sweep.name}/ftkmeans+ft", x, with_ft)
            overheads.setdefault(sweep.name, []).append(
                overhead_pct(base, with_ft))
    res.summary = {
        "overhead_pct_by_panel": {k: float(np.mean(v))
                                  for k, v in overheads.items()},
        "overhead_pct_avg": float(np.mean(sum(overheads.values(), []))),
        "paper": ({"K=8": -0.24, "K=128": 1.93, "fixed_N": 0.96, "avg": 11.0}
                  if np.dtype(dtype) == np.float32 else
                  {"K=8": 7.9, "K=128": 20.0, "fixed_N": 0.89, "avg": 13.0}),
    }
    return res


# ----------------------------------------------------------------------
# Figs. 17/18 — error injection
# ----------------------------------------------------------------------
def fig17_fig18_error_injection(dtype, device="a100", *,
                                p_inject: float = 1.0) -> FigureResult:
    """FT K-means and Wu's scheme under SEU injection (four panels)."""
    dev = get_device(device)
    model = TimingModel(dev)
    sel = _selector(dev, dtype)
    cu = cuml_tile(dtype, dev)
    fid = ("fig17" if np.dtype(dtype) == np.float32 else "fig18") \
        if dev.sm_version >= 80 else "fig21"
    res = FigureResult(fid, f"Error injection ({np.dtype(dtype).name}, "
                            f"{dev.name})", "panel axis")
    inj_overheads, wu_overheads = [], []
    for sweep in fig15_panels():
        for shape in sweep.shapes():
            _, nc, nf = shape
            x = nf if sweep.axis == "n_features" else nc
            tile = sel.best_tile(*shape)
            base = _tile_gflops(model, tile, shape, dtype)
            with_ft = _tile_gflops(model, tile, shape, dtype, abft="ftkmeans")
            with_inj = _tile_gflops(model, tile, shape, dtype,
                                    abft="ftkmeans", p_inject=p_inject)
            wu_inj = _tile_gflops(model, tile, shape, dtype, abft="wu",
                                  p_inject=p_inject)
            res.add(f"{sweep.name}/cuml", x, _tile_gflops(model, cu, shape, dtype))
            res.add(f"{sweep.name}/ftkmeans", x, base)
            res.add(f"{sweep.name}/ftkmeans+ft", x, with_ft)
            res.add(f"{sweep.name}/ftkmeans+inj", x, with_inj)
            res.add(f"{sweep.name}/wu+inj", x, wu_inj)
            inj_overheads.append(overhead_pct(with_ft, with_inj))
            wu_overheads.append(overhead_pct(base, wu_inj))
    res.summary = {
        "injection_overhead_pct_avg": float(np.mean(inj_overheads)),
        "wu_overhead_pct_avg": float(np.mean(wu_overheads)),
        "p_inject": p_inject,
        "paper": ({"injection_avg": 2.36, "wu": 30.0}
                  if np.dtype(dtype) == np.float32 else
                  {"injection_avg": 9.21, "wu": 30.0}),
    }
    return res


# ----------------------------------------------------------------------
# Figs. 19-21 — T4
# ----------------------------------------------------------------------
def fig19_t4_vs_features() -> FigureResult:
    """Fig. 19: T4 FP32 distance step vs N (paper: FT 4.13x cuML)."""
    res = fig8_fig9_distance_vs_features(np.float32, device="t4")
    res.summary["paper_ft_vs_cuml"] = 4.13
    return res


def fig20_t4_vs_clusters() -> FigureResult:
    """Fig. 20: T4 FP32 distance step vs K (paper: FT 3.81x cuML)."""
    res = fig10_fig11_distance_vs_clusters(np.float32, device="t4")
    res.summary["paper_ft_vs_cuml"] = 3.81
    return res


def fig21_t4_injection() -> FigureResult:
    """Fig. 21: T4 FP32 under error injection (paper: FT 18% w/ FT, 30%
    under injection, ~60% better than Wu's)."""
    res = fig17_fig18_error_injection(np.float32, device="t4")
    res.summary["paper"] = {"ft_overhead": 18.0, "injection_overhead": 30.0,
                            "vs_wu_improvement": 60.0}
    # FT-vs-Wu improvement at equal injection
    ft = [y for name, pts in res.series.items() if name.endswith("ftkmeans+inj")
          for _, y in pts]
    wu = [y for name, pts in res.series.items() if name.endswith("wu+inj")
          for _, y in pts]
    res.summary["ft_vs_wu_mean"] = float(np.mean(np.array(ft) / np.array(wu)))
    return res
