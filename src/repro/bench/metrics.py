"""Benchmark metrics: GFLOPS accounting and overhead percentages."""

from __future__ import annotations

import numpy as np

__all__ = ["gflops", "overhead_pct", "speedup", "geomean"]


def gflops(n_samples: int, n_clusters: int, n_features: int,
           time_s: float) -> float:
    """Distance-stage GFLOPS, counted as the paper does (2·M·K·N)."""
    if time_s <= 0:
        raise ValueError(f"time must be positive, got {time_s}")
    return 2.0 * n_samples * n_clusters * n_features / time_s / 1e9


def overhead_pct(base_gflops: float, with_feature_gflops: float) -> float:
    """Overhead of a feature in percent: +11 means 11% slower."""
    if with_feature_gflops <= 0:
        raise ValueError("GFLOPS must be positive")
    return (base_gflops / with_feature_gflops - 1.0) * 100.0


def speedup(ours: float, baseline: float) -> float:
    """ours / baseline (in GFLOPS: higher is better)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return ours / baseline


def geomean(values) -> float:
    """Geometric mean (the right average for ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
