"""Run every figure experiment in one pass (the full harness entry point).

``python -m repro.bench.runner`` regenerates all 15 figure/table
reproductions and prints them in paper order.

``python -m repro.bench.runner --smoke`` instead runs the wall-clock
gating benchmarks — the fast-path run (appending to
``BENCH_fastpath.json``) followed by a tiny 2-worker sharded scaling +
crash-recovery + elastic stall-then-shrink run (appending to
``BENCH_dist.json``) — suitable as a tier-1 perf canary.  Unrecognised arguments after ``--smoke`` are forwarded to
:mod:`repro.bench.fastpath` (e.g. ``--m 2000 --iters 1`` for an even
quicker shape); the sharded smoke keeps its fixed tiny shape and is
skipped entirely with ``--dist-out -``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.bench import figures
from repro.bench.tables import print_figure

__all__ = ["all_figures", "main"]


def all_figures() -> list:
    """Compute every FigureResult in paper order."""
    return [
        figures.fig7_stepwise(),
        figures.fig8_fig9_distance_vs_features(np.float32),
        figures.fig8_fig9_distance_vs_features(np.float64),
        figures.fig10_fig11_distance_vs_clusters(np.float32),
        figures.fig10_fig11_distance_vs_clusters(np.float64),
        figures.fig12_speedup_grid(np.float32),
        figures.fig12_speedup_grid(np.float64),
        figures.fig13_table1_selected_parameters(np.float32),
        figures.fig13_table1_selected_parameters(np.float64),
        figures.fig14_selection_map(np.float32),
        figures.fig15_fig16_ft_overhead(np.float32),
        figures.fig15_fig16_ft_overhead(np.float64),
        figures.fig17_fig18_error_injection(np.float32),
        figures.fig17_fig18_error_injection(np.float64),
        figures.fig19_t4_vs_features(),
        figures.fig20_t4_vs_clusters(),
        figures.fig21_t4_injection(),
    ]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the < 60 s wall-clock fast-path benchmark "
                             "instead of the full figure harness")
    parser.add_argument("--out", default=None,
                        help="with --smoke: trajectory JSON to append to "
                             "(defaults to ./BENCH_fastpath.json; '-' skips)")
    parser.add_argument("--dist-out", default=None,
                        help="with --smoke: sharded-scaling trajectory JSON "
                             "(defaults to ./BENCH_dist.json; '-' skips the "
                             "sharded smoke run)")
    args, extra = parser.parse_known_args(argv)
    if args.smoke:
        from repro.bench import dist as dist_bench
        from repro.bench import fastpath

        fastpath.main(["--smoke"]
                      + (["--out", args.out] if args.out else [])
                      + extra)
        if args.dist_out != "-":
            dist_bench.main(
                ["--smoke"]
                + (["--out", args.dist_out] if args.dist_out else []))
        return
    if extra:
        parser.error(f"unrecognised arguments: {' '.join(extra)}")
    for res in all_figures():
        print_figure(res, max_rows=8)
        print()


if __name__ == "__main__":
    main()
