"""Run every figure experiment in one pass (the full harness entry point).

``python -m repro.bench.runner`` regenerates all 15 figure/table
reproductions and prints them in paper order.

``python -m repro.bench.runner --smoke`` instead runs the wall-clock
gating benchmarks — the fast-path run (appending to
``BENCH_fastpath.json``) followed by a tiny 2-worker sharded scaling +
crash-recovery + elastic stall-then-shrink + kill-spawn-re-expand
self-healing run (appending to ``BENCH_dist.json``) — suitable as a
tier-1 perf canary.  The self-healing record's per-recovered-round
overhead and the fast-path record's bound-pruned assignment wall (plus
its final ``active_frac``) are gated against the best prior same-host,
same-shape entry just like the fast-path wall.  The reduce-topology
curve (schema v6) is gated too: every cell must stay bit-identical to
the single-worker fit, star occupancy must sit above stream and tree
at the widest fleet, and stream/tree occupancy must not regress
against the best prior entry.  The transport record (schema v7) is
gated as well: the shared-memory fit must stay bit-identical to the
pipe fit and the single-worker baseline, its pipe traffic must stay
control-token-sized, and its wall must not regress against the best
prior entry.  ``--trace-out`` forwards a trace output path to the dist
smoke (a ``.jsonl`` suffix streams spans live as each closes; any
other suffix writes a post-hoc Chrome trace
JSON).  Unrecognised arguments after ``--smoke`` are forwarded to
:mod:`repro.bench.fastpath` (e.g. ``--m 2000 --iters 1`` for an even
quicker shape); the sharded smoke keeps its fixed tiny shape and is
skipped entirely with ``--dist-out -``.

The smoke run doubles as a **perf regression gate**: the fresh
fast-path record is compared against the best prior entry of the same
problem shape in the trajectory file, and the run fails loudly
(non-zero exit) when the fresh engine wall exceeds the best prior by
more than the slack factor — wall-clock noise across hosts is expected,
a genuine hot-loop regression is not.  ``--regression-slack`` tunes the
factor; ``--no-regression-check`` disables the gate.

On top of the best-entry gates, the smoke run **trend-gates** each
fresh record against the *whole* same-host, same-shape trajectory via
:mod:`repro.bench.analysis` changepoint detection — a slowdown that
creeps in over several runs moves the recent segment mean even when
every individual run clears the best-prior slack.  It also maintains
``docs/perf.md``: before running it fails if the committed report does
not match the committed trajectory files (stale report), and after
appending the fresh records it regenerates the report in place.
``--report`` moves the report ('-' skips both steps).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.bench import analysis, figures
from repro.bench.tables import print_figure

__all__ = ["all_figures", "check_fastpath_regression",
           "check_pruning_regression", "check_reduce_scaling",
           "check_selfheal_regression", "check_stale_report",
           "check_transport", "main"]

#: pipe bytes per round per worker the shm transport may spend on its
#: control tokens (the shmround tuple + the array-stripped ack) before
#: the gate decides payload data leaked back onto the pipes
TRANSPORT_TOKEN_BYTES = 4096

#: fresh engine wall may exceed the best prior same-shape entry by at
#: most this factor before the smoke gate fails (hosts differ; real
#: regressions are well past this)
REGRESSION_SLACK = 1.5

#: config keys that must match for two records to be comparable —
#: the problem shape AND the perf-relevant engine configuration (a
#: deliberately slower config, e.g. --operand-cache off, must never be
#: judged against the fast-lane best).  Shared with the trend gates in
#: :mod:`repro.bench.analysis` so both gates slice the same series.
_SHAPE_KEYS = analysis.FASTPATH_SHAPE_KEYS

#: config keys of the dist smoke record that must match for two
#: ``selfheal`` entries to be comparable
_DIST_SHAPE_KEYS = analysis.DIST_SHAPE_KEYS


def check_fastpath_regression(record: dict, path, *,
                              slack: float = REGRESSION_SLACK) -> str:
    """Compare a fresh fast-path record against the trajectory's best.

    Scans ``path`` for prior entries from the **same host** whose
    problem shape and perf-relevant config match ``record`` (excluding
    the freshly appended entry itself), takes the best (smallest) prior
    engine wall and raises :class:`SystemExit` when the fresh wall
    exceeds ``slack`` times it.  Entries recorded on other machines are
    never compared — cross-host wall clocks would fail honest runs on
    slower hardware.  A 0.1 s noise floor keeps millisecond-scale walls
    (tiny smoke shapes, where scheduler jitter dominates) from tripping
    the gate.  Returns a human-readable verdict line otherwise.
    """
    path = Path(path)
    try:
        entries = json.loads(path.read_text()).get("entries", [])
    except (OSError, json.JSONDecodeError):
        return "regression check skipped: no readable trajectory"
    shape = {k: record["config"][k] for k in _SHAPE_KEYS}
    prior = [e for e in entries[:-1]
             if e.get("host") == record.get("host")
             and all(e.get("config", {}).get(k) == v
                     for k, v in shape.items())]
    if not prior:
        return ("regression check skipped: no prior same-host entry at "
                "this shape/config")
    best = min(p["engine"]["wall_s"] for p in prior)
    fresh = record["engine"]["wall_s"]
    if fresh > slack * max(best, 0.1):
        raise SystemExit(
            f"PERF REGRESSION: fresh engine wall {fresh:.3f} s exceeds "
            f"{slack:.2f}x the best prior same-shape entry ({best:.3f} s) "
            f"in {path.name}")
    return (f"regression check ok: engine wall {fresh:.3f} s vs best "
            f"prior {best:.3f} s ({best / max(1e-12, fresh):.2f}x)")


def check_pruning_regression(record: dict, path, *,
                             slack: float = REGRESSION_SLACK) -> str:
    """Gate the bound-pruned assignment record (schema v3+).

    Two checks against the best prior same-host, same-shape entry that
    carries a ``pruning`` record: the pruned assignment wall must not
    exceed ``slack`` times the best prior (with the usual 0.1 s noise
    floor), and the final ``active_frac`` must not have grown — the
    workload is deterministic per shape/seed, so a larger final active
    set means the bounds stopped proving rows (a pruning-logic
    regression, not wall-clock noise).  Returns a verdict line.
    """
    path = Path(path)
    try:
        entries = json.loads(path.read_text()).get("entries", [])
    except (OSError, json.JSONDecodeError):
        return "pruning check skipped: no readable trajectory"
    pr = record.get("pruning")
    if not pr:
        return "pruning check skipped: record has no pruning entry"
    shape = {k: record["config"][k] for k in _SHAPE_KEYS}
    prior = [e["pruning"] for e in entries[:-1]
             if e.get("host") == record.get("host")
             and e.get("pruning")
             and all(e.get("config", {}).get(k) == v
                     for k, v in shape.items())
             and e["pruning"].get("iters") == pr["iters"]]
    if not prior:
        return ("pruning check skipped: no prior same-host entry at "
                "this shape")
    best = min(p["pruned_assign_wall_s"] for p in prior)
    fresh = pr["pruned_assign_wall_s"]
    if fresh > slack * max(best, 0.1):
        raise SystemExit(
            f"PRUNING REGRESSION: pruned assignment wall {fresh:.3f} s "
            f"exceeds {slack:.2f}x the best prior same-shape entry "
            f"({best:.3f} s) in {path.name}")
    best_frac = min(p["final_active_frac"] for p in prior)
    if pr["final_active_frac"] > best_frac + 0.01:
        raise SystemExit(
            f"PRUNING REGRESSION: final active_frac "
            f"{pr['final_active_frac']:.3f} exceeds the best prior "
            f"same-shape entry ({best_frac:.3f}) in {path.name} — the "
            f"bounds prove fewer rows than they used to")
    return (f"pruning check ok: pruned assignment {fresh:.3f} s vs best "
            f"prior {best:.3f} s, final active_frac "
            f"{pr['final_active_frac']:.3f} (best {best_frac:.3f})")


def check_selfheal_regression(record: dict, path, *,
                              slack: float = REGRESSION_SLACK) -> str:
    """Gate the kill → spawn → re-expand recovery overhead.

    Compares the fresh dist record's per-recovered-round selfheal
    overhead against the best prior same-host, same-shape ``selfheal``
    entry in ``path`` (schema v4+); raises :class:`SystemExit` when the
    fresh overhead exceeds ``slack`` times it.  A 0.1 s noise floor
    keeps sub-100 ms overheads — dominated by process spawn jitter —
    from tripping the gate.  Returns a verdict line otherwise.
    """
    path = Path(path)
    try:
        entries = json.loads(path.read_text()).get("entries", [])
    except (OSError, json.JSONDecodeError):
        return "selfheal check skipped: no readable trajectory"
    sh = record.get("selfheal")
    if not sh:
        return "selfheal check skipped: record has no selfheal entry"
    shape = {k: record["config"][k] for k in _DIST_SHAPE_KEYS}
    prior = [e["selfheal"] for e in entries[:-1]
             if e.get("host") == record.get("host")
             and e.get("selfheal")
             and all(e.get("config", {}).get(k) == v
                     for k, v in shape.items())
             and e["selfheal"].get("workers") == sh["workers"]]
    if not prior:
        return ("selfheal check skipped: no prior same-host entry at "
                "this shape")
    best = min(p["recovered_round_overhead_s"] for p in prior)
    fresh = sh["recovered_round_overhead_s"]
    if fresh > slack * max(best, 0.1):
        raise SystemExit(
            f"SELFHEAL REGRESSION: recovered-round overhead {fresh:.3f} s "
            f"exceeds {slack:.2f}x the best prior same-shape entry "
            f"({best:.3f} s) in {path.name}")
    return (f"selfheal check ok: recovered-round overhead {fresh:.3f} s "
            f"vs best prior {best:.3f} s")


def check_reduce_scaling(record: dict, path, *,
                         slack: float = REGRESSION_SLACK) -> str:
    """Gate the reduce-topology coordinator-occupancy curve (schema v6).

    Two gates on the fresh record alone: every curve cell must be
    bit-identical to the single-worker fit, and at the widest fleet
    with at least 8 workers the star topology's ``reduce_busy_s`` must
    sit strictly above both stream and tree — the whole point of the
    alternate topologies.  Then stream and tree occupancy at the widest
    fleet are compared against the best prior same-host, same-shape
    entry with the usual slack; a 0.01 s noise floor keeps
    millisecond-scale occupancies from tripping on scheduler jitter.
    Raises :class:`SystemExit` on a violation, returns a verdict line
    otherwise.
    """
    red = record.get("reduce")
    if not red or not red.get("curve"):
        return "reduce check skipped: record has no reduce curve"
    by_workers: dict = {}
    for row in red["curve"]:
        by_workers.setdefault(row["workers"], {})[row["topology"]] = row
    bad = [f"{r['topology']}@W={r['workers']}" for r in red["curve"]
           if not r["bit_identical_vs_single"]]
    if bad:
        raise SystemExit(
            f"REDUCE REGRESSION: topologies {', '.join(bad)} are no "
            f"longer bit-identical to the single-worker fit")
    widest = max(by_workers)
    cells = by_workers[widest]
    star = cells["star"]["reduce_busy_s"]
    if widest >= 8:
        slower = [t for t in ("stream", "tree")
                  if cells[t]["reduce_busy_s"] >= star]
        if slower:
            raise SystemExit(
                f"REDUCE REGRESSION: {', '.join(slower)} coordinator "
                f"occupancy at {widest} workers is not below star "
                f"({star * 1e3:.2f} ms) — the reduce topologies have "
                f"stopped paying for themselves")
    path = Path(path)
    try:
        entries = json.loads(path.read_text()).get("entries", [])
    except (OSError, json.JSONDecodeError):
        return ("reduce check ok (fresh record only): no readable "
                "trajectory")
    shape = {k: record["config"][k] for k in _DIST_SHAPE_KEYS}
    prior = [e["reduce"] for e in entries[:-1]
             if e.get("host") == record.get("host")
             and e.get("reduce", {}).get("curve")
             and all(e.get("config", {}).get(k) == v
                     for k, v in shape.items())
             and e["reduce"].get("workers_grid") == red["workers_grid"]]
    if not prior:
        return ("reduce check ok (fresh record only): no prior "
                "same-host entry at this shape")
    verdicts = []
    for topology in ("stream", "tree"):
        best = min(
            row["reduce_busy_s"] for p in prior for row in p["curve"]
            if row["workers"] == widest and row["topology"] == topology)
        fresh = cells[topology]["reduce_busy_s"]
        if fresh > slack * max(best, 0.01):
            raise SystemExit(
                f"REDUCE REGRESSION: {topology} occupancy at {widest} "
                f"workers {fresh * 1e3:.2f} ms exceeds {slack:.2f}x the "
                f"best prior same-shape entry ({best * 1e3:.2f} ms) in "
                f"{path.name}")
        verdicts.append(f"{topology} {fresh * 1e3:.2f} ms "
                        f"(best prior {best * 1e3:.2f} ms)")
    return (f"reduce check ok at {widest} workers: star "
            f"{star * 1e3:.2f} ms above " + ", ".join(verdicts))


def check_transport(record: dict, path, *,
                    slack: float = REGRESSION_SLACK) -> str:
    """Gate the shared-memory transport record (schema v7).

    Three gates on the fresh record alone: the shm fit must be
    bit-identical to the pipe fit *and* to the single-worker baseline
    (the zero-copy plane must not move a bit), and the shm fit's pipe
    traffic must stay control-token-sized — at most
    :data:`TRANSPORT_TOKEN_BYTES` broadcast bytes per round per worker,
    i.e. the shmround tuple, never the centroid payload.  Then the shm
    wall is compared against the best prior same-host, same-shape
    ``transport`` entry with the usual slack and 0.1 s noise floor.
    Raises :class:`SystemExit` on a violation, returns a verdict line.
    """
    tp = record.get("transport")
    if not tp:
        return "transport check skipped: record has no transport entry"
    if not tp["bit_identical_shm_vs_pipe"]:
        raise SystemExit(
            "TRANSPORT REGRESSION: the shm fit is no longer "
            "bit-identical to the pipe fit — the zero-copy data plane "
            "moved a bit")
    if not tp["bit_identical_vs_single"]:
        raise SystemExit(
            "TRANSPORT REGRESSION: the shm fit is no longer "
            "bit-identical to the single-worker baseline")
    per_rw = tp["shm_broadcast_bytes_per_round_worker"]
    if per_rw > TRANSPORT_TOKEN_BYTES:
        raise SystemExit(
            f"TRANSPORT REGRESSION: shm broadcast traffic is "
            f"{per_rw:.0f} B per round per worker — above the "
            f"{TRANSPORT_TOKEN_BYTES} B control-token budget, so "
            f"payload data is leaking back onto the pipes")
    path = Path(path)
    try:
        entries = json.loads(path.read_text()).get("entries", [])
    except (OSError, json.JSONDecodeError):
        return ("transport check ok (fresh record only): no readable "
                "trajectory")
    shape = {k: record["config"][k] for k in _DIST_SHAPE_KEYS}
    prior = [e["transport"] for e in entries[:-1]
             if e.get("host") == record.get("host")
             and e.get("transport")
             and all(e.get("config", {}).get(k) == v
                     for k, v in shape.items())
             and e["transport"].get("workers") == tp["workers"]]
    if not prior:
        return (f"transport check ok (fresh record only): bit-identical, "
                f"{per_rw:.0f} B/round/worker on the pipes; no prior "
                f"same-host entry at this shape")
    best = min(p["shm"]["wall_s"] for p in prior)
    fresh = tp["shm"]["wall_s"]
    if fresh > slack * max(best, 0.1):
        raise SystemExit(
            f"TRANSPORT REGRESSION: shm fit wall {fresh:.3f} s exceeds "
            f"{slack:.2f}x the best prior same-shape entry "
            f"({best:.3f} s) in {path.name}")
    return (f"transport check ok: bit-identical, {per_rw:.0f} "
            f"B/round/worker on the pipes, shm wall {fresh:.3f} s vs "
            f"best prior {best:.3f} s")


def check_stale_report(report_path, fastpath_path, dist_path) -> str:
    """Fail when ``docs/perf.md`` lags the committed trajectory files.

    The report is a pure function of the two ``BENCH_*.json`` files
    (see :func:`repro.bench.analysis.render_perf_report`), so editing a
    trajectory — or the report — without regenerating is a plain
    string diff.  Raises :class:`SystemExit` on a mismatch; missing
    trajectory files skip the check (fresh checkouts with '-' outs).
    """
    fastpath_path, dist_path = Path(fastpath_path), Path(dist_path)
    if not fastpath_path.exists() and not dist_path.exists():
        return "stale-report check skipped: no trajectory files"
    if not Path(report_path).exists():
        raise SystemExit(
            f"STALE PERF REPORT: {report_path} does not exist but the "
            f"trajectory files do — run `python -m repro.bench.runner "
            f"--smoke` and commit the regenerated report")
    if analysis.report_is_stale(report_path, fastpath_path, dist_path):
        raise SystemExit(
            f"STALE PERF REPORT: {report_path} does not match the "
            f"committed trajectory files — run `python -m "
            f"repro.bench.runner --smoke` and commit the regenerated "
            f"report")
    return f"stale-report check ok: {report_path} matches the trajectories"


def all_figures() -> list:
    """Compute every FigureResult in paper order."""
    return [
        figures.fig7_stepwise(),
        figures.fig8_fig9_distance_vs_features(np.float32),
        figures.fig8_fig9_distance_vs_features(np.float64),
        figures.fig10_fig11_distance_vs_clusters(np.float32),
        figures.fig10_fig11_distance_vs_clusters(np.float64),
        figures.fig12_speedup_grid(np.float32),
        figures.fig12_speedup_grid(np.float64),
        figures.fig13_table1_selected_parameters(np.float32),
        figures.fig13_table1_selected_parameters(np.float64),
        figures.fig14_selection_map(np.float32),
        figures.fig15_fig16_ft_overhead(np.float32),
        figures.fig15_fig16_ft_overhead(np.float64),
        figures.fig17_fig18_error_injection(np.float32),
        figures.fig17_fig18_error_injection(np.float64),
        figures.fig19_t4_vs_features(),
        figures.fig20_t4_vs_clusters(),
        figures.fig21_t4_injection(),
    ]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the < 60 s wall-clock fast-path benchmark "
                             "instead of the full figure harness")
    parser.add_argument("--out", default=None,
                        help="with --smoke: trajectory JSON to append to "
                             "(defaults to ./BENCH_fastpath.json; '-' skips)")
    parser.add_argument("--dist-out", default=None,
                        help="with --smoke: sharded-scaling trajectory JSON "
                             "(defaults to ./BENCH_dist.json; '-' skips the "
                             "sharded smoke run)")
    parser.add_argument("--regression-slack", type=float,
                        default=REGRESSION_SLACK,
                        help="with --smoke: allowed factor over the best "
                             "prior same-shape engine wall")
    parser.add_argument("--no-regression-check", action="store_true",
                        help="with --smoke: skip the perf regression gate")
    parser.add_argument("--report", default=str(analysis.DEFAULT_REPORT_PATH),
                        help="with --smoke: generated perf report path "
                             "('-' skips the stale check and regeneration)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="with --smoke: forward to the dist smoke as "
                             "the traced run's output path ('.jsonl' "
                             "streams spans live, else Chrome trace JSON)")
    args, extra = parser.parse_known_args(argv)
    if args.smoke:
        from repro.bench import dist as dist_bench
        from repro.bench import fastpath

        out = args.out or str(fastpath.DEFAULT_RESULT_PATH)
        dist_out = args.dist_out or str(dist_bench.DEFAULT_RESULT_PATH)
        # gate FIRST: a stale committed report must fail before the
        # fresh records legitimately change the trajectory files
        if args.report != "-" and not args.no_regression_check:
            print("  " + check_stale_report(args.report, out, dist_out))
        record = fastpath.main(["--smoke"]
                               + (["--out", args.out] if args.out else [])
                               + extra)
        if out != "-" and not args.no_regression_check:
            print("  " + check_fastpath_regression(
                record, out, slack=args.regression_slack))
            print("  " + check_pruning_regression(
                record, out, slack=args.regression_slack))
            print("  " + analysis.check_fastpath_trend(record, out))
        if args.dist_out != "-":
            dist_record = dist_bench.main(
                ["--smoke"]
                + (["--out", args.dist_out] if args.dist_out else [])
                + (["--trace-out", args.trace_out] if args.trace_out
                   else []))
            if dist_out != "-" and not args.no_regression_check:
                print("  " + check_selfheal_regression(
                    dist_record, dist_out, slack=args.regression_slack))
                print("  " + check_reduce_scaling(
                    dist_record, dist_out, slack=args.regression_slack))
                print("  " + check_transport(
                    dist_record, dist_out, slack=args.regression_slack))
                print("  " + analysis.check_dist_trend(
                    dist_record, dist_out))
        if args.report != "-":
            path = analysis.write_perf_report(args.report, out, dist_out)
            print(f"  perf report -> {path}")
        return
    if extra:
        parser.error(f"unrecognised arguments: {' '.join(extra)}")
    for res in all_figures():
        print_figure(res, max_rows=8)
        print()


if __name__ == "__main__":
    main()
