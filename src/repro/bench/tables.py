"""Paper-style printing of figure results."""

from __future__ import annotations

from repro.bench.figures import FigureResult

__all__ = ["format_figure", "print_figure"]


def format_figure(res: FigureResult, *, max_rows: int | None = None) -> str:
    """Render a FigureResult as aligned text (series as columns)."""
    lines = [f"== {res.figure_id}: {res.title} =="]
    names = list(res.series)
    if names:
        xs = sorted({x for pts in res.series.values() for x, _ in pts})
        if max_rows is not None:
            xs = xs[:max_rows]
        header = f"{res.x_label:>14s} | " + " | ".join(f"{n:>20s}" for n in names)
        lines.append(header)
        lines.append("-" * len(header))
        maps = {n: dict(res.series[n]) for n in names}
        for x in xs:
            cells = []
            for n in names:
                v = maps[n].get(x)
                cells.append(f"{v:20.1f}" if v is not None else " " * 20)
            lines.append(f"{x:14.0f} | " + " | ".join(cells))
    if res.summary:
        lines.append("-- summary --")
        for key, val in res.summary.items():
            lines.append(f"  {key}: {val}")
    return "\n".join(lines)


def print_figure(res: FigureResult, *, max_rows: int | None = None) -> None:
    print(format_figure(res, max_rows=max_rows))
