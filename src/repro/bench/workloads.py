"""Problem-size grids for every figure in the paper's evaluation.

All sweeps share M = 131072 samples (the paper's fixed M).  The axis
vocabulary follows the paper: N = feature dimension, K = cluster count.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["M_PAPER", "Sweep", "FIG7_SWEEP", "fig8_sweeps", "fig10_sweeps",
           "fig12_grid", "fig15_panels", "N_SWEEP", "K_SWEEP"]

#: the paper's sample count in every evaluation figure
M_PAPER = 131072

#: N (features) sweep used on the x-axis of Figs. 8/9/15-19/21 panels
N_SWEEP = tuple(range(8, 129, 8))

#: K (clusters) sweep used on the x-axis of Figs. 10/11 and K-panels
K_SWEEP = tuple(range(8, 129, 8))


@dataclass(frozen=True)
class Sweep:
    """One benchmark sweep: a fixed panel plus a swept axis."""

    name: str
    fixed: dict
    axis: str          # 'n_features' or 'n_clusters'
    values: tuple

    def shapes(self):
        """Yield (m, n_clusters, n_features) triples."""
        for v in self.values:
            params = dict(self.fixed)
            params[self.axis] = v
            yield (M_PAPER, params["n_clusters"], params["n_features"])


#: Fig. 7 sweeps clusters at fixed features N=128
FIG7_SWEEP = Sweep("fig7", {"n_features": 128}, "n_clusters",
                   tuple(range(32, 193, 32)))


def fig8_sweeps() -> list[Sweep]:
    """Figs. 8/9/19: sweep features N with clusters K in {8, 128}."""
    return [
        Sweep("K=8", {"n_clusters": 8}, "n_features", N_SWEEP),
        Sweep("K=128", {"n_clusters": 128}, "n_features", N_SWEEP),
    ]


def fig10_sweeps() -> list[Sweep]:
    """Figs. 10/11/20: sweep clusters K with features N in {8, 128}."""
    return [
        Sweep("N=8", {"n_features": 8}, "n_clusters", K_SWEEP),
        Sweep("N=128", {"n_features": 128}, "n_clusters", K_SWEEP),
    ]


def fig12_grid() -> list[tuple[int, int, int]]:
    """Fig. 12/13/14: the (K, N) heat-map grid."""
    return [(M_PAPER, nc, nf)
            for nc in range(32, 449, 64)
            for nf in range(8, 121, 16)]


def fig15_panels() -> list[Sweep]:
    """Figs. 15-18/21: the four fault-tolerance panels."""
    return fig8_sweeps() + fig10_sweeps()
