"""Template-based code generation and kernel selection (paper Fig. 3)."""

from repro.codegen.bench import CandidateScore, rank_candidates, score_candidate
from repro.codegen.compile import compile_kernel, demo_check, feasible_candidates
from repro.codegen.cuml_params import CUML_PARAM_ID, cuml_tile
from repro.codegen.database import (
    load_selection,
    save_selection,
    tile_from_dict,
    tile_to_dict,
)
from repro.codegen.selector import KernelSelector
from repro.codegen.space import (
    DEFAULT_BOUNDS,
    SpaceBounds,
    enumerate_space,
    enumerate_warp_tiles,
)
from repro.codegen.template import kernel_name, render_kernel_source

__all__ = [
    "CandidateScore",
    "rank_candidates",
    "score_candidate",
    "compile_kernel",
    "demo_check",
    "feasible_candidates",
    "CUML_PARAM_ID",
    "cuml_tile",
    "load_selection",
    "save_selection",
    "tile_from_dict",
    "tile_to_dict",
    "KernelSelector",
    "DEFAULT_BOUNDS",
    "SpaceBounds",
    "enumerate_space",
    "enumerate_warp_tiles",
    "kernel_name",
    "render_kernel_source",
]
