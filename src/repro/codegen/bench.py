"""Model-driven benchmarking of candidate kernels.

The paper benchmarks every feasible kernel over a 64-problem-size grid
and keeps the per-shape winner as the selection criterion (Fig. 3).  The
reproduction evaluates the analytic timing model instead of wall-clock —
the model *is* the simulated hardware — which makes exhaustive sweeps
instant and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gemm.tiling import TileConfig
from repro.gpusim.device import DeviceSpec
from repro.gpusim.timing import TimingModel

__all__ = ["CandidateScore", "score_candidate", "rank_candidates"]


@dataclass(frozen=True)
class CandidateScore:
    """One kernel's modelled performance at one problem shape."""

    tile: TileConfig
    gflops: float
    time_s: float
    limiter: str

    @property
    def param_id(self) -> int:
        return self.tile.param_id


def score_candidate(model: TimingModel, tile: TileConfig, m: int,
                    n_clusters: int, k_features: int, dtype) -> CandidateScore:
    """Evaluate the distance kernel model for one candidate."""
    t = model.distance_tensorop(
        m, n_clusters, k_features, dtype,
        tile.tb.m, tile.tb.n, tile.tb.k, tile.warp.m, tile.warp.n,
        stages=tile.stages)
    return CandidateScore(tile=tile, gflops=t.gflops, time_s=t.time_s,
                          limiter=t.limiter)


def rank_candidates(device: DeviceSpec, candidates: list[TileConfig],
                    m: int, n_clusters: int, k_features: int, dtype,
                    *, top: int | None = None) -> list[CandidateScore]:
    """Score every candidate at a shape; best (highest GFLOPS) first."""
    model = TimingModel(device)
    scores = []
    for tile in candidates:
        try:
            scores.append(score_candidate(model, tile, m, n_clusters,
                                          k_features, dtype))
        except ValueError:
            continue  # infeasible on this device: skip
    scores.sort(key=lambda s: s.gflops, reverse=True)
    return scores[:top] if top is not None else scores
