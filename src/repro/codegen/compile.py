"""The "compile & run a demo" feasibility stage of the code generator.

Fig. 3's workflow: for every candidate parameter set, build a demo
program; *if it compiles and runs, it is functionally correct* and enters
the parameter queue.  Here, "compile" is ``exec`` of the rendered source
(syntax + construction errors surface exactly like nvcc errors) and the
demo run executes the kernel on a small random problem and checks the
result against the NumPy reference.
"""

from __future__ import annotations

import types

import numpy as np

from repro.codegen.template import kernel_name, render_kernel_source
from repro.gemm.reference import reference_assignment
from repro.gemm.shapes import GemmShape
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.errors import GpuSimError, ResourceLimitExceeded
from repro.gpusim.memory import GlobalMemory
from repro.utils.logging import get_logger

__all__ = ["compile_kernel", "demo_check", "feasible_candidates"]

_log = get_logger("codegen")


def compile_kernel(tile: TileConfig, dtype) -> types.ModuleType:
    """'Compile' one generated translation unit into a module object."""
    src = render_kernel_source(tile, dtype)
    name = kernel_name(tile, dtype)
    module = types.ModuleType(name)
    module.__dict__["__name__"] = name
    code = compile(src, filename=f"<generated:{name}>", mode="exec")
    exec(code, module.__dict__)
    return module


def demo_check(tile: TileConfig, dtype, device: DeviceSpec, *,
               demo_m: int = 128, demo_n: int = 32, demo_k: int = 32,
               seed: int = 0) -> bool:
    """Compile + run the demo problem; True iff the kernel is usable.

    A kernel is rejected when construction raises a resource-limit error
    (cannot launch) or when the demo result disagrees with the reference
    (functional bug in the parameterisation).
    """
    try:
        module = compile_kernel(tile, dtype)
    except SyntaxError:  # pragma: no cover - template is static
        return False
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((demo_m, demo_k)).astype(dtype)
    y = rng.standard_normal((demo_n, demo_k)).astype(dtype)
    counters = PerfCounters()
    gmem = GlobalMemory(counters)
    gmem.bind("samples", x)
    gmem.bind("centroids", y)
    gmem.bind("x_norms", np.sum(x * x, axis=1, dtype=x.dtype).reshape(-1, 1))
    gmem.bind("y_norms", np.sum(y * y, axis=1, dtype=y.dtype).reshape(-1, 1))
    assign = np.full((demo_m, 2), np.inf)
    assign[:, 1] = -1
    gmem.bind("assign", assign)
    try:
        kern = module.make_kernel(device, counters=counters)
        kern.run(gmem, GemmShape(demo_m, demo_n, demo_k))
    except ResourceLimitExceeded:
        return False
    except GpuSimError:  # pragma: no cover - defensive
        _log.warning("demo run failed for %s", kernel_name(tile, dtype))
        return False
    tf32 = np.dtype(dtype) == np.float32
    ref, _ = reference_assignment(x, y, tf32=tf32)
    got = assign[:, 1].astype(np.int64)
    return float(np.mean(got == ref)) > 0.999


def feasible_candidates(candidates: list[TileConfig], dtype,
                        device: DeviceSpec, *, run_demo: bool = False) -> list[TileConfig]:
    """Filter a candidate list down to the parameter queue.

    ``run_demo=False`` (default) uses the fast resource check only, which
    is what the selector uses; ``run_demo=True`` additionally executes the
    functional demo for every survivor (slow; exercised by tests on a
    sample).
    """
    queue = []
    for tile in candidates:
        if not tile.feasible_on(device, dtype):
            continue
        if run_demo and not demo_check(tile, dtype, device):
            continue  # pragma: no cover - resource check already filters
        queue.append(tile)
    return queue
