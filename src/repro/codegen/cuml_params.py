"""cuML's fixed kernel parameters (paper Table I).

cuML hard-codes one parameter group per precision in its CUTLASS-based
FusedDistanceNN; these constants pin the simulated cuML baseline to
exactly those tiles:

========  =============  ============  ===========
dtype     Threadblock    Warp          Thread
========  =============  ============  ===========
FP32      32, 256, 16    32, 64, 16    16, 8, 4
FP64      64, 64, 16     32, 32, 16    8, 8, 4
========  =============  ============  ===========

The pipeline depth follows the CUTLASS SM80 default (4 stages), which is
what makes cuML's prologue so expensive against 1-2-iteration main loops
at small feature counts — the "very low occupancy/utilisation" failure
the paper describes in Sec. V-A6.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.tiling import TileConfig
from repro.gpusim.device import get_device

__all__ = ["cuml_tile", "CUML_PARAM_ID"]

#: sentinel parameter id for the cuML fixed configuration
CUML_PARAM_ID = -100


def cuml_tile(dtype, device=None, *, stages: int | None = None) -> TileConfig:
    """The fixed cuML parameter group for ``dtype`` (Table I).

    FP32 uses the CUTLASS SM80 default pipeline depth (4); the FP64 DMMA
    path ships with 3 stages (smaller shared-memory budget per stage at
    8-byte elements).  Pre-Ampere devices (no ``cp.async``) fall back to
    the classic 2-stage double buffer.
    """
    if stages is None:
        if device is not None and get_device(device).sm_version < 80:
            stages = 2
        else:
            stages = 4 if np.dtype(dtype) == np.float32 else 3
    if np.dtype(dtype) == np.float32:
        return TileConfig.make((32, 256, 16), (32, 64, 16), dtype,
                               stages=stages, param_id=CUML_PARAM_ID)
    return TileConfig.make((64, 64, 16), (32, 32, 16), dtype,
                           stages=stages, param_id=CUML_PARAM_ID)
