"""Persistence for kernel-selection tables.

The paper ships the benchmark-derived selection as part of the library;
this module serialises a selector's (shape → parameter id) table plus the
parameter definitions to JSON so a deployment can skip the sweep.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.gemm.tiling import Tile3, TileConfig

__all__ = ["tile_to_dict", "tile_from_dict", "save_selection", "load_selection"]


def tile_to_dict(tile: TileConfig) -> dict:
    """JSON-serialisable form of one parameter group."""
    return {
        "tb": list(tile.tb),
        "warp": list(tile.warp),
        "thread": list(tile.thread),
        "stages": tile.stages,
        "param_id": tile.param_id,
    }


def tile_from_dict(d: dict) -> TileConfig:
    """Inverse of :func:`tile_to_dict`."""
    return TileConfig(
        tb=Tile3(*d["tb"]), warp=Tile3(*d["warp"]), thread=Tile3(*d["thread"]),
        stages=int(d["stages"]), param_id=int(d["param_id"]))


def save_selection(path, *, device_name: str, dtype, entries: dict,
                   tiles: dict) -> None:
    """Write a selection table.

    ``entries``: {"m,n,k": param_id}; ``tiles``: {param_id: TileConfig}.
    """
    payload = {
        "device": device_name,
        "dtype": np.dtype(dtype).name,
        "entries": {key: int(pid) for key, pid in entries.items()},
        "tiles": {str(pid): tile_to_dict(t) for pid, t in tiles.items()},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_selection(path) -> tuple[str, str, dict, dict]:
    """Read a selection table; returns (device, dtype, entries, tiles)."""
    payload = json.loads(Path(path).read_text())
    entries = {key: int(pid) for key, pid in payload["entries"].items()}
    tiles = {int(pid): tile_from_dict(d) for pid, d in payload["tiles"].items()}
    return payload["device"], payload["dtype"], entries, tiles
