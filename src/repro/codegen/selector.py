"""Benchmark-driven kernel selection (the right half of Fig. 3).

A :class:`KernelSelector` owns the feasible parameter queue for one
(device, dtype) pair and answers "which kernel should run this shape?"
by ranking the candidates with the timing model.  Selections are cached
per shape, can be precomputed over a problem grid, and serialise via
:mod:`repro.codegen.database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codegen.bench import rank_candidates
from repro.codegen.compile import feasible_candidates
from repro.codegen.database import load_selection, save_selection
from repro.codegen.space import DEFAULT_BOUNDS, SpaceBounds, enumerate_space
from repro.gemm.tiling import TileConfig
from repro.gpusim.device import DeviceSpec, get_device

__all__ = ["KernelSelector"]


def _shape_key(m: int, n_clusters: int, k_features: int) -> str:
    return f"{m},{n_clusters},{k_features}"


@dataclass
class KernelSelector:
    """Per-(device, dtype) kernel chooser."""

    device: DeviceSpec
    dtype: np.dtype
    candidates: list[TileConfig]
    _cache: dict[str, TileConfig] = field(default_factory=dict)

    # -- construction -----------------------------------------------------
    @classmethod
    def for_device(cls, device, dtype,
                   bounds: SpaceBounds = DEFAULT_BOUNDS) -> "KernelSelector":
        """Enumerate the rule-respecting space and keep what can launch."""
        device = get_device(device)
        dtype = np.dtype(dtype)
        space = enumerate_space(dtype, bounds)
        queue = feasible_candidates(space, dtype, device)
        return cls(device=device, dtype=dtype, candidates=queue)

    # -- selection ----------------------------------------------------------
    def best_tile(self, m: int, n_clusters: int, k_features: int) -> TileConfig:
        """Winner for one problem shape (cached)."""
        key = _shape_key(m, n_clusters, k_features)
        if key not in self._cache:
            scores = rank_candidates(self.device, self.candidates, m,
                                     n_clusters, k_features, self.dtype, top=1)
            if not scores:
                raise RuntimeError(
                    f"no feasible kernel for shape {key} on {self.device.name}")
            self._cache[key] = scores[0].tile
        return self._cache[key]

    def best_score(self, m: int, n_clusters: int, k_features: int):
        """(tile, modelled GFLOPS) for the winner at one shape."""
        from repro.codegen.bench import score_candidate
        from repro.gpusim.timing import TimingModel

        tile = self.best_tile(m, n_clusters, k_features)
        return score_candidate(TimingModel(self.device), tile, m, n_clusters,
                               k_features, self.dtype)

    def precompute(self, shapes: list[tuple[int, int, int]]) -> dict[str, int]:
        """Select for a grid of shapes; returns {shape_key: param_id}."""
        out = {}
        for m, n, k in shapes:
            tile = self.best_tile(m, n, k)
            out[_shape_key(m, n, k)] = tile.param_id
        return out

    def selected_param_ids(self) -> list[int]:
        """Distinct parameter ids chosen so far (paper: only 7 FP32 / 4
        FP64 of the full queue ever win)."""
        return sorted({t.param_id for t in self._cache.values()})

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        entries = {key: t.param_id for key, t in self._cache.items()}
        tiles = {t.param_id: t for t in self._cache.values()}
        save_selection(path, device_name=self.device.name, dtype=self.dtype,
                       entries=entries, tiles=tiles)

    @classmethod
    def load(cls, path, device=None) -> "KernelSelector":
        dev_name, dtype, entries, tiles = load_selection(path)
        device = get_device(device) if device is not None else get_device(
            "a100" if "A100" in dev_name else "t4")
        sel = cls(device=device, dtype=np.dtype(dtype),
                  candidates=sorted(tiles.values(), key=lambda t: t.param_id))
        sel._cache = {key: tiles[pid] for key, pid in entries.items()}
        return sel
