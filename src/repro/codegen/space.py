"""Kernel-parameter search-space enumeration (Sec. III-B1).

The paper does not brute-force every integer; candidates obey:

1. all parameters are powers of two;
2. ``Warp.K == Threadblock.K``;
3. the warp/thread area ratio is 8 or 16;
4. the thread level is fixed per dtype by the tensor-core fragment.

On top of those validity rules this module applies the search *bounds*
(tile extents, warp counts per block) that keep the space at the paper's
scale — 157 FP32 / 145 FP64 kernel definitions before the feasibility
filter.  Parameter ids are assigned in enumeration order, mirroring the
parameter numbers of Fig. 13/14 and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gemm.tiling import THREAD_TILE, Tile3, TileConfig, validate_rules

__all__ = ["SpaceBounds", "enumerate_warp_tiles", "enumerate_space", "DEFAULT_BOUNDS"]


@dataclass(frozen=True)
class SpaceBounds:
    """Search-space bounds for the enumeration.

    The defaults were chosen so the rule-respecting candidate count lands
    at the paper's scale; widen them for ablation studies.
    """

    tb_m_max: int = 256
    tb_n_max: int = 256
    tb_m_min: int = 32
    tb_n_min: int = 32
    tb_k_options: tuple[int, ...] = (8, 16, 32)
    max_warps_per_block: int = 8
    min_warps_per_block: int = 1
    stages: int = 3


DEFAULT_BOUNDS = SpaceBounds()


def _pow2_range(lo: int, hi: int) -> list[int]:
    out, v = [], lo
    while v <= hi:
        out.append(v)
        v *= 2
    return out


def enumerate_warp_tiles(dtype, bounds: SpaceBounds = DEFAULT_BOUNDS) -> list[tuple[int, int]]:
    """(w_m, w_n) pairs whose warp/thread area ratio is 8 or 16."""
    t = THREAD_TILE[np.dtype(dtype)]
    pairs = []
    for w_m in _pow2_range(t.m, bounds.tb_m_max):
        for w_n in _pow2_range(t.n, bounds.tb_n_max):
            ratio = (w_m // t.m) * (w_n // t.n)
            if w_m % t.m == 0 and w_n % t.n == 0 and ratio in (8, 16):
                pairs.append((w_m, w_n))
    return pairs


def enumerate_space(dtype, bounds: SpaceBounds = DEFAULT_BOUNDS) -> list[TileConfig]:
    """All rule-respecting kernel parameter groups, ids in order.

    This is the *definition* space; resource feasibility (the demo
    compile+run of Fig. 3) is applied later by
    :func:`repro.codegen.compile.feasible_candidates`.
    """
    dt = np.dtype(dtype)
    thread = THREAD_TILE[dt]
    configs: list[TileConfig] = []
    pid = 0
    for tb_k in bounds.tb_k_options:
        for w_m, w_n in enumerate_warp_tiles(dt, bounds):
            for tb_m in _pow2_range(max(w_m, bounds.tb_m_min), bounds.tb_m_max):
                if tb_m % w_m:
                    continue
                for tb_n in _pow2_range(max(w_n, bounds.tb_n_min), bounds.tb_n_max):
                    if tb_n % w_n:
                        continue
                    warps = (tb_m // w_m) * (tb_n // w_n)
                    if not bounds.min_warps_per_block <= warps <= bounds.max_warps_per_block:
                        continue
                    tb = Tile3(tb_m, tb_n, tb_k)
                    warp = Tile3(w_m, w_n, tb_k)
                    if validate_rules(tb, warp, thread):
                        continue  # pragma: no cover - bounds guarantee valid
                    configs.append(TileConfig(tb, warp, thread,
                                              stages=bounds.stages, param_id=pid))
                    pid += 1
    return configs
