"""The paper's primary contribution: FT K-Means (step-wise optimised
K-means with fused warp-level ABFT)."""

from repro.core.accumulate import (
    StreamedAccumulator,
    accumulate_oneshot,
    accumulate_streamed,
)
from repro.core.api import FTKMeans
from repro.core.assignment import AssignmentKernelBase, AssignmentResult, fast_assign
from repro.core.broadcast import V3BroadcastAssignment
from repro.core.config import MODES, UPDATE_MODES, VARIANT_NAMES, KMeansConfig
from repro.core.convergence import ConvergenceMonitor, EwaInertiaMonitor
from repro.core.engine import (
    BlockMap,
    EngineStats,
    FastPathEngine,
    FitCache,
    unchunked_assign,
)
from repro.core.ft_kmeans import FtAssignment, FtBlockState, FtTensorOpGemm
from repro.core.fused import V2FusedAssignment
from repro.core.gemm_kmeans import V1GemmAssignment, default_simt_tile
from repro.core.initializers import init_kmeans_plusplus, init_random, initialize
from repro.core.naive import NaiveAssignment
from repro.core.tensorop import TensorOpAssignment, default_tensorop_tile
from repro.core.update import UpdateResult, UpdateStage
from repro.core.validation import validate_centroids, validate_data
from repro.core.variants import VARIANTS, build_assignment

__all__ = [
    "FTKMeans",
    "AssignmentKernelBase",
    "AssignmentResult",
    "fast_assign",
    "StreamedAccumulator",
    "accumulate_oneshot",
    "accumulate_streamed",
    "V3BroadcastAssignment",
    "MODES",
    "UPDATE_MODES",
    "VARIANT_NAMES",
    "KMeansConfig",
    "ConvergenceMonitor",
    "EwaInertiaMonitor",
    "BlockMap",
    "EngineStats",
    "FastPathEngine",
    "FitCache",
    "unchunked_assign",
    "FtAssignment",
    "FtBlockState",
    "FtTensorOpGemm",
    "V2FusedAssignment",
    "V1GemmAssignment",
    "default_simt_tile",
    "init_kmeans_plusplus",
    "init_random",
    "initialize",
    "NaiveAssignment",
    "TensorOpAssignment",
    "default_tensorop_tile",
    "UpdateResult",
    "UpdateStage",
    "validate_centroids",
    "validate_data",
    "VARIANTS",
    "build_assignment",
]
