"""Streamed centroid-sum accumulation (the update stage's hot loop).

The seed update stage accumulates per-cluster sums with ``np.add.at`` —
one full-M scatter pass that became the wall-clock bottleneck once the
assignment stage went chunked (see ``BENCH_fastpath.json`` at M=200k).
:class:`StreamedAccumulator` replaces it with per-chunk, per-feature
``np.bincount`` segment sums that the streaming engine can feed *inside*
its chunk loop, right after each chunk's labels are computed, while the
chunk's sample rows are still hot in cache.

Bit-exactness — the property everything else leans on:

* ``np.bincount(labels, weights=w)`` and ``np.add.at(sums, labels, w)``
  both walk the input *sequentially in sample order*, so each bin's sum
  has the identical floating-point association.
* Chunking normally breaks that (per-chunk partials merge pairwise, not
  sequentially).  The accumulator avoids partials entirely with a
  *continuation* trick: each bincount call is prepended with one
  pseudo-sample per cluster carrying the running sum, so bin ``c``
  computes ``(((running_c + s_i) + s_j) + ...)`` — exactly the sequence
  the one-shot ``np.add.at`` would have produced, **no matter where the
  chunk boundaries fall**.

The result: streamed accumulation is bit-identical to the seed one-shot
path for any ``chunk_bytes`` / feed granularity, and ~2x faster at the
acceptance shape (M=200k, N=64, K=64) because bincount's tight C loop
beats the buffered ``ufunc.at`` machinery.

Accumulation runs in float64 scratch (matching the seed's
``x.astype(np.float64)``) with the transposed ``(features, clusters)``
layout so each per-feature column is contiguous for bincount.  All
scratch is pooled and bounded: the running sums are ``N x K`` float64
and the transpose/weights staging never exceeds ~:data:`STAGING_BYTES`
(oversized feeds are split internally — the continuation trick makes
the split invisible in the bits).  This staging is the update stage's
own budget, deliberately separate from the engine's ``chunk_bytes``
(which bounds assignment scratch); every allocation is reported through
``alloc_hook``.

Thread-safety: feeds must arrive in global sample order — the engine's
threaded dispatch commits chunks in order (see
``FastPathEngine._run_threaded``); the accumulator itself is
single-writer by contract.

Sample weights: :meth:`StreamedAccumulator.bind_weights` attaches a
per-sample weight vector once; ``feed`` then consumes the slice matching
its in-order sample window (the running ``samples_seen`` offset).  The
weighted products ``w_i * x_ij`` are formed in float64 — value-identical
to the one-shot ``np.add.at(sums, labels, x64 * w[:, None])`` — and the
weighted *counts* ride the same continuation trick as the sums, so
weighted accumulation stays bit-identical to the sequential one-shot
pass for any feed granularity, shard boundary or worker count.

State transfer (the distributed reduce's primitive):
:meth:`StreamedAccumulator.export_state` snapshots the running fold —
sums, counts, and the ``[lo, hi)`` row window it covers —
:meth:`StreamedAccumulator.load_state` seeds a fresh accumulator with
it, and :meth:`StreamedAccumulator.merge_from` adopts a state that was
produced as a *continuation* of this accumulator's current fold.
Because each per-bin sum is a strict sequential left fold, two
fold-from-zero partials can never be added exactly; the only exact
combine is seeding an accumulator with the prefix state and folding
the suffix rows through it.  ``merge_from`` therefore refuses any
state whose window does not start exactly where this accumulator
stopped — the out-of-order combine rejection the distributed merge
tree's ordering contract leans on.

Hoisted transpose operand: the per-feed ``x_chunk.T`` staging copy is a
strided gather that dominates the accumulation wall at large M.
:meth:`StreamedAccumulator.bind_source_t` attaches a fit-lifetime
``(n_features, total_rows)`` transposed copy of the exact stream this
accumulator will be fed (the engine's operand cache, or the
coordinator's merge operand); ``feed`` then reads contiguous feature
rows at its running sample offset instead of transposing the chunk.
The float64 conversion — and, with weights, the float64 product —
happens per element exactly as before, so the accumulated bits are
identical with or without the binding.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamedAccumulator", "accumulate_oneshot", "accumulate_streamed"]

#: budget for the pooled float64 transpose staging; oversized feeds are
#: split so the staging never exceeds this (any split gives identical
#: bits thanks to the continuation trick).  Independent of the engine's
#: ``chunk_bytes``: the update stage owns its own bounded scratch.
STAGING_BYTES = 8 << 20

#: sub-feed row floor — below this the per-call bincount overhead
#: dominates, so very wide feature counts trade staging size for speed
MIN_FEED_ROWS = 1024

#: default sub-feed rows at 64 features (kept for tests/overrides)
FEED_ROWS = STAGING_BYTES // (8 * 64)


class StreamedAccumulator:
    """Per-cluster sum/count accumulation fed chunk-by-chunk.

    Parameters
    ----------
    n_clusters : int
        Number of bins (K).
    n_features : int
        Feature dimension of the samples (N in the paper's notation).
    alloc_hook : callable, optional
        ``(name, nbytes)`` callback fired for every scratch allocation
        (allocation-tracking tests; mirrors the engine's hook).

    Notes
    -----
    ``feed`` must be called in global sample order; the running sums then
    carry exactly the same bits as one sequential ``np.add.at`` pass over
    the concatenation of every fed chunk.  ``packed()`` returns the seed
    update stage's ``(K, N+1)`` layout (sums ‖ counts) so the two paths
    stay drop-in interchangeable.
    """

    def __init__(self, n_clusters: int, n_features: int, *, alloc_hook=None):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.n_clusters = int(n_clusters)
        self.n_features = int(n_features)
        self.alloc_hook = alloc_hook
        # transposed (features, clusters) layout: each feature's running
        # sums are one contiguous bincount output row
        self._sums_t = np.zeros((self.n_features, self.n_clusters),
                                dtype=np.float64)
        self._counts = np.zeros(self.n_clusters, dtype=np.float64)
        self._cluster_ids = np.arange(self.n_clusters, dtype=np.int64)
        self._ext_w: np.ndarray | None = None     # weights staging
        self._ext_l: np.ndarray | None = None     # labels staging
        self._xt: np.ndarray | None = None        # float64 transpose staging
        self._weights: np.ndarray | None = None   # bound per-sample weights
        self._src_t: np.ndarray | None = None     # bound transposed stream
        #: rows per internal sub-feed: staging stays under STAGING_BYTES
        self.feed_rows = max(MIN_FEED_ROWS,
                             STAGING_BYTES // (8 * self.n_features))
        self.samples_seen = 0
        #: offset at which the current fold chain was seeded (reset /
        #: load_state); exported so continuation order is checkable
        self._fold_lo = 0
        self.feeds = 0
        #: lifetime tallies (never zeroed by reset): what the metrics
        #: registry exports as ``accumulate.*`` — per-iteration
        #: ``feeds``/``samples_seen`` restart at 0 every reset and
        #: cannot describe a whole fit
        self.total_feeds = 0
        self.total_rows_fed = 0
        self._record_alloc("accumulator_sums", self._sums_t.nbytes
                           + self._counts.nbytes)

    def _record_alloc(self, name: str, nbytes: int) -> None:
        if self.alloc_hook is not None:
            self.alloc_hook(name, nbytes)

    def set_alloc_hook(self, hook) -> None:
        """Attach an allocation tracker, replaying allocations that
        predate the attachment (the engine wires its hook at the first
        fused ``assign``, after ``__init__`` already allocated the
        sums) so accounting never undercounts resident scratch."""
        if hook is None or self.alloc_hook is not None:
            return
        self.alloc_hook = hook
        self._record_alloc("accumulator_sums",
                           self._sums_t.nbytes + self._counts.nbytes)
        if self._ext_w is not None:
            self._record_alloc("accumulator_staging",
                               self._ext_w.nbytes + self._ext_l.nbytes)
        if self._xt is not None:
            self._record_alloc("accumulator_staging", self._xt.nbytes)

    # ------------------------------------------------------------------
    def bind_weights(self, sample_weight: np.ndarray | None) -> None:
        """Attach (or detach, with None) a per-sample weight vector.

        ``feed`` consumes ``sample_weight[samples_seen : samples_seen +
        rows]`` for each in-order chunk, so the binding covers the whole
        stream this accumulator will see before its next ``reset``.  The
        vector is converted to float64 once (value-exactly).
        """
        if sample_weight is None:
            self._weights = None
            return
        w = np.ascontiguousarray(sample_weight, dtype=np.float64)
        if w.ndim != 1:
            raise ValueError(
                f"sample_weight must be 1-D, got shape {w.shape}")
        self._weights = w

    def bind_source_t(self, source_t: np.ndarray | None) -> None:
        """Attach (or detach, with None) a transposed copy of the stream.

        ``source_t`` must be ``(n_features, total_rows)`` and hold, per
        feature, exactly the values of the chunks this accumulator will
        be fed in order — ``feed`` reads
        ``source_t[:, samples_seen : samples_seen + rows]`` for each
        in-order chunk instead of transposing the chunk itself (the
        caller still passes ``x_chunk`` for its row count and dtype
        contract).  Like a bound weight vector, the binding survives
        ``reset`` and covers the whole stream up to the next rebind.
        """
        if source_t is None:
            self._src_t = None
            return
        if source_t.ndim != 2 or source_t.shape[0] != self.n_features:
            raise ValueError(
                f"source_t must be (n_features={self.n_features}, rows), "
                f"got shape {source_t.shape}")
        self._src_t = source_t

    def reset(self, offset: int = 0) -> None:
        """Zero the running sums/counts (start of a Lloyd iteration).

        Bound weights survive a reset: the same fit re-feeds the same
        stream every iteration, restarting at offset 0.  A non-zero
        ``offset`` starts the fold mid-stream (bound weights and source
        operands are then indexed from there) — the distributed combine
        path's from-zero suffix fold.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self._sums_t[:] = 0.0
        self._counts[:] = 0.0
        self.samples_seen = int(offset)
        self._fold_lo = int(offset)
        self.feeds = 0

    def _staging(self, rows: int) -> tuple[np.ndarray, np.ndarray]:
        """Pooled (weights, labels) staging of at least n + rows slots."""
        need = self.n_clusters + rows
        if self._ext_w is None or self._ext_w.shape[0] < need:
            self._ext_w = np.empty(need, dtype=np.float64)
            self._ext_l = np.empty(need, dtype=np.int64)
            self._ext_l[:self.n_clusters] = self._cluster_ids
            self._record_alloc("accumulator_staging",
                               self._ext_w.nbytes + self._ext_l.nbytes)
        if (self._src_t is None
                and (self._xt is None or self._xt.shape[1] < rows)):
            # the float64 transpose staging only exists on the unbound
            # path: a bound source is read per feature row directly
            self._xt = np.empty((self.n_features, rows), dtype=np.float64)
            self._record_alloc("accumulator_staging", self._xt.nbytes)
        return self._ext_w, self._ext_l

    def feed(self, x_chunk: np.ndarray, labels_chunk: np.ndarray) -> None:
        """Accumulate one chunk of samples (must arrive in sample order).

        Oversized chunks are split internally into ``feed_rows``-row
        sub-feeds: the pooled float64 transpose staging then stays
        under :data:`STAGING_BYTES` and cache-sized (a budget-sized
        engine chunk fed whole would thrash it), and the continuation
        trick makes the split invisible in the bits.

        Parameters
        ----------
        x_chunk : ndarray of shape (rows, n_features)
            Sample rows in the kernel dtype (converted to float64
            internally, value-exactly — matching the seed's
            ``x.astype(np.float64)``).
        labels_chunk : ndarray of shape (rows,)
            The chunk's cluster assignments.
        """
        rows = x_chunk.shape[0]
        if rows == 0:
            return
        step = self.feed_rows
        if rows > step:
            for lo in range(0, rows, step):
                self._feed_one(x_chunk[lo:lo + step],
                               labels_chunk[lo:lo + step])
        else:
            self._feed_one(x_chunk, labels_chunk)
        self.feeds += 1
        self.total_feeds += 1
        self.total_rows_fed += rows

    def _feed_one(self, x_chunk: np.ndarray, labels_chunk: np.ndarray) -> None:
        rows = x_chunk.shape[0]
        n = self.n_clusters
        off = self.samples_seen
        w, lbl = self._staging(rows)
        lbl[n:n + rows] = labels_chunk
        ext_l = lbl[:n + rows]
        w_s = None
        if self._weights is not None:
            if off + rows > self._weights.shape[0]:
                raise ValueError(
                    f"feed past bound weights: offset {off} + {rows} rows "
                    f"> {self._weights.shape[0]} weights")
            w_s = self._weights[off: off + rows]
        src = None
        if self._src_t is not None:
            if off + rows > self._src_t.shape[1]:
                raise ValueError(
                    f"feed past bound source: offset {off} + {rows} rows "
                    f"> {self._src_t.shape[1]} source columns")
            src = self._src_t[:, off: off + rows]
        else:
            # transposed float64 staging (pooled): one contiguous column
            # per feature; the conversion is value-exact, so the bits
            # match the seed's x.astype(np.float64)
            xt = self._xt[:, :rows]
            np.copyto(xt, x_chunk.T)
            if w_s is not None:
                # weighted products formed in float64, value-identical to
                # the one-shot x64 * w[:, None]
                xt *= w_s[None, :]
        for j in range(self.n_features):
            # continuation trick: the running sums ride along as one
            # pseudo-sample per cluster, so the per-bin association stays
            # exactly sequential across feed boundaries
            w[:n] = self._sums_t[j]
            if src is not None:
                # contiguous feature row off the bound transpose: same
                # float64 conversion (and weighted product) per element
                # as the staging path, without the strided gather
                np.copyto(w[n:n + rows], src[j])
                if w_s is not None:
                    w[n:n + rows] *= w_s
            else:
                w[n:n + rows] = xt[j]
            self._sums_t[j] = np.bincount(ext_l, weights=w[:n + rows],
                                          minlength=n)
        if w_s is None:
            # integer counts: any association is exact, skip the staging
            self._counts += np.bincount(labels_chunk, minlength=n)
        else:
            # weighted counts need the same continuation as the sums to
            # match the sequential np.add.at(sums[:, k], labels, w) bits
            w[:n] = self._counts
            w[n:n + rows] = w_s
            self._counts[:] = np.bincount(ext_l, weights=w[:n + rows],
                                          minlength=n)
        self.samples_seen += rows

    # -- state transfer (distributed reduce primitive) -----------------
    def export_state(self, base: int = 0) -> dict:
        """Snapshot the running fold as a transferable state dict.

        Returns ``{"lo", "hi", "sums_t", "counts"}`` where the arrays
        are copies (safe to ship across a pipe) and ``[lo, hi)`` is the
        stream window the fold covers, shifted by ``base`` — a worker
        whose accumulator counts rows shard-locally passes
        ``base=shard.lo`` so the exported window is absolute.
        """
        return {"lo": int(base) + self._fold_lo,
                "hi": int(base) + self.samples_seen,
                "sums_t": self._sums_t.copy(),
                "counts": self._counts.copy()}

    def load_state(self, state: dict) -> None:
        """Seed this accumulator with an exported fold state.

        The next ``feed`` continues the fold exactly where the exported
        accumulator stopped: subsequent sums carry the identical
        floating-point association as if this accumulator had folded
        the whole ``[state['lo'], state['hi'])`` window itself.  Bound
        weights/source operands must cover the absolute offsets.
        """
        sums_t = np.asarray(state["sums_t"], dtype=np.float64)
        counts = np.asarray(state["counts"], dtype=np.float64)
        if sums_t.shape != self._sums_t.shape:
            raise ValueError(
                f"state sums_t shape {sums_t.shape} != "
                f"{self._sums_t.shape}")
        if counts.shape != self._counts.shape:
            raise ValueError(
                f"state counts shape {counts.shape} != "
                f"{self._counts.shape}")
        np.copyto(self._sums_t, sums_t)
        np.copyto(self._counts, counts)
        self._fold_lo = int(state["lo"])
        self.samples_seen = int(state["hi"])
        self.feeds = 0

    def merge_from(self, state: dict) -> None:
        """Adopt a state produced as a *continuation* of this fold.

        ``state`` must come from an accumulator that was seeded with
        this accumulator's current state (via :meth:`load_state` —
        possibly through further continuation hops) and then fed the
        rows ``[self.samples_seen, state['hi'])`` in order; adopting
        its arrays is then bit-equal to feeding those rows here.  A
        state whose window does not start exactly at ``samples_seen``
        is rejected — float addition is non-associative, so merging
        out of continuation order cannot be exact.
        """
        if int(state["lo"]) != self._fold_lo:
            raise ValueError(
                f"merge_from chain origin {state['lo']} != "
                f"fold origin {self._fold_lo}: state is not a "
                f"continuation of this fold")
        if int(state["hi"]) < self.samples_seen:
            raise ValueError(
                f"merge_from out of order: state covers rows up to "
                f"{state['hi']} but this fold already reached "
                f"{self.samples_seen}")
        sums_t = np.asarray(state["sums_t"], dtype=np.float64)
        if sums_t.shape != self._sums_t.shape:
            raise ValueError(
                f"state sums_t shape {sums_t.shape} != "
                f"{self._sums_t.shape}")
        np.copyto(self._sums_t, sums_t)
        np.copyto(self._counts,
                  np.asarray(state["counts"], dtype=np.float64))
        self.samples_seen = int(state["hi"])

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Lifetime observability tallies (for the metrics registry).

        ``total_feeds`` / ``total_rows_fed`` accumulate across resets —
        one fit's whole feed history — unlike the per-iteration
        ``feeds`` / ``samples_seen`` the bit-exactness machinery uses.
        """
        return {"total_feeds": self.total_feeds,
                "total_rows_fed": self.total_rows_fed}

    def packed(self) -> np.ndarray:
        """Sums and counts in the seed update stage's ``(K, N+1)`` layout."""
        out = np.empty((self.n_clusters, self.n_features + 1),
                       dtype=np.float64)
        out[:, :self.n_features] = self._sums_t.T
        out[:, self.n_features] = self._counts
        return out

    @property
    def counts(self) -> np.ndarray:
        """Per-cluster sample counts accumulated so far (float64 view)."""
        return self._counts

    @property
    def sums(self) -> np.ndarray:
        """Per-cluster feature sums accumulated so far, shape (K, N)."""
        return self._sums_t.T


def accumulate_oneshot(x: np.ndarray, labels: np.ndarray, n_clusters: int,
                       *, sample_weight: np.ndarray | None = None
                       ) -> np.ndarray:
    """The seed accumulation (``np.add.at``), kept as the regression
    baseline the streamed path is bit-compared against.  With
    ``sample_weight`` the scatter adds ``w_i * x_i`` and the count column
    accumulates the weights themselves."""
    k = x.shape[1]
    sums = np.zeros((n_clusters, k + 1), dtype=np.float64)
    x64 = x.astype(np.float64)
    if sample_weight is None:
        np.add.at(sums[:, :k], labels, x64)
        np.add.at(sums[:, k], labels, 1.0)
    else:
        w = np.ascontiguousarray(sample_weight, dtype=np.float64)
        np.add.at(sums[:, :k], labels, x64 * w[:, None])
        np.add.at(sums[:, k], labels, w)
    return sums


def accumulate_streamed(x: np.ndarray, labels: np.ndarray, n_clusters: int,
                        *, feed_rows: int = FEED_ROWS,
                        sample_weight: np.ndarray | None = None,
                        source_t: np.ndarray | None = None) -> np.ndarray:
    """One-call streamed accumulation over a whole array.

    Feeds ``x`` through a :class:`StreamedAccumulator` in
    ``feed_rows``-sized chunks; bit-identical to
    :func:`accumulate_oneshot` for every ``feed_rows`` (weighted or
    not).  ``source_t`` optionally binds an existing
    ``(n_features, m)`` transposed copy of ``x`` (see
    :meth:`StreamedAccumulator.bind_source_t`) so the pass reads
    contiguous feature rows instead of re-transposing every chunk —
    same bits, no strided gather.
    """
    acc = StreamedAccumulator(n_clusters, x.shape[1])
    acc.bind_weights(sample_weight)
    acc.bind_source_t(source_t)
    m = x.shape[0]
    for lo in range(0, m, feed_rows):
        hi = min(lo + feed_rows, m)
        acc.feed(x[lo:hi], labels[lo:hi])
    return acc.packed()
