"""FTKMeans — the public estimator.

An sklearn-style interface over the simulated-GPU K-means of the paper::

    from repro import FTKMeans

    km = FTKMeans(n_clusters=16, variant="ft", dtype="float32",
                  device="a100", seed=0)
    km.fit(X)
    km.labels_, km.cluster_centers_, km.inertia_, km.sim_time_s_

``variant`` selects the paper's optimisation rung (naive → v1 → v2 → v3 →
tensorop → ft); ``p_inject`` turns on SEU error injection; ``mode``
chooses tile-accurate ('functional') or vectorised ('fast') execution.
The fitted model also exposes the simulated clock (``sim_time_s_``), the
per-kernel timing log (``timing_log_``) and the merged performance
counters (``counters_``) so benchmarks can report paper-style GFLOPS.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import AssignmentResult
from repro.core.config import KMeansConfig
from repro.core.convergence import ConvergenceMonitor
from repro.core.initializers import initialize
from repro.core.update import UpdateStage
from repro.core.validation import validate_centroids, validate_data
from repro.core.variants import build_assignment
from repro.gemm.shapes import distance_flops
from repro.gpusim.clock import SimClock
from repro.gpusim.counters import PerfCounters

__all__ = ["FTKMeans"]


class FTKMeans:
    """K-means estimator running on the simulated GPU.

    Parameters mirror :class:`repro.core.config.KMeansConfig`; see its
    docstring for the full list.  Additional constructor conveniences:

    ``init_centroids``
        Optional explicit (K x N) starting centroids (overrides ``init``).

    Fitted attributes (sklearn naming): ``cluster_centers_``, ``labels_``,
    ``inertia_``, ``n_iter_``; plus simulator outputs ``sim_time_s_``,
    ``assignment_time_s_``, ``timing_log_``, ``counters_``,
    ``inertia_history_``.
    """

    def __init__(self, n_clusters: int = 8, *, variant: str = "tensorop",
                 dtype="float32", device="a100", mode: str = "fast",
                 tile=None, abft="none", p_inject: float = 0.0,
                 dmr_update: bool = True, use_tf32: bool = True,
                 chunk_bytes: int | None = None, engine_workers: int = 1,
                 init: str = "k-means++", max_iter: int = 50,
                 tol: float = 1e-4, seed: int | None = None,
                 init_centroids=None):
        self.config = KMeansConfig(
            n_clusters=n_clusters, variant=variant, dtype=np.dtype(dtype),
            device=device, mode=mode, tile=tile, abft=abft,
            p_inject=p_inject, dmr_update=dmr_update, use_tf32=use_tf32,
            chunk_bytes=chunk_bytes, engine_workers=engine_workers,
            init=init, max_iter=max_iter, tol=tol, seed=seed)
        self._init_centroids = init_centroids

    # ------------------------------------------------------------------
    def fit(self, x) -> "FTKMeans":
        """Run Lloyd iterations until convergence or ``max_iter``."""
        cfg = self.config
        x = validate_data(x, cfg.dtype)
        m, k = x.shape
        if cfg.n_clusters > m:
            raise ValueError(
                f"n_clusters={cfg.n_clusters} exceeds n_samples={m}")
        rng = np.random.default_rng(cfg.seed)

        if self._init_centroids is not None:
            y = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                   cfg.dtype)
        else:
            y = initialize(x, cfg.n_clusters, cfg.init, rng)

        assigner = build_assignment(cfg, m, k, rng)
        updater = UpdateStage(cfg.device, cfg.dtype, dmr=cfg.dmr_update)
        clock = SimClock()
        counters = PerfCounters()
        monitor = ConvergenceMonitor(cfg.tol)
        labels = np.zeros(m, dtype=np.int64)

        n_iter = 0
        try:
            # hoist fit-invariants (sample norms, output buffers, chunk
            # and injector block plans) once; every iteration reuses them
            assigner.begin_fit(x, cfg.n_clusters)
            for n_iter in range(1, cfg.max_iter + 1):
                res: AssignmentResult = assigner.assign(x, y)
                labels = res.labels
                counters.merge(res.counters)
                for label, t in res.timings:
                    clock.charge(label, t)

                upd = updater.update(x, labels, res.min_sqdist, y, counters)
                for label, t in upd.timings:
                    clock.charge(label, t)
                y = upd.centroids

                inertia = float(np.sum(res.min_sqdist.astype(np.float64)))
                if monitor.update(inertia, upd.shift):
                    break
        finally:
            # even on interrupt/error: a (partially) fitted model must
            # not pin the training array, scratch or worker threads,
            # and predict/score must recompute norms fresh
            assigner.end_fit()
        self.cluster_centers_ = y
        # the fast path hands out the engine's reusable buffer; detach it
        # so later predict() passes cannot overwrite fitted state
        self.labels_ = labels.copy()
        self.inertia_ = monitor.history[-1]
        self.inertia_history_ = list(monitor.history)
        self.n_iter_ = n_iter
        self.sim_time_s_ = clock.elapsed_s
        self.assignment_time_s_ = clock.total("distance")
        self.timing_log_ = list(clock.log)
        self.counters_ = counters
        self._assigner = assigner
        return self

    # ------------------------------------------------------------------
    def predict(self, x) -> np.ndarray:
        """Assign new samples to the fitted centroids.

        One single-pass assignment through the configured variant (the
        streaming engine in ``fast`` mode, memory-bounded regardless of
        ``x``'s size); input is validated like ``fit``'s.
        """
        self._check_fitted()
        x = self._validate_like_fit(x)
        res = self._assigner.assign(x, self.cluster_centers_)
        # the fit cache was released at the end of fit(), so this pass
        # ran on a transient cache whose buffers are uniquely ours
        return res.labels

    def fit_predict(self, x) -> np.ndarray:
        """fit(X) then return the training labels."""
        return self.fit(x).labels_

    def score(self, x) -> float:
        """Negative inertia of ``x`` under the fitted centroids."""
        self._check_fitted()
        x = self._validate_like_fit(x)
        res = self._assigner.assign(x, self.cluster_centers_)
        return -float(np.sum(res.min_sqdist.astype(np.float64)))

    def _validate_like_fit(self, x) -> np.ndarray:
        """Validate prediction input exactly like fit's, plus the
        feature-count check against the fitted centroids."""
        x = validate_data(x, self.config.dtype)
        if x.shape[1] != self.cluster_centers_.shape[1]:
            raise ValueError(
                f"X has {x.shape[1]} features, model has "
                f"{self.cluster_centers_.shape[1]}")
        return x

    # ------------------------------------------------------------------
    def distance_gflops_(self) -> float:
        """Simulated distance-stage GFLOPS over the fit (paper metric)."""
        self._check_fitted()
        m = self.labels_.shape[0]
        n, k = self.cluster_centers_.shape
        total = self.n_iter_ * distance_flops(m, n, k)
        t = self.assignment_time_s_
        return total / t / 1e9 if t > 0 else float("nan")

    def _check_fitted(self) -> None:
        if not hasattr(self, "cluster_centers_"):
            raise RuntimeError("estimator is not fitted; call fit() first")
