"""FTKMeans — the public estimator.

An sklearn-style interface over the simulated-GPU K-means of the paper::

    from repro import FTKMeans

    km = FTKMeans(n_clusters=16, variant="ft", dtype="float32",
                  device="a100", mode="fast", seed=0)
    km.fit(X)
    km.labels_, km.cluster_centers_, km.inertia_, km.sim_time_s_

``variant`` selects the paper's optimisation rung (naive → v1 → v2 → v3 →
tensorop → ft); ``p_inject`` turns on SEU error injection; ``mode``
chooses tile-accurate ('functional') or vectorised ('fast') execution.
The fitted model also exposes the simulated clock (``sim_time_s_``), the
per-kernel timing log (``timing_log_``) and the merged performance
counters (``counters_``) so benchmarks can report paper-style GFLOPS.

Beyond full-batch Lloyd, the estimator clusters **streams**:

* :meth:`FTKMeans.partial_fit` consumes one mini-batch per call
  (sklearn ``MiniBatchKMeans`` semantics: per-cluster learning-rate
  decay, configurable empty-cluster reassignment, EWA-inertia
  convergence) — fault injection and ABFT checks run per batch, and the
  per-batch fault activity is surfaced on ``fault_trace_``;
* ``batch_size=...`` makes :meth:`fit` run mini-batch K-means over
  shuffled epochs of the training set through the same online step.

Both :meth:`fit` and :meth:`partial_fit` accept ``sample_weight``
(weighted sums/counts through the same bit-exact streamed accumulation).

With ``n_workers > 1`` the full-batch fit shards across simulated
devices/processes through :mod:`repro.dist` — map-reduce Lloyd rounds,
an ABFT checksum over the merged partials, and checkpoint/restart
recovery from worker loss — while staying bit-identical to the
single-worker fast path.

See ``docs/streaming.md`` for the streaming/determinism contract and
``docs/distributed.md`` for the sharded execution contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.accumulate import StreamedAccumulator
from repro.core.assignment import AssignmentResult
from repro.core.config import KMeansConfig
from repro.core.convergence import ConvergenceMonitor, EwaInertiaMonitor
from repro.core.initializers import initialize
from repro.core.update import UpdateStage
from repro.core.validation import (
    validate_centroids,
    validate_data,
    validate_weights,
)
from repro.core.variants import build_assignment
from repro.gemm.shapes import distance_flops
from repro.gpusim.clock import SimClock
from repro.gpusim.counters import PerfCounters
from repro.obs.trace import active_tracer

__all__ = ["FTKMeans"]


class FTKMeans:
    """K-means estimator running on the simulated GPU.

    Parameters mirror :class:`repro.core.config.KMeansConfig`; see its
    docstring for the full list.  Additional constructor conveniences:

    ``init_centroids``
        Optional explicit (K x N) starting centroids (overrides ``init``).
    ``worker_faults``
        Optional :class:`repro.dist.WorkerFaultInjector` driving
        worker-level crash/stall/corrupt-partial injection in sharded
        fits (``n_workers > 1``).
    ``checkpoint_dir``
        Directory for the sharded fit's checkpoint snapshots; None
        (default) keeps them in memory.

    Fitted attributes (sklearn naming): ``cluster_centers_``, ``labels_``,
    ``inertia_``, ``n_iter_``; plus simulator outputs ``sim_time_s_``,
    ``assignment_time_s_``, ``timing_log_``, ``counters_``,
    ``inertia_history_``.

    Online attributes (after :meth:`partial_fit` or a ``batch_size``
    fit): ``n_batches_seen_``, ``converged_``, ``ewa_inertia_``,
    ``cluster_counts_``, ``fault_trace_``.

    Sharded-fit attributes (after a ``n_workers > 1`` fit):
    ``n_workers_`` (the *final* effective worker count — smaller than
    requested after an un-regrown elastic shrink), ``dist_recoveries_``,
    ``dist_stall_recoveries_``, ``dist_shrinks_``, ``dist_trace_``,
    the self-healing tallies ``dist_promotions_`` (dead ids healed in
    place from hot spares), ``dist_expands_`` (workers regrown toward
    ``target_workers``) and ``dist_heartbeat_failures_`` (losses caught
    by the between-round heartbeat rather than the round deadline),
    plus the checkpoint-overhead split ``dist_checkpoint_save_s_``
    (in-loop save cost: full writes when ``checkpoint_sync=True``,
    snapshot+enqueue when async) and ``dist_checkpoint_flush_s_`` (the
    end-of-fit flush barrier of the async writer), the reduce-topology
    pair ``dist_reduce_topology_`` (the resolved topology of the fit's
    last round — see ``reduce_topology`` in
    :class:`~repro.core.config.KMeansConfig`) and ``dist_reduce_busy_s_``
    (coordinator occupancy of the reduce: wall seconds of merge work
    not hidden under still-computing workers), the transport quartet
    ``dist_transport_`` (the resolved round-loop transport, 'pipe' or
    'shm' — see ``transport`` in
    :class:`~repro.core.config.KMeansConfig`),
    ``dist_broadcast_bytes_`` / ``dist_gather_bytes_`` (per-fit bytes
    moved over the executor's worker pipes in each direction — full
    pickled payloads under 'pipe', control/ack tokens only under
    'shm') and ``dist_boot_stats_`` (worker boot/attach walls
    aggregated by kind: cold spawn vs spare promote vs warm
    reconfigure), and ``dist_metrics_``
    (the fit's :class:`~repro.obs.metrics.MetricsRegistry` delta —
    ``sim.*`` / ``dist.*`` scalars contributed by exactly this fit).

    ``spawn_hook`` (constructor-only, like ``worker_faults``) is the
    fleet manager's budget callback for booting replacement workers
    during re-expansion: ``spawn_hook(n_needed) -> int | None``;
    ``event_hook`` (also constructor-only, deprecated in favour of
    ``event_bus``) receives the fleet's ordered structured membership
    events as dicts through the backwards-compatible shim (heartbeat /
    promote / shrink / expand — see
    :class:`repro.dist.fleet.FleetManager`).

    ``tracer`` (constructor-only) attaches a
    :class:`repro.obs.trace.TraceRecorder` recording the fit's stage
    spans — ``fit -> iteration -> {assign_chunk, gemm, update_feed,
    bounds_refresh}`` on the single-worker path, the coordinator
    taxonomy on sharded fits.  Off by default; tracing reads clocks
    only, so traced fits are bit-identical to untraced ones.
    ``event_bus`` (constructor-only) supplies a
    :class:`repro.obs.events.EventBus` for the sharded fit's
    fleet / coordinator / checkpoint events.  Both stay off the
    picklable worker-shipped config, like ``worker_faults``.
    """

    def __init__(self, n_clusters: int = 8, *, variant: str = "tensorop",
                 dtype="float32", device="a100", mode: str = "fast",
                 tile=None, abft="none", p_inject: float = 0.0,
                 dmr_update: bool = True, use_tf32: bool = True,
                 chunk_bytes: int | None = None, engine_workers: int = 1,
                 operand_cache="auto", prune: str = "auto",
                 update_mode: str = "auto", batch_size: int | None = None,
                 n_workers: int = 1, executor: str = "serial",
                 checkpoint_every: int = 0, checkpoint_sync: bool = False,
                 round_timeout=None, elastic: bool = False,
                 target_workers: int | None = None, hot_spares: int = 0,
                 heartbeat_interval: float | None = None,
                 reduce_topology: str = "auto",
                 transport: str = "auto",
                 reassignment_mode: str = "deterministic",
                 reassignment_ratio: float = 0.01,
                 init: str = "k-means++", max_iter: int = 50,
                 tol: float = 1e-4, seed: int | None = None,
                 init_centroids=None, worker_faults=None,
                 checkpoint_dir=None, spawn_hook=None, event_hook=None,
                 tracer=None, event_bus=None):
        self.config = KMeansConfig(
            n_clusters=n_clusters, variant=variant, dtype=np.dtype(dtype),
            device=device, mode=mode, tile=tile, abft=abft,
            p_inject=p_inject, dmr_update=dmr_update, use_tf32=use_tf32,
            chunk_bytes=chunk_bytes, engine_workers=engine_workers,
            operand_cache=operand_cache, prune=prune,
            update_mode=update_mode, batch_size=batch_size,
            n_workers=n_workers, executor=executor,
            checkpoint_every=checkpoint_every,
            checkpoint_sync=checkpoint_sync,
            round_timeout=round_timeout, elastic=elastic,
            target_workers=target_workers, hot_spares=hot_spares,
            heartbeat_interval=heartbeat_interval,
            reduce_topology=reduce_topology,
            transport=transport,
            reassignment_mode=reassignment_mode,
            reassignment_ratio=reassignment_ratio,
            init=init, max_iter=max_iter, tol=tol, seed=seed)
        self._init_centroids = init_centroids
        self._worker_faults = worker_faults
        self._checkpoint_dir = checkpoint_dir
        # kept off the (picklable, worker-shipped) config, like
        # worker_faults: hooks are caller-side callables
        self._spawn_hook = spawn_hook
        self._event_hook = event_hook
        self._tracer = tracer
        self._event_bus = event_bus

    # ------------------------------------------------------------------
    def _attach_tracer(self, assigner) -> None:
        """Hand the estimator's tracer to the assigner's engine (fast
        mode; functional variants have no engine and record no engine
        spans)."""
        if self._tracer is None:
            return
        engine = getattr(assigner, "engine", None)
        if engine is not None:
            engine.tracer = self._tracer

    # ------------------------------------------------------------------
    def fit(self, x, sample_weight=None) -> "FTKMeans":
        """Cluster ``x``, full-batch Lloyd or mini-batch.

        Runs Lloyd iterations until convergence or ``max_iter``; with
        ``batch_size`` set, runs mini-batch K-means instead (shuffled
        epochs of online updates, EWA-inertia convergence — see
        :meth:`partial_fit` for the per-batch step).  With
        ``n_workers > 1`` the full-batch fit shards across workers
        through :mod:`repro.dist` (bit-identical result, plus
        checkpoint/restart fault tolerance).

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)
            Training samples; validated to a finite C-contiguous array
            of the configured dtype.
        sample_weight : array-like of shape (n_samples,), optional
            Non-negative per-sample weights.  Weighted centroid sums
            and counts run through the same bit-exact streamed
            accumulation; inertia becomes ``sum(w_i * d_i)``.

        Returns
        -------
        FTKMeans
            ``self``, with the fitted attributes populated.
        """
        cfg = self.config
        self._reset_online_state()
        x = validate_data(x, cfg.dtype)
        m, k = x.shape
        w = validate_weights(sample_weight, m)
        if cfg.n_clusters > m:
            raise ValueError(
                f"n_clusters={cfg.n_clusters} exceeds n_samples={m}")
        if cfg.batch_size is not None:
            return self._fit_minibatch(x, w)
        if cfg.n_workers > 1:
            return self._fit_dist(x, w)
        rng = np.random.default_rng(cfg.seed)

        if self._init_centroids is not None:
            y = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                   cfg.dtype)
        else:
            y = initialize(x, cfg.n_clusters, cfg.init, rng)

        update_mode = cfg.resolved_update_mode()
        assigner = build_assignment(cfg, m, k, rng)
        self._attach_tracer(assigner)
        updater = UpdateStage(cfg.device, cfg.dtype, dmr=cfg.dmr_update,
                              update_mode=update_mode)
        # fused accumulation: the engine feeds the update sums inside its
        # assignment chunk loop (fast mode only; bit-identical either way)
        fuse = update_mode == "streamed" and cfg.mode == "fast"
        acc = (StreamedAccumulator(cfg.n_clusters, k) if fuse else None)
        if acc is not None:
            acc.bind_weights(w)
        clock = SimClock()
        counters = PerfCounters()
        monitor = ConvergenceMonitor(cfg.tol)
        labels = np.zeros(m, dtype=np.int64)

        n_iter = 0
        # the fit -> iteration spans of the single-worker taxonomy; the
        # engine's assign_chunk/gemm/update_feed/bounds_refresh spans
        # nest under each iteration via the tracer attached above
        tr = active_tracer(self._tracer)
        fit_span = tr.span("fit", m=int(m), n_features=int(k),
                           n_clusters=int(cfg.n_clusters))
        fit_span.__enter__()
        try:
            # hoist fit-invariants (sample norms, output buffers, chunk
            # and injector block plans) once; every iteration reuses them
            assigner.begin_fit(x, cfg.n_clusters)
            if fuse:
                # share the engine's hoisted transposed operand with the
                # update stage: under DMR the duplicate re-accumulation
                # streams all of x each iteration and otherwise pays a
                # fresh per-chunk transpose (bits unchanged; None when
                # the operand budget declined the hoist)
                xt = assigner.engine.prepare_update_operand()
                if xt is not None:
                    updater.bind_source_t(x, xt)
            for n_iter in range(1, cfg.max_iter + 1):
                with tr.span("iteration", iteration=int(n_iter)):
                    if acc is not None:
                        acc.reset()
                    res: AssignmentResult = assigner.assign(x, y,
                                                            accumulator=acc)
                    labels = res.labels
                    counters.merge(res.counters)
                    for label, t in res.timings:
                        clock.charge(label, t)

                    upd = updater.update(
                        x, labels, res.min_sqdist, y, counters,
                        fused_sums=(acc.packed() if acc is not None
                                    else None),
                        sample_weight=w)
                    for label, t in upd.timings:
                        clock.charge(label, t)
                    y = upd.centroids
                    # hand the per-centroid movement to the pruning
                    # bounds; identity-keyed to this y, so it applies
                    # exactly to the next iteration's assignment pass
                    # (bits unchanged — the bounds would self-compute
                    # the same vector)
                    assigner.feed_centroid_shifts(upd.shifts, y)

                    best64 = res.min_sqdist.astype(np.float64)
                    inertia = float(np.sum(best64 * w) if w is not None
                                    else np.sum(best64))
                    if monitor.update(inertia, upd.shift):
                        break
        finally:
            # even on interrupt/error: a (partially) fitted model must
            # not pin the training array, scratch or worker threads,
            # and predict/score must recompute norms fresh
            assigner.end_fit()
            fit_span.__exit__(None, None, None)
        self.cluster_centers_ = y
        self.cluster_counts_ = upd.counts.copy()
        # the fast path hands out the engine's reusable buffer; detach it
        # so later predict() passes cannot overwrite fitted state
        self.labels_ = labels.copy()
        self.inertia_ = monitor.history[-1]
        self.inertia_history_ = list(monitor.history)
        self.n_iter_ = n_iter
        self.sim_time_s_ = clock.elapsed_s
        self.assignment_time_s_ = clock.total("distance")
        self.timing_log_ = list(clock.log)
        self.counters_ = counters
        self._assigner = assigner
        return self

    # -- sharded multi-worker fit --------------------------------------
    def _fit_dist(self, x: np.ndarray, w: np.ndarray | None) -> "FTKMeans":
        """Full-batch fit sharded across ``n_workers`` (repro.dist).

        The coordinator runs map-reduce Lloyd rounds with a
        sequential-continuation merge, so the result is bit-identical
        to the single-worker fast path; worker loss is absorbed by
        checkpoint/restart.
        """
        # imported lazily: dist sits above core in the layering
        from repro.dist import CheckpointStore, Coordinator

        cfg = self.config
        m, k = x.shape
        rng = np.random.default_rng(cfg.seed)
        if self._init_centroids is not None:
            y0 = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                    cfg.dtype)
        else:
            y0 = initialize(x, cfg.n_clusters, cfg.init, rng)

        coord = Coordinator(
            cfg, executor=cfg.executor,
            checkpoint=CheckpointStore(
                self._checkpoint_dir,
                sync=True if cfg.checkpoint_sync else None),
            worker_faults=self._worker_faults,
            spawn_hook=self._spawn_hook,
            event_hook=self._event_hook,
            event_bus=self._event_bus,
            tracer=self._tracer)
        res = coord.fit(x, y0, sample_weight=w)

        self.cluster_centers_ = res.centroids
        self.cluster_counts_ = res.counts
        self.labels_ = res.labels
        self.inertia_ = res.inertia
        self.inertia_history_ = res.inertia_history
        self.n_iter_ = res.n_iter
        self.sim_time_s_ = res.clock.elapsed_s
        self.assignment_time_s_ = res.clock.total("distance")
        self.timing_log_ = list(res.clock.log)
        self.counters_ = res.counters
        self.n_workers_ = res.plan.n_workers
        self.dist_recoveries_ = res.recoveries
        self.dist_stall_recoveries_ = res.stall_recoveries
        self.dist_shrinks_ = res.shrinks
        self.dist_promotions_ = res.promotions
        self.dist_expands_ = res.expands
        self.dist_heartbeat_failures_ = res.heartbeat_failures
        self.dist_trace_ = res.trace
        self.dist_checkpoint_save_s_ = res.checkpoint_save_s
        self.dist_checkpoint_flush_s_ = res.checkpoint_flush_s
        self.dist_reduce_busy_s_ = res.reduce_busy_s
        self.dist_reduce_topology_ = res.reduce_topology
        self.dist_transport_ = res.transport
        self.dist_broadcast_bytes_ = res.broadcast_bytes
        self.dist_gather_bytes_ = res.gather_bytes
        self.dist_boot_stats_ = res.boot_stats
        self.dist_metrics_ = res.metrics
        # predict/score run single-pass through an ordinary assigner
        self._assigner = build_assignment(cfg, m, k, rng)
        return self

    # -- streaming / mini-batch ----------------------------------------
    def partial_fit(self, x, sample_weight=None) -> "FTKMeans":
        """One online mini-batch update (sklearn ``partial_fit`` style).

        The first call initialises the centroids (from
        ``init_centroids``, a previously fitted model, or the configured
        ``init`` on the batch itself) and builds the per-stream state;
        every call then runs one assignment pass over the batch through
        the configured variant — fault injection and ABFT checks apply
        per batch exactly as in :meth:`fit` — followed by the mini-batch
        centroid update

        ``c_j ← c_j + (sum_j − n_j · c_j) / N_j``

        where ``n_j`` is the batch count (weight total, with
        ``sample_weight``) and ``N_j`` the running total: the
        per-cluster learning rate ``n_j / N_j`` decays as a cluster
        accumulates evidence.  Starved clusters are re-seeded per the
        configured ``reassignment_mode`` ('deterministic' worst-fit
        default; 'count_threshold' / 'random' à la sklearn's
        ``reassignment_ratio``).  Convergence is tracked on the EWA of
        per-sample batch inertia
        (:class:`repro.core.convergence.EwaInertiaMonitor`) and surfaced
        as ``converged_`` — advisory only; ``partial_fit`` never refuses
        a batch.  Per-batch fault activity (flips injected / detected /
        corrected) accumulates on ``fault_trace_``.

        Parameters
        ----------
        x : array-like of shape (batch_size, n_features)
            One mini-batch.  The first batch must contain at least
            ``n_clusters`` samples unless explicit starting centroids
            are available.
        sample_weight : array-like of shape (batch_size,), optional
            Non-negative per-sample weights for this batch.

        Returns
        -------
        FTKMeans
            ``self``; ``cluster_centers_``/``labels_``/``inertia_``
            reflect the state after this batch.
        """
        cfg = self.config
        if cfg.n_workers > 1:
            raise ValueError(
                "sharded execution (n_workers > 1) covers the full-batch "
                "fit only; partial_fit runs single-worker")
        x = validate_data(x, cfg.dtype)
        w = validate_weights(sample_weight, x.shape[0])
        if self._online is None:
            self._init_online(x)
        elif x.shape[1] != self._online["centers64"].shape[1]:
            raise ValueError(
                f"X has {x.shape[1]} features, model has "
                f"{self._online['centers64'].shape[1]}")
        self._minibatch_step(x, w)
        return self

    # ------------------------------------------------------------------
    @property
    def _online(self) -> dict | None:
        return getattr(self, "_online_state", None)

    def _reset_online_state(self) -> None:
        self._online_state = None
        # a fresh full-batch fit must not leave a dead stream's
        # attributes readable on the estimator
        for attr in ("converged_", "n_batches_seen_", "ewa_inertia_",
                     "fault_trace_"):
            self.__dict__.pop(attr, None)

    def _init_online(self, x: np.ndarray) -> None:
        """Build the per-stream state from the first mini-batch."""
        cfg = self.config
        m, k = x.shape
        rng = np.random.default_rng(cfg.seed)
        if self._init_centroids is not None:
            y = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                   cfg.dtype)
            counts = np.zeros(cfg.n_clusters, dtype=np.float64)
        elif hasattr(self, "cluster_centers_"):
            # warm start: continue a previously fitted model online
            if self.cluster_centers_.shape[1] != k:
                raise ValueError(
                    f"X has {k} features, model has "
                    f"{self.cluster_centers_.shape[1]}")
            y = self.cluster_centers_
            counts = getattr(
                self, "cluster_counts_",
                np.zeros(cfg.n_clusters)).astype(np.float64).copy()
        else:
            if cfg.n_clusters > m:
                raise ValueError(
                    f"first batch has {m} samples < n_clusters="
                    f"{cfg.n_clusters}; supply init_centroids or a "
                    f"larger first batch")
            y = initialize(x, cfg.n_clusters, cfg.init, rng)
            counts = np.zeros(cfg.n_clusters, dtype=np.float64)
        self._build_online_state(y, counts, m, k, rng)

    def _build_online_state(self, y: np.ndarray, counts: np.ndarray,
                            batch_m: int, n_features: int,
                            rng: np.random.Generator) -> None:
        """The shared per-stream state of partial_fit and batch_size fit."""
        cfg = self.config
        update_mode = cfg.resolved_update_mode()
        fuse = update_mode == "streamed" and cfg.mode == "fast"
        self._online_state = {
            "centers64": y.astype(np.float64),
            "counts": counts,
            "assigner": build_assignment(cfg, batch_m, n_features, rng),
            "updater": UpdateStage(cfg.device, cfg.dtype,
                                   dmr=cfg.dmr_update,
                                   update_mode=update_mode),
            # pooled across batches (reset per step), like fit()'s
            # per-iteration reuse
            "accumulator": (StreamedAccumulator(cfg.n_clusters, n_features)
                            if fuse else None),
            "monitor": EwaInertiaMonitor(cfg.tol),
            "clock": SimClock(),
            "counters": PerfCounters(),
            "batch_inertias": [],
            "samples_assigned": 0,
            # the stream's RNG (random reassignment draws); shared with
            # the epoch shuffles of a batch_size fit, so a fixed seed
            # reproduces the whole stream
            "rng": rng,
            "fault_trace": [],
        }
        self._attach_tracer(self._online_state["assigner"])
        self._assigner = self._online_state["assigner"]
        self.n_batches_seen_ = 0
        self.converged_ = False
        self.fault_trace_ = self._online_state["fault_trace"]

    #: counter fields whose per-batch deltas form the fault trace
    _TRACE_FIELDS = ("errors_injected", "errors_detected",
                     "errors_corrected", "dmr_mismatches")

    def _minibatch_step(self, x: np.ndarray,
                        w: np.ndarray | None = None) -> None:
        """Assign one batch and apply the decayed online update."""
        cfg = self.config
        state = self._online_state
        m, k = x.shape
        centers64 = state["centers64"]
        y = centers64.astype(cfg.dtype)
        acc = state["accumulator"]
        if acc is not None:
            acc.reset()
            acc.bind_weights(w)
        fault_snap = {f: getattr(state["counters"], f)
                      for f in self._TRACE_FIELDS}
        res: AssignmentResult = state["assigner"].assign(x, y,
                                                         accumulator=acc)
        state["counters"].merge(res.counters)
        for label, t in res.timings:
            state["clock"].charge(label, t)
        labels = res.labels
        best = res.min_sqdist

        updater: UpdateStage = state["updater"]
        sums = updater.accumulate_protected(
            x, labels, cfg.n_clusters, state["counters"],
            fused_sums=acc.packed() if acc is not None else None,
            sample_weight=w)
        bsums, bcounts = sums[:, :k], sums[:, k]
        counts = state["counts"]
        new_counts = counts + bcounts
        nz = bcounts > 0
        # per-cluster decayed step: lr_j = n_j / N_j (sklearn MiniBatch)
        centers64[nz] += ((bsums[nz] - bcounts[nz, None] * centers64[nz])
                          / new_counts[nz, None])
        state["counts"] = new_counts
        if w is not None:
            state["weighted"] = True

        self._reassign_starved(x, best, w, state)
        for label, t in updater.estimate(m, cfg.n_clusters, k):
            state["clock"].charge(label, t)
        state["counters"].kernels_launched += 2

        batch_index = self.n_batches_seen_
        delta = {f: getattr(state["counters"], f) - fault_snap[f]
                 for f in self._TRACE_FIELDS}
        if any(delta.values()):
            state["fault_trace"].append({"batch": batch_index,
                                         "injected": delta["errors_injected"],
                                         "detected": delta["errors_detected"],
                                         "corrected": delta["errors_corrected"],
                                         "dmr_mismatches":
                                             delta["dmr_mismatches"]})
        self.fault_trace_ = state["fault_trace"]

        best64 = best.astype(np.float64)
        inertia = float(np.sum(best64 * w) if w is not None
                        else np.sum(best64))
        # weighted streams normalise the EWA by the batch weight total,
        # so convergence tracks fit quality, not the weight scale.  An
        # all-zero-weight batch carries no evidence at all: it must not
        # touch the monitor (its weighted inertia of 0 would fake a
        # huge improvement), and converged_ keeps its last verdict.
        ewa_norm = m if w is None else float(w.sum())
        if ewa_norm > 0:
            self.converged_ = state["monitor"].update(inertia, ewa_norm)
        state["batch_inertias"].append(inertia)
        state["samples_assigned"] += m
        self.n_batches_seen_ += 1
        self.cluster_centers_ = centers64.astype(cfg.dtype)
        # weighted streams report the float64 running weight totals;
        # unweighted streams keep the integer sample counts
        self.cluster_counts_ = (state["counts"].copy()
                                if state.get("weighted")
                                else state["counts"].astype(np.int64))
        self.labels_ = labels.copy()
        self.inertia_ = inertia
        self.ewa_inertia_ = state["monitor"].ewa
        # absolute per-batch inertias: same units as inertia_ and as the
        # full-batch fit's history (the monitor's history is per-sample)
        self.inertia_history_ = list(state["batch_inertias"])
        self.sim_time_s_ = state["clock"].elapsed_s
        self.assignment_time_s_ = state["clock"].total("distance")
        self.timing_log_ = list(state["clock"].log)
        self.counters_ = state["counters"]

    def _reassign_starved(self, x: np.ndarray, best: np.ndarray,
                          w: np.ndarray | None, state: dict) -> None:
        """Re-seed starved clusters per the configured policy.

        * ``deterministic`` — clusters whose running weight is exactly
          zero take the batch's worst-fit samples in stable order (a
          fixed seed reproduces the stream bit-for-bit);
        * ``count_threshold`` — clusters below ``reassignment_ratio`` x
          the largest running count are also re-seeded, still from the
          deterministic worst-fit order;
        * ``random`` — the below-threshold clusters re-seed from random
          batch samples drawn with probability proportional to (weighted)
          squared distance, sklearn's ``reassignment_ratio`` behaviour;
          draws come from the stream's RNG, so a fixed seed still
          reproduces the stream.
        """
        cfg = self.config
        counts = state["counts"]
        centers64 = state["centers64"]
        m = x.shape[0]
        if cfg.reassignment_mode == "deterministic":
            starved = np.flatnonzero(counts == 0)
        else:
            threshold = cfg.reassignment_ratio * float(counts.max())
            starved = np.flatnonzero(counts < threshold)
            if starved.size == 0:
                starved = np.flatnonzero(counts == 0)
        if starved.size == 0:
            return
        if cfg.reassignment_mode == "random":
            p = best.astype(np.float64)
            if w is not None:
                p = p * w
            total = float(p.sum())
            size = min(starved.size, m)
            # replace=False needs at least `size` nonzero probabilities;
            # degenerate batches (most points on a centroid) fall back
            # to a uniform draw instead of crashing the stream
            if total <= 0 or np.count_nonzero(p) < size:
                probs = None
            else:
                probs = p / total
            donors = state["rng"].choice(m, size=size, replace=False,
                                         p=probs)
        else:
            order = np.argsort(best, kind="stable")[::-1]
            donors = order[: starved.size]
        reseed = starved[: donors.size]
        centers64[reseed] = x[donors].astype(np.float64)
        counts[reseed] = np.maximum(counts[reseed], 1.0)

    def _fit_minibatch(self, x: np.ndarray,
                       w: np.ndarray | None = None) -> "FTKMeans":
        """Mini-batch K-means over shuffled epochs (``batch_size`` set)."""
        cfg = self.config
        m, k = x.shape
        bs = min(cfg.batch_size, m)
        rng = np.random.default_rng(cfg.seed)
        # initialise from the full training set (first batch would do,
        # but the full set is available — use it like sklearn does)
        if self._init_centroids is not None:
            y = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                   cfg.dtype)
        else:
            y = initialize(x, cfg.n_clusters, cfg.init, rng)
        self._build_online_state(
            y, np.zeros(cfg.n_clusters, dtype=np.float64), bs, k, rng)

        epoch = 0
        for epoch in range(1, cfg.max_iter + 1):
            perm = rng.permutation(m)
            for lo in range(0, m, bs):
                batch_idx = perm[lo:lo + bs]
                self._minibatch_step(x[batch_idx],
                                     None if w is None else w[batch_idx])
                if self.converged_:
                    break
            if self.converged_:
                break
        self.n_iter_ = epoch

        # one full assignment pass for training labels / global inertia
        res = self._assigner.assign(x, self.cluster_centers_)
        self._online_state["counters"].merge(res.counters)
        self.labels_ = res.labels.copy()
        best64 = res.min_sqdist.astype(np.float64)
        self.inertia_ = float(np.sum(best64 * w) if w is not None
                              else np.sum(best64))
        self.counters_ = self._online_state["counters"]
        return self

    # ------------------------------------------------------------------
    def predict(self, x) -> np.ndarray:
        """Assign new samples to the fitted centroids.

        One single-pass assignment through the configured variant (the
        streaming engine in ``fast`` mode, memory-bounded regardless of
        ``x``'s size); input is validated like ``fit``'s.

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)

        Returns
        -------
        ndarray of shape (n_samples,)
            Index of the nearest fitted centroid per sample (int64).
        """
        self._check_fitted()
        x = self._validate_like_fit(x)
        res = self._assigner.assign(x, self.cluster_centers_)
        # the fit cache was released at the end of fit(), so this pass
        # ran on a transient cache whose buffers are uniquely ours
        return res.labels

    def fit_predict(self, x) -> np.ndarray:
        """``fit(X)`` then return the training labels.

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)

        Returns
        -------
        ndarray of shape (n_samples,)
        """
        return self.fit(x).labels_

    def score(self, x) -> float:
        """Negative inertia of ``x`` under the fitted centroids.

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)

        Returns
        -------
        float
            ``-sum(min squared distances)`` — higher is better, matching
            sklearn's convention.
        """
        self._check_fitted()
        x = self._validate_like_fit(x)
        res = self._assigner.assign(x, self.cluster_centers_)
        return -float(np.sum(res.min_sqdist.astype(np.float64)))

    def _validate_like_fit(self, x) -> np.ndarray:
        """Validate prediction input exactly like fit's, plus the
        feature-count check against the fitted centroids."""
        x = validate_data(x, self.config.dtype)
        if x.shape[1] != self.cluster_centers_.shape[1]:
            raise ValueError(
                f"X has {x.shape[1]} features, model has "
                f"{self.cluster_centers_.shape[1]}")
        return x

    # ------------------------------------------------------------------
    def distance_gflops_(self) -> float:
        """Simulated distance-stage GFLOPS over the fit (paper metric).

        Returns
        -------
        float
            Distance-stage floating-point throughput against the
            simulated clock; NaN when no assignment time was charged.
        """
        self._check_fitted()
        n, k = self.cluster_centers_.shape
        state = self._online
        if state is not None:
            # online model: distance flops are linear in samples, so the
            # stream's total is one flops count over all assigned rows
            # (matching what assignment_time_s_ actually covers)
            total = distance_flops(state["samples_assigned"], n, k)
        else:
            m = self.labels_.shape[0]
            total = self.n_iter_ * distance_flops(m, n, k)
        t = self.assignment_time_s_
        return total / t / 1e9 if t > 0 else float("nan")

    def _check_fitted(self) -> None:
        if not hasattr(self, "cluster_centers_"):
            raise RuntimeError("estimator is not fitted; call fit() first")
