"""FTKMeans — the public estimator.

An sklearn-style interface over the simulated-GPU K-means of the paper::

    from repro import FTKMeans

    km = FTKMeans(n_clusters=16, variant="ft", dtype="float32",
                  device="a100", mode="fast", seed=0)
    km.fit(X)
    km.labels_, km.cluster_centers_, km.inertia_, km.sim_time_s_

``variant`` selects the paper's optimisation rung (naive → v1 → v2 → v3 →
tensorop → ft); ``p_inject`` turns on SEU error injection; ``mode``
chooses tile-accurate ('functional') or vectorised ('fast') execution.
The fitted model also exposes the simulated clock (``sim_time_s_``), the
per-kernel timing log (``timing_log_``) and the merged performance
counters (``counters_``) so benchmarks can report paper-style GFLOPS.

Beyond full-batch Lloyd, the estimator clusters **streams**:

* :meth:`FTKMeans.partial_fit` consumes one mini-batch per call
  (sklearn ``MiniBatchKMeans`` semantics: per-cluster learning-rate
  decay, deterministic empty-cluster reassignment, EWA-inertia
  convergence) — fault injection and ABFT checks run per batch;
* ``batch_size=...`` makes :meth:`fit` run mini-batch K-means over
  shuffled epochs of the training set through the same online step.

See ``docs/streaming.md`` for the streaming/determinism contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.accumulate import StreamedAccumulator
from repro.core.assignment import AssignmentResult
from repro.core.config import KMeansConfig
from repro.core.convergence import ConvergenceMonitor, EwaInertiaMonitor
from repro.core.initializers import initialize
from repro.core.update import UpdateStage
from repro.core.validation import validate_centroids, validate_data
from repro.core.variants import build_assignment
from repro.gemm.shapes import distance_flops
from repro.gpusim.clock import SimClock
from repro.gpusim.counters import PerfCounters

__all__ = ["FTKMeans"]


class FTKMeans:
    """K-means estimator running on the simulated GPU.

    Parameters mirror :class:`repro.core.config.KMeansConfig`; see its
    docstring for the full list.  Additional constructor conveniences:

    ``init_centroids``
        Optional explicit (K x N) starting centroids (overrides ``init``).

    Fitted attributes (sklearn naming): ``cluster_centers_``, ``labels_``,
    ``inertia_``, ``n_iter_``; plus simulator outputs ``sim_time_s_``,
    ``assignment_time_s_``, ``timing_log_``, ``counters_``,
    ``inertia_history_``.

    Online attributes (after :meth:`partial_fit` or a ``batch_size``
    fit): ``n_batches_seen_``, ``converged_``, ``ewa_inertia_``,
    ``cluster_counts_``.
    """

    def __init__(self, n_clusters: int = 8, *, variant: str = "tensorop",
                 dtype="float32", device="a100", mode: str = "fast",
                 tile=None, abft="none", p_inject: float = 0.0,
                 dmr_update: bool = True, use_tf32: bool = True,
                 chunk_bytes: int | None = None, engine_workers: int = 1,
                 update_mode: str = "auto", batch_size: int | None = None,
                 init: str = "k-means++", max_iter: int = 50,
                 tol: float = 1e-4, seed: int | None = None,
                 init_centroids=None):
        self.config = KMeansConfig(
            n_clusters=n_clusters, variant=variant, dtype=np.dtype(dtype),
            device=device, mode=mode, tile=tile, abft=abft,
            p_inject=p_inject, dmr_update=dmr_update, use_tf32=use_tf32,
            chunk_bytes=chunk_bytes, engine_workers=engine_workers,
            update_mode=update_mode, batch_size=batch_size,
            init=init, max_iter=max_iter, tol=tol, seed=seed)
        self._init_centroids = init_centroids

    # ------------------------------------------------------------------
    def fit(self, x) -> "FTKMeans":
        """Cluster ``x``, full-batch Lloyd or mini-batch.

        Runs Lloyd iterations until convergence or ``max_iter``; with
        ``batch_size`` set, runs mini-batch K-means instead (shuffled
        epochs of online updates, EWA-inertia convergence — see
        :meth:`partial_fit` for the per-batch step).

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)
            Training samples; validated to a finite C-contiguous array
            of the configured dtype.

        Returns
        -------
        FTKMeans
            ``self``, with the fitted attributes populated.
        """
        cfg = self.config
        self._reset_online_state()
        x = validate_data(x, cfg.dtype)
        m, k = x.shape
        if cfg.n_clusters > m:
            raise ValueError(
                f"n_clusters={cfg.n_clusters} exceeds n_samples={m}")
        if cfg.batch_size is not None:
            return self._fit_minibatch(x)
        rng = np.random.default_rng(cfg.seed)

        if self._init_centroids is not None:
            y = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                   cfg.dtype)
        else:
            y = initialize(x, cfg.n_clusters, cfg.init, rng)

        update_mode = cfg.resolved_update_mode()
        assigner = build_assignment(cfg, m, k, rng)
        updater = UpdateStage(cfg.device, cfg.dtype, dmr=cfg.dmr_update,
                              update_mode=update_mode)
        # fused accumulation: the engine feeds the update sums inside its
        # assignment chunk loop (fast mode only; bit-identical either way)
        fuse = update_mode == "streamed" and cfg.mode == "fast"
        acc = (StreamedAccumulator(cfg.n_clusters, k) if fuse else None)
        clock = SimClock()
        counters = PerfCounters()
        monitor = ConvergenceMonitor(cfg.tol)
        labels = np.zeros(m, dtype=np.int64)

        n_iter = 0
        try:
            # hoist fit-invariants (sample norms, output buffers, chunk
            # and injector block plans) once; every iteration reuses them
            assigner.begin_fit(x, cfg.n_clusters)
            for n_iter in range(1, cfg.max_iter + 1):
                if acc is not None:
                    acc.reset()
                res: AssignmentResult = assigner.assign(x, y,
                                                        accumulator=acc)
                labels = res.labels
                counters.merge(res.counters)
                for label, t in res.timings:
                    clock.charge(label, t)

                upd = updater.update(
                    x, labels, res.min_sqdist, y, counters,
                    fused_sums=acc.packed() if acc is not None else None)
                for label, t in upd.timings:
                    clock.charge(label, t)
                y = upd.centroids

                inertia = float(np.sum(res.min_sqdist.astype(np.float64)))
                if monitor.update(inertia, upd.shift):
                    break
        finally:
            # even on interrupt/error: a (partially) fitted model must
            # not pin the training array, scratch or worker threads,
            # and predict/score must recompute norms fresh
            assigner.end_fit()
        self.cluster_centers_ = y
        self.cluster_counts_ = upd.counts.copy()
        # the fast path hands out the engine's reusable buffer; detach it
        # so later predict() passes cannot overwrite fitted state
        self.labels_ = labels.copy()
        self.inertia_ = monitor.history[-1]
        self.inertia_history_ = list(monitor.history)
        self.n_iter_ = n_iter
        self.sim_time_s_ = clock.elapsed_s
        self.assignment_time_s_ = clock.total("distance")
        self.timing_log_ = list(clock.log)
        self.counters_ = counters
        self._assigner = assigner
        return self

    # -- streaming / mini-batch ----------------------------------------
    def partial_fit(self, x) -> "FTKMeans":
        """One online mini-batch update (sklearn ``partial_fit`` style).

        The first call initialises the centroids (from
        ``init_centroids``, a previously fitted model, or the configured
        ``init`` on the batch itself) and builds the per-stream state;
        every call then runs one assignment pass over the batch through
        the configured variant — fault injection and ABFT checks apply
        per batch exactly as in :meth:`fit` — followed by the mini-batch
        centroid update

        ``c_j ← c_j + (sum_j − n_j · c_j) / N_j``

        where ``n_j`` is the batch count and ``N_j`` the running total:
        the per-cluster learning rate ``n_j / N_j`` decays as a cluster
        accumulates evidence.  Clusters that have never received a
        sample are re-seeded deterministically from the batch's
        worst-fit samples.  Convergence is tracked on the EWA of
        per-sample batch inertia
        (:class:`repro.core.convergence.EwaInertiaMonitor`) and surfaced
        as ``converged_`` — advisory only; ``partial_fit`` never refuses
        a batch.

        Parameters
        ----------
        x : array-like of shape (batch_size, n_features)
            One mini-batch.  The first batch must contain at least
            ``n_clusters`` samples unless explicit starting centroids
            are available.

        Returns
        -------
        FTKMeans
            ``self``; ``cluster_centers_``/``labels_``/``inertia_``
            reflect the state after this batch.
        """
        cfg = self.config
        x = validate_data(x, cfg.dtype)
        if self._online is None:
            self._init_online(x)
        elif x.shape[1] != self._online["centers64"].shape[1]:
            raise ValueError(
                f"X has {x.shape[1]} features, model has "
                f"{self._online['centers64'].shape[1]}")
        self._minibatch_step(x)
        return self

    # ------------------------------------------------------------------
    @property
    def _online(self) -> dict | None:
        return getattr(self, "_online_state", None)

    def _reset_online_state(self) -> None:
        self._online_state = None
        # a fresh full-batch fit must not leave a dead stream's
        # attributes readable on the estimator
        for attr in ("converged_", "n_batches_seen_", "ewa_inertia_"):
            self.__dict__.pop(attr, None)

    def _init_online(self, x: np.ndarray) -> None:
        """Build the per-stream state from the first mini-batch."""
        cfg = self.config
        m, k = x.shape
        rng = np.random.default_rng(cfg.seed)
        if self._init_centroids is not None:
            y = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                   cfg.dtype)
            counts = np.zeros(cfg.n_clusters, dtype=np.float64)
        elif hasattr(self, "cluster_centers_"):
            # warm start: continue a previously fitted model online
            if self.cluster_centers_.shape[1] != k:
                raise ValueError(
                    f"X has {k} features, model has "
                    f"{self.cluster_centers_.shape[1]}")
            y = self.cluster_centers_
            counts = getattr(
                self, "cluster_counts_",
                np.zeros(cfg.n_clusters)).astype(np.float64).copy()
        else:
            if cfg.n_clusters > m:
                raise ValueError(
                    f"first batch has {m} samples < n_clusters="
                    f"{cfg.n_clusters}; supply init_centroids or a "
                    f"larger first batch")
            y = initialize(x, cfg.n_clusters, cfg.init, rng)
            counts = np.zeros(cfg.n_clusters, dtype=np.float64)
        self._build_online_state(y, counts, m, k, rng)

    def _build_online_state(self, y: np.ndarray, counts: np.ndarray,
                            batch_m: int, n_features: int,
                            rng: np.random.Generator) -> None:
        """The shared per-stream state of partial_fit and batch_size fit."""
        cfg = self.config
        update_mode = cfg.resolved_update_mode()
        fuse = update_mode == "streamed" and cfg.mode == "fast"
        self._online_state = {
            "centers64": y.astype(np.float64),
            "counts": counts,
            "assigner": build_assignment(cfg, batch_m, n_features, rng),
            "updater": UpdateStage(cfg.device, cfg.dtype,
                                   dmr=cfg.dmr_update,
                                   update_mode=update_mode),
            # pooled across batches (reset per step), like fit()'s
            # per-iteration reuse
            "accumulator": (StreamedAccumulator(cfg.n_clusters, n_features)
                            if fuse else None),
            "monitor": EwaInertiaMonitor(cfg.tol),
            "clock": SimClock(),
            "counters": PerfCounters(),
            "batch_inertias": [],
            "samples_assigned": 0,
        }
        self._assigner = self._online_state["assigner"]
        self.n_batches_seen_ = 0
        self.converged_ = False

    def _minibatch_step(self, x: np.ndarray) -> None:
        """Assign one batch and apply the decayed online update."""
        cfg = self.config
        state = self._online_state
        m, k = x.shape
        centers64 = state["centers64"]
        y = centers64.astype(cfg.dtype)
        acc = state["accumulator"]
        if acc is not None:
            acc.reset()
        res: AssignmentResult = state["assigner"].assign(x, y,
                                                         accumulator=acc)
        state["counters"].merge(res.counters)
        for label, t in res.timings:
            state["clock"].charge(label, t)
        labels = res.labels
        best = res.min_sqdist

        updater: UpdateStage = state["updater"]
        sums = updater.accumulate_protected(
            x, labels, cfg.n_clusters, state["counters"],
            fused_sums=acc.packed() if acc is not None else None)
        bsums, bcounts = sums[:, :k], sums[:, k]
        counts = state["counts"]
        new_counts = counts + bcounts
        nz = bcounts > 0
        # per-cluster decayed step: lr_j = n_j / N_j (sklearn MiniBatch)
        centers64[nz] += ((bsums[nz] - bcounts[nz, None] * centers64[nz])
                          / new_counts[nz, None])
        state["counts"] = new_counts

        # deterministic reassignment: clusters that have never received
        # a sample take the batch's worst-fit points (stable ordering,
        # so a fixed seed reproduces the stream exactly)
        dead = np.flatnonzero(state["counts"] == 0)
        if dead.size:
            order = np.argsort(best, kind="stable")[::-1]
            donors = order[: dead.size]
            reseed = dead[: donors.size]
            centers64[reseed] = x[donors].astype(np.float64)
            state["counts"][reseed] = 1.0
        for label, t in updater.estimate(m, cfg.n_clusters, k):
            state["clock"].charge(label, t)
        state["counters"].kernels_launched += 2

        inertia = float(np.sum(best.astype(np.float64)))
        self.converged_ = state["monitor"].update(inertia, m)
        state["batch_inertias"].append(inertia)
        state["samples_assigned"] += m
        self.n_batches_seen_ += 1
        self.cluster_centers_ = centers64.astype(cfg.dtype)
        self.cluster_counts_ = state["counts"].astype(np.int64)
        self.labels_ = labels.copy()
        self.inertia_ = inertia
        self.ewa_inertia_ = state["monitor"].ewa
        # absolute per-batch inertias: same units as inertia_ and as the
        # full-batch fit's history (the monitor's history is per-sample)
        self.inertia_history_ = list(state["batch_inertias"])
        self.sim_time_s_ = state["clock"].elapsed_s
        self.assignment_time_s_ = state["clock"].total("distance")
        self.timing_log_ = list(state["clock"].log)
        self.counters_ = state["counters"]

    def _fit_minibatch(self, x: np.ndarray) -> "FTKMeans":
        """Mini-batch K-means over shuffled epochs (``batch_size`` set)."""
        cfg = self.config
        m, k = x.shape
        bs = min(cfg.batch_size, m)
        rng = np.random.default_rng(cfg.seed)
        # initialise from the full training set (first batch would do,
        # but the full set is available — use it like sklearn does)
        if self._init_centroids is not None:
            y = validate_centroids(self._init_centroids, cfg.n_clusters, k,
                                   cfg.dtype)
        else:
            y = initialize(x, cfg.n_clusters, cfg.init, rng)
        self._build_online_state(
            y, np.zeros(cfg.n_clusters, dtype=np.float64), bs, k, rng)

        epoch = 0
        for epoch in range(1, cfg.max_iter + 1):
            perm = rng.permutation(m)
            for lo in range(0, m, bs):
                self._minibatch_step(x[perm[lo:lo + bs]])
                if self.converged_:
                    break
            if self.converged_:
                break
        self.n_iter_ = epoch

        # one full assignment pass for training labels / global inertia
        res = self._assigner.assign(x, self.cluster_centers_)
        self._online_state["counters"].merge(res.counters)
        self.labels_ = res.labels.copy()
        self.inertia_ = float(np.sum(res.min_sqdist.astype(np.float64)))
        self.counters_ = self._online_state["counters"]
        return self

    # ------------------------------------------------------------------
    def predict(self, x) -> np.ndarray:
        """Assign new samples to the fitted centroids.

        One single-pass assignment through the configured variant (the
        streaming engine in ``fast`` mode, memory-bounded regardless of
        ``x``'s size); input is validated like ``fit``'s.

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)

        Returns
        -------
        ndarray of shape (n_samples,)
            Index of the nearest fitted centroid per sample (int64).
        """
        self._check_fitted()
        x = self._validate_like_fit(x)
        res = self._assigner.assign(x, self.cluster_centers_)
        # the fit cache was released at the end of fit(), so this pass
        # ran on a transient cache whose buffers are uniquely ours
        return res.labels

    def fit_predict(self, x) -> np.ndarray:
        """``fit(X)`` then return the training labels.

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)

        Returns
        -------
        ndarray of shape (n_samples,)
        """
        return self.fit(x).labels_

    def score(self, x) -> float:
        """Negative inertia of ``x`` under the fitted centroids.

        Parameters
        ----------
        x : array-like of shape (n_samples, n_features)

        Returns
        -------
        float
            ``-sum(min squared distances)`` — higher is better, matching
            sklearn's convention.
        """
        self._check_fitted()
        x = self._validate_like_fit(x)
        res = self._assigner.assign(x, self.cluster_centers_)
        return -float(np.sum(res.min_sqdist.astype(np.float64)))

    def _validate_like_fit(self, x) -> np.ndarray:
        """Validate prediction input exactly like fit's, plus the
        feature-count check against the fitted centroids."""
        x = validate_data(x, self.config.dtype)
        if x.shape[1] != self.cluster_centers_.shape[1]:
            raise ValueError(
                f"X has {x.shape[1]} features, model has "
                f"{self.cluster_centers_.shape[1]}")
        return x

    # ------------------------------------------------------------------
    def distance_gflops_(self) -> float:
        """Simulated distance-stage GFLOPS over the fit (paper metric).

        Returns
        -------
        float
            Distance-stage floating-point throughput against the
            simulated clock; NaN when no assignment time was charged.
        """
        self._check_fitted()
        n, k = self.cluster_centers_.shape
        state = self._online
        if state is not None:
            # online model: distance flops are linear in samples, so the
            # stream's total is one flops count over all assigned rows
            # (matching what assignment_time_s_ actually covers)
            total = distance_flops(state["samples_assigned"], n, k)
        else:
            m = self.labels_.shape[0]
            total = self.n_iter_ * distance_flops(m, n, k)
        t = self.assignment_time_s_
        return total / t / 1e9 if t > 0 else float("nan")

    def _check_fitted(self) -> None:
        if not hasattr(self, "cluster_centers_"):
            raise RuntimeError("estimator is not fitted; call fit() first")
