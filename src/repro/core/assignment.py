"""Assignment-stage infrastructure shared by all kernel variants.

Defines the :class:`AssignmentResult` contract, the common base class,
global-memory setup helpers, and the vectorised ``fast`` execution path
that preserves the fault-injection / ABFT semantics of the functional
kernels at NumPy speed (Sec. 5 of DESIGN.md).  The fast path runs
through the blocked streaming engine of :mod:`repro.core.engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.abft.schemes import NONE, AbftScheme
from repro.core.engine import FastPathEngine
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.timing import KernelTiming, TimingModel

__all__ = ["AssignmentResult", "AssignmentKernelBase", "setup_gmem", "fast_assign"]


@dataclass
class AssignmentResult:
    """Output of one assignment-stage execution.

    ``timings`` holds the modelled durations of every kernel the variant
    launched (the simulated clock charges them); ``counters`` the
    functional-execution statistics.

    Lifetime: in ``fast`` mode while a fit cache is active,
    ``labels``/``min_sqdist`` alias the engine's reusable per-fit
    buffers — the next assign() on the same samples overwrites them.
    Consume (or copy) a result before requesting the next pass;
    functional mode always returns owned arrays.
    """

    labels: np.ndarray
    min_sqdist: np.ndarray
    counters: PerfCounters
    timings: list[tuple[str, KernelTiming]] = field(default_factory=list)

    @property
    def sim_time_s(self) -> float:
        return sum(t.time_s for _, t in self.timings)


def setup_gmem(x: np.ndarray, y: np.ndarray, counters: PerfCounters) -> GlobalMemory:
    """Bind operands + precomputed norms the fused kernels expect.

    The squared-norm vectors correspond to the two 'Samples²'/'Centroids²'
    kernels of Fig. 2 step 1; their cost is charged separately by the
    variants that need them.
    """
    gmem = GlobalMemory(counters)
    gmem.bind("samples", x)
    gmem.bind("centroids", y)
    gmem.bind("x_norms", np.sum(x * x, axis=1, dtype=x.dtype).reshape(-1, 1))
    gmem.bind("y_norms", np.sum(y * y, axis=1, dtype=y.dtype).reshape(-1, 1))
    # the (min, argmin) scratch lives in the kernel dtype: a float64
    # buffer would double the epilogue traffic accounting on fp32 runs
    assign = np.full((x.shape[0], 2), np.inf, dtype=x.dtype)
    assign[:, 1] = -1
    gmem.bind("assign", assign)
    return gmem


class AssignmentKernelBase(ABC):
    """Common interface of the step-wise assignment variants.

    ``chunk_bytes`` / ``workers`` parameterise the blocked streaming
    engine every variant's ``fast`` mode runs through; the engine is
    built lazily so subclasses can finish configuring themselves (tile,
    scheme, TF32) before first use.
    """

    name: str = "base"

    def __init__(self, device: DeviceSpec, dtype, *, mode: str = "fast",
                 injector=None, chunk_bytes: int | None = None,
                 workers: int = 1, operand_cache="auto", prune="auto"):
        self.device = device
        self.dtype = np.dtype(dtype)
        self.mode = mode
        self.injector = injector
        self.chunk_bytes = chunk_bytes
        self.workers = workers
        self.operand_cache = operand_cache
        self.prune = prune
        self.model = TimingModel(device)
        self._engine: FastPathEngine | None = None

    # -- streaming engine ----------------------------------------------
    def _engine_options(self) -> dict:
        """Subclass hook: extra FastPathEngine kwargs (tf32, scheme, ...)."""
        return {}

    @property
    def engine(self) -> FastPathEngine:
        """The variant's blocked streaming fast-path engine (lazy)."""
        if self._engine is None:
            self._engine = FastPathEngine(
                self.device, self.dtype, tile=getattr(self, "tile", None),
                injector=self.injector, chunk_bytes=self.chunk_bytes,
                workers=self.workers, operand_cache=self.operand_cache,
                prune=self.prune, **self._engine_options())
        return self._engine

    def feed_centroid_shifts(self, shifts, y) -> None:
        """Forward the update stage's per-centroid movement to the
        engine's pruning bounds (``fast`` mode only; a no-op otherwise).
        One-shot and identity-keyed to ``y`` — see
        :meth:`FastPathEngine.feed_centroid_shifts`."""
        if self.mode == "fast" and self._engine is not None:
            self._engine.feed_centroid_shifts(shifts, y)

    def begin_fit(self, x: np.ndarray, n_clusters: int | None = None, *,
                  preload: dict | None = None) -> None:
        """Hoist per-fit invariants (norms, buffers, chunk/block plans).

        ``preload`` forwards previously exported operand caches to the
        engine (see :meth:`FastPathEngine.begin_fit`); invalid entries
        are ignored there, never trusted.
        """
        if self.mode == "fast":
            self.engine.begin_fit(x, n_clusters, preload=preload)

    def end_fit(self) -> None:
        """Release the per-fit cache (see FastPathEngine.end_fit)."""
        if self._engine is not None:
            self._engine.end_fit()

    @abstractmethod
    def assign(self, x: np.ndarray, y: np.ndarray, *,
               accumulator=None) -> AssignmentResult:
        """Compute (labels, min distances) for samples ``x`` against
        centroids ``y``.

        ``accumulator`` (a
        :class:`repro.core.accumulate.StreamedAccumulator`) requests
        fused update accumulation: in ``fast`` mode the engine feeds it
        per chunk inside the assignment loop; functional kernels feed
        the whole pass once labels exist.  Either way the accumulated
        sums are bit-identical to a one-shot sequential pass."""

    def _feed_functional(self, accumulator, x: np.ndarray,
                         labels: np.ndarray) -> None:
        """Feed a full functional-mode pass to the update accumulator."""
        if accumulator is not None:
            accumulator.feed(x, labels)

    @abstractmethod
    def estimate(self, m: int, n_clusters: int, k_features: int) -> list[tuple[str, KernelTiming]]:
        """Modelled kernel timings for one assignment pass at this shape."""


def fast_assign(x: np.ndarray, y: np.ndarray, *, dtype, tf32: bool,
                counters: PerfCounters, tile: TileConfig | None = None,
                injector=None, scheme: AbftScheme = NONE,
                safety: float = 4.0, chunk_bytes: int | None = None,
                workers: int = 1,
                device: DeviceSpec | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised assignment with fault/ABFT semantics.

    Thin functional wrapper over :class:`repro.core.engine.FastPathEngine`:
    the accumulator is computed in memory-bounded sample chunks with the
    row-argmin fused in, and the SEU plan is replayed block-by-block on
    the same logical tile coordinates the functional kernels corrupt.
    Detecting schemes measure each flip against the same threshold policy
    the functional kernel uses and (for correcting schemes) undo it;
    sub-threshold flips survive — exactly the functional behaviour.

    Callers that reuse the engine across Lloyd iterations should hold a
    :class:`FastPathEngine` instead (per-fit invariants stay hoisted);
    this wrapper builds a one-shot engine per call.
    """
    engine = FastPathEngine(device, dtype, tile=tile, tf32=tf32,
                            injector=injector, scheme=scheme, safety=safety,
                            chunk_bytes=chunk_bytes, workers=workers)
    # the engine is local to this call, so its result buffers have no
    # other referent and can be handed back directly
    return engine.assign(x, y, counters)
