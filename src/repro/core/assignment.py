"""Assignment-stage infrastructure shared by all kernel variants.

Defines the :class:`AssignmentResult` contract, the common base class,
global-memory setup helpers, and the vectorised ``fast`` execution path
that preserves the fault-injection / ABFT semantics of the functional
kernels at NumPy speed (Sec. 5 of DESIGN.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.abft.schemes import NONE, AbftScheme
from repro.abft.thresholds import ThresholdPolicy
from repro.gemm.reference import reference_gemm
from repro.gemm.shapes import GemmShape
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.timing import KernelTiming, TimingModel
from repro.utils.arrays import ceil_div
from repro.utils.bits import flip_bit

__all__ = ["AssignmentResult", "AssignmentKernelBase", "setup_gmem", "fast_assign"]


@dataclass
class AssignmentResult:
    """Output of one assignment-stage execution.

    ``timings`` holds the modelled durations of every kernel the variant
    launched (the simulated clock charges them); ``counters`` the
    functional-execution statistics.
    """

    labels: np.ndarray
    min_sqdist: np.ndarray
    counters: PerfCounters
    timings: list[tuple[str, KernelTiming]] = field(default_factory=list)

    @property
    def sim_time_s(self) -> float:
        return sum(t.time_s for _, t in self.timings)


def setup_gmem(x: np.ndarray, y: np.ndarray, counters: PerfCounters) -> GlobalMemory:
    """Bind operands + precomputed norms the fused kernels expect.

    The squared-norm vectors correspond to the two 'Samples²'/'Centroids²'
    kernels of Fig. 2 step 1; their cost is charged separately by the
    variants that need them.
    """
    gmem = GlobalMemory(counters)
    gmem.bind("samples", x)
    gmem.bind("centroids", y)
    gmem.bind("x_norms", np.sum(x * x, axis=1, dtype=x.dtype).reshape(-1, 1))
    gmem.bind("y_norms", np.sum(y * y, axis=1, dtype=y.dtype).reshape(-1, 1))
    assign = np.full((x.shape[0], 2), np.inf)
    assign[:, 1] = -1
    gmem.bind("assign", assign)
    return gmem


class AssignmentKernelBase(ABC):
    """Common interface of the step-wise assignment variants."""

    name: str = "base"

    def __init__(self, device: DeviceSpec, dtype, *, mode: str = "fast",
                 injector=None):
        self.device = device
        self.dtype = np.dtype(dtype)
        self.mode = mode
        self.injector = injector
        self.model = TimingModel(device)

    @abstractmethod
    def assign(self, x: np.ndarray, y: np.ndarray) -> AssignmentResult:
        """Compute (labels, min distances) for samples ``x`` against
        centroids ``y``."""

    @abstractmethod
    def estimate(self, m: int, n_clusters: int, k_features: int) -> list[tuple[str, KernelTiming]]:
        """Modelled kernel timings for one assignment pass at this shape."""


def fast_assign(x: np.ndarray, y: np.ndarray, *, dtype, tf32: bool,
                counters: PerfCounters, tile: TileConfig | None = None,
                injector=None, scheme: AbftScheme = NONE,
                safety: float = 4.0) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised assignment with fault/ABFT semantics.

    Computes the GEMM accumulator in one shot, then replays the SEU plan
    block-by-block: each planned flip lands on the corresponding element
    of the accumulator; a detecting scheme measures the corruption against
    the same threshold policy the functional kernel uses and (for
    correcting schemes) undoes it.  Sub-threshold flips survive — exactly
    the functional kernels' behaviour.
    """
    dt = np.dtype(dtype)
    m, k = x.shape
    n = y.shape[0]
    acc = reference_gemm(x, y, tf32=tf32).astype(dt)

    if injector is not None and getattr(injector, "enabled", False) and tile is not None:
        policy = ThresholdPolicy(dt, tf32=tf32, safety=safety)
        tb = tile.tb
        grid_m, grid_n = ceil_div(m, tb.m), ceil_div(n, tb.n)
        k_iters = ceil_div(k, tb.k)
        bid = 0
        for bm in range(grid_m):
            for bn in range(grid_n):
                plan = injector.plan_for_block(bid, k_iters)
                bid += 1
                if plan is None:
                    continue
                counters.errors_injected += 1
                r, c = plan.locate(tb.m, tb.n)
                rows = min(tb.m, m - bm * tb.m)
                cols = min(tb.n, n - bn * tb.n)
                if r >= rows or c >= cols:
                    # the flip landed in tile padding: numerically inert
                    # (and trivially corrected by any detecting scheme)
                    continue
                i, j = bm * tb.m + r, bn * tb.n + c
                old = acc[i, j]
                new = flip_bit(old, plan.bit)
                eps = float(new) - float(old)
                if not scheme.detects:
                    acc[i, j] = new
                    continue
                counters.checksum_tests += 1
                # warp-tile checksum scale, matching measure_residuals()
                wm0 = (r // tile.warp.m) * tile.warp.m
                wn0 = (c // tile.warp.n) * tile.warp.n
                wtile = acc[bm * tb.m + wm0: bm * tb.m + min(wm0 + tile.warp.m, rows),
                            bn * tb.n + wn0: bn * tb.n + min(wn0 + tile.warp.n, cols)]
                mx = float(np.max(np.abs(wtile.astype(np.float64)))) if wtile.size else 1.0
                scale = max(1.0, min(mx, 1e290) * float(np.sqrt(max(1, wtile.size))))
                residual = eps if np.isfinite(eps) else np.inf
                if policy.exceeds(residual, scale):
                    counters.errors_detected += 1
                    if scheme.corrects:
                        counters.errors_corrected += 1  # acc left clean
                    # detection-only schemes recompute: also clean
                else:
                    acc[i, j] = new  # sub-threshold: escapes, as designed
    xx = np.sum(x * x, axis=1, dtype=dt)
    yy = np.sum(y * y, axis=1, dtype=dt)
    d = xx[:, None] + yy[None, :] - 2.0 * acc
    labels = np.argmin(d, axis=1).astype(np.int64)
    return labels, d[np.arange(m), labels]
