"""Cross-iteration distance bounds for pruned **exact** assignment.

Elkan/Hamerly-style pruning normally trades exactness guarantees that
hold in real arithmetic for float trouble at the margins.  This repo's
contract is stronger than "same clusters": every knob (chunking,
workers, sharding) must leave labels *and* min-distance bits untouched.
:class:`BoundsState` therefore prunes a row only when the skip is
provably **bit-identical** to recomputing it:

1. **Bit-frozen own centroid.**  A row may be skipped only when the
   centroid it is assigned to has exactly the same bits as in the round
   its cached label/distance were computed (``prev_y`` compare through
   unsigned views).  The engine computes each distance row through a
   fixed-shape GEMM unit whose BLAS result depends only on that row and
   column operand, and an elementwise epilogue — so a frozen centroid
   reproduces the cached ``best`` value bit-for-bit, floor included.
2. **Margin-certified competitors.**  Every *other* centroid's freshly
   computed distance must provably exceed the cached own distance.  A
   per-sample float64 lower bound ``lb`` on the true distance to the
   nearest competitor is maintained across rounds (loosened by the
   centroid movement, the classic triangle-inequality step) and
   compared through a conservative float-error margin ``err``:
   ``max(0, lb)**2 - err > best`` implies each computed competitor
   value is strictly greater than the cached minimum, so the fresh
   argmin — first-index tie-breaking included — would land on the same
   centroid and produce the same floored distance.

Because a pruned row's outputs are bit-identical to a recompute, the
whole fit trajectory (labels, inertia, fused update sums, empty-cluster
reseeding, convergence) is bit-identical to the unpruned engine — and
the *choice* of active set can never change a bit, which is what keeps
shard-local bounds compatible with the distributed bit-identity
contract.  The loosening step is valid for **any** centroid transition
(it never assumes a forward Lloyd step), so checkpoint rewinds,
re-plans and interleaved passes on the fit cache are all safe.

**Error margin.**  The engine computes ``d = -2*x.y + |x|^2 + |y|^2``
in the kernel dtype (optionally TF32-rounded operands).  The deviation
of the computed value from the true squared distance is bounded by the
classic dot-product error model: ``err = C * (|x|^2 + ny_max +
2*sqrt(|x|^2 * ny_max))`` with ``C = ERR_SAFETY * (k*eps + tf32_eps)``
(``k`` features, ``eps`` the dtype epsilon, ``tf32_eps = 2**-10`` only
under TF32 rounding), evaluated in float64 from float64 norms.  The
constant is deliberately generous — an over-estimate only shrinks the
pruned set, never breaks exactness — and the hypothesis property
suites (:mod:`tests.core.test_pruned_assignment`) pound on it
empirically.

**Protection story (ABFT interaction).**  A pruned row has no fresh
GEMM for the ABFT checksums to cover: its protection is the cached
state itself.  Every array pruning trusts — the bounds, the stored
``prev_y``, and the engine's cached ``labels``/``best`` buffers — is
fingerprinted (XOR over exact bit patterns) at round end and verified
at round start.  Any mismatch (an SEU in the bounds arrays themselves,
a torn write, an aborted pass) invalidates the state and forces a
fully-active round, which recomputes every row without trusting any
history — detection + containment, the paper's ABFT philosophy applied
to the pruning metadata.  Rows of chunks intersected by injected fault
plans are additionally invalidated each round: a sub-threshold flip
that escaped the ABFT threshold is exact *that* round by definition of
the replay semantics, but must not be trusted as pruning history.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PRUNE_MODES", "BoundsState", "resolve_prune_mode"]

#: string modes of the ``prune`` knob.  ``'auto'`` resolves to the
#: O(M)-memory Hamerly bound; ``'elkan'`` keeps a per-centroid (M, K)
#: bound matrix (tighter, K x the memory) and is opt-in.
PRUNE_MODES = ("auto", "off", "elkan", "hamerly")

#: safety factor on the analytic dot-product error bound; generous on
#: purpose (a loose margin only reduces pruning, never exactness)
ERR_SAFETY = 8.0

#: operand-rounding step of TF32 (10 explicit mantissa bits)
TF32_EPS = 2.0 ** -10


def resolve_prune_mode(prune) -> str:
    """Validate the ``prune`` knob and resolve ``'auto'``."""
    if prune not in PRUNE_MODES:
        raise ValueError(
            f"unknown prune mode {prune!r}; choose from {PRUNE_MODES}")
    return "hamerly" if prune == "auto" else prune


def _checksum(arr: np.ndarray) -> int:
    """XOR fingerprint of an array's exact bit pattern (order-free)."""
    if arr.size == 0:
        return 0
    view = arr.reshape(-1).view(np.dtype(f"u{arr.dtype.itemsize}"))
    return int(np.bitwise_xor.reduce(view))


class BoundsState:
    """Per-fit pruning state owned by the engine's :class:`FitCache`.

    Parameters
    ----------
    x : ndarray
        The fit's sample matrix (kernel dtype); only its float64 row
        norms are kept.
    n_clusters : int
        Centroid count of the fit (re-resolved if a pass changes it).
    mode : str
        ``'hamerly'`` — one float64 lower bound per sample on the
        distance to the nearest *competitor* centroid; ``'elkan'`` — a
        float64 (M, K) matrix of per-centroid lower bounds.
    tf32 : bool
        Whether the engine rounds GEMM operands to TF32 (widens the
        error margin).
    """

    def __init__(self, x: np.ndarray, n_clusters: int, *,
                 mode: str = "hamerly", tf32: bool = False):
        if mode not in ("hamerly", "elkan"):
            raise ValueError(f"mode must be 'hamerly' or 'elkan', got {mode!r}")
        m, k = x.shape
        self.mode = mode
        self.m = m
        self.n_clusters = int(n_clusters)
        self.tf32 = bool(tf32)
        # float64 squared sample norms, computed band-by-band so the
        # float64 staging copy stays cache-sized
        self.nx = np.empty(m, dtype=np.float64)
        step = max(1, (4 << 20) // max(1, k * 8))
        for lo in range(0, m, step):
            band = x[lo:lo + step].astype(np.float64, copy=False)
            self.nx[lo:lo + step] = np.einsum("ij,ij->i", band, band)
        eps = float(np.finfo(x.dtype).eps)
        self._coeff = ERR_SAFETY * (k * eps + (TF32_EPS if self.tf32 else 0.0))
        shape = (m,) if mode == "hamerly" else (m, self.n_clusters)
        self.lb = np.full(shape, -np.inf, dtype=np.float64)
        self.prev_y: np.ndarray | None = None
        self._sums: tuple | None = None
        self._err: np.ndarray | None = None
        #: checksum-mismatch heals (invalidate-and-recompute events)
        self.rebuilds = 0

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.lb.nbytes + self.nx.nbytes

    def invalidate(self) -> None:
        """Drop all cross-round trust: the next round is fully active."""
        self.lb.fill(-np.inf)
        self.prev_y = None
        self._sums = None

    def invalidate_rows(self, idx) -> None:
        """Stop trusting specific rows (e.g. rows of a chunk an injected
        fault plan targeted: exact this round, unsafe as history)."""
        self.lb[idx] = -np.inf

    def _fingerprint(self, labels: np.ndarray, best: np.ndarray) -> tuple:
        return (_checksum(self.lb), _checksum(self.prev_y),
                _checksum(labels), _checksum(best))

    @staticmethod
    def _shifts_from(prev_y: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-centroid float64 movement; the *same expression* as
        :class:`repro.core.update.UpdateResult.shifts`, so a fed and a
        self-computed shift vector carry identical bits."""
        d = y.astype(np.float64) - prev_y.astype(np.float64)
        return np.sqrt(np.sum(d * d, axis=1))

    def _frozen_centroids(self, y: np.ndarray) -> np.ndarray:
        """(K,) mask of centroids whose bits are unchanged vs prev_y."""
        u = np.dtype(f"u{y.dtype.itemsize}")
        return (y.view(u) == self.prev_y.view(u)).all(axis=1)

    # ------------------------------------------------------------------
    def begin_round(self, y: np.ndarray, labels: np.ndarray,
                    best: np.ndarray, shifts=None):
        """Verify the state, loosen the bounds for the ``prev_y -> y``
        transition and return the active mask.

        Returns a boolean (M,) mask — True rows must be recomputed —
        or None when no row can be pruned this round (first round,
        geometry change, or a fingerprint mismatch, which also counts a
        heal in :attr:`rebuilds`).  Always prepares this round's error
        margins so :meth:`refresh` can re-tighten computed rows either
        way.
        """
        n = int(y.shape[0])
        if n != self.n_clusters:
            self.n_clusters = n
            if self.mode == "elkan":
                self.lb = np.full((self.m, n), -np.inf, dtype=np.float64)
            self.invalidate()
        y64 = y.astype(np.float64, copy=False)
        ny_max = float(np.max(np.einsum("ij,ij->i", y64, y64))) if n else 0.0
        self._err = self._coeff * (self.nx + ny_max
                                   + 2.0 * np.sqrt(self.nx * ny_max))
        if self.prev_y is None:
            return None
        if self.prev_y.shape != y.shape or self.prev_y.dtype != y.dtype:
            self.invalidate()
            return None
        if self._fingerprint(labels, best) != self._sums:
            self.rebuilds += 1
            self.invalidate()
            return None
        if shifts is not None and np.shape(shifts) == (n,):
            shifts64 = np.asarray(shifts, dtype=np.float64)
        else:
            shifts64 = self._shifts_from(self.prev_y, y)
        frozen = self._frozen_centroids(y)
        if self.mode == "hamerly":
            self.lb -= float(shifts64.max(initial=0.0))
            lb_floor = np.maximum(self.lb, 0.0)
            margin = lb_floor * lb_floor - self._err
        else:
            self.lb -= shifts64[None, :]
            if n < 2:
                # one centroid: no competitors, a frozen own centroid
                # alone certifies the cached row
                margin = np.full(self.m, np.inf)
            else:
                col = labels[:, None]
                stash = np.take_along_axis(self.lb, col, axis=1)
                np.put_along_axis(self.lb, col, np.inf, axis=1)
                lbmin = self.lb.min(axis=1)
                np.put_along_axis(self.lb, col, stash, axis=1)
                lb_floor = np.maximum(lbmin, 0.0)
                margin = lb_floor * lb_floor - self._err
        # strict >: competitors must beat the cached minimum outright so
        # first-index argmin tie-breaking cannot be disturbed either
        pruned = frozen[labels] & (margin > best.astype(np.float64))
        return ~pruned

    def refresh(self, idx, tile: np.ndarray, labels=None) -> None:
        """Re-tighten bounds for freshly computed rows.

        ``idx`` — the rows' global indices (slice or int array);
        ``tile`` — their raw computed squared-distance tile (rows, K),
        post-epilogue, pre-floor.  The hamerly refresh scribbles on the
        tile when ``labels`` (the rows' fresh argmins) are supplied —
        callers pass engine scratch that is fully consumed by then.
        Disjoint row sets may refresh concurrently (the engine's
        threaded chunk dispatch).
        """
        err = self._err[idx]
        if self.mode == "elkan":
            self.lb[idx] = np.sqrt(np.maximum(
                tile.astype(np.float64) - err[:, None], 0.0))
        elif self.n_clusters < 2:
            self.lb[idx] = np.inf
        else:
            # second-smallest computed value = the nearest competitor's
            # computed distance (ties only make the bound conservative).
            # With the argmin in hand, masking the assigned column and
            # taking the row min gives the same value as a partition —
            # the label column either holds the strict minimum or ties
            # the second-smallest — in one cheap pass over the tile
            if labels is not None:
                np.put_along_axis(tile, labels[:, None], np.inf, axis=1)
                second = tile.min(axis=1).astype(np.float64)
            else:
                second = np.partition(tile, 1,
                                      axis=1)[:, 1].astype(np.float64)
            self.lb[idx] = np.sqrt(np.maximum(second - err, 0.0))

    def end_round(self, y: np.ndarray, labels: np.ndarray,
                  best: np.ndarray) -> None:
        """Store the transition anchor and fingerprint every array the
        next round's pruning will trust."""
        self.prev_y = y.copy()
        self._sums = self._fingerprint(labels, best)
