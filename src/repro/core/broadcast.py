"""V3 — threadblock-level broadcast (Sec. III-A4).

Eliminates the cross-block merge pass entirely: block columns race on a
per-row lock ("broadcast vector") and finish the global argmin with
atomic compare-and-swap inside the GEMM kernel.  One kernel launch, no
partial buffers (the paper's 1.04x step, and the scheme the final
tensor-core kernel inherits).
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm_kmeans import V1GemmAssignment
from repro.gemm.epilogue import BroadcastArgminEpilogue
from repro.gemm.shapes import GemmShape
from repro.gemm.simt_gemm import SimtGemm

__all__ = ["V3BroadcastAssignment"]


class V3BroadcastAssignment(V1GemmAssignment):
    """Single-kernel assignment via per-row atomic min."""

    name = "v3"
    variant_key = "v3"

    def _assign_functional(self, x, y, counters):
        from repro.core.assignment import setup_gmem

        m, k = x.shape
        n = y.shape[0]
        gmem = setup_gmem(x, y, counters)
        kern = SimtGemm(self.device, self.tile, self.dtype,
                        epilogue=BroadcastArgminEpilogue(), counters=counters,
                        injector=self.injector)
        kern.run(gmem, GemmShape(m, n, k))
        assign = gmem["assign"]
        labels = assign[:, 1].astype(np.int64)
        best = assign[:, 0].astype(self.dtype)
        return labels, best
