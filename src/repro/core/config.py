"""Configuration for the FT K-Means estimator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.abft.schemes import AbftScheme, get_scheme
from repro.core.bounds import PRUNE_MODES
from repro.gemm.tiling import TileConfig
from repro.gpusim.device import DeviceSpec, get_device

__all__ = ["KMeansConfig", "VARIANT_NAMES", "MODES", "UPDATE_MODES",
           "EXECUTORS", "REASSIGNMENT_MODES", "PRUNE_MODES",
           "REDUCE_TOPOLOGIES", "TRANSPORTS"]

#: assignment-stage implementations, in the paper's optimisation order
VARIANT_NAMES = ("naive", "v1", "v2", "v3", "tensorop", "ft")

#: execution modes of the simulator
MODES = ("fast", "functional")

#: centroid-update accumulation implementations ('auto' resolves per
#: execution mode: streamed+fused in 'fast', oneshot in 'functional')
UPDATE_MODES = ("auto", "oneshot", "streamed")

#: executor backends of the sharded multi-worker layer (repro.dist)
EXECUTORS = ("serial", "thread", "process")

#: reduce topologies of the sharded coordinator ('auto' resolves per
#: effective worker count: 'tree' on wide fleets, 'stream' mid-size,
#: 'star' for small ones)
REDUCE_TOPOLOGIES = ("auto", "star", "stream", "tree")

#: bulk-payload transports of the sharded round loop ('auto' resolves
#: per executor: the zero-copy shared-memory plane on the process
#: backend, plain pipes everywhere else)
TRANSPORTS = ("auto", "pipe", "shm")

#: empty-cluster handling policies of the online/mini-batch update
REASSIGNMENT_MODES = ("deterministic", "count_threshold", "random")


@dataclass
class KMeansConfig:
    """All knobs of a K-means run.

    Attributes
    ----------
    n_clusters:
        K — number of centroids.
    variant:
        Assignment-stage implementation ('naive', 'v1', 'v2', 'v3',
        'tensorop', 'ft'); the paper's step-wise ladder (Sec. III-A) plus
        the fault-tolerant final form.
    dtype:
        float32 or float64.
    device:
        'a100' / 't4' or a :class:`DeviceSpec`.
    mode:
        'fast' (vectorised, identical numerics, for large problems) or
        'functional' (tile-accurate dataflow, for verification).
    tile:
        Kernel tile parameters; None selects a sensible default, 'auto'
        asks the code-generation selector for the best feasible kernel.
    abft:
        Fault-tolerance scheme name (implied 'ftkmeans' when variant='ft';
        'none' otherwise).
    p_inject:
        SEU probability per threadblock per kernel (error-injection
        experiments).
    dmr_update:
        Protect the centroid-update stage with DMR (Sec. I / IV).
    use_tf32:
        TF32 rounding on the FP32 tensor-core path (paper default: on).
    chunk_bytes:
        Memory budget of the blocked streaming fast-path engine (scratch
        per assignment pass).  None auto-derives the budget from the
        device's L2 capacity.
    engine_workers:
        Worker threads the engine may dispatch independent sample-chunks
        across (the per-chunk budget divides accordingly, so the total
        scratch footprint stays under ``chunk_bytes``).
    operand_cache:
        Budget policy of the engine's fit-lifetime operand caches — the
        hoisted TF32-rounded sample matrix and the transposed update
        -feed operand, which move per-iteration rounding/transpose work
        out of the Lloyd loop with bit-identical results.  'auto'
        (default) budgets them against ``chunk_bytes``; an int is an
        explicit byte budget — set one to admit the fast lane on fits
        whose sample matrix outgrows the chunk budget; 'off' disables
        hoisting (the legacy per-iteration path).  The budget is
        **cumulative** across both caches (each is one more copy of
        ``x``, so both hoist only when the budget covers
        ``2 * x.nbytes``) and the rounded matrix claims it first; an
        operand that does not fit simply stays on the per-iteration
        path.  The same policy gates the coordinator's merge-operand
        hoist in sharded fits.
    prune:
        Cross-iteration bound pruning of the assignment stage
        (:mod:`repro.core.bounds`): once most samples stop changing
        clusters, the engine skips their distance rows entirely and
        routes only the active set through the chunk GEMM.  Pruning is
        **bit-exact** — a row is skipped only when its assigned
        centroid's bits are frozen and a float-error-margined lower
        bound certifies every competitor, so labels, inertia and the
        full fit trajectory are bit-identical to the unpruned engine
        (sharded fits included; bounds are shard-local).  'auto'
        (default) resolves to 'hamerly' (one float64 bound per sample);
        'elkan' keeps per-centroid (M, K) bounds — tighter, K x the
        memory; 'off' disables pruning.  The bounds arrays carry their
        own checksummed protection story (see ``docs/architecture.md``).
    update_mode:
        Centroid-update accumulation implementation.  'oneshot' is the
        seed ``np.add.at`` scatter pass; 'streamed' is the chunked
        bincount segment-sum path, which ``mode='fast'`` additionally
        fuses into the engine's assignment chunk loop.  Both produce
        bit-identical sums.  'auto' (default) picks 'streamed' in fast
        mode and 'oneshot' in functional mode.
    batch_size:
        When set, ``fit`` runs mini-batch K-means: each epoch streams
        ``batch_size``-sample batches (a fresh shuffle per epoch)
        through ``partial_fit``-style online updates instead of
        full-batch Lloyd iterations.  ``max_iter`` counts epochs and
        convergence is judged on the EWA of per-batch inertia.  None
        (default) keeps the full-batch Lloyd loop.
    n_workers:
        Shard the full-batch fit across this many simulated
        devices/processes through :mod:`repro.dist` (fast mode only).
        Samples split into GEMM-unit-aligned shards; workers compute
        per-shard assignments + partial sums map-reduce style and the
        coordinator merges with sequential-continuation semantics, so
        the fit stays bit-identical to ``n_workers=1`` for any shard
        count or executor.  1 (default) keeps the in-process engine.
    executor:
        Worker backend when ``n_workers > 1``: 'serial' (in-process
        loop, correctness/debug), 'thread' (worker threads; BLAS
        releases the GIL) or 'process' (one OS process per worker —
        survives real worker death).
    checkpoint_every:
        With ``n_workers > 1``: snapshot the coordinator state
        (centroids, iteration, convergence monitor, RNG/counter state)
        every this many iterations, so a crashed worker resumes from
        the last checkpoint instead of iteration 0.  0 disables
        periodic checkpoints (recovery then restarts the fit).
    checkpoint_sync:
        With ``n_workers > 1`` and a ``checkpoint_dir``: True writes
        each snapshot synchronously on the round loop (the legacy
        behaviour); False (default) hands the pickled snapshot to a
        background writer so the fsync cost leaves the hot loop.  Reads
        (and recovery restores) flush the writer first, and each write
        keeps the atomic tmp+fsync+replace protocol, so crash
        consistency and bit-exact recovery are identical either way.
    round_timeout:
        With ``n_workers > 1``: seconds each coordinator round may take
        before unanswered workers are classified stalled (terminated
        where the backend allows, then recovered like a crash).  None
        (default) disables the deadline — a stalled-but-alive worker
        then blocks the fit, exactly like a real straggler with no
        failure detector.  ``"auto"`` sizes the deadline adaptively as
        a multiple of a trailing median of observed round times (no
        deadline until enough rounds have been observed), so the
        detector tracks the workload instead of needing a hand-tuned
        budget.  With a fixed float, size it well above an honest
        round's wall time — including post-shrink rounds under
        ``elastic=True``, where one survivor may hold every shard
        (worker boot is already excluded: the process backend
        handshakes at spawn).  An undersized deadline turns
        healthy-but-slow workers into phantom stalls.
    elastic:
        With ``n_workers > 1``: recover from a worker loss by
        re-sharding the lost rows onto the surviving workers
        (shrink-and-continue) instead of respawning the full worker
        set.  The re-plan keeps shard boundaries on the same GEMM-unit
        grid and shards in row order, so the fit stays bit-identical to
        ``n_workers=1`` for any membership history.
    target_workers:
        With ``n_workers > 1``: fleet size the self-healing manager
        steers back toward after a loss (spare promotion, or elastic
        shrink followed by re-expansion at a later round boundary —
        replacements reuse the lost worker ids, so a full regrow
        restores the original shard plan).  None (default, with
        ``hot_spares=0``) leaves recovery to the ``elastic`` policy;
        must not exceed ``n_workers``.
    hot_spares:
        With ``n_workers > 1``: replacement capacity provisioned ahead
        of any failure.  On the process backend these are genuinely
        pre-booted (but unconfigured) children, so promoting one onto a
        dead worker's shard skips the child cold-start; in-process
        backends treat a spare as a promotion token.  The pool is
        re-provisioned after every promotion/expansion.
    reduce_topology:
        With ``n_workers > 1``: how the coordinator reduces the
        workers' per-shard partial sums each round.  'star' (legacy)
        gathers every partial and re-feeds all rows sequentially after
        the full collect; 'stream' starts the same sequential re-feed
        as shard results *arrive* (committing strictly in shard order,
        so merge time hides under the slowest worker); 'tree' pushes
        the reduce onto the workers — pairwise continuation combines
        along the shard order, so the coordinator only adopts the final
        state.  All three produce bit-identical centroids (the float
        association never changes; see ``docs/distributed.md``).
        'auto' (default) picks 'tree' for 8+ workers, 'stream' for
        3-7 and 'star' below.
    transport:
        With ``n_workers > 1``: how the round loop's bulk payloads
        move between the coordinator and the workers.  'pipe' pickles
        everything over the executor's pipes (the legacy behaviour;
        the only option on the in-process backends, which have no
        serialization to eliminate).  'shm' (process backend) is the
        zero-copy shared-memory plane (:mod:`repro.dist.shm`): the
        dataset lives once in ``multiprocessing.shared_memory`` and
        workers map their shard as a view (spares and re-expands
        attach in O(1) instead of re-pickling rows), the per-round
        centroid broadcast is one write into a generation-stamped
        buffer instead of W pipe sends, and labels/distances/partials
        come back through per-worker shared slots — the pipes carry
        only control/ack tokens.  Both transports are bit-identical to
        each other and to ``n_workers=1`` for every topology ×
        membership history.  'auto' (default) picks 'shm' on the
        process executor (falling back to 'pipe' with a warning if
        segment creation fails) and 'pipe' elsewhere; an explicit
        'shm' raises instead of falling back.
    heartbeat_interval:
        With ``n_workers > 1``: minimum seconds between the fleet
        manager's between-round liveness sweeps (None disables).  A
        worker that answered its round but wedged afterwards is invisible
        to the round deadline until the *next* round blows it; the
        heartbeat catches it in roughly ``2 x heartbeat_interval``
        seconds, independent of the round budget.
    reassignment_mode:
        Empty-cluster policy of the online/mini-batch update step:
        'deterministic' (clusters with zero running weight take the
        batch's worst-fit samples, stable order), 'count_threshold'
        (clusters below ``reassignment_ratio`` x the largest running
        count are re-seeded from worst-fit samples) or 'random'
        (below-threshold clusters re-seed from random batch samples
        drawn proportional to squared distance, à la sklearn's
        ``reassignment_ratio``).
    reassignment_ratio:
        Count-fraction threshold used by the 'count_threshold' and
        'random' modes.
    init / max_iter / tol / seed:
        Standard Lloyd controls; ``tol`` is on relative inertia change.
    """

    n_clusters: int = 8
    variant: str = "tensorop"
    dtype: np.dtype = np.dtype(np.float32)
    device: DeviceSpec | str = "a100"
    mode: str = "fast"
    tile: TileConfig | str | None = None
    abft: str | AbftScheme = "none"
    p_inject: float = 0.0
    dmr_update: bool = True
    use_tf32: bool = True
    chunk_bytes: int | None = None
    engine_workers: int = 1
    operand_cache: str | int = "auto"
    prune: str = "auto"
    update_mode: str = "auto"
    batch_size: int | None = None
    n_workers: int = 1
    executor: str = "serial"
    checkpoint_every: int = 0
    checkpoint_sync: bool = False
    round_timeout: float | str | None = None
    elastic: bool = False
    target_workers: int | None = None
    hot_spares: int = 0
    heartbeat_interval: float | None = None
    reduce_topology: str = "auto"
    transport: str = "auto"
    reassignment_mode: str = "deterministic"
    reassignment_ratio: float = 0.01
    init: str = "k-means++"
    max_iter: int = 50
    tol: float = 1e-4
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.variant not in VARIANT_NAMES:
            raise ValueError(
                f"unknown variant {self.variant!r}; choose from {VARIANT_NAMES}")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose from {MODES}")
        self.dtype = np.dtype(self.dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32/float64, got {self.dtype}")
        self.device = get_device(self.device)
        if self.variant == "ft" and str(self.abft) in ("none",):
            self.abft = "ftkmeans"
        self.abft = get_scheme(self.abft)
        if self.p_inject and self.abft.name == "none" and self.variant == "ft":
            raise ValueError("error injection with variant='ft' needs a scheme")
        if not 0.0 <= self.p_inject <= 1.0:
            raise ValueError(f"p_inject must be in [0, 1], got {self.p_inject}")
        if self.chunk_bytes is not None and self.chunk_bytes < 1:
            raise ValueError(
                f"chunk_bytes must be >= 1, got {self.chunk_bytes}")
        if self.engine_workers < 1:
            raise ValueError(
                f"engine_workers must be >= 1, got {self.engine_workers}")
        if isinstance(self.operand_cache, str):
            if self.operand_cache not in ("auto", "off"):
                raise ValueError(
                    f"operand_cache must be 'auto', 'off' or a byte "
                    f"budget, got {self.operand_cache!r}")
        else:
            self.operand_cache = int(self.operand_cache)
            if self.operand_cache < 0:
                raise ValueError(
                    f"operand_cache byte budget must be >= 0, "
                    f"got {self.operand_cache}")
        if self.prune not in PRUNE_MODES:
            raise ValueError(
                f"unknown prune mode {self.prune!r}; "
                f"choose from {PRUNE_MODES}")
        if self.update_mode not in UPDATE_MODES:
            raise ValueError(
                f"unknown update_mode {self.update_mode!r}; "
                f"choose from {UPDATE_MODES}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from {EXECUTORS}")
        if self.n_workers > 1 and self.mode != "fast":
            raise ValueError(
                "sharded execution (n_workers > 1) requires mode='fast'")
        if self.n_workers > 1 and self.batch_size is not None:
            raise ValueError(
                "sharded execution (n_workers > 1) covers the full-batch "
                "fit only; it cannot be combined with batch_size")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}")
        self.checkpoint_sync = bool(self.checkpoint_sync)
        if isinstance(self.round_timeout, str):
            if self.round_timeout != "auto":
                raise ValueError(
                    f"round_timeout must be a positive number, 'auto' or "
                    f"None, got {self.round_timeout!r}")
        elif self.round_timeout is not None:
            self.round_timeout = float(self.round_timeout)
            if self.round_timeout <= 0:
                raise ValueError(
                    f"round_timeout must be > 0, got {self.round_timeout}")
        self.elastic = bool(self.elastic)
        if self.target_workers is not None:
            self.target_workers = int(self.target_workers)
            if self.target_workers < 1:
                raise ValueError(
                    f"target_workers must be >= 1, got {self.target_workers}")
            if self.n_workers > 1 and self.target_workers > self.n_workers:
                raise ValueError(
                    f"target_workers ({self.target_workers}) cannot exceed "
                    f"n_workers ({self.n_workers}): a fleet never grows "
                    f"past the size it started with")
        self.hot_spares = int(self.hot_spares)
        if self.hot_spares < 0:
            raise ValueError(
                f"hot_spares must be >= 0, got {self.hot_spares}")
        if self.heartbeat_interval is not None:
            self.heartbeat_interval = float(self.heartbeat_interval)
            if self.heartbeat_interval <= 0:
                raise ValueError(
                    f"heartbeat_interval must be > 0, "
                    f"got {self.heartbeat_interval}")
        if self.reduce_topology not in REDUCE_TOPOLOGIES:
            raise ValueError(
                f"unknown reduce_topology {self.reduce_topology!r}; "
                f"choose from {REDUCE_TOPOLOGIES}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"choose from {TRANSPORTS}")
        if self.transport == "shm" and self.executor != "process":
            raise ValueError(
                "transport='shm' requires executor='process' (the "
                "in-process backends have no serialization to "
                "eliminate); use 'auto' or 'pipe'")
        if self.reassignment_mode not in REASSIGNMENT_MODES:
            raise ValueError(
                f"unknown reassignment_mode {self.reassignment_mode!r}; "
                f"choose from {REASSIGNMENT_MODES}")
        if not 0.0 <= self.reassignment_ratio <= 1.0:
            raise ValueError(
                f"reassignment_ratio must be in [0, 1], "
                f"got {self.reassignment_ratio}")
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter}")
        if self.tol < 0:
            raise ValueError(f"tol must be >= 0, got {self.tol}")
        if self.init not in ("k-means++", "random"):
            raise ValueError(f"init must be 'k-means++' or 'random', got {self.init!r}")

    def resolved_update_mode(self) -> str:
        """The effective update accumulation path ('auto' resolved).

        Returns
        -------
        str
            'streamed' in fast mode, 'oneshot' in functional mode when
            ``update_mode='auto'``; otherwise ``update_mode`` verbatim.
        """
        if self.update_mode != "auto":
            return self.update_mode
        return "streamed" if self.mode == "fast" else "oneshot"

    def resolved_reduce_topology(self, n_workers: int | None = None) -> str:
        """The effective coordinator reduce topology ('auto' resolved).

        Parameters
        ----------
        n_workers : int, optional
            Effective worker count to resolve 'auto' against (a shrunk
            fleet may differ from the configured ``n_workers``);
            defaults to the configured count.

        Returns
        -------
        str
            'tree' for 8+ workers, 'stream' for 3-7, 'star' below when
            ``reduce_topology='auto'``; otherwise ``reduce_topology``
            verbatim.
        """
        if self.reduce_topology != "auto":
            return self.reduce_topology
        w = self.n_workers if n_workers is None else int(n_workers)
        if w >= 8:
            return "tree"
        if w >= 3:
            return "stream"
        return "star"

    def resolved_transport(self, executor: str | None = None) -> str:
        """The effective round-loop transport ('auto' resolved).

        Parameters
        ----------
        executor : str, optional
            Executor backend to resolve against; defaults to the
            configured ``executor``.

        Returns
        -------
        str
            'shm' on the process executor (unless ``transport='pipe'``
            was forced); 'pipe' on the in-process backends, which move
            no bytes at all.
        """
        ex = self.executor if executor is None else executor
        if ex != "process":
            return "pipe"
        return "shm" if self.transport in ("auto", "shm") else "pipe"
