"""Lloyd-iteration stopping rules."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConvergenceMonitor"]


@dataclass
class ConvergenceMonitor:
    """Tracks inertia across iterations and decides when to stop.

    Stops when the relative inertia improvement falls below ``tol`` or
    when labels stop changing (``centroid_shift`` ≈ 0).  Records the full
    history for tests asserting the Lloyd monotonicity invariant.
    """

    tol: float
    history: list[float] = field(default_factory=list)

    def update(self, inertia: float, centroid_shift: float) -> bool:
        """Record this iteration; return True when converged."""
        if not np.isfinite(inertia):
            raise ValueError(f"non-finite inertia {inertia!r}")
        prev = self.history[-1] if self.history else None
        self.history.append(float(inertia))
        if centroid_shift == 0.0:
            return True
        if prev is None:
            return False
        if prev <= 0.0:
            return True
        improvement = (prev - inertia) / prev
        return improvement <= self.tol

    @property
    def n_iterations(self) -> int:
        return len(self.history)
