"""Lloyd-iteration and mini-batch stopping rules."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConvergenceMonitor", "EwaInertiaMonitor"]


@dataclass
class ConvergenceMonitor:
    """Tracks inertia across iterations and decides when to stop.

    Stops when the relative inertia improvement falls below ``tol`` or
    when labels stop changing (``centroid_shift`` ≈ 0).  Records the full
    history for tests asserting the Lloyd monotonicity invariant.
    """

    tol: float
    history: list[float] = field(default_factory=list)

    def update(self, inertia: float, centroid_shift: float) -> bool:
        """Record this iteration; return True when converged."""
        if not np.isfinite(inertia):
            raise ValueError(f"non-finite inertia {inertia!r}")
        prev = self.history[-1] if self.history else None
        self.history.append(float(inertia))
        if centroid_shift == 0.0:
            return True
        if prev is None:
            return False
        if prev <= 0.0:
            return True
        improvement = (prev - inertia) / prev
        return improvement <= self.tol

    @property
    def n_iterations(self) -> int:
        return len(self.history)


@dataclass
class EwaInertiaMonitor:
    """Mini-batch / online stopping rule on smoothed per-sample inertia.

    Per-batch inertia is noisy (every batch is a different subsample),
    so the full-batch rule of :class:`ConvergenceMonitor` would stop on
    the first lucky batch.  This monitor instead tracks an exponentially
    weighted average (EWA) of the *per-sample* batch inertia — the
    normalisation makes unequal batch sizes comparable — and declares
    convergence only after ``patience`` consecutive batches whose
    relative EWA improvement falls below ``tol`` (the scheme sklearn's
    ``MiniBatchKMeans`` uses for its ``tol=0`` -free early stopping).

    Parameters
    ----------
    tol : float
        Relative-improvement threshold on the smoothed inertia.
    alpha : float, default 0.3
        EWA smoothing factor in (0, 1]; higher reacts faster.
    patience : int, default 3
        Consecutive sub-``tol`` batches required before stopping.

    Attributes
    ----------
    ewa : float or None
        Current smoothed per-sample inertia (None before the first batch).
    history : list of float
        Raw per-sample batch inertias, in arrival order.
    """

    tol: float
    alpha: float = 0.3
    patience: int = 3
    ewa: float | None = None
    stalled: int = 0
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")

    def update(self, batch_inertia: float, batch_size: float) -> bool:
        """Record one batch; return True once converged.

        Parameters
        ----------
        batch_inertia : float
            Sum of (weighted) squared distances over the batch.
        batch_size : float
            Samples in the batch — or the batch's total sample weight
            for weighted streams, so the normalised inertia stays in
            per-unit-weight units and convergence never depends on the
            weight scale.
        """
        if not np.isfinite(batch_inertia):
            raise ValueError(f"non-finite inertia {batch_inertia!r}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        per_sample = float(batch_inertia) / batch_size
        self.history.append(per_sample)
        prev = self.ewa
        if prev is None:
            self.ewa = per_sample
            return False
        self.ewa = self.alpha * per_sample + (1.0 - self.alpha) * prev
        improvement = (prev - self.ewa) / prev if prev > 0.0 else 0.0
        self.stalled = self.stalled + 1 if improvement <= self.tol else 0
        return self.stalled >= self.patience

    @property
    def n_batches(self) -> int:
        return len(self.history)
