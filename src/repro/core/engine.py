"""Blocked streaming fast-path engine.

The production hot loop of the reproduction: assignment executed in
sample-chunks sized to a configurable memory budget instead of one
M x N distance-matrix shot.  Three properties make it the engine the
estimator and every variant's ``fast`` mode run through:

* **Bounded memory.**  Each chunk's GEMM accumulator is at most
  ``chunk_bytes`` (auto-derived from the device's L2 when unset), the
  row-argmin is fused into the chunk loop, and the accumulator is
  transformed into distances *in place* — no full distance matrix ever
  exists.  Flash-KMeans applies the same blocked exact-assignment idea
  to scale K-means beyond fast-memory capacity.

* **Hoisted fit-invariants.**  A :class:`FitCache` created once per fit
  holds the per-sample squared norms, the reusable label/distance
  output buffers, the chunk plan, and the injector block-coordinate map
  (:class:`BlockMap`), so none of them is recomputed or reallocated
  across Lloyd iterations.  Chunk scratch buffers are pooled across
  iterations for the same reason.

* **Exact fault semantics.**  SEU replay lands on the same logical tile
  coordinates whether or not the data was chunked: fault plans are
  drawn once per launch in threadblock-id order (preserving the
  injector's RNG stream and the functional simulator's block visit
  order) and applied through the explicit :class:`BlockMap` rather than
  through the accumulator layout.

Bitwise stability across chunk sizes: BLAS GEMM results are *not*
row-chunking-invariant, so the engine always issues GEMMs in a fixed
inner unit of :data:`GEMM_UNIT_ROWS` rows (rounded to a multiple of the
tile's TB_M).  Any two *engine* runs with the same tile therefore
execute the identical sequence of GEMM calls regardless of
``chunk_bytes`` or ``workers``, making their labels/inertia
bit-identical — the property the equivalence tests pin down.  The
claim is engine-vs-engine: the legacy :func:`unchunked_assign`
baseline below uses one full-M GEMM and a different epilogue
association, so it agrees on labels but not necessarily on bits.

Independent chunks can optionally be dispatched across worker threads
(NumPy releases the GIL inside BLAS); the per-chunk budget is divided
by the worker count so the total scratch footprint stays bounded by
``chunk_bytes``.

Fault-free fast lane: when no fault plan targets a chunk's blocks the
engine dispatches that chunk's whole unit grid as **one** stacked
``np.matmul`` over a ``(units, unit_rows, K)`` view — numpy's gufunc
loop then issues the identical sequence of per-unit BLAS GEMMs the
explicit Python walk would have issued, so the result is bit-identical
by construction (a *flat* chunk-sized GEMM would not be: BLAS results
are not row-batching-invariant in general).  The unit grid is only
walked in Python when fault plans actually intersect the chunk, keeping
the fault lane's replay semantics byte-for-byte untouched.  Two
fit-lifetime **operand caches** (gated by ``operand_cache`` and charged
to the allocation tracker) hoist per-iteration work out of the loop:

* the TF32-rounded sample matrix — today's code re-rounds every inner
  unit every iteration; rounding is elementwise, so the hoisted copy is
  bit-identical and pays the rounding cost once per fit;
* a transposed copy of the samples for the fused update accumulator —
  the per-feed ``x_chunk.T`` staging copy dominates the accumulation
  wall (strided gather); the accumulator reads contiguous feature rows
  from the bound transpose instead (:meth:`StreamedAccumulator.bind_source_t`),
  feeding bincount the identical float64 values.

Either cache falls back to the legacy per-iteration path when it does
not fit the operand budget (``operand_cache='auto'`` budgets them
against ``chunk_bytes``; pass an explicit byte budget to let large fits
hoist, or ``'off'`` to disable).

Fused centroid-update accumulation: ``assign`` optionally takes a
:class:`repro.core.accumulate.StreamedAccumulator` and feeds it each
chunk's (rows, labels) right after the chunk's argmin — the update
stage's sum/count pass rides the assignment loop instead of re-reading
all of ``x``.  Sequential dispatch feeds in chunk order naturally;
threaded dispatch commits chunks *in order* (a worker that finishes
chunk ``t`` early parks it until every chunk ``< t`` has been fed), so
the accumulated bits never depend on ``workers`` — and, thanks to the
accumulator's sequential-continuation design, never on ``chunk_bytes``
either.  They equal the seed one-shot ``np.add.at`` pass exactly.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.abft.schemes import NONE, AbftScheme
from repro.abft.thresholds import ThresholdPolicy
from repro.core.bounds import BoundsState, resolve_prune_mode
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.mma import round_tf32
from repro.obs.trace import NULL_TRACER, active_tracer
from repro.utils.arrays import ceil_div
from repro.utils.bits import flip_bit

__all__ = [
    "GEMM_UNIT_ROWS",
    "DEFAULT_CHUNK_BYTES",
    "OPERAND_CACHE_MODES",
    "unit_rows_for_tile",
    "resolve_operand_budget",
    "transpose_blocked",
    "BlockMap",
    "FitCache",
    "EngineStats",
    "EngineCancelled",
    "FastPathEngine",
    "unchunked_assign",
]


class EngineCancelled(RuntimeError):
    """Raised from inside an assignment pass when the engine's
    cooperative ``cancel_token`` is set: the chunk loop checks the token
    between chunks, so an abandoned worker stops within a bounded number
    of chunks instead of running its pass to completion."""

#: base row count of one inner GEMM call; the effective unit is the
#: smallest multiple of the tile's TB_M that is >= TB_M and close to this
GEMM_UNIT_ROWS = 256

#: memory budget when neither ``chunk_bytes`` nor a device is given
DEFAULT_CHUNK_BYTES = 8 << 20

#: string modes of the ``operand_cache`` knob (an int is an explicit
#: byte budget for the fit-lifetime operand caches)
OPERAND_CACHE_MODES = ("auto", "off")


def resolve_operand_budget(operand_cache, chunk_bytes: int) -> int:
    """Byte budget for fit-lifetime hoisted operand caches.

    ``'auto'`` budgets them against ``chunk_bytes`` (an operand cache
    never exceeds what the caller already allows per assignment pass);
    an int is an explicit byte budget — set it to admit the fast lane's
    hoists on fits whose sample matrix outgrows the chunk budget;
    ``'off'`` (or 0) disables hoisting entirely.
    """
    if operand_cache == "auto":
        return int(chunk_bytes)
    if operand_cache == "off":
        return 0
    budget = int(operand_cache)
    if budget < 0:
        raise ValueError(
            f"operand_cache must be 'auto', 'off' or a byte budget >= 0, "
            f"got {operand_cache!r}")
    return budget


def transpose_blocked(x: np.ndarray) -> np.ndarray:
    """Contiguous transposed copy of ``x``, built row band by row band.

    A transpose is a pure copy, so blocking cannot move a bit — it only
    keeps the working set cache-sized: each band reads a contiguous
    ~4 MB slab of ``x`` and scatters it into the output's columns,
    instead of one full-matrix strided gather whose reads miss on every
    row once ``x`` outgrows the last-level cache.  Drop-in equal to
    ``np.ascontiguousarray(x.T)``.
    """
    m, n = x.shape
    out = np.empty((n, m), dtype=x.dtype)
    step = max(1, (4 << 20) // max(1, n * x.itemsize))
    for lo in range(0, m, step):
        out[:, lo:lo + step] = x[lo:lo + step].T
    return out


def unit_rows_for_tile(tile: TileConfig | None) -> int:
    """Fixed inner-GEMM row unit for a tile geometry (see module doc).

    The single definition behind :attr:`FastPathEngine.unit_rows`.
    :mod:`repro.dist` aligns shard boundaries to this unit (read off a
    probe kernel's engine, which carries the variant's resolved tile):
    a sharded run then issues the exact GEMM call sequence of the
    single-worker engine, which is what keeps sharded labels/inertia
    bit-identical for any shard count.
    """
    if tile is None:
        return GEMM_UNIT_ROWS
    tb_m = tile.tb.m
    return tb_m * max(1, GEMM_UNIT_ROWS // tb_m)


@dataclass(frozen=True)
class BlockMap:
    """Explicit mapping between injector threadblock ids and accumulator
    coordinates.

    The functional kernels visit threadblocks in row-major (bm, bn)
    order; the fast path must consume the injector's RNG stream in the
    same order and resolve each plan to the same logical tile element,
    independent of how the accumulator is chunked.  This record is the
    single source of truth for that geometry.
    """

    m: int
    n: int
    tb_m: int
    tb_n: int
    warp_m: int
    warp_n: int
    grid_m: int
    grid_n: int
    k_iters: int

    @classmethod
    def for_shape(cls, m: int, n: int, k: int, tile: TileConfig) -> "BlockMap":
        tb, w = tile.tb, tile.warp
        return cls(m=m, n=n, tb_m=tb.m, tb_n=tb.n, warp_m=w.m, warp_n=w.n,
                   grid_m=ceil_div(m, tb.m), grid_n=ceil_div(n, tb.n),
                   k_iters=ceil_div(k, tb.k))

    def block_id(self, bm: int, bn: int) -> int:
        """Row-major threadblock id (the functional launch order)."""
        return bm * self.grid_n + bn

    def block_extent(self, bm: int, bn: int) -> tuple[int, int]:
        """Valid (rows, cols) of block (bm, bn) against the problem edge."""
        return (min(self.tb_m, self.m - bm * self.tb_m),
                min(self.tb_n, self.n - bn * self.tb_n))

    def blocks_for_rows(self, lo: int, hi: int):
        """Block-row indices whose tiles fall inside sample rows [lo, hi).

        ``lo`` must be TB_M-aligned (chunk boundaries are), so every
        block belongs to exactly one chunk.
        """
        return range(lo // self.tb_m, ceil_div(hi, self.tb_m))


@dataclass
class FitCache:
    """Fit-invariants hoisted out of the Lloyd iteration loop."""

    x: np.ndarray                # samples, coerced to the kernel dtype
    source: np.ndarray           # the caller's original array (cache key)
    x_norms: np.ndarray          # (m,) per-sample squared norms, kernel dtype
    labels: np.ndarray           # (m,) int64 output buffer, reused per pass
    best: np.ndarray             # (m,) kernel-dtype output buffer
    n_clusters: int | None = None
    chunks: list[tuple[int, int]] | None = None
    workers: int = 1             # effective worker count for this geometry
    block_map: BlockMap | None = None
    x_rounded: np.ndarray | None = None  # hoisted TF32-rounded operand
    x_t: np.ndarray | None = None        # hoisted transposed update operand
    x_t_failed: bool = False             # transpose hoist known over budget
    operand_bytes: int = 0               # operand-cache bytes charged
    bounds: BoundsState | None = None    # cross-round pruning state


@dataclass
class EngineStats:
    """Observability counters for the engine itself (not the simulator)."""

    assigns: int = 0
    cache_hits: int = 0
    chunks_run: int = 0
    gemm_calls: int = 0          # inner (BLAS-level) unit GEMMs issued
    batched_chunks: int = 0      # chunks dispatched as one stacked matmul
    update_chunks_fed: int = 0   # chunks fed to a fused update accumulator
    scratch_bytes: int = 0       # scratch currently held (pooled)
    peak_scratch_bytes: int = 0
    rows_pruned: int = 0         # rows skipped by bounds pruning (all passes)
    pruned_passes: int = 0       # assigns in which at least one row pruned
    bounds_rebuilds: int = 0     # bounds healed after a fingerprint mismatch
    last_active_frac: float = 1.0  # computed-row fraction of the last assign


class FastPathEngine:
    """Chunked streaming assignment with fault/ABFT replay semantics.

    Parameters
    ----------
    device:
        :class:`DeviceSpec` (or None).  Used to auto-derive the chunk
        budget from the L2 capacity when ``chunk_bytes`` is not given.
    dtype:
        Kernel element type (float32/float64).
    tile:
        Tile geometry for the fault block map; None disables injection
        replay (matching the legacy ``fast_assign`` gate).
    tf32:
        Apply TF32 operand rounding (FP32 only).
    injector / scheme / safety:
        Fault injection source, ABFT scheme capabilities and detection
        threshold safety factor — identical semantics to the functional
        kernels.
    chunk_bytes:
        Memory budget for chunk scratch.  None auto-derives from the
        device L2 (or :data:`DEFAULT_CHUNK_BYTES` without a device).
    workers:
        Worker threads for independent chunks; the per-chunk budget is
        ``chunk_bytes // workers`` so the total stays bounded.
    operand_cache:
        Budget policy of the fit-lifetime operand caches (the hoisted
        TF32-rounded matrix and the transposed update-feed operand):
        'auto' (default) budgets them against ``chunk_bytes``, an int is
        an explicit byte budget, 'off' disables hoisting.  An operand
        that does not fit falls back to the legacy per-iteration path —
        hoisted or not, the produced bits are identical.
    batch_chunks:
        Dispatch a fault-free chunk's unit grid as one stacked matmul
        (default).  False forces the per-unit Python walk everywhere —
        the reference path the fast lane is bit-compared against.
    prune:
        Cross-iteration bound pruning of the assignment GEMM
        (:mod:`repro.core.bounds`): 'auto' (default, resolves to the
        O(M) Hamerly bound), 'hamerly', 'elkan' (per-centroid (M, K)
        bounds, tighter but K x the memory) or 'off'.  Pruning only
        engages on ``begin_fit`` caches (transient predict/score passes
        have no cross-round history) and is proven bit-identical to the
        unpruned path — a row is skipped only when its assigned
        centroid's bits are frozen and an error-margined lower bound
        certifies every competitor.
    alloc_hook:
        Optional callable ``(name, nbytes)`` invoked for every scratch /
        buffer allocation the engine makes (allocation-tracking tests).

    Attributes
    ----------
    cancel_token:
        Optional object with ``is_set()`` (e.g. ``threading.Event``)
        checked between chunks; when set, the pass raises
        :class:`EngineCancelled` within a bounded number of chunks.
    """

    def __init__(self, device: DeviceSpec | None, dtype, *,
                 tile: TileConfig | None = None, tf32: bool = False,
                 injector=None, scheme: AbftScheme = NONE,
                 safety: float = 4.0, chunk_bytes: int | None = None,
                 workers: int = 1, operand_cache="auto",
                 batch_chunks: bool = True, prune="auto", alloc_hook=None,
                 tracer=None):
        self.device = device
        self.dtype = np.dtype(dtype)
        self.tile = tile
        self.tf32 = bool(tf32) and self.dtype == np.dtype(np.float32)
        self.injector = injector
        self.scheme = scheme
        self.safety = safety
        if chunk_bytes is None:
            chunk_bytes = (device.fastpath_chunk_bytes()
                           if isinstance(device, DeviceSpec)
                           else DEFAULT_CHUNK_BYTES)
        if int(chunk_bytes) < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.chunk_bytes = int(chunk_bytes)
        if int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.operand_cache = operand_cache
        self.operand_budget = resolve_operand_budget(operand_cache,
                                                     self.chunk_bytes)
        self.batch_chunks = bool(batch_chunks)
        self.prune = prune
        self._prune_mode = resolve_prune_mode(prune)
        self.cancel_token = None
        self._fed_shifts: tuple | None = None
        self.alloc_hook = alloc_hook
        # span recorder for the assign-stage taxonomy (assign_chunk /
        # gemm / update_feed / bounds_refresh); resolved per pass via
        # active_tracer, so None (default) or a disabled recorder costs
        # nothing and is never called into
        self.tracer = tracer
        self.stats = EngineStats()
        self._cache: FitCache | None = None
        self._pool: list[np.ndarray] = []
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_workers = 0

    # -- geometry -------------------------------------------------------
    @property
    def unit_rows(self) -> int:
        """Fixed inner-GEMM row unit (multiple of TB_M; see module doc)."""
        return unit_rows_for_tile(self.tile)

    def _plan_chunks(self, m: int, n: int,
                     k: int) -> tuple[list[tuple[int, int]], int]:
        """Split [0, m) into unit-aligned chunks under the memory budget.

        Returns (chunks, effective_workers).  Each in-flight chunk costs
        its accumulator (rows x n) plus, on the TF32 path, one unit of
        staged rounded operands (unit x k) — both are charged against
        ``chunk_bytes``, and the worker count is clamped so the *total*
        stays under it.  One unit per single worker is the hard minimum:
        the budget cannot shrink an inner GEMM block.
        """
        unit = self.unit_rows
        itemsize = self.dtype.itemsize
        row_bytes = max(1, n * itemsize)
        operand_bytes = unit * k * itemsize if self.tf32 else 0
        unit_bytes = unit * row_bytes + operand_bytes
        workers = min(self.workers, max(1, self.chunk_bytes // unit_bytes))
        budget = max(1, self.chunk_bytes // workers - operand_bytes)
        rows = max(unit, (budget // row_bytes) // unit * unit)
        return ([(lo, min(lo + rows, m)) for lo in range(0, m, rows)],
                workers)

    # -- per-fit cache --------------------------------------------------
    def begin_fit(self, x: np.ndarray, n_clusters: int | None = None, *,
                  preload: dict | None = None) -> FitCache:
        """Hoist fit-invariants for ``x``; reused by every assign() on it.

        ``preload`` optionally supplies previously exported operands
        (:meth:`export_operands`) — the shard-local worker-cache
        checkpoints of :mod:`repro.dist`.  Every candidate is validated
        against this fit's shape/dtype and charged to the ordinary
        operand budget; anything that does not match (or fit) is
        silently ignored and rebuilt on the usual path, so a stale or
        partial preload can degrade only boot time, never bits.
        """
        self._cache = self._build_cache(x, n_clusters, preload=preload)
        self._adopt_operands(self._cache, preload)
        self._hoist_rounded(self._cache)
        return self._cache

    def end_fit(self) -> None:
        """Drop the fit cache, pooled scratch and worker threads.

        Called when the Lloyd loop finishes so a fitted estimator does
        not pin the training array (or budget-sized scratch, or idle
        threads) for its whole lifetime — and so later ``predict`` /
        ``score`` passes recompute norms instead of trusting an
        identity-keyed cache the caller may have mutated underneath.
        """
        self._cache = None
        with self._lock:
            self._pool.clear()
            self.stats.scratch_bytes = 0
        self._shutdown_executor()

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = 0

    def _get_executor(self, workers: int) -> ThreadPoolExecutor:
        """Reuse one pool across Lloyd iterations.

        Sized exactly to the effective worker count: the budget clamp
        relies on at most ``workers`` chunks being in flight at once.
        """
        if self._executor is None or self._executor_workers != workers:
            self._shutdown_executor()
            self._executor = ThreadPoolExecutor(max_workers=workers)
            self._executor_workers = workers
        return self._executor

    def _build_cache(self, x: np.ndarray, n_clusters: int | None = None,
                     preload: dict | None = None) -> FitCache:
        source = x
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        m, k = x.shape
        x_norms = None
        if preload is not None:
            cand = preload.get("x_norms")
            if (cand is not None and cand.shape == (m,)
                    and cand.dtype == self.dtype):
                x_norms = np.ascontiguousarray(cand)
        if x_norms is None:
            x_norms = np.sum(x * x, axis=1, dtype=self.dtype)
        labels = np.empty(m, dtype=np.int64)
        best = np.empty(m, dtype=self.dtype)
        self._record_alloc("x_norms", x_norms.nbytes)
        self._record_alloc("labels", labels.nbytes)
        self._record_alloc("best", best.nbytes)
        cache = FitCache(x=x, source=source, x_norms=x_norms, labels=labels,
                         best=best)
        if n_clusters is not None:
            self._resolve_geometry(cache, n_clusters, k)
        return cache

    def _resolve_geometry(self, cache: FitCache, n: int, k: int) -> None:
        cache.n_clusters = n
        cache.chunks, cache.workers = self._plan_chunks(cache.x.shape[0], n, k)
        cache.block_map = (BlockMap.for_shape(cache.x.shape[0], n, k, self.tile)
                           if self.tile is not None else None)

    # -- fit-lifetime operand caches ------------------------------------
    def _operand_fits(self, cache: FitCache, nbytes: int) -> bool:
        return cache.operand_bytes + nbytes <= self.operand_budget

    def _adopt_operands(self, cache: FitCache, preload: dict | None) -> None:
        """Adopt previously exported operand caches into a fresh fit.

        Validation mirrors what the builders would produce (shape and
        dtype at this fit's geometry) and the budget is charged exactly
        as if the operand had been built here — the rounded matrix
        first, preserving the cumulative-budget precedence — so an
        adopted cache behaves byte-for-byte like a rebuilt one.
        """
        if not preload:
            return
        m, k = cache.x.shape
        cand = preload.get("x_rounded")
        if (self.tf32 and cand is not None and cand.shape == (m, k)
                and cand.dtype == self.dtype
                and self._operand_fits(cache, cand.nbytes)):
            cache.x_rounded = np.ascontiguousarray(cand)
            cache.operand_bytes += cand.nbytes
            self._record_alloc("operand_cache_rounded", cand.nbytes)
        cand = preload.get("x_t")
        if (cand is not None and cand.shape == (k, m)
                and cand.dtype == self.dtype
                and self._operand_fits(cache, cand.nbytes)):
            cache.x_t = np.ascontiguousarray(cand)
            cache.operand_bytes += cand.nbytes
            self._record_alloc("operand_cache_transpose", cand.nbytes)

    def export_operands(self) -> dict:
        """The active fit cache's x-derived invariants, for checkpointing.

        Returns whatever is currently materialised — the per-sample
        norms always, the TF32-rounded matrix and the transposed update
        operand when hoisted — keyed for :meth:`begin_fit`'s ``preload``.
        The arrays are the live cache objects (cheap); callers that
        persist them must serialise or copy.
        """
        cache = self._cache
        if cache is None:
            return {}
        out = {"x_norms": cache.x_norms}
        if cache.x_rounded is not None:
            out["x_rounded"] = cache.x_rounded
        if cache.x_t is not None:
            out["x_t"] = cache.x_t
        return out

    def prepare_update_operand(self) -> np.ndarray | None:
        """Materialise (budget permitting) the hoisted transposed update
        operand for the active fit cache, and return it.

        The operand is normally built lazily at the first fused assign;
        forcing it here lets a shard worker checkpoint a *complete*
        operand cache at boot, and lets the estimator bind it through
        the update stage's DMR duplicate before the first iteration.
        """
        if self._cache is None:
            return None
        return self._ensure_update_operand(self._cache)

    def _hoist_rounded(self, cache: FitCache) -> None:
        """Hoist the TF32-rounded sample matrix (fit caches only).

        Rounding is elementwise, so the hoisted copy carries exactly the
        bits the per-unit ``round_tf32`` calls would produce — it only
        moves the rounding cost out of the Lloyd loop.  Over budget the
        engine keeps re-rounding per unit, as before.
        """
        if not self.tf32 or cache.x_rounded is not None:
            return
        nbytes = cache.x.nbytes
        if not self._operand_fits(cache, nbytes):
            return
        cache.x_rounded = self._round_blocked(cache.x)
        cache.operand_bytes += nbytes
        self._record_alloc("operand_cache_rounded", nbytes)

    @staticmethod
    def _round_blocked(x: np.ndarray) -> np.ndarray:
        """``round_tf32`` row block by row block into one preallocated
        copy: elementwise rounding is blocking-invariant, and the blocks
        keep the rounder's temporaries cache-sized instead of three
        matrix-sized allocations."""
        out = np.empty_like(x)
        step = max(1, (4 << 20) // max(1, x.shape[1] * x.itemsize))
        for lo in range(0, x.shape[0], step):
            out[lo:lo + step] = round_tf32(x[lo:lo + step])
        return out

    def _ensure_update_operand(self, cache: FitCache) -> np.ndarray | None:
        """Hoist the transposed update-feed operand (fit caches only).

        A contiguous ``(K_features, M)`` copy of the samples: the fused
        accumulator then reads contiguous feature rows instead of
        re-transposing every chunk every iteration.  The float64
        conversion happens at the same element granularity either way,
        so the accumulated bits never move.
        """
        if cache.x_t is None and not cache.x_t_failed:
            nbytes = cache.x.nbytes
            if self._operand_fits(cache, nbytes):
                cache.x_t = transpose_blocked(cache.x)
                cache.operand_bytes += nbytes
                self._record_alloc("operand_cache_transpose", nbytes)
            else:
                cache.x_t_failed = True
        return cache.x_t

    # -- scratch pool ---------------------------------------------------
    def _record_alloc(self, name: str, nbytes: int) -> None:
        if self.alloc_hook is not None:
            self.alloc_hook(name, nbytes)

    def _take_scratch(self, rows: int, n: int) -> np.ndarray:
        with self._lock:
            while self._pool:
                buf = self._pool.pop()
                if (buf.shape[0] >= rows and buf.shape[1] == n
                        and buf.dtype == self.dtype):
                    return buf
                self.stats.scratch_bytes -= buf.nbytes  # misfit: drop
            self.stats.scratch_bytes += rows * n * self.dtype.itemsize
            self.stats.peak_scratch_bytes = max(self.stats.peak_scratch_bytes,
                                                self.stats.scratch_bytes)
        buf = np.empty((rows, n), dtype=self.dtype)
        self._record_alloc("chunk_scratch", buf.nbytes)
        return buf

    def _put_scratch(self, buf: np.ndarray) -> None:
        with self._lock:
            if self._cache is not None:
                self._pool.append(buf)
            else:
                # transient pass (predict/score, one-shot wrapper): drop
                # the buffer so nothing budget-sized outlives the call
                self.stats.scratch_bytes -= buf.nbytes

    # -- fault replay ---------------------------------------------------
    def _draw_plans(self, bmap: BlockMap) -> dict:
        """Consume the injector RNG once per block, in block-id order."""
        plans = {}
        for bm in range(bmap.grid_m):
            for bn in range(bmap.grid_n):
                plan = self.injector.plan_for_block(bmap.block_id(bm, bn),
                                                    bmap.k_iters)
                if plan is not None:
                    plans[(bm, bn)] = plan
        return plans

    def _replay_fault(self, acc: np.ndarray, row0: int, bm: int, bn: int,
                      plan, bmap: BlockMap, policy: ThresholdPolicy,
                      counters: PerfCounters) -> None:
        """Apply one planned SEU to the chunk accumulator ``acc`` (whose
        row 0 is global sample row ``row0``), then let the configured
        scheme measure it against the same threshold policy the
        functional kernels use.  Sub-threshold flips survive."""
        counters.errors_injected += 1
        r, c = plan.locate(bmap.tb_m, bmap.tb_n)
        rows, cols = bmap.block_extent(bm, bn)
        if r >= rows or c >= cols:
            # the flip landed in tile padding: numerically inert
            return
        li = bm * bmap.tb_m + r - row0
        j = bn * bmap.tb_n + c
        old = acc[li, j]
        new = flip_bit(old, plan.bit)
        eps = float(new) - float(old)
        if not self.scheme.detects:
            acc[li, j] = new
            return
        counters.checksum_tests += 1
        # warp-tile checksum scale, matching measure_residuals()
        wm0 = (r // bmap.warp_m) * bmap.warp_m
        wn0 = (c // bmap.warp_n) * bmap.warp_n
        b0 = bm * bmap.tb_m - row0
        wtile = acc[b0 + wm0: b0 + min(wm0 + bmap.warp_m, rows),
                    bn * bmap.tb_n + wn0:
                    bn * bmap.tb_n + min(wn0 + bmap.warp_n, cols)]
        mx = float(np.max(np.abs(wtile.astype(np.float64)))) if wtile.size else 1.0
        scale = max(1.0, min(mx, 1e290) * float(np.sqrt(max(1, wtile.size))))
        residual = eps if np.isfinite(eps) else np.inf
        if policy.exceeds(residual, scale):
            counters.errors_detected += 1
            if self.scheme.corrects:
                counters.errors_corrected += 1  # acc left clean
            # detection-only schemes recompute: also clean
        else:
            acc[li, j] = new  # sub-threshold: escapes, as designed

    # -- the hot loop ---------------------------------------------------
    def assign(self, x: np.ndarray, y: np.ndarray,
               counters: PerfCounters, *,
               cache: FitCache | None = None,
               accumulator=None) -> tuple[np.ndarray, np.ndarray]:
        """One full assignment pass: (labels, min squared distances).

        Reuses the per-fit cache when ``x`` is the fitted array;
        otherwise (e.g. ``predict`` on new data) builds a transient one.
        The returned arrays are the cache's reusable buffers — callers
        that keep results across passes must copy.

        Parameters
        ----------
        x, y : ndarray
            Samples (M, N) and centroids (K, N).
        counters : PerfCounters
            Functional-execution statistics (injection/detection tallies
            merge here).
        cache : FitCache, optional
            Explicit fit cache override (tests); defaults to the active
            ``begin_fit`` cache.
        accumulator : StreamedAccumulator, optional
            When given, each chunk's sample rows and fresh labels are fed
            to it inside the chunk loop (fused assign+accumulate).  Fed
            strictly in chunk order — also under threaded dispatch — so
            the accumulated sums are bit-identical to a one-shot
            sequential pass.
        """
        if accumulator is not None:
            # fused pool reports through the engine's allocation tracker
            # (replays anything allocated before the attachment)
            accumulator.set_alloc_hook(self.alloc_hook)
        cache = cache if cache is not None else self._cache
        if cache is not None and (x is cache.x or x is cache.source):
            self.stats.cache_hits += 1
        else:
            cache = self._build_cache(x)
        if accumulator is not None:
            # the hoisted transpose only describes the *fit* array; any
            # other pass must feed (and unbind) the legacy staging path
            x_t = (self._ensure_update_operand(cache)
                   if cache is self._cache else None)
            accumulator.bind_source_t(x_t)
        x = cache.x
        y_in = y
        if y.dtype != self.dtype:
            y = y.astype(self.dtype)
        m, k = x.shape
        n = y.shape[0]
        if cache.chunks is None or cache.n_clusters != n:
            self._resolve_geometry(cache, n, k)
        self.stats.assigns += 1
        # resolved once per pass: the real recorder when tracing is on,
        # the shared no-op otherwise (a disabled recorder is never
        # called into — the neutrality tests booby-trap one to prove it)
        tr = active_tracer(self.tracer)

        # per-launch (centroids change every iteration; samples do not)
        yr_t = (round_tf32(y) if self.tf32 else y).T
        yy = np.sum(y * y, axis=1, dtype=self.dtype)

        plans: dict = {}
        policy = None
        if (self.injector is not None and getattr(self.injector, "enabled", False)
                and cache.block_map is not None):
            policy = ThresholdPolicy(self.dtype, tf32=self.tf32,
                                     safety=self.safety)
            plans = self._draw_plans(cache.block_map)

        chunks = cache.chunks
        if not chunks:  # m == 0: nothing to assign
            return cache.labels, cache.best
        self.stats.chunks_run += len(chunks)

        # cross-round bound pruning: fit caches only (a transient
        # predict/score pass has no history to trust), resolved to an
        # active-row mask for this round.  Which rows land in the active
        # set can never move an output bit — pruning retains values the
        # bounds proved bit-identical to a recompute — so fed vs
        # self-computed shifts, shard-local bounds and heals all compose
        # freely with the engine's bit-identity contracts.
        bounds = active = None
        fed = self._fed_shifts
        self._fed_shifts = None
        if self._prune_mode != "off" and cache is self._cache:
            bounds = cache.bounds
            if bounds is None or bounds.mode != self._prune_mode:
                bounds = cache.bounds = BoundsState(
                    x, n, mode=self._prune_mode, tf32=self.tf32)
                self._record_alloc("bounds_state", bounds.nbytes)
            # the fed shift vector is one-shot and identity-keyed to the
            # centroid array it described; anything stale self-recomputes
            shifts = (fed[0] if fed is not None and fed[1] is y_in else None)
            heals = bounds.rebuilds
            with tr.span("bounds_refresh", phase="begin_round"):
                active = bounds.begin_round(y, cache.labels, cache.best,
                                            shifts=shifts)
            self.stats.bounds_rebuilds += bounds.rebuilds - heals

        computed = m
        if cache.workers == 1 or len(chunks) == 1:
            computed = 0
            scratch = self._take_scratch(min(chunks[0][1] - chunks[0][0], m), n)
            try:
                for lo, hi in chunks:
                    self._check_cancelled()
                    with tr.span("assign_chunk", lo=int(lo), hi=int(hi)):
                        calls, batched, rows_run = self._run_chunk(
                            lo, hi, x, yr_t, yy, cache, plans, policy,
                            counters, scratch, active, bounds, tr=tr)
                    computed += rows_run
                    self.stats.gemm_calls += calls
                    self.stats.batched_chunks += batched
                    if accumulator is not None:
                        # fused update accumulation: the chunk's rows are
                        # still cache-hot from the GEMM/argmin above
                        with tr.span("update_feed", lo=int(lo),
                                     hi=int(hi)):
                            accumulator.feed(x[lo:hi], cache.labels[lo:hi])
                        self.stats.update_chunks_fed += 1
            finally:
                self._put_scratch(scratch)
        else:
            computed = self._run_threaded(chunks, x, yr_t, yy, cache, plans,
                                          policy, counters, n, cache.workers,
                                          accumulator=accumulator,
                                          active=active, bounds=bounds,
                                          tr=tr)
        if bounds is not None:
            with tr.span("bounds_refresh", phase="end_round"):
                bounds.end_round(y, cache.labels, cache.best)
        self.stats.last_active_frac = computed / m
        if computed < m:
            self.stats.rows_pruned += m - computed
            self.stats.pruned_passes += 1
        if self._cache is None:
            # no fit is active to reuse the threads (a transient pass
            # during a fit leaves the fit's pool alone).  Deliberate
            # tradeoff: threaded one-shot passes pay pool spawn/join per
            # call rather than leaving idle threads pinned to the engine
            self._shutdown_executor()
        return cache.labels, cache.best

    def _run_threaded(self, chunks, x, yr_t, yy, cache, plans, policy,
                      counters, n, workers, *, accumulator=None,
                      active=None, bounds=None, tr=NULL_TRACER) -> int:
        """Dispatch independent chunks across worker threads.

        Each thread owns a pooled scratch buffer and a private counter
        bundle; counters merge in chunk order so totals are
        deterministic.  A fused update accumulator is fed through an
        in-order commit: whichever worker finishes the next-uncommitted
        chunk drains every completed chunk in order, so the accumulated
        bits match sequential dispatch exactly while the GEMMs still
        overlap.  Returns the number of rows actually computed."""
        max_rows = max(hi - lo for lo, hi in chunks)
        locals_ = threading.local()
        partials: list[PerfCounters | None] = [None] * len(chunks)
        gemms: list[tuple[int, bool, int]] = [(0, False, 0)] * len(chunks)
        held: list[np.ndarray] = []
        done = [False] * len(chunks)
        commit = {"next": 0}
        commit_lock = threading.Lock()

        def work(idx: int) -> None:
            self._check_cancelled()
            scr = getattr(locals_, "scratch", None)
            if scr is None:
                scr = self._take_scratch(max_rows, n)
                locals_.scratch = scr
                with self._lock:
                    held.append(scr)
            local_counters = PerfCounters()
            lo, hi = chunks[idx]
            with tr.span("assign_chunk", lo=int(lo), hi=int(hi)):
                gemms[idx] = self._run_chunk(lo, hi, x, yr_t, yy, cache,
                                             plans, policy, local_counters,
                                             scr, active, bounds, tr=tr)
            partials[idx] = local_counters
            if accumulator is not None:
                with commit_lock:
                    done[idx] = True
                    while (commit["next"] < len(chunks)
                           and done[commit["next"]]):
                        clo, chi = chunks[commit["next"]]
                        with tr.span("update_feed", lo=int(clo),
                                     hi=int(chi)):
                            accumulator.feed(x[clo:chi],
                                             cache.labels[clo:chi])
                        self.stats.update_chunks_fed += 1
                        commit["next"] += 1

        try:
            list(self._get_executor(workers).map(work, range(len(chunks))))
        except BaseException:
            # one chunk failed but siblings may still be writing their
            # scratch: join every worker before the buffers can be
            # repooled (and later handed to a new pass mid-write)
            self._shutdown_executor()
            raise
        finally:
            for buf in held:
                self._put_scratch(buf)
        for part in partials:
            if part is not None:
                counters.merge(part)
        computed = 0
        for calls, batched, rows_run in gemms:
            self.stats.gemm_calls += calls
            self.stats.batched_chunks += batched
            computed += rows_run
        return computed

    def _chunk_plans(self, lo: int, hi: int, cache: FitCache,
                     plans: dict) -> list:
        """The drawn fault plans whose blocks fall inside rows [lo, hi)."""
        if not plans:
            return []
        bmap = cache.block_map
        hits = []
        for bm in bmap.blocks_for_rows(lo, hi):
            for bn in range(bmap.grid_n):
                plan = plans.get((bm, bn))
                if plan is not None:
                    hits.append((bm, bn, plan))
        return hits

    def _run_chunk(self, lo: int, hi: int, x, yr_t, yy, cache: FitCache,
                   plans: dict, policy, counters: PerfCounters,
                   scratch: np.ndarray, active=None,
                   bounds=None, tr=NULL_TRACER) -> tuple[int, bool, int]:
        """One chunk's GEMM + fault replay + epilogue.

        Returns ``(inner_gemm_calls, batched, rows_computed)`` for the
        stats.  The fault-free fast lane dispatches the whole unit grid
        as one stacked matmul (same per-unit BLAS GEMM sequence, so the
        bits match the walk exactly); chunks a fault plan targets — and
        TF32 chunks without a hoisted rounded operand — walk the units
        in Python as before.  With an ``active`` mask, fault-free
        chunks route through the pruned lane unless every unit is
        active anyway; fault-planned chunks always compute in full (the
        replay coordinates assume chunk-row geometry) and their rows
        stop being trusted as pruning history.
        """
        rows = hi - lo
        chunk_plans = self._chunk_plans(lo, hi, cache, plans)
        if active is not None and not chunk_plans:
            res = self._run_chunk_pruned(lo, hi, x, yr_t, yy, cache,
                                         scratch, active, bounds, tr=tr)
            if res is not None:
                return res
            # None: every unit holds an active row — fall through to the
            # full-chunk lane below (same bits, none of the
            # gather/scatter overhead)
        acc = scratch[:rows]
        # inner GEMMs on the fixed unit grid (globally aligned: lo is a
        # unit multiple), so the call sequence is chunking-invariant
        unit = self.unit_rows
        xsrc = cache.x_rounded if (self.tf32
                                   and cache.x_rounded is not None) else x
        rounded = not self.tf32 or cache.x_rounded is not None
        batched = (self.batch_chunks and not chunk_plans and rounded
                   and xsrc.flags.c_contiguous)
        with tr.span("gemm", lo=int(lo), hi=int(hi), batched=batched):
            if batched:
                k = xsrc.shape[1]
                q, rem = divmod(rows, unit)
                calls = q + (1 if rem else 0)
                if q:
                    np.matmul(xsrc[lo:lo + q * unit].reshape(q, unit, k),
                              yr_t, out=acc[:q * unit].reshape(q, unit, -1))
                if rem:
                    np.matmul(xsrc[lo + q * unit:hi], yr_t,
                              out=acc[q * unit:rows])
            else:
                calls = 0
                for u0 in range(lo, hi, unit):
                    u1 = min(u0 + unit, hi)
                    xa = xsrc[u0:u1]
                    if not rounded:
                        xa = round_tf32(xa)
                    np.matmul(xa, yr_t, out=acc[u0 - lo:u1 - lo])
                    calls += 1
        bmap = cache.block_map
        for bm, bn, plan in chunk_plans:
            self._replay_fault(acc, lo, bm, bn, plan, bmap, policy,
                               counters)
        # fuse the norm terms in place: acc becomes the distance tile
        acc *= -2.0
        acc += cache.x_norms[lo:hi, None]
        acc += yy[None, :]
        lbl = np.argmin(acc, axis=1)
        cache.labels[lo:hi] = lbl
        # take_along_axis instead of acc[arange(rows), lbl]: same
        # selection bits, without materialising a row-index array in
        # the hot loop
        best = np.take_along_axis(acc, lbl[:, None], axis=1)[:, 0]
        # the norm identity can cancel below zero on offset-heavy data;
        # squared distances are floored so inertia/score/worst-fit
        # ordering stay meaningful (labels keep the raw argmin)
        np.maximum(best, 0, out=best)
        cache.best[lo:hi] = best
        if bounds is not None:
            if chunk_plans:
                # an escaped sub-threshold flip may sit in this chunk's
                # cached values: exact *this* round by the replay
                # semantics, but not safe as pruning history
                bounds.invalidate_rows(slice(lo, hi))
            else:
                with tr.span("bounds_refresh", lo=int(lo), hi=int(hi)):
                    bounds.refresh(slice(lo, hi), acc, labels=lbl)
        return calls, batched, rows

    def _run_chunk_pruned(self, lo: int, hi: int, x, yr_t, yy,
                          cache: FitCache, scratch: np.ndarray, active,
                          bounds, tr=NULL_TRACER
                          ) -> tuple[int, bool, int] | None:
        """Fault-free chunk under a bounds mask: compute only the GEMM
        units containing active rows (compacted gather -> stacked unit
        GEMM -> scatter back); pruned rows keep their cached
        labels/best, which the bounds proved bit-identical to a
        recompute.  Unit granularity keeps the per-unit BLAS calls at
        the engine's fixed shape, so a computed unit's bits match the
        unpruned pass exactly regardless of which other units run.

        Returns None when every unit holds an active row: the caller's
        full-chunk lane computes the identical bits without the
        gather/scatter detour (the common case early in a fit, before
        any centroid has frozen)."""
        unit = self.unit_rows
        rows = hi - lo
        n = yr_t.shape[1]
        act = active[lo:hi]
        xsrc = cache.x_rounded if (self.tf32
                                   and cache.x_rounded is not None) else x
        rounded = not self.tf32 or cache.x_rounded is not None
        q, rem = divmod(rows, unit)
        idx = (np.flatnonzero(act[:q * unit].reshape(q, unit).any(axis=1))
               if q else np.empty(0, dtype=np.int64))
        na = int(idx.size)
        tail_active = bool(rem) and bool(act[q * unit:].any())
        computed = na * unit + (rem if tail_active else 0)
        if not computed:
            return 0, False, 0
        if na == q and (tail_active or not rem):
            return None
        calls = 0
        batched = (self.batch_chunks and rounded and xsrc.flags.c_contiguous)
        k = xsrc.shape[1]
        if na:
            flat = scratch[:na * unit]
            with tr.span("gemm", lo=int(lo), hi=int(hi), batched=batched,
                         pruned=True):
                if batched:
                    # fancy-index gather of the active units: a contiguous
                    # (na, unit, K) copy, so the stacked matmul issues the
                    # identical per-unit GEMMs the full grid would
                    gathered = xsrc[lo:lo + q * unit].reshape(q, unit, k)[idx]
                    np.matmul(gathered, yr_t, out=flat.reshape(na, unit, n))
                    calls += na
                else:
                    for t, u in enumerate(idx):
                        xa = xsrc[lo + u * unit: lo + (u + 1) * unit]
                        if not rounded:
                            xa = round_tf32(xa)
                        np.matmul(xa, yr_t,
                                  out=flat[t * unit:(t + 1) * unit])
                        calls += 1
            gidx = (lo + (idx[:, None] * unit
                          + np.arange(unit)[None, :])).reshape(-1)
            self._epilogue_rows(flat, gidx, cache, yy, bounds)
        if tail_active:
            tail = scratch[na * unit:na * unit + rem]
            with tr.span("gemm", lo=int(lo + q * unit), hi=int(hi),
                         batched=False, pruned=True):
                xa = xsrc[lo + q * unit:hi]
                if not rounded:
                    xa = round_tf32(xa)
                np.matmul(xa, yr_t, out=tail)
            calls += 1
            self._epilogue_rows(tail, np.arange(lo + q * unit, hi),
                                cache, yy, bounds)
        return calls, batched and na > 0, computed

    def _epilogue_rows(self, tile: np.ndarray, gidx: np.ndarray,
                       cache: FitCache, yy: np.ndarray, bounds) -> None:
        """Distance epilogue + argmin on a compacted row tile, scattered
        back to the cache buffers by global row index.  Every step is
        elementwise or per-row — identical bits to the full-chunk
        epilogue applied to the same rows."""
        tile *= -2.0
        tile += cache.x_norms[gidx, None]
        tile += yy[None, :]
        lbl = np.argmin(tile, axis=1)
        best = np.take_along_axis(tile, lbl[:, None], axis=1)[:, 0]
        np.maximum(best, 0, out=best)
        cache.labels[gidx] = lbl
        cache.best[gidx] = best
        if bounds is not None:
            bounds.refresh(gidx, tile, labels=lbl)

    def _check_cancelled(self) -> None:
        tok = self.cancel_token
        if tok is not None and tok.is_set():
            raise EngineCancelled("assignment pass cancelled")

    def feed_centroid_shifts(self, shifts, y) -> None:
        """Adopt the update stage's per-centroid movement for the *next*
        assignment pass on the fit cache.

        One-shot and identity-keyed: the feed applies only when the next
        pass's centroid argument is exactly ``y`` (the array ``shifts``
        describes the transition to); anything stale is dropped and the
        bounds self-compute the identical float64 vector from their
        stored anchor.  Either route yields the same pruning decisions —
        and pruning decisions can never move an output bit anyway."""
        self._fed_shifts = (np.asarray(shifts, dtype=np.float64), y)


def unchunked_assign(x: np.ndarray, y: np.ndarray, *, dtype,
                     tf32: bool) -> tuple[np.ndarray, np.ndarray]:
    """The seed one-shot fast path (O(M*N) accumulator), kept as the
    clean baseline the wall-clock benchmark and regression tests
    measure the streaming engine against.

    Fault replay lives only in :meth:`FastPathEngine._replay_fault`,
    and the epilogue math lives only in
    :func:`repro.gemm.reference.reference_assignment`, so neither can
    drift between copies.
    """
    from repro.gemm.reference import reference_assignment

    dt = np.dtype(dtype)
    if x.dtype != dt:
        x = x.astype(dt)
    if y.dtype != dt:
        y = y.astype(dt)
    return reference_assignment(x, y, tf32=tf32)
