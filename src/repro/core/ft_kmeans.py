"""FT K-means — the fused warp-level ABFT kernel (Sec. IV, Fig. 6).

:class:`FtTensorOpGemm` splices the fault-tolerance instructions into the
tensor-core main loop of :class:`TensorOpGemm`:

* lines 15-18 — per warp, per K-step, SIMT accumulation of the factored
  checksums e1ᵀA, Be1, e2ᵀA, Be2 (thread-local; no inter-thread traffic);
* lines 22-24 — three extra tensor-core MMAs accumulate the running
  d1 = e1ᵀ·AB·e1, d2 = e1ᵀ·AB·e2, d3 = e2ᵀ·AB·e1;
* line 25-31 — every 256 K-elements (and at loop end) each warp compares
  d1/d2/d3 against its accumulator, locates a single corrupted element
  via the e2/e1 residual ratio and fixes it *in place* — no
  recomputation, no threadblock synchronisation.

:class:`FtAssignment` wraps the kernel into the assignment-stage
interface and also hosts the baseline schemes (Wu's threadblock-level
correction, Kosaian's detect-and-recompute) behind the same API so the
error-injection benchmarks can swap them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.abft.corrector import CorrectionKind, Corrector
from repro.abft.detector import Detector
from repro.abft.encoding import e1, e2
from repro.abft.kosaian import KosaianDetectGemm
from repro.abft.schemes import FTKMEANS, AbftScheme, get_scheme
from repro.abft.thresholds import ThresholdPolicy
from repro.abft.wu import WuFtGemm
from repro.core.assignment import AssignmentResult, setup_gmem
from repro.core.gemm_kmeans import default_simt_tile
from repro.core.tensorop import TensorOpAssignment
from repro.gemm.epilogue import BroadcastArgminEpilogue, StoreEpilogue
from repro.gemm.shapes import GemmShape
from repro.gemm.tensorop_gemm import TensorOpGemm
from repro.gpusim.counters import PerfCounters
from repro.gpusim.hierarchy import ThreadBlock, Warp

__all__ = ["FtTensorOpGemm", "FtBlockState", "FtAssignment"]


@dataclass
class FtBlockState:
    """Per-warp running checksums (three scalars per warp — the whole
    ABFT state; contrast with Wu's threadblock-wide vectors)."""

    d: dict[int, tuple[float, float, float]] = field(default_factory=dict)


class FtTensorOpGemm(TensorOpGemm):
    """Tensor-core GEMM + fused warp-level ABFT with online correction."""

    def __init__(self, *args, safety: float = 4.0, **kwargs):
        super().__init__(*args, **kwargs)
        self._safety = safety
        self._policy: ThresholdPolicy | None = None
        self._corrector: Corrector | None = None
        self.corrections: list[tuple[int, int, int]] = []
        self.recomputed_warps: list[tuple[int, int]] = []

    def run(self, gmem, shape) -> None:
        self._policy = ThresholdPolicy(self.dtype,
                                       tf32=self.mma_unit.use_tf32,
                                       safety=self._safety)
        self._corrector = Corrector(Detector(self._policy))
        self._gmem = gmem
        self._shape = shape
        super().run(gmem, shape)

    # ------------------------------------------------------------------
    def block_begin(self, block: ThreadBlock, warps: list[Warp]) -> FtBlockState:
        return FtBlockState(d={w.warp_id: (0.0, 0.0, 0.0) for w in warps})

    def warp_step(self, state: FtBlockState, warp: Warp, a_w: np.ndarray,
                  b_w: np.ndarray, acc_w: np.ndarray, k_iter: int) -> None:
        super().warp_step(state, warp, a_w, b_w, acc_w, k_iter)
        # Fig. 6 lines 15-18: thread-local weighted sums over fragments.
        # Accumulation happens in float64 'registers'; the running scalars
        # are warp-private, so no shared memory and no barriers.
        m_w, n_w = a_w.shape[0], b_w.shape[0]
        sa1 = e1(m_w) @ a_w.astype(np.float64)
        sa2 = e2(m_w) @ a_w.astype(np.float64)
        sb1 = e1(n_w) @ b_w.astype(np.float64)
        sb2 = e2(n_w) @ b_w.astype(np.float64)
        self.counters.abft_simt_ops += 2 * (a_w.size + b_w.size)
        self.counters.simt_fma += 2 * (a_w.size + b_w.size)
        # Fig. 6 lines 22-24: three checksum MMAs on the tensor cores
        d1, d2, d3 = state.d[warp.warp_id]
        state.d[warp.warp_id] = (d1 + float(sa1 @ sb1),
                                 d2 + float(sa1 @ sb2),
                                 d3 + float(sa2 @ sb1))
        self.counters.mma_ops += 3
        self.counters.abft_mma_ops += 3

    def interval_check(self, state: FtBlockState, block: ThreadBlock,
                       warps: list[Warp], acc: np.ndarray, k_iter: int) -> None:
        self._verify(state, block, warps, acc, k_iter)

    def block_end(self, state: FtBlockState, block: ThreadBlock,
                  warps: list[Warp], acc: np.ndarray) -> None:
        self._verify(state, block, warps, acc, -1)

    # ------------------------------------------------------------------
    def _verify(self, state: FtBlockState, block: ThreadBlock,
                warps: list[Warp], acc: np.ndarray, k_iter: int) -> None:
        """Per-warp checksum test + locate-and-correct (Fig. 6 l.25-31)."""
        for w in warps:
            wm0 = w.warp_m * self.tile.warp.m
            wn0 = w.warp_n * self.tile.warp.n
            acc_w = acc[wm0: wm0 + self.tile.warp.m,
                        wn0: wn0 + self.tile.warp.n]
            self.counters.checksum_tests += 1
            result, fresh = self._corrector.check_and_correct(
                state.d[w.warp_id], acc_w)
            state.d[w.warp_id] = fresh
            if result.kind is CorrectionKind.CORRECTED:
                self.counters.errors_detected += 1
                self.counters.errors_corrected += 1
                self.corrections.append(
                    (block.block_id, wm0 + result.row, wn0 + result.col))
                self.trace.emit("correct", block.block_id, k_iter,
                                row=wm0 + result.row, col=wn0 + result.col,
                                magnitude=result.magnitude, scheme="ftkmeans")
            elif result.kind is CorrectionKind.CHECKSUM_RESYNC:
                self.counters.errors_detected += 1
                self.trace.emit("resync", block.block_id, k_iter,
                                scheme="ftkmeans")
            elif result.kind is CorrectionKind.RECOMPUTE:
                # detectable but inside the ratio-decode noise band:
                # replay this warp's tile from global memory (rare)
                self.counters.errors_detected += 1
                self._recompute_warp(block, w, acc_w)
                state.d[w.warp_id] = tuple(
                    float(v) for v in
                    np.array(self._fresh_triple(acc_w)))
                self.counters.errors_corrected += 1
                self.recomputed_warps.append((block.block_id, w.warp_id))
                self.trace.emit("warp_recompute", block.block_id, k_iter,
                                warp=w.warp_id, scheme="ftkmeans")

    # ------------------------------------------------------------------
    @staticmethod
    def _fresh_triple(acc_w: np.ndarray):
        from repro.abft.encoding import acc_checksum_triple

        return acc_checksum_triple(acc_w, dtype=np.float64)

    def _recompute_warp(self, block: ThreadBlock, warp: Warp,
                        acc_w: np.ndarray) -> None:
        """Time-redundant replay of one warp tile (duplicated loads and
        MMAs, all counted against this launch)."""
        shape, tile = self._shape, self.tile
        tb_m, tb_n, tb_k = tile.tb.m, tile.tb.n, tile.tb.k
        row0 = block.block_m * tb_m + warp.warp_m * tile.warp.m
        col0 = block.block_n * tb_n + warp.warp_n * tile.warp.n
        rows = max(0, min(tile.warp.m, shape.m - row0))
        cols = max(0, min(tile.warp.n, shape.n - col0))
        acc_w[:] = 0
        k_iters = -(-shape.k // tb_k)
        for ki in range(k_iters):
            kk0 = ki * tb_k
            kw = min(tb_k, shape.k - kk0)
            a_w = np.zeros((tile.warp.m, tb_k), self.dtype)
            if rows:
                a_w[:rows, :kw] = self._gmem.load(
                    "samples", slice(row0, row0 + rows), slice(kk0, kk0 + kw))
            b_w = np.zeros((tile.warp.n, tb_k), self.dtype)
            if cols:
                b_w[:cols, :kw] = self._gmem.load(
                    "centroids", slice(col0, col0 + cols), slice(kk0, kk0 + kw))
            self.mma_unit.mma(a_w, b_w.T, acc_w)


class FtAssignment(TensorOpAssignment):
    """Assignment stage with a pluggable fault-tolerance scheme.

    ``scheme`` ∈ {'ftkmeans', 'kosaian', 'wu', 'tensor_only'}; the kernel
    class, execution path and timing-model key follow from the scheme's
    capability record.
    """

    name = "ft"

    def __init__(self, device, dtype, *, mode="fast", injector=None,
                 tile=None, use_tf32: bool = True,
                 scheme: str | AbftScheme = FTKMEANS, safety: float = 4.0,
                 stages: int | None = None, chunk_bytes: int | None = None,
                 workers: int = 1, operand_cache="auto", prune="auto"):
        super().__init__(device, dtype, mode=mode, injector=injector,
                         tile=tile, use_tf32=use_tf32, stages=stages,
                         chunk_bytes=chunk_bytes, workers=workers,
                         operand_cache=operand_cache, prune=prune)
        self.scheme = get_scheme(scheme)
        self.safety = safety
        if self.scheme.name == "wu":
            # Wu's fusion needs the register-staged path; its kernels use
            # the SIMT tiling defaults unless caller overrides
            if tile is None:
                self.tile = default_simt_tile(dtype)

    def _engine_options(self) -> dict:
        return dict(tf32=self.use_tf32, scheme=self.scheme, safety=self.safety)

    # ------------------------------------------------------------------
    def assign(self, x: np.ndarray, y: np.ndarray, *,
               accumulator=None) -> AssignmentResult:
        m, k = x.shape
        n = y.shape[0]
        counters = PerfCounters()
        if self.mode == "functional":
            labels, best = self._assign_functional(x, y, counters)
            self._feed_functional(accumulator, x, labels)
        else:
            labels, best = self.engine.assign(x, y, counters,
                                              accumulator=accumulator)
        return AssignmentResult(labels, best, counters, self.estimate(m, n, k))

    def _assign_functional(self, x, y, counters):
        m, k = x.shape
        n = y.shape[0]
        gmem = setup_gmem(x, y, counters)
        shape = GemmShape(m, n, k)
        if self.scheme.name == "wu":
            gmem.alloc("distances", (m, n), self.dtype)
            kern = WuFtGemm(self.device, self.tile, self.dtype,
                            epilogue=StoreEpilogue(), counters=counters,
                            injector=self.injector, safety=self.safety)
            kern.run(gmem, shape)
            # the store epilogue already fused the norm terms in
            d = gmem.load("distances", slice(0, m), slice(0, n))
            labels = np.argmin(d, axis=1).astype(np.int64)
            best = d[np.arange(m), labels]
            return labels, best
        if self.scheme.name == "kosaian":
            kern = KosaianDetectGemm(self.device, self.tile, self.dtype,
                                     epilogue=BroadcastArgminEpilogue(),
                                     counters=counters, injector=self.injector,
                                     use_tf32=self.use_tf32, safety=self.safety)
        else:
            kern = FtTensorOpGemm(self.device, self.tile, self.dtype,
                                  epilogue=BroadcastArgminEpilogue(),
                                  counters=counters, injector=self.injector,
                                  use_tf32=self.use_tf32, safety=self.safety)
        kern.run(gmem, shape)
        assign = gmem["assign"]
        labels = assign[:, 1].astype(np.int64)
        best = assign[:, 0].astype(self.dtype)
        return labels, best

    # ------------------------------------------------------------------
    def estimate(self, m, n_clusters, k_features):
        tb, w = self.tile.tb, self.tile.warp
        p = self.injector.p_block if getattr(self.injector, "enabled", False) else 0.0
        dist = self.model.distance_tensorop(
            m, n_clusters, k_features, self.dtype,
            tb.m, tb.n, tb.k, w.m, w.n, stages=self.tile.stages,
            abft=self.scheme.timing_key, p_block_inject=p)
        norms = self.model.norms_kernel(m, k_features, self.dtype)
        return [("norms", norms), (f"distance_ft_{self.scheme.name}", dist)]
