"""V2 — kernel fusion at thread and threadblock level (Sec. III-A3).

The row-wise argmin moves *inside* the GEMM kernel: each thread reduces
its sub-tile, partials meet in shared memory, and thread 0 writes one
(min, argmin) candidate per row per block column.  The follow-up merge
only touches ``grid_n`` candidates per row — ``TB_N/N`` of the data the
V1 reduction kernel re-read (the paper's 1.13x step).
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm_kmeans import V1GemmAssignment
from repro.gemm.epilogue import PartialArgminEpilogue
from repro.gemm.shapes import GemmShape
from repro.gemm.simt_gemm import SimtGemm
from repro.utils.arrays import ceil_div

__all__ = ["V2FusedAssignment"]


class V2FusedAssignment(V1GemmAssignment):
    """Fused thread/threadblock argmin with a light cross-block merge."""

    name = "v2"
    variant_key = "v2"

    def _assign_functional(self, x, y, counters):
        from repro.core.assignment import setup_gmem

        m, k = x.shape
        n = y.shape[0]
        grid_n = ceil_div(n, self.tile.tb.n)
        gmem = setup_gmem(x, y, counters)
        gmem.alloc("partial_min", (m, grid_n), self.dtype)
        gmem.alloc("partial_arg", (m, grid_n), np.int64)
        kern = SimtGemm(self.device, self.tile, self.dtype,
                        epilogue=PartialArgminEpilogue(), counters=counters,
                        injector=self.injector)
        kern.run(gmem, GemmShape(m, n, k))
        # merge kernel: one candidate per block column instead of per centroid
        pmin = gmem.load("partial_min", slice(0, m), slice(0, grid_n))
        parg = gmem.load("partial_arg", slice(0, m), slice(0, grid_n))
        counters.kernels_launched += 1
        col = np.argmin(pmin, axis=1)
        rows = np.arange(m)
        labels = parg[rows, col].astype(np.int64)
        best = pmin[rows, col]
        return labels, best
