"""V1 — GEMM-based assignment with a separate reduction kernel
(Sec. III-A2).

The distance decomposition ``‖x‖² + ‖y‖² − 2·x·yᵀ`` turns the hot loop
into a GEMM; V1 launches four kernels per iteration: two squared-norm
passes, the SIMT GEMM writing the full distance matrix, and a row-wise
argmin reduction that re-reads it.  The re-read is the memory traffic V2
eliminates.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import (
    AssignmentKernelBase,
    AssignmentResult,
    setup_gmem,
)
from repro.gemm.epilogue import StoreEpilogue
from repro.gemm.shapes import GemmShape
from repro.gemm.simt_gemm import SimtGemm
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters

__all__ = ["V1GemmAssignment", "default_simt_tile"]


def default_simt_tile(dtype) -> TileConfig:
    """The hand-written SIMT kernels' fixed tiling (balanced 64x64)."""
    return TileConfig.make((64, 64, 16), (32, 32, 16), dtype, stages=2)


class V1GemmAssignment(AssignmentKernelBase):
    """SIMT GEMM + separate row-argmin reduction kernel."""

    name = "v1"
    variant_key = "v1"

    def __init__(self, device, dtype, *, mode="fast", injector=None,
                 tile: TileConfig | None = None,
                 chunk_bytes: int | None = None, workers: int = 1,
                 operand_cache="auto", prune="auto"):
        super().__init__(device, dtype, mode=mode, injector=injector,
                         chunk_bytes=chunk_bytes, workers=workers,
                         operand_cache=operand_cache, prune=prune)
        self.tile = tile if tile is not None else default_simt_tile(dtype)

    # ------------------------------------------------------------------
    def assign(self, x: np.ndarray, y: np.ndarray, *,
               accumulator=None) -> AssignmentResult:
        m, k = x.shape
        n = y.shape[0]
        counters = PerfCounters()
        if self.mode == "functional":
            labels, best = self._assign_functional(x, y, counters)
            self._feed_functional(accumulator, x, labels)
        else:
            labels, best = self.engine.assign(x, y, counters,
                                              accumulator=accumulator)
        return AssignmentResult(labels, best, counters,
                                self.estimate(m, n, k))

    def _assign_functional(self, x, y, counters):
        m, k = x.shape
        n = y.shape[0]
        gmem = setup_gmem(x, y, counters)
        gmem.alloc("distances", (m, n), self.dtype)
        kern = SimtGemm(self.device, self.tile, self.dtype,
                        epilogue=StoreEpilogue(), counters=counters,
                        injector=self.injector)
        kern.run(gmem, GemmShape(m, n, k))
        # separate reduction kernel: re-reads the whole distance matrix
        d = gmem.load("distances", slice(0, m), slice(0, n))
        counters.kernels_launched += 1
        labels = np.argmin(d, axis=1).astype(np.int64)
        best = d[np.arange(m), labels]
        return labels, best

    # ------------------------------------------------------------------
    def estimate(self, m, n_clusters, k_features):
        tb, w = self.tile.tb, self.tile.warp
        dist = self.model.distance_simt(
            m, n_clusters, k_features, self.dtype,
            tb.m, tb.n, tb.k, w.m, w.n, variant=self.variant_key)
        norms = self.model.norms_kernel(m, k_features, self.dtype)
        return [("norms", norms), (f"distance_{self.variant_key}", dist)]
