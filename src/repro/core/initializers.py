"""Centroid initialisation: uniform-random and k-means++.

Initialisation runs on the host in the paper's system (it is O(K·N) work
against O(M·N·K) per iteration), so these are plain NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["init_random", "init_kmeans_plusplus", "initialize"]


def init_random(x: np.ndarray, n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """K distinct samples chosen uniformly at random."""
    m = x.shape[0]
    if n_clusters > m:
        raise ValueError(f"n_clusters={n_clusters} exceeds n_samples={m}")
    idx = rng.choice(m, size=n_clusters, replace=False)
    return np.array(x[idx], copy=True)


def init_kmeans_plusplus(x: np.ndarray, n_clusters: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Arthur & Vassilvitskii seeding: D² sampling.

    Vectorised: maintains the running minimum squared distance to the
    chosen set and samples the next centroid proportional to it.
    """
    m = x.shape[0]
    if n_clusters > m:
        raise ValueError(f"n_clusters={n_clusters} exceeds n_samples={m}")
    x64 = x.astype(np.float64)
    centers = np.empty((n_clusters, x.shape[1]), dtype=np.float64)
    first = int(rng.integers(m))
    centers[0] = x64[first]
    d2 = np.sum((x64 - centers[0]) ** 2, axis=1)
    for i in range(1, n_clusters):
        total = float(d2.sum())
        if total <= 0.0:
            # all remaining mass at distance zero (duplicate points):
            # fall back to uniform choice among the rest
            idx = int(rng.integers(m))
        else:
            idx = int(rng.choice(m, p=d2 / total))
        centers[i] = x64[idx]
        np.minimum(d2, np.sum((x64 - centers[i]) ** 2, axis=1), out=d2)
    return centers.astype(x.dtype)


def initialize(x: np.ndarray, n_clusters: int, method: str,
               rng: np.random.Generator) -> np.ndarray:
    """Dispatch on the configured init method."""
    if method == "random":
        return init_random(x, n_clusters, rng)
    if method == "k-means++":
        return init_kmeans_plusplus(x, n_clusters, rng)
    raise ValueError(f"unknown init method {method!r}")
