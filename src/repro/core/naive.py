"""V0 — the naive assignment kernel (Sec. III-A1).

One thread per sample: load every centroid from global memory, compute
the squared distance dimension-by-dimension, keep the running minimum.
No tiling, no shared-memory reuse — each thread re-reads the full
centroid matrix, which is why the paper measures it at ~5% of cuML.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import AssignmentKernelBase, AssignmentResult
from repro.gpusim.counters import PerfCounters

__all__ = ["NaiveAssignment"]

#: samples processed per vectorised chunk in functional mode (one chunk
#: stands for one thread batch; keeps the O(chunk*K*N) temporary small)
_CHUNK = 4096


class NaiveAssignment(AssignmentKernelBase):
    """Per-thread centroid scan.

    ``functional`` mode keeps the dimension-by-dimension scan (the
    paper's V0 dataflow); ``fast`` mode streams through the blocked
    engine like every other variant (naive has no tile geometry, so the
    engine runs without fault replay — matching the seed behaviour of
    never injecting into the naive kernel's fast path).  Note the
    engine computes distances via the GEMM norm identity, which — like
    every GEMM-based variant — can cancel catastrophically on data with
    a large common offset; use ``functional`` mode for the exact
    per-dimension ``(x - y)**2`` scan.
    """

    name = "naive"

    def assign(self, x: np.ndarray, y: np.ndarray, *,
               accumulator=None) -> AssignmentResult:
        counters = PerfCounters()
        counters.kernels_launched += 1
        m, k = x.shape
        n = y.shape[0]
        if self.mode != "functional":
            labels, best = self.engine.assign(x, y, counters,
                                              accumulator=accumulator)
            # charge the same modelled work the per-thread scan performs
            # (every thread streams all centroids), so counter-derived
            # GFLOPS/traffic stay comparable across modes
            counters.global_loads += m * y.nbytes + x.nbytes
            counters.simt_fma += m * n * k
            counters.flops += 3 * m * n * k
            return AssignmentResult(labels, best, counters,
                                    self.estimate(m, n, k))
        labels = np.empty(m, dtype=np.int64)
        best = np.empty(m, dtype=self.dtype)
        for lo in range(0, m, _CHUNK):
            hi = min(lo + _CHUNK, m)
            xc = x[lo:hi]
            # every thread streams all centroids from global memory
            counters.global_loads += (hi - lo) * y.nbytes
            counters.global_loads += xc.nbytes
            diff = xc[:, None, :].astype(self.dtype) - y[None, :, :].astype(self.dtype)
            d = np.einsum("ijk,ijk->ij", diff, diff)
            counters.simt_fma += d.size * k
            counters.flops += 3 * (hi - lo) * n * k
            labels[lo:hi] = np.argmin(d, axis=1)
            best[lo:hi] = d[np.arange(hi - lo), labels[lo:hi]]
        self._feed_functional(accumulator, x, labels)
        timings = self.estimate(m, n, k)
        return AssignmentResult(labels, best, counters, timings)

    def estimate(self, m, n_clusters, k_features):
        return [("distance_naive",
                 self.model.distance_naive(m, n_clusters, k_features, self.dtype))]
