"""V4 — tensor-core kernel with the async pipeline (Sec. III-A5).

The final non-fault-tolerant form of FT K-means: CUTLASS-style tensor-core
GEMM (TF32 on FP32), ``cp.async`` multi-stage prefetch, and the fused
broadcast-argmin epilogue, with tile parameters chosen per problem shape
by the code-generation selector.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import (
    AssignmentKernelBase,
    AssignmentResult,
    setup_gmem,
)
from repro.gemm.epilogue import BroadcastArgminEpilogue
from repro.gemm.shapes import GemmShape
from repro.gemm.tensorop_gemm import TensorOpGemm
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters

__all__ = ["TensorOpAssignment", "default_tensorop_tile"]


def default_tensorop_tile(dtype) -> TileConfig:
    """Reasonable default tiles when no selector is used.

    FP32: TB(128,64,16)/W(64,32,16) — a balanced mid-size tile;
    FP64: TB(64,64,16)/W(32,32,16) — the paper's parameter 19.
    """
    if np.dtype(dtype) == np.float32:
        return TileConfig.make((128, 64, 16), (64, 32, 16), dtype, stages=3)
    return TileConfig.make((64, 64, 16), (32, 32, 16), dtype, stages=3)


class TensorOpAssignment(AssignmentKernelBase):
    """Tensor-core fused distance + assignment (no fault tolerance)."""

    name = "tensorop"

    def __init__(self, device, dtype, *, mode="fast", injector=None,
                 tile: TileConfig | None = None, use_tf32: bool = True,
                 stages: int | None = None, chunk_bytes: int | None = None,
                 workers: int = 1, operand_cache="auto", prune="auto"):
        super().__init__(device, dtype, mode=mode, injector=injector,
                         chunk_bytes=chunk_bytes, workers=workers,
                         operand_cache=operand_cache, prune=prune)
        self.tile = tile if tile is not None else default_tensorop_tile(dtype)
        if stages is not None and stages != self.tile.stages:
            self.tile = TileConfig(self.tile.tb, self.tile.warp,
                                   self.tile.thread, stages=stages,
                                   param_id=self.tile.param_id)
        self.use_tf32 = use_tf32 and np.dtype(dtype) == np.float32

    def _engine_options(self) -> dict:
        return dict(tf32=self.use_tf32)

    def _make_kernel(self, counters: PerfCounters) -> TensorOpGemm:
        return TensorOpGemm(self.device, self.tile, self.dtype,
                            epilogue=BroadcastArgminEpilogue(),
                            counters=counters, injector=self.injector,
                            use_tf32=self.use_tf32)

    # ------------------------------------------------------------------
    def assign(self, x: np.ndarray, y: np.ndarray, *,
               accumulator=None) -> AssignmentResult:
        m, k = x.shape
        n = y.shape[0]
        counters = PerfCounters()
        if self.mode == "functional":
            gmem = setup_gmem(x, y, counters)
            kern = self._make_kernel(counters)
            kern.run(gmem, GemmShape(m, n, k))
            assign = gmem["assign"]
            labels = assign[:, 1].astype(np.int64)
            best = assign[:, 0].astype(self.dtype)
            self._feed_functional(accumulator, x, labels)
        else:
            labels, best = self.engine.assign(x, y, counters,
                                              accumulator=accumulator)
        return AssignmentResult(labels, best, counters,
                                self.estimate(m, n, k))

    # ------------------------------------------------------------------
    def estimate(self, m, n_clusters, k_features):
        tb, w = self.tile.tb, self.tile.warp
        dist = self.model.distance_tensorop(
            m, n_clusters, k_features, self.dtype,
            tb.m, tb.n, tb.k, w.m, w.n, stages=self.tile.stages,
            abft="none")
        norms = self.model.norms_kernel(m, k_features, self.dtype)
        return [("norms", norms), ("distance_tensorop", dist)]
