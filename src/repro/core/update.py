"""Centroid-update stage (Fig. 2 step 3) with optional DMR protection.

One kernel handles all centroids: each thread streams its sample and
``atomicAdd``s every dimension into the assigned centroid's accumulator,
plus a count; a small second kernel divides.  The stage is memory-bound
(it must touch every sample once), which is why duplicated-instruction
redundancy (DMR) protects it for <1% (Sec. I) — the duplicate arithmetic
hides behind the loads.

Two accumulation implementations produce bit-identical sums:

* ``oneshot`` — the seed ``np.add.at`` scatter pass (regression
  baseline, see :func:`repro.core.accumulate.accumulate_oneshot`);
* ``streamed`` — per-chunk ``bincount`` segment sums with sequential
  continuation (:class:`repro.core.accumulate.StreamedAccumulator`),
  which the fast-path engine can additionally *fuse* into its assignment
  chunk loop so the samples are only streamed once per iteration.

When the engine has already fused the accumulation, :meth:`update`
accepts the packed sums as ``fused_sums``; under DMR the fused pass
counts as the first replica and one independent re-accumulation is the
duplicate — identical detect/recompute semantics to the seed.

Empty clusters are re-seeded from the samples farthest from their
assigned centroid (a common cuML/sklearn policy), keeping K constant.
"""

from __future__ import annotations

import numpy as np

from repro.abft.dmr import dmr_protected
from repro.core.accumulate import accumulate_oneshot, accumulate_streamed
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.timing import KernelTiming, TimingModel

__all__ = ["UpdateStage", "UpdateResult"]


class UpdateResult:
    """Output of one centroid update.

    Attributes
    ----------
    centroids : ndarray of shape (K, N)
        The new centroids, in the stage dtype.
    counts : ndarray of shape (K,)
        Samples assigned to each cluster (int64; per-cluster weight
        totals in float64 when ``sample_weight`` was supplied).
    shift : float
        Frobenius norm of the centroid movement this iteration.
    timings : list of (str, KernelTiming)
        Modelled kernel durations charged to the simulated clock.
    shifts : ndarray of shape (K,) or None
        Per-centroid float64 movement ``‖new_j - old_j‖`` — the
        loosening feed of the engine's pruning bounds
        (:meth:`repro.core.engine.FastPathEngine.feed_centroid_shifts`).
        Computed with the same expression as
        :meth:`repro.core.bounds.BoundsState._shifts_from`, so a fed
        vector carries exactly the bits the bounds would self-compute.
        Note ``shift`` is *not* derived from it: the scalar keeps its
        historical float association.
    """

    def __init__(self, centroids: np.ndarray, counts: np.ndarray,
                 shift: float, timings: list[tuple[str, KernelTiming]],
                 shifts: np.ndarray | None = None):
        self.centroids = centroids
        self.counts = counts
        self.shift = shift
        self.timings = timings
        self.shifts = shifts


class UpdateStage:
    """Centroid update with DMR and empty-cluster re-seeding.

    Parameters
    ----------
    device : DeviceSpec
        Timing-model device.
    dtype : dtype-like
        Centroid element type (float32/float64).
    dmr : bool, default True
        Duplicate the accumulation arithmetic and compare (Sec. I/IV);
        a mismatch triggers recomputation.
    update_mode : {'oneshot', 'streamed'}, default 'oneshot'
        Accumulation implementation when no fused sums are supplied.
        Both produce bit-identical sums; ``streamed`` is the faster
        bincount path.
    corrupt_hook : callable, optional
        Test hook — an SEU inside one DMR replica (see
        :mod:`repro.abft.dmr`).
    """

    def __init__(self, device: DeviceSpec, dtype, *, dmr: bool = True,
                 update_mode: str = "oneshot", corrupt_hook=None):
        if update_mode not in ("oneshot", "streamed"):
            raise ValueError(
                f"update_mode must be 'oneshot' or 'streamed', "
                f"got {update_mode!r}")
        self.device = device
        self.dtype = np.dtype(dtype)
        self.dmr = dmr
        self.update_mode = update_mode
        self.model = TimingModel(device)
        #: test hook — an SEU inside one DMR replica (see abft.dmr)
        self.corrupt_hook = corrupt_hook
        self._src: np.ndarray | None = None       # bound source identity
        self._src_t: np.ndarray | None = None     # its transposed copy

    # ------------------------------------------------------------------
    def bind_source_t(self, x: np.ndarray | None,
                      x_t: np.ndarray | None) -> None:
        """Attach a hoisted transposed copy of one sample matrix.

        When a later accumulation pass runs over exactly ``x`` (object
        identity) in streamed mode — notably the DMR duplicate's
        re-accumulation, which otherwise re-transposes the whole matrix
        every iteration — it reads contiguous feature rows from ``x_t``
        instead.  The bits are unchanged (see
        :meth:`StreamedAccumulator.bind_source_t`), and so is the DMR
        fault model: both replicas already read the same source memory,
        DMR protects the accumulation *arithmetic*.  Any other array
        keeps the legacy per-chunk transpose.  Pass ``(None, None)`` to
        detach.
        """
        self._src = x
        self._src_t = x_t

    def _accumulate(self, x: np.ndarray, labels: np.ndarray, n_clusters: int,
                    sample_weight: np.ndarray | None = None) -> np.ndarray:
        """One accumulation pass in the configured implementation."""
        if self.update_mode == "streamed":
            src_t = self._src_t if self._src is x else None
            return accumulate_streamed(x, labels, n_clusters,
                                       sample_weight=sample_weight,
                                       source_t=src_t)
        return accumulate_oneshot(x, labels, n_clusters,
                                  sample_weight=sample_weight)

    def update(self, x: np.ndarray, labels: np.ndarray, best_sqdist: np.ndarray,
               old_centroids: np.ndarray, counters: PerfCounters, *,
               fused_sums: np.ndarray | None = None,
               sample_weight: np.ndarray | None = None) -> UpdateResult:
        """Compute new centroids from one assignment pass.

        Parameters
        ----------
        x : ndarray of shape (M, N)
            Samples (in the estimator dtype).
        labels : ndarray of shape (M,)
            Assignments from the distance stage.
        best_sqdist : ndarray of shape (M,)
            Per-sample min squared distances (drives the worst-fit
            empty-cluster re-seed).
        old_centroids : ndarray of shape (K, N)
            Previous iteration's centroids.
        counters : PerfCounters
            Statistics sink (atomics, DMR checks, detections).
        fused_sums : ndarray of shape (K, N+1), optional
            Packed sums ‖ counts already accumulated by the streaming
            engine's fused chunk loop.  Under DMR this is the first
            replica; one independent re-accumulation is the duplicate.
        sample_weight : ndarray of shape (M,), optional
            Per-sample weights; sums become ``Σ w_i x_i`` and counts the
            per-cluster weight totals (``UpdateResult.counts`` is then
            float64 instead of int64).

        Returns
        -------
        UpdateResult
        """
        n_clusters, k = old_centroids.shape
        sums = self.accumulate_protected(x, labels, n_clusters, counters,
                                         fused_sums=fused_sums,
                                         sample_weight=sample_weight)
        wcounts = sums[:, k]
        counts = (wcounts.astype(np.int64) if sample_weight is None
                  else wcounts.copy())
        centroids = np.array(old_centroids, dtype=self.dtype, copy=True)
        nz = wcounts > 0
        centroids[nz] = (sums[nz, :k] / wcounts[nz, None]).astype(self.dtype)

        # re-seed empty clusters from the worst-fit samples
        empty = np.flatnonzero(~nz)
        if empty.size:
            order = np.argsort(best_sqdist)[::-1]
            donors = order[: empty.size]
            centroids[empty] = x[donors].astype(self.dtype)

        d64 = centroids.astype(np.float64) - old_centroids.astype(np.float64)
        shift = float(np.linalg.norm(d64))
        shifts = np.sqrt(np.sum(d64 * d64, axis=1))
        timings = self.estimate(x.shape[0], n_clusters, k)
        counters.kernels_launched += 2
        return UpdateResult(centroids, counts, shift, timings, shifts=shifts)

    # ------------------------------------------------------------------
    def accumulate_protected(self, x: np.ndarray, labels: np.ndarray,
                             n_clusters: int, counters: PerfCounters, *,
                             fused_sums: np.ndarray | None = None,
                             sample_weight: np.ndarray | None = None
                             ) -> np.ndarray:
        """DMR-wrapped sum/count accumulation (packed ``(K, N+1)``).

        The shared core of the full-batch :meth:`update` and the online
        mini-batch step: runs the configured accumulation under DMR when
        enabled, treating ``fused_sums`` (the engine's fused chunk-loop
        pass) as the first replica so only the duplicate re-streams the
        samples.

        Parameters
        ----------
        x : ndarray of shape (M, N)
        labels : ndarray of shape (M,)
        n_clusters : int
        counters : PerfCounters
        fused_sums : ndarray of shape (K, N+1), optional
        sample_weight : ndarray of shape (M,), optional

        Returns
        -------
        ndarray of shape (K, N+1)
            Per-cluster feature sums with counts (or weight totals) in
            the last column, float64.
        """
        m, k = x.shape

        def accumulate() -> np.ndarray:
            """The duplicated instruction stream: sums ‖ counts packed."""
            return self._accumulate(x, labels, n_clusters, sample_weight)

        counters.atomics += m * (k + 1)
        counters.global_loads += x.nbytes
        if self.dmr:
            compute = accumulate
            if fused_sums is not None:
                # the fused pass is replica 1 (already paid for during
                # assignment); replicas after it re-accumulate freshly
                pending = [fused_sums]

                def compute() -> np.ndarray:
                    return pending.pop() if pending else accumulate()

            sums = dmr_protected(compute, counters=counters,
                                 corrupt_first=self.corrupt_hook)
            # the hook models a one-shot SEU; don't re-fire next iteration
            self.corrupt_hook = None
        elif fused_sums is not None:
            sums = fused_sums
        else:
            sums = accumulate()
        return sums

    # ------------------------------------------------------------------
    def estimate(self, m: int, n_clusters: int, k_features: int):
        """Modelled kernel timings for one update at this shape."""
        t = self.model.update_kernel(m, n_clusters, k_features, self.dtype,
                                     dmr=self.dmr)
        return [("update", t)]
