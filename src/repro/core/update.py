"""Centroid-update stage (Fig. 2 step 3) with optional DMR protection.

One kernel handles all centroids: each thread streams its sample and
``atomicAdd``s every dimension into the assigned centroid's accumulator,
plus a count; a small second kernel divides.  The stage is memory-bound
(it must touch every sample once), which is why duplicated-instruction
redundancy (DMR) protects it for <1% (Sec. I) — the duplicate arithmetic
hides behind the loads.

Empty clusters are re-seeded from the samples farthest from their
assigned centroid (a common cuML/sklearn policy), keeping K constant.
"""

from __future__ import annotations

import numpy as np

from repro.abft.dmr import dmr_protected
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.timing import KernelTiming, TimingModel

__all__ = ["UpdateStage", "UpdateResult"]


class UpdateResult:
    """Output of one centroid update."""

    def __init__(self, centroids: np.ndarray, counts: np.ndarray,
                 shift: float, timings: list[tuple[str, KernelTiming]]):
        self.centroids = centroids
        self.counts = counts
        self.shift = shift
        self.timings = timings


class UpdateStage:
    """Atomic-accumulation centroid update with DMR and empty-cluster
    re-seeding."""

    def __init__(self, device: DeviceSpec, dtype, *, dmr: bool = True,
                 corrupt_hook=None):
        self.device = device
        self.dtype = np.dtype(dtype)
        self.dmr = dmr
        self.model = TimingModel(device)
        #: test hook — an SEU inside one DMR replica (see abft.dmr)
        self.corrupt_hook = corrupt_hook

    # ------------------------------------------------------------------
    def update(self, x: np.ndarray, labels: np.ndarray, best_sqdist: np.ndarray,
               old_centroids: np.ndarray, counters: PerfCounters) -> UpdateResult:
        n_clusters, k = old_centroids.shape
        m = x.shape[0]

        def accumulate() -> np.ndarray:
            """The duplicated instruction stream: sums ‖ counts packed."""
            sums = np.zeros((n_clusters, k + 1), dtype=np.float64)
            np.add.at(sums[:, :k], labels, x.astype(np.float64))
            np.add.at(sums[:, k], labels, 1.0)
            return sums

        counters.atomics += m * (k + 1)
        counters.global_loads += x.nbytes
        if self.dmr:
            sums = dmr_protected(accumulate, counters=counters,
                                 corrupt_first=self.corrupt_hook)
            # the hook models a one-shot SEU; don't re-fire next iteration
            self.corrupt_hook = None
        else:
            sums = accumulate()
        counts = sums[:, k].astype(np.int64)
        centroids = np.array(old_centroids, dtype=self.dtype, copy=True)
        nz = counts > 0
        centroids[nz] = (sums[nz, :k] / counts[nz, None]).astype(self.dtype)

        # re-seed empty clusters from the worst-fit samples
        empty = np.flatnonzero(~nz)
        if empty.size:
            order = np.argsort(best_sqdist)[::-1]
            donors = order[: empty.size]
            centroids[empty] = x[donors].astype(self.dtype)

        shift = float(np.linalg.norm(
            centroids.astype(np.float64) - old_centroids.astype(np.float64)))
        timings = self.estimate(m, n_clusters, k)
        counters.kernels_launched += 2
        return UpdateResult(centroids, counts, shift, timings)

    # ------------------------------------------------------------------
    def estimate(self, m: int, n_clusters: int, k_features: int):
        t = self.model.update_kernel(m, n_clusters, k_features, self.dtype,
                                     dmr=self.dmr)
        return [("update", t)]
