"""Input validation shared by the estimator and the kernel drivers."""

from __future__ import annotations

import numpy as np

from repro.utils.arrays import check_2d

__all__ = ["validate_data", "validate_centroids"]


def validate_data(x, dtype) -> np.ndarray:
    """Return samples as a C-contiguous finite 2-D array of ``dtype``."""
    x = check_2d(np.asarray(x), "X")
    x = np.ascontiguousarray(x, dtype=dtype)
    if not np.all(np.isfinite(x)):
        raise ValueError("X contains NaN or Inf")
    return x


def validate_centroids(y, n_clusters: int, n_features: int, dtype) -> np.ndarray:
    """Validate a user-supplied initial centroid matrix."""
    y = check_2d(np.asarray(y), "initial centroids")
    if y.shape != (n_clusters, n_features):
        raise ValueError(
            f"initial centroids shape {y.shape} != ({n_clusters}, {n_features})")
    y = np.ascontiguousarray(y, dtype=dtype)
    if not np.all(np.isfinite(y)):
        raise ValueError("initial centroids contain NaN or Inf")
    return y
