"""Input validation shared by the estimator and the kernel drivers."""

from __future__ import annotations

import numpy as np

from repro.utils.arrays import check_2d

__all__ = ["validate_data", "validate_centroids", "validate_weights"]


def validate_data(x, dtype) -> np.ndarray:
    """Return samples as a C-contiguous finite 2-D array of ``dtype``."""
    x = check_2d(np.asarray(x), "X")
    x = np.ascontiguousarray(x, dtype=dtype)
    if not np.all(np.isfinite(x)):
        raise ValueError("X contains NaN or Inf")
    return x


def validate_weights(sample_weight, n_samples: int) -> np.ndarray | None:
    """Validate per-sample weights: finite, non-negative, shape (M,).

    Returns a C-contiguous float64 vector, or None when no weights were
    given (the unweighted fast paths stay untouched).
    """
    if sample_weight is None:
        return None
    w = np.ascontiguousarray(np.asarray(sample_weight), dtype=np.float64)
    if w.ndim != 1 or w.shape[0] != n_samples:
        raise ValueError(
            f"sample_weight shape {np.shape(sample_weight)} != ({n_samples},)")
    if not np.all(np.isfinite(w)):
        raise ValueError("sample_weight contains NaN or Inf")
    if np.any(w < 0):
        raise ValueError("sample_weight contains negative weights")
    return w


def validate_centroids(y, n_clusters: int, n_features: int, dtype) -> np.ndarray:
    """Validate a user-supplied initial centroid matrix."""
    y = check_2d(np.asarray(y), "initial centroids")
    if y.shape != (n_clusters, n_features):
        raise ValueError(
            f"initial centroids shape {y.shape} != ({n_clusters}, {n_features})")
    y = np.ascontiguousarray(y, dtype=dtype)
    if not np.all(np.isfinite(y)):
        raise ValueError("initial centroids contain NaN or Inf")
    return y
