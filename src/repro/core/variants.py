"""Assignment-variant registry.

Maps the names of :data:`repro.core.config.VARIANT_NAMES` to their kernel
classes and builds configured instances for the estimator.
"""

from __future__ import annotations

import numpy as np

from repro.core.broadcast import V3BroadcastAssignment
from repro.core.config import KMeansConfig
from repro.core.ft_kmeans import FtAssignment
from repro.core.fused import V2FusedAssignment
from repro.core.gemm_kmeans import V1GemmAssignment
from repro.core.naive import NaiveAssignment
from repro.core.tensorop import TensorOpAssignment
from repro.gemm.tiling import TileConfig
from repro.gpusim.faults import FaultInjector, NullInjector

__all__ = ["VARIANTS", "build_assignment"]

VARIANTS = {
    "naive": NaiveAssignment,
    "v1": V1GemmAssignment,
    "v2": V2FusedAssignment,
    "v3": V3BroadcastAssignment,
    "tensorop": TensorOpAssignment,
    "ft": FtAssignment,
}


def _resolve_tile(cfg: KMeansConfig, n_samples: int, n_features: int) -> TileConfig | None:
    """Resolve cfg.tile: None (variant default), 'auto' (selector) or an
    explicit TileConfig."""
    if cfg.tile is None:
        return None
    if isinstance(cfg.tile, TileConfig):
        return cfg.tile
    if cfg.tile == "auto":
        # imported lazily: codegen sits above core in the layering only
        # for this convenience feature
        from repro.codegen.selector import KernelSelector

        selector = KernelSelector.for_device(cfg.device, cfg.dtype)
        return selector.best_tile(n_samples, cfg.n_clusters, n_features)
    raise ValueError(f"tile must be None, 'auto' or TileConfig, got {cfg.tile!r}")


def build_assignment(cfg: KMeansConfig, n_samples: int, n_features: int,
                     rng: np.random.Generator):
    """Instantiate the configured assignment kernel (plus its injector)."""
    cls = VARIANTS[cfg.variant]
    injector = (FaultInjector(rng, cfg.p_inject, cfg.dtype)
                if cfg.p_inject > 0 else NullInjector())
    tile = _resolve_tile(cfg, n_samples, n_features)
    kwargs: dict = dict(mode=cfg.mode, injector=injector,
                        chunk_bytes=cfg.chunk_bytes,
                        workers=cfg.engine_workers,
                        operand_cache=cfg.operand_cache,
                        prune=cfg.prune)
    if cfg.variant in ("v1", "v2", "v3"):
        kwargs["tile"] = tile
    elif cfg.variant == "tensorop":
        kwargs.update(tile=tile, use_tf32=cfg.use_tf32)
    elif cfg.variant == "ft":
        kwargs.update(tile=tile, use_tf32=cfg.use_tf32, scheme=cfg.abft)
    return cls(cfg.device, cfg.dtype, **kwargs)
