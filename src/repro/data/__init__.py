"""Synthetic workload generators for examples, tests and benchmarks."""

from repro.data.quantization import (
    quantize_pixels,
    reconstruction_psnr,
    synthetic_image,
)
from repro.data.synthetic import (
    anisotropic_blobs,
    benchmark_operands,
    gaussian_blobs,
    uniform_matrix,
)

__all__ = [
    "quantize_pixels",
    "reconstruction_psnr",
    "synthetic_image",
    "anisotropic_blobs",
    "benchmark_operands",
    "gaussian_blobs",
    "uniform_matrix",
]
