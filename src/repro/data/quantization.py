"""Vector-quantisation workload (the paper's motivating application).

K-means' classic use in VQ/image-palette compression: build a synthetic
"image" whose pixel distribution has a few dominant colour modes, cluster
the pixels, and measure reconstruction error — a realistic end-to-end
exercise of the public API beyond random matrices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["synthetic_image", "quantize_pixels", "reconstruction_psnr"]


def synthetic_image(height: int = 128, width: int = 128, *, seed=0,
                    n_modes: int = 6, noise: float = 0.03,
                    dtype=np.float32) -> np.ndarray:
    """An (H, W, 3) RGB image with smooth regions around colour modes."""
    rng = np.random.default_rng(seed)
    modes = rng.uniform(0.05, 0.95, size=(n_modes, 3))
    yy, xx = np.mgrid[0:height, 0:width]
    img = np.zeros((height, width, 3))
    # soft Voronoi regions around random sites
    sites = rng.uniform(0, 1, size=(n_modes, 2)) * [height, width]
    d = ((yy[None] - sites[:, 0, None, None]) ** 2
         + (xx[None] - sites[:, 1, None, None]) ** 2)
    region = np.argmin(d, axis=0)
    for i in range(n_modes):
        img[region == i] = modes[i]
    img += rng.normal(0, noise, img.shape)
    return np.clip(img, 0.0, 1.0).astype(dtype)


def quantize_pixels(image: np.ndarray) -> np.ndarray:
    """Flatten an (H, W, C) image to an (H*W, C) sample matrix."""
    if image.ndim != 3:
        raise ValueError(f"expected (H, W, C) image, got shape {image.shape}")
    return image.reshape(-1, image.shape[2])


def reconstruction_psnr(image: np.ndarray, labels: np.ndarray,
                        palette: np.ndarray) -> float:
    """PSNR (dB) of the palette reconstruction against the original."""
    pixels = quantize_pixels(image).astype(np.float64)
    recon = palette.astype(np.float64)[labels]
    mse = float(np.mean((pixels - recon) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(1.0 / mse)
