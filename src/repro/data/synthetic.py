"""Synthetic workload generators.

The paper's benchmarks draw random matrices at controlled (M, N, K)
shapes; its motivation section cites image classification, vector
quantisation and pattern classification.  These generators provide both:
shape-controlled random operands for kernel benchmarking and structured
cluster data for end-to-end clustering quality checks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_blobs", "uniform_matrix", "anisotropic_blobs",
           "benchmark_operands"]


def uniform_matrix(m: int, k: int, dtype=np.float32, *, seed=0,
                   low: float = -1.0, high: float = 1.0) -> np.ndarray:
    """Uniform random operand matrix (the kernels' benchmark input)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(m, k)).astype(dtype)


def benchmark_operands(m: int, n_clusters: int, k_features: int,
                       dtype=np.float32, *, seed=0) -> tuple[np.ndarray, np.ndarray]:
    """(samples, centroids) pair at a benchmark shape."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, k_features)).astype(dtype)
    y = rng.standard_normal((n_clusters, k_features)).astype(dtype)
    return x, y


def gaussian_blobs(m: int, k_features: int, n_clusters: int,
                   dtype=np.float32, *, seed=0, spread: float = 5.0,
                   std: float = 0.6) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Isotropic Gaussian clusters.

    Returns (samples, true_centers, true_labels); cluster sizes are
    near-equal with the remainder spread over the first clusters.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-spread, spread, size=(n_clusters, k_features))
    labels = np.repeat(np.arange(n_clusters), m // n_clusters)
    labels = np.concatenate([labels, rng.integers(0, n_clusters, m - labels.size)])
    rng.shuffle(labels)
    x = centers[labels] + rng.normal(0.0, std, size=(m, k_features))
    return x.astype(dtype), centers.astype(dtype), labels.astype(np.int64)


def anisotropic_blobs(m: int, k_features: int, n_clusters: int,
                      dtype=np.float32, *, seed=0,
                      condition: float = 8.0) -> tuple[np.ndarray, np.ndarray]:
    """Stretched clusters (harder assignment boundaries).

    Each cluster is sheared by a random matrix with the given condition
    number — exercises tie-breaking and TF32 sensitivity.
    """
    rng = np.random.default_rng(seed)
    x, centers, labels = gaussian_blobs(m, k_features, n_clusters,
                                        np.float64, seed=seed)
    for c in range(n_clusters):
        q, _ = np.linalg.qr(rng.standard_normal((k_features, k_features)))
        scales = np.linspace(1.0, condition, k_features)
        t = (q * scales) @ q.T
        mask = labels == c
        x[mask] = (x[mask] - centers[c]) @ t + centers[c]
    return x.astype(dtype), labels
