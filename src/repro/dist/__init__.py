"""repro.dist — sharded multi-worker execution with fault tolerance.

The distribution layer of the reproduction: a full-batch fit sharded
across N simulated devices/processes, surviving whole-worker loss —
the failure class orthogonal to the paper's in-device SEUs.

* :class:`ShardPlan` — GEMM-unit-aligned sample shards (bit-stable);
* :class:`ShardWorker` — one shard's fused assignment per round;
* executors — ``serial`` / ``thread`` / ``process`` backends behind one
  round protocol (:func:`make_executor`);
* :class:`Coordinator` — map-reduce Lloyd with a sequential-continuation
  merge (bit-identical to single-worker for any shard count *and any
  membership history*), selectable reduce topology (``star`` /
  ``stream`` / ``tree`` / ``auto``, all bit-identical; see
  :func:`combine_schedule` for the pairwise tree), an ABFT checksum
  over the merged partials, checkpoint/restart recovery, round-deadline
  stall detection (:class:`WorkerStall`) and elastic
  shrink-onto-survivors recovery;
* :class:`FleetManager` — self-healing membership: between-round
  heartbeats, hot-spare promotion, and shrink → re-expand back to the
  target fleet size (bit-identical across any membership history);
* :class:`CheckpointStore` — atomic in-memory or on-disk snapshots;
* :class:`WorkerCacheStore` — shard-keyed worker operand-cache
  checkpoints, so replacement workers skip recomputing per-fit
  invariants;
* :class:`WorkerFaultInjector` — crash / stall / corrupt-partial /
  wedge injection for the recovery tests and benchmarks.

Usually reached through the estimator::

    FTKMeans(n_clusters=64, n_workers=4, executor="process",
             checkpoint_every=5, round_timeout=30.0, elastic=True,
             hot_spares=1, heartbeat_interval=5.0).fit(x)

but every piece is public for direct composition.  The contract lives
in ``docs/distributed.md``.
"""

from repro.dist.checkpoint import CheckpointStore, WorkerCacheStore
from repro.dist.coordinator import Coordinator, DistFitResult, ReduceOccupancy
from repro.dist.fleet import FleetManager
from repro.dist.executors import (
    BaseExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.dist.faults import (
    WorkerCrash,
    WorkerFaultInjector,
    WorkerFaultPlan,
    WorkerStall,
)
from repro.dist.plan import CombineStep, Shard, ShardPlan, combine_schedule
from repro.dist.worker import RoundResult, ShardWorker

__all__ = [
    "ShardPlan",
    "Shard",
    "CombineStep",
    "combine_schedule",
    "ReduceOccupancy",
    "ShardWorker",
    "RoundResult",
    "BaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "Coordinator",
    "DistFitResult",
    "FleetManager",
    "CheckpointStore",
    "WorkerCacheStore",
    "WorkerCrash",
    "WorkerStall",
    "WorkerFaultPlan",
    "WorkerFaultInjector",
]
