"""Checkpoint/restart state store for the sharded coordinator.

Snapshots are pickled blobs of the coordinator's whole per-iteration
state — centroids, iteration index, convergence monitor, simulated
clock, counters — taken every ``checkpoint_every`` iterations.  After a
worker loss the coordinator restores the newest snapshot and replays
from there; because the Lloyd step is deterministic given ``(x, y)``
(and the worker SEU streams are keyed by iteration, not history), the
replayed trajectory is bit-identical to an uninterrupted run.

Two storage modes behind one API:

* **in-memory** (default): snapshots live as pickled bytes inside the
  store object.  Pickling is kept even here so a restore always yields
  fresh objects — the live fit state can never alias a snapshot.
* **directory-backed** (``directory=...``): snapshots persist as
  ``ckpt_<iteration>.pkl`` files written atomically — a uniquely-named
  tmp file is written, fsynced, then ``os.replace``\\ d into place — so
  a crash mid-write never corrupts the newest restorable state.  A
  crash *between* write and replace can still strand the tmp file, so
  stray ``*.tmp`` files are swept on construction and by :meth:`clear`.
  The sweep spares tmp files younger than ``TMP_SWEEP_AGE_S`` — unique
  names stop writers colliding with *each other*, but only the age
  guard stops a glob-based sweep from unlinking a concurrent writer's
  live tmp (a healthy save holds its tmp for milliseconds).  Only the
  ``keep`` newest files are retained.

**Asynchronous writes.**  Directory-backed stores default to a
background writer (``sync=False``): :meth:`save` pickles the state in
the calling thread — the snapshot is consistent at call time, and the
caller may keep mutating the live objects — then hands the blob to a
daemon writer over a bounded queue, moving the write+fsync cost off the
coordinator's round loop.  The durability contract is preserved by a
**flush barrier**: every read (:attr:`iterations`, :meth:`load_latest`)
and :meth:`clear` drain the queue first, so a recovery restore can
never observe a snapshot that was saved but not yet durable, and the
coordinator flushes once more when the fit ends.  Each write still uses
the same tmp+fsync+replace protocol, so a crash at any point — of the
writer thread or the whole process — leaves only complete, restorable
checkpoint files behind (an interrupted write strands at most a tmp
file the sweep collects later).  A failed background write is re-raised
at the next ``save``/``flush``.  ``sync=True`` keeps every write on the
calling thread (the legacy behaviour, and the default for in-memory
stores, where there is no I/O to hide).

:class:`WorkerCacheStore` is the second, orthogonal store in this
module: shard-keyed checkpoints of the *workers'* engine operand caches
(norms + hoisted operand copies), so a replacement worker booting onto
a shard skips recomputing per-fit invariants the dead worker already
paid for.  Unlike coordinator snapshots these never affect the fit's
bits — a missing or compacted entry only costs boot time.  Both stores
share one :class:`_DaemonWriter` implementation for their asynchronous
write paths; the cache store additionally exposes :meth:`refresh` so
long fits can periodically re-assert entries that compaction evicted,
paying only an existence check while the entry is still warm.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

import numpy as np

__all__ = ["CheckpointStore", "WorkerCacheStore"]


class _DaemonWriter:
    """Bounded queue of write thunks drained by one self-respawning daemon.

    The shared engine behind both stores' asynchronous write paths:
    :meth:`submit` enqueues a zero-argument callable (blocking once
    ``queue_max`` thunks are outstanding, so a producer that outruns
    the disk throttles instead of buffering unbounded blobs) and
    :meth:`flush` is the barrier — it returns only when every accepted
    thunk has run.  A thunk that raises poisons the writer: the queue
    is dropped and the exception re-raises at the next submit/flush.

    The drain thread exits when idle and is respawned by the next
    submit.  Liveness is a lock-guarded flag cleared in the same
    critical section as the exit decision — ``Thread.is_alive()`` could
    report a dying-but-alive thread and let a submit skip the respawn,
    orphaning its freshly queued thunk.
    """

    def __init__(self, name: str = "daemon-writer", *, queue_max: int = 4):
        self.name = name
        self.queue_max = int(queue_max)
        self._cond = threading.Condition()
        self._pending: deque = deque()
        self._thread: threading.Thread | None = None
        self._live = False
        self._busy = False
        self._error: BaseException | None = None

    def submit(self, fn) -> None:
        with self._cond:
            if self._error is not None:
                err, self._error = self._error, None
                raise err
            while len(self._pending) >= self.queue_max:
                self._cond.wait()
            self._pending.append(fn)
            if not self._live:
                self._live = True
                self._thread = threading.Thread(
                    target=self._drain, name=self.name, daemon=True)
                self._thread.start()
            self._cond.notify_all()

    def flush(self) -> None:
        with self._cond:
            while self._pending or self._busy:
                self._cond.wait()
            if self._error is not None:
                err, self._error = self._error, None
                raise err

    def _drain(self) -> None:
        while True:
            with self._cond:
                if not self._pending:
                    # exit decision and liveness clear are atomic under
                    # the lock: any submit() arriving after this sees a
                    # dead writer and spawns a fresh one
                    self._live = False
                    self._busy = False
                    self._cond.notify_all()
                    return
                fn = self._pending.popleft()
                self._busy = True
                self._cond.notify_all()
            try:
                fn()
            except BaseException as exc:
                with self._cond:
                    self._error = exc
                    self._pending.clear()
                    self._live = False
                    self._busy = False
                    self._cond.notify_all()
                return


class CheckpointStore:
    """Iteration-keyed snapshot store (in-memory or directory-backed).

    Parameters
    ----------
    directory : path-like, optional
        Back the store with atomic per-iteration files; None (default)
        keeps snapshots in memory.
    keep : int
        Newest snapshots retained; older ones are pruned.
    sync : bool, optional
        True writes every snapshot on the calling thread; False hands
        the pickled blob to a background writer (bounded queue, flush
        barrier on reads).  None (default) resolves to synchronous for
        in-memory stores and asynchronous for directory-backed ones.
    event_bus : :class:`repro.obs.events.EventBus`, optional
        Bus the store publishes ``checkpoint_save`` (one per accepted
        snapshot, from the saving thread) and ``checkpoint_flush`` (one
        per completed barrier) events onto, source ``"checkpoint"``.
        The coordinator wires its fit bus in here automatically when
        the store was not pre-wired to one of its own.  Events mark
        *acceptance*, not durability — an async save's write may still
        be in flight until the next flush event.
    """

    #: tmp files younger than this are presumed to be a concurrent
    #: writer's live tmp and spared by the sweep; stranded files age
    #: past it and get collected by the next construction / clear()
    TMP_SWEEP_AGE_S = 60.0

    #: bounded write queue: a saver that outruns the disk blocks here
    #: instead of buffering unbounded snapshot blobs
    QUEUE_MAX = 4

    def __init__(self, directory: str | os.PathLike | None = None, *,
                 keep: int = 2, sync: bool | None = None, event_bus=None):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = int(keep)
        self.event_bus = event_bus
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._sweep_tmp()
        self.sync = (self.directory is None) if sync is None else bool(sync)
        self._mem: dict[int, bytes] = {}
        # background writer (directory-backed async stores only)
        self._writer = _DaemonWriter("checkpoint-writer",
                                     queue_max=self.QUEUE_MAX)

    # ------------------------------------------------------------------
    def _publish(self, kind: str, **fields) -> None:
        if self.event_bus is not None:
            self.event_bus.publish(kind, source="checkpoint", **fields)

    def _path(self, iteration: int) -> Path:
        return self.directory / f"ckpt_{iteration:08d}.pkl"

    def _sweep_tmp(self) -> None:
        """Remove tmp files stranded by a crash between write and
        replace (they are unreachable by any restore path, but neither
        pruning nor the iteration glob would ever touch them).  Recent
        tmp files are spared — they may belong to a concurrent writer
        mid-save on a shared directory."""
        cutoff = time.time() - self.TMP_SWEEP_AGE_S
        for p in self.directory.glob("*.tmp"):
            try:
                if p.stat().st_mtime <= cutoff:
                    p.unlink(missing_ok=True)
            except OSError:
                continue

    def save(self, iteration: int, state: dict) -> None:
        """Snapshot ``state`` under ``iteration`` (atomic on disk).

        The state is pickled before ``save`` returns, so the snapshot
        is consistent at call time even when the write itself happens
        on the background writer; a previously failed background write
        is re-raised here.
        """
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        if self.directory is None:
            self._mem[iteration] = blob
            for it in sorted(self._mem)[:-self.keep]:
                del self._mem[it]
            self._publish("checkpoint_save", iteration=int(iteration),
                          nbytes=len(blob), mode="memory")
            return
        if self.sync:
            self._write_blob(iteration, blob)
            self._prune()
            self._publish("checkpoint_save", iteration=int(iteration),
                          nbytes=len(blob), mode="sync")
            return
        self._writer.submit(lambda: self._write_and_prune(iteration, blob))
        # published outside the writer hand-off: subscribers run on the
        # saving thread and must never block the drain loop
        self._publish("checkpoint_save", iteration=int(iteration),
                      nbytes=len(blob), mode="async")

    def flush(self) -> None:
        """Barrier: return only when every queued snapshot is durably
        written (and re-raise a background write failure).  No-op for
        synchronous and in-memory stores."""
        if self.directory is None or self.sync:
            return
        self._writer.flush()
        self._publish("checkpoint_flush")

    def _write_and_prune(self, iteration: int, blob: bytes) -> None:
        self._write_blob(iteration, blob)
        self._prune()

    def _write_blob(self, iteration: int, blob: bytes) -> None:
        # unique tmp name (two writers on one directory can never step
        # on each other's half-written blob) + fsync before the rename,
        # so the renamed file is durably the full snapshot
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   prefix=f"ckpt_{iteration:08d}.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self._path(iteration))
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    def _prune(self) -> None:
        for it in self._list_iterations()[:-self.keep]:
            self._path(it).unlink(missing_ok=True)

    def _list_iterations(self) -> list[int]:
        if self.directory is None:
            return sorted(self._mem)
        its = []
        for p in self.directory.glob("ckpt_*.pkl"):
            try:
                its.append(int(p.stem.split("_", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(its)

    @property
    def iterations(self) -> list[int]:
        """Checkpointed iterations, oldest first (flushes the writer
        first, so the listing reflects every completed ``save``)."""
        self.flush()
        return self._list_iterations()

    def load_latest(self) -> tuple[int, dict] | None:
        """Newest ``(iteration, state)`` snapshot, or None when empty.

        Flushes the background writer first — a restore never races a
        write — and the returned state is freshly unpickled: mutating it
        never touches the stored snapshot.
        """
        its = self.iterations
        if not its:
            return None
        it = its[-1]
        blob = (self._mem[it] if self.directory is None
                else self._path(it).read_bytes())
        return it, pickle.loads(blob)

    def clear(self) -> None:
        self._mem.clear()
        if self.directory is not None:
            try:
                self.flush()
            except Exception:
                # a failed pending write is moot: everything it could
                # have produced is being deleted anyway
                pass
            for it in self._list_iterations():
                self._path(it).unlink(missing_ok=True)
            self._sweep_tmp()


class WorkerCacheStore:
    """Shard-keyed checkpoints of worker engine operand caches.

    A worker booting onto a shard spends its start-up on per-fit
    invariants: the x-norm pass and (budget permitting) the hoisted
    rounded/transposed operand copies.  Those are pure functions of the
    shard rows — identical for the original worker, a respawn, and a
    promoted spare — so the first worker to build them checkpoints the
    result here and every later boot onto the same rows preloads it
    (the engine re-validates shape/dtype on adoption; a stale or
    partial entry costs boot time, never bits).

    Keys are shard row ranges (``"shard_{lo}_{hi}"``), not worker ids:
    after an elastic replan the same rows may belong to a different id.

    **Compaction.**  Entries are split into a *light* part (the norm
    vector — one float per row) that is always kept, and a *heavy* part
    (the rounded/transposed sample copies — each as large as the shard
    itself) kept only while the pool fits ``budget_bytes``; when a save
    would overflow, the oldest heavy payloads are evicted first and the
    new one is skipped if it alone cannot fit.  Large ``K·N`` fits thus
    degrade to norm-only preloads instead of mirroring the dataset.

    Two modes: **directory-backed** (one ``.npz`` pair per key, written
    tmp-then-:func:`os.replace` so readers never see a torn entry;
    shareable across processes — the writer state is dropped on pickle,
    so the store still pickles freely into process-executor children,
    each of which lazily spawns its own writer) or **in-memory**
    (``directory=None``; effective on the serial/thread backends only,
    since a forked child's copy dies with it).

    ``save`` skips keys that already have a light entry — first writer
    wins, and replayed boots stay write-free.  :meth:`refresh` is the
    long-fit companion: a first-writer-wins re-save that builds its
    payload lazily, so keeping an entry warm past compaction costs
    nothing while the entry still exists.

    **Asynchronous writes.**  Directory-backed stores default to the
    same :class:`_DaemonWriter` the coordinator's snapshot store uses
    (``sync=None`` resolves exactly like :class:`CheckpointStore`):
    ``save`` runs the existence check and heavy-budget eviction inline,
    then hands the npz writes to the background writer, keeping worker
    boot and refresh cadence off the write+fsync cost.  Reads and
    :meth:`clear` flush first, so a same-process load never races a
    write.  Unlike coordinator snapshots a failed cache write is
    *swallowed* — counted in ``write_errors``, never raised — because a
    missing entry only costs a later boot time, and failing a healthy
    fit over a best-effort cache would invert the store's purpose.
    Operand payloads are per-fit-static, so deferring the write never
    snapshots a torn value.
    """

    #: always-kept operand names (small: O(rows) scalars)
    LIGHT_KEYS = ("x_norms",)
    #: budget-gated operand names (each O(shard) bytes)
    HEAVY_KEYS = ("x_rounded", "x_t")

    def __init__(self, directory: str | os.PathLike | None = None, *,
                 budget_bytes: int = 256 << 20, sync: bool | None = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.budget_bytes = int(budget_bytes)
        self.sync = (self.directory is None) if sync is None else bool(sync)
        self._light: dict[str, dict] = {}
        self._heavy: dict[str, dict] = {}
        #: keys whose write is queued but possibly not yet on disk —
        #: keeps save/refresh first-writer-wins within this process
        #: during the async in-flight window
        self._queued: set[str] = set()
        self._writer: _DaemonWriter | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_errors = 0

    def __getstate__(self):
        # threads and locks never cross a process boundary: a pickled
        # copy (process-executor child) starts with a fresh lazy writer
        # and an empty in-flight set — at worst it re-queues a write the
        # parent already has in flight, and tmp+replace makes that safe
        state = self.__dict__.copy()
        state["_writer"] = None
        state["_queued"] = set()
        return state

    def _writer_handle(self) -> _DaemonWriter:
        if self._writer is None:
            self._writer = _DaemonWriter("workercache-writer")
        return self._writer

    def flush(self) -> None:
        """Barrier: wait out queued cache writes (failures are counted
        in ``write_errors``, not raised — entries are best-effort)."""
        if self._writer is None:
            return
        try:
            self._writer.flush()
        except Exception:
            self.write_errors += 1

    # ------------------------------------------------------------------
    def _light_path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def _heavy_path(self, key: str) -> Path:
        return self.directory / f"{key}.heavy.npz"

    def _write_npz(self, path: Path, arrays: dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   prefix=path.stem + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez(f, **arrays)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    def _heavy_usage(self) -> list[tuple[float, Path | str, int]]:
        """Heavy entries as (age_rank, handle, nbytes), oldest first."""
        if self.directory is None:
            return [(i, key, sum(a.nbytes for a in arrs.values()))
                    for i, (key, arrs) in enumerate(self._heavy.items())]
        out = []
        for p in self.directory.glob("*.heavy.npz"):
            try:
                st = p.stat()
            except OSError:
                continue
            out.append((st.st_mtime, p, st.st_size))
        out.sort(key=lambda t: t[0])
        return out

    def _evict_for(self, nbytes: int) -> bool:
        """Evict oldest heavy payloads until ``nbytes`` more fit;
        False when the new payload alone exceeds the budget."""
        if nbytes > self.budget_bytes:
            return False
        # the budget decision reads on-disk usage, so queued writes
        # must land first — heavy admission is the one save path that
        # synchronizes; light-only saves and refresh no-ops never wait
        self.flush()
        usage = self._heavy_usage()
        used = sum(n for _, _, n in usage)
        for _, handle, n in usage:
            if used + nbytes <= self.budget_bytes:
                break
            if self.directory is None:
                self._heavy.pop(handle, None)
            else:
                Path(handle).unlink(missing_ok=True)
            self.evictions += 1
            used -= n
        return used + nbytes <= self.budget_bytes

    # ------------------------------------------------------------------
    def save(self, key: str, operands: dict) -> bool:
        """Checkpoint one shard's exported operands (first writer wins).

        Returns True when a new entry was written, False when the key
        already existed or ``operands`` had nothing to keep.
        """
        if not operands:
            return False
        light = {k: operands[k] for k in self.LIGHT_KEYS if k in operands}
        heavy = {k: operands[k] for k in self.HEAVY_KEYS if k in operands}
        if not light:
            return False
        if self._has_entry(key):
            return False
        heavy_bytes = sum(a.nbytes for a in heavy.values())
        keep_heavy = heavy and self._evict_for(heavy_bytes)
        if self.directory is None:
            self._light[key] = {k: np.array(v) for k, v in light.items()}
            if keep_heavy:
                self._heavy[key] = {k: np.array(v)
                                    for k, v in heavy.items()}
            return True

        def write():
            # light last: its presence is the entry-exists marker, so a
            # reader that sees it knows the heavy write already landed
            # (or was compacted) — same order the sync path always used
            if keep_heavy:
                self._write_npz(self._heavy_path(key), heavy)
            self._write_npz(self._light_path(key), light)

        if self.sync:
            write()
            return True
        self._queued.add(key)
        try:
            self._writer_handle().submit(write)
        except Exception:
            self.write_errors += 1
        return True

    def _has_entry(self, key: str) -> bool:
        if self.directory is None:
            return key in self._light
        return key in self._queued or self._light_path(key).exists()

    def refresh(self, key: str, payload_fn) -> bool:
        """First-writer-wins re-save with a lazily built payload.

        While the key's light entry exists (or its write is still in
        flight) this is a pure existence check — ``payload_fn`` is
        never called.  Once compaction (or an operator wiping the
        directory) dropped the entry, ``payload_fn()`` supplies fresh
        operands and the entry is re-saved through :meth:`save`.
        Returns True when a re-save was written/queued.
        """
        if self._has_entry(key):
            return False
        return self.save(key, payload_fn())

    def load(self, key: str) -> dict | None:
        """The shard's preload dict, or None (counted as hit/miss).

        Heavy payloads ride along when still resident; a compacted
        entry degrades to its light part.
        """
        if self.directory is None:
            light = self._light.get(key)
            if light is None:
                self.misses += 1
                return None
            self.hits += 1
            out = dict(light)
            out.update(self._heavy.get(key, {}))
            return out
        self.flush()          # a same-process load never races a write
        try:
            with np.load(self._light_path(key)) as z:
                out = {k: z[k] for k in z.files}
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            with np.load(self._heavy_path(key)) as z:
                out.update({k: z[k] for k in z.files})
        except (OSError, ValueError):
            pass                      # compacted (or torn) — light only
        self.hits += 1
        return out

    def clear(self) -> None:
        """Drop every entry (call between fits — operands are per-x)."""
        self._light.clear()
        self._heavy.clear()
        self._queued.clear()
        if self.directory is not None:
            self.flush()      # no in-flight write survives to recreate
            for pattern in ("*.npz", "*.tmp"):
                for p in self.directory.glob(pattern):
                    p.unlink(missing_ok=True)
