"""Checkpoint/restart state store for the sharded coordinator.

Snapshots are pickled blobs of the coordinator's whole per-iteration
state — centroids, iteration index, convergence monitor, simulated
clock, counters — taken every ``checkpoint_every`` iterations.  After a
worker loss the coordinator restores the newest snapshot and replays
from there; because the Lloyd step is deterministic given ``(x, y)``
(and the worker SEU streams are keyed by iteration, not history), the
replayed trajectory is bit-identical to an uninterrupted run.

Two storage modes behind one API:

* **in-memory** (default): snapshots live as pickled bytes inside the
  store object.  Pickling is kept even here so a restore always yields
  fresh objects — the live fit state can never alias a snapshot.
* **directory-backed** (``directory=...``): snapshots persist as
  ``ckpt_<iteration>.pkl`` files written atomically — a uniquely-named
  tmp file is written, fsynced, then ``os.replace``\\ d into place — so
  a crash mid-write never corrupts the newest restorable state.  A
  crash *between* write and replace can still strand the tmp file, so
  stray ``*.tmp`` files are swept on construction and by :meth:`clear`.
  The sweep spares tmp files younger than ``TMP_SWEEP_AGE_S`` — unique
  names stop writers colliding with *each other*, but only the age
  guard stops a glob-based sweep from unlinking a concurrent writer's
  live tmp (a healthy save holds its tmp for milliseconds).  Only the
  ``keep`` newest files are retained.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Iteration-keyed snapshot store (in-memory or directory-backed)."""

    #: tmp files younger than this are presumed to be a concurrent
    #: writer's live tmp and spared by the sweep; stranded files age
    #: past it and get collected by the next construction / clear()
    TMP_SWEEP_AGE_S = 60.0

    def __init__(self, directory: str | os.PathLike | None = None, *,
                 keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = int(keep)
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._sweep_tmp()
        self._mem: dict[int, bytes] = {}

    # ------------------------------------------------------------------
    def _path(self, iteration: int) -> Path:
        return self.directory / f"ckpt_{iteration:08d}.pkl"

    def _sweep_tmp(self) -> None:
        """Remove tmp files stranded by a crash between write and
        replace (they are unreachable by any restore path, but neither
        pruning nor the iteration glob would ever touch them).  Recent
        tmp files are spared — they may belong to a concurrent writer
        mid-save on a shared directory."""
        cutoff = time.time() - self.TMP_SWEEP_AGE_S
        for p in self.directory.glob("*.tmp"):
            try:
                if p.stat().st_mtime <= cutoff:
                    p.unlink(missing_ok=True)
            except OSError:
                continue

    def save(self, iteration: int, state: dict) -> None:
        """Snapshot ``state`` under ``iteration`` (atomic on disk)."""
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        if self.directory is None:
            self._mem[iteration] = blob
            for it in sorted(self._mem)[:-self.keep]:
                del self._mem[it]
            return
        # unique tmp name (two writers on one directory can never step
        # on each other's half-written blob) + fsync before the rename,
        # so the renamed file is durably the full snapshot
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   prefix=f"ckpt_{iteration:08d}.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self._path(iteration))
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        for it in self.iterations[:-self.keep]:
            self._path(it).unlink(missing_ok=True)

    @property
    def iterations(self) -> list[int]:
        """Checkpointed iterations, oldest first."""
        if self.directory is None:
            return sorted(self._mem)
        its = []
        for p in self.directory.glob("ckpt_*.pkl"):
            try:
                its.append(int(p.stem.split("_", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(its)

    def load_latest(self) -> tuple[int, dict] | None:
        """Newest ``(iteration, state)`` snapshot, or None when empty.

        The returned state is freshly unpickled — mutating it never
        touches the stored snapshot.
        """
        its = self.iterations
        if not its:
            return None
        it = its[-1]
        blob = (self._mem[it] if self.directory is None
                else self._path(it).read_bytes())
        return it, pickle.loads(blob)

    def clear(self) -> None:
        self._mem.clear()
        if self.directory is not None:
            for it in self.iterations:
                self._path(it).unlink(missing_ok=True)
            self._sweep_tmp()
