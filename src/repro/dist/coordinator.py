"""The reduce half: map-reduce Lloyd iterations over shard workers.

:class:`Coordinator` owns the distributed fit.  Per iteration it

1. broadcasts the centroids to every worker (one ``run_round`` through
   the configured executor, with any fault directives for the round);
2. gathers per-shard labels / min distances / fused partial sums, in
   worker order;
3. **merges with sequential-continuation semantics**: the shard feeds
   replay through one :class:`StreamedAccumulator` in shard order, so
   the merged sums carry exactly the bits a single-worker fused pass
   over the full sample matrix would have produced — the association
   never depends on the shard count or executor;
4. runs an **ABFT checksum test** over the workers' own partials: the
   worker-order sum of the per-shard partials must match the merged
   sums within a float64 re-association threshold.  A corrupted partial
   (injected bit flip, or a worker computing garbage) trips the test;
   the offender is localized by an exact per-shard recompute and the
   event is counted/traced.  The authoritative merged sums are computed
   coordinator-side, so a detected corruption never pollutes the fit —
   detection + containment, the paper's ABFT philosophy one level up;
5. applies the same :class:`UpdateStage` / convergence step the
   single-device estimator runs (DMR included), so sharded fits are
   bit-identical to ``FTKMeans.fit`` with ``n_workers=1``.

**Checkpoint/restart.**  Every ``checkpoint_every`` iterations the
coordinator snapshots ``(iteration, centroids, convergence monitor,
simulated clock, counters)`` into a :class:`CheckpointStore`.  When a
worker dies — a :class:`WorkerCrash` from the executor, whether injected
in-process or a real child-process death — the coordinator restores the
newest snapshot, restarts the executor (all workers rebuild from the
factory) and replays.  The Lloyd step is deterministic given ``(x, y)``
and worker SEU streams are keyed by ``(seed, worker, iteration)``, so
the replayed trajectory — and the final centroids — are bit-identical
to an uninterrupted run.

**Double-buffered rounds.**  On backends whose workers genuinely
compute between a send and a collect (thread, process), the coordinator
pipelines: as soon as round *t*'s merge produces the new centroids it
broadcasts round *t+1*, then performs round *t*'s off-critical tail —
the ABFT partial check, inertia/convergence bookkeeping and the
checkpoint snapshot — while the workers are already computing.  Only
the gather → sequential-continuation merge → update divide stays on the
critical path.  The pipeline computes exactly the rounds the sequential
loop would (the one speculative round in flight when convergence lands
is collected and discarded), so results stay bit-identical; it arms
only on fault-free fits (no ``worker_faults``), keeping every
fault-injection schedule's semantics byte-for-byte unchanged, and any
*real* worker loss in an overlapped round surfaces at collect time and
runs the ordinary recovery path.

**Reduce topologies.**  ``cfg.reduce_topology`` picks how step 3's
sequential-continuation merge is *scheduled* — never what it computes
(all topologies produce bit-identical sums, proven by the hypothesis
suites in ``tests/distributed/test_reduce_topology.py``):

* ``'star'`` — the legacy shape above: collect every result, then
  re-feed all shards through the coordinator's accumulator.  The
  coordinator is busy for the whole merge *after* the slowest worker
  answered.
* ``'stream'`` — results are consumed in **arrival** order
  (``collect_round_stream``) but committed strictly in **shard**
  order: as soon as the next uncommitted shard's result is in, its
  gather writes and merge re-feed run while later workers still
  compute.  Only the commit remainder past the last arrival occupies
  the coordinator.
* ``'tree'`` — workers combine partial fold states pairwise in
  continuation order (:func:`repro.dist.plan.combine_schedule`): each
  combine seeds the owner's accumulator with the prefix state and
  folds the next row range in order, so ``ceil(log2 W)`` message
  exchanges replace ``W`` coordinator-side merge segments.  The
  coordinator's reduce work shrinks to the gather, the final-state
  adopt and an inline pre-update ABFT checksum (on alarm it falls
  back to the authoritative star re-feed and the standard per-shard
  localization).
* ``'auto'`` (default) — ``'tree'`` at 8+ workers, ``'stream'`` at
  3–7, ``'star'`` below, resolved per round against the current
  plan's effective worker count.

``DistFitResult.reduce_busy_s`` reports the coordinator occupancy of
the chosen topology: reduce work counts only insofar as it extends
past the round's last result arrival (work hidden under a still-
computing worker is free).

**Failure detection and elastic membership.**  ``round_timeout`` arms
the executors' round deadline: a worker that has not answered in time
is terminated and surfaces as a typed :class:`WorkerStall` (counted in
``PerfCounters.worker_stalls``) instead of hanging the fit forever —
the stalled-but-alive failure mode a blocking ``recv()`` could never
escape.  ``round_timeout="auto"`` sizes the deadline adaptively:
before each round the executor deadline is re-armed to
``ADAPTIVE_MULT`` × the median of the last ``ADAPTIVE_WINDOW`` observed
round times (floored at ``ADAPTIVE_FLOOR_S``); until
``ADAPTIVE_MIN_SAMPLES`` rounds have been observed no deadline is
armed, so a cold start can never be misread as a stall.  With ``elastic=True`` the coordinator recovers by *shrinking*:
it asks the :class:`ShardPlan` to re-plan the lost rows onto the
surviving workers (boundaries stay on the same GEMM-unit grid, shards
stay in row order), restores the newest checkpoint and continues with
fewer workers — no respawn of the dead.  Because per-row outputs are
shard-geometry-independent and the merge is a sequential continuation
in row order, the post-shrink trajectory stays bit-identical to
``n_workers=1`` for **any membership history**.  The same
:meth:`ShardPlan.replan` re-expands onto a larger member set when a
replacement spawns.  With ``elastic=False`` (default) recovery respawns
the full original worker set, as before.

**Self-healing membership.**  ``target_workers`` / ``hot_spares`` /
``heartbeat_interval`` hand membership to a
:class:`~repro.dist.fleet.FleetManager`: between-round heartbeats catch
a wedged worker well before the round deadline would; a loss with
enough ready spares is healed by *promotion in place* (only the dead
ids rebuild — survivors keep running with their warm caches, the plan
never changes); otherwise the fit shrinks onto the survivors exactly
like the elastic path and *re-expands* back to the target size at a
later round boundary, replacements reusing the missing worker ids so a
full regrow restores the original shard plan.  Every transition
recovers through the same checkpoint-restore machinery, so the final
centroids stay bit-identical to ``n_workers=1`` regardless of the
membership history.  When the checkpoint store is directory-backed,
workers additionally checkpoint their engine operand caches into a
shard-keyed :class:`~repro.dist.checkpoint.WorkerCacheStore`, letting
replacements skip the per-fit invariant rebuild at boot (a pure
boot-time optimisation — never a bit change).
"""

from __future__ import annotations

import pickle
import sys
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from functools import partial

import numpy as np

from repro.core.accumulate import StreamedAccumulator
from repro.core.config import TRANSPORTS, KMeansConfig
from repro.core.convergence import ConvergenceMonitor
from repro.core.engine import resolve_operand_budget, transpose_blocked
from repro.core.update import UpdateStage
from repro.core.variants import _resolve_tile, build_assignment
from repro.dist.checkpoint import CheckpointStore, WorkerCacheStore
from repro.dist.executors import BaseExecutor, make_executor
from repro.dist.faults import WorkerCrash, WorkerFaultInjector
from repro.dist.fleet import FleetManager
from repro.dist.plan import ShardPlan, combine_schedule
from repro.dist.shm import ShmSession
from repro.dist.worker import RoundResult, build_worker
from repro.gpusim.clock import SimClock
from repro.gpusim.counters import PerfCounters
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import active_tracer

__all__ = ["Coordinator", "DistFitResult", "ReduceOccupancy",
           "PARTIAL_CHECK_RTOL"]

#: relative threshold of the merged-partials checksum test.  Clean runs
#: differ from the sequential merge only by float64 re-association
#: (~1e-12 relative at 1e6 samples); flips in high mantissa / exponent
#: bits land far above this.  Low-order mantissa flips escape — the same
#: sub-threshold philosophy as the SEU detection thresholds.
PARTIAL_CHECK_RTOL = 1e-8


@dataclass
class DistFitResult:
    """Everything a sharded fit produced (owned arrays throughout)."""

    centroids: np.ndarray
    labels: np.ndarray
    best: np.ndarray
    counts: np.ndarray
    inertia: float
    inertia_history: list[float]
    n_iter: int
    converged: bool
    counters: PerfCounters
    clock: SimClock
    recoveries: int
    trace: list[dict] = field(default_factory=list)
    plan: ShardPlan | None = None        # final plan (post-shrink)
    executor: str = "serial"
    crash_recoveries: int = 0            # workers lost to death
    stall_recoveries: int = 0            # workers lost to the deadline
    shrinks: int = 0                     # elastic re-plans performed
    checkpoint_save_s: float = 0.0       # in-loop checkpoint save cost
    checkpoint_flush_s: float = 0.0      # end-of-fit async flush barrier
    promotions: int = 0                  # dead ids healed by hot spares
    expands: int = 0                     # workers regrown toward target
    heartbeat_failures: int = 0          # losses caught by heartbeat
    reduce_busy_s: float = 0.0           # coordinator reduce occupancy
    reduce_topology: str = "star"        # resolved topology (last round)
    transport: str = "pipe"              # resolved round-loop transport
    broadcast_bytes: int = 0             # pipe bytes coordinator->workers
    gather_bytes: int = 0                # pipe bytes workers->coordinator
    boot_stats: dict = field(default_factory=dict)  # boot walls by kind
    metrics: dict = field(default_factory=dict)  # per-fit registry delta


class ReduceOccupancy:
    """Wall seconds of reduce work on the coordinator's critical path.

    A reduce segment costs occupancy only insofar as it extends past
    the round's **last result arrival** — commit work done while
    workers still compute hides under the slowest worker and is free.
    Per round: :meth:`begin_round`, :meth:`arrival` at each result
    arrival, :meth:`segment` after each coordinator-side reduce
    segment; :meth:`end_round` folds
    ``sum(max(0, t1 - max(t0, t_last)))`` over the round's segments
    into :attr:`busy_s`.  Blocking waits (collect, combine round
    trips) are never recorded — they are worker time, not coordinator
    work.
    """

    def __init__(self):
        self.busy_s = 0.0
        self._segments: list[tuple[float, float]] = []
        self._t_last = 0.0

    def begin_round(self) -> None:
        self._segments = []
        self._t_last = 0.0

    def arrival(self) -> None:
        self._t_last = time.monotonic()

    def segment(self, t0: float) -> None:
        self._segments.append((t0, time.monotonic()))

    def end_round(self) -> None:
        t_last = self._t_last
        self.busy_s += sum(max(0.0, t1 - max(t0, t_last))
                           for t0, t1 in self._segments)


def _boot_stats(events: list[dict]) -> dict:
    """Aggregate a fit's boot events by kind (count / total / mean / max).

    ``events`` are the executor's per-handshake records ({"kind",
    "worker_id", "wall_s"}); the aggregate is what rides on
    :attr:`DistFitResult.boot_stats` and into the bench records, where
    the spare-promote / shm-attach win over a cold spawn is visible.
    """
    stats: dict[str, dict] = {}
    for ev in events:
        s = stats.setdefault(ev["kind"],
                             {"count": 0, "total_s": 0.0, "max_s": 0.0})
        s["count"] += 1
        s["total_s"] += float(ev["wall_s"])
        s["max_s"] = max(s["max_s"], float(ev["wall_s"]))
    for s in stats.values():
        s["mean_s"] = s["total_s"] / s["count"]
    return stats


class Coordinator:
    """Sharded map-reduce Lloyd driver with checkpoint/restart.

    Parameters
    ----------
    cfg : KMeansConfig
        The fit configuration (``mode='fast'``; ``cfg.n_workers`` sets
        the requested shard count unless an explicit ``plan`` is given).
    executor : str or BaseExecutor, optional
        Backend name ('serial' / 'thread' / 'process') or a prebuilt
        executor; defaults to ``cfg.executor``.
    plan : ShardPlan, optional
        Explicit shard plan (tests); defaults to a unit-aligned balanced
        plan over ``cfg.n_workers``.
    checkpoint : CheckpointStore, optional
        Snapshot store; defaults to a fresh in-memory store.
    checkpoint_every : int, optional
        Snapshot period in iterations; defaults to ``cfg.checkpoint_every``
        (0 = only the implicit initial state, i.e. recovery restarts the
        fit from iteration 0).
    worker_faults : WorkerFaultInjector, optional
        Worker-level fault source for the rounds.
    max_recoveries : int
        Crash-recovery budget; one more crash raises the
        :class:`WorkerCrash` to the caller.
    partial_tol : float
        Relative threshold of the merged-partials checksum test.
    elastic : bool, optional
        Recover from a worker loss by re-sharding onto the survivors
        instead of respawning the full set; defaults to ``cfg.elastic``.
    round_timeout : float or "auto", optional
        Seconds each executor round may take before unanswered workers
        are classified stalled (:class:`WorkerStall`); defaults to
        ``cfg.round_timeout`` (None = no deadline, the legacy blocking
        behaviour).  ``"auto"`` re-arms the deadline each round from a
        trailing median of observed round times (see the class
        ``ADAPTIVE_*`` attributes).
    overlap_rounds : bool
        Allow the double-buffered round pipeline on executors that
        support it (default True; fault-injecting fits always run the
        sequential loop).
    target_workers : int, optional
        Fleet size the :class:`FleetManager` steers back toward after
        losses (promotion / re-expansion); defaults to
        ``cfg.target_workers``.  None (and ``hot_spares=0``) leaves
        membership to the legacy elastic/restart policy.
    hot_spares : int, optional
        Pre-provisioned replacement capacity (see
        :meth:`BaseExecutor.prewarm_spares`); defaults to
        ``cfg.hot_spares``.
    heartbeat_interval : float, optional
        Seconds between between-round liveness sweeps (None disables);
        defaults to ``cfg.heartbeat_interval``.
    spawn_hook : callable, optional
        ``spawn_hook(n_needed) -> int | None`` — budget/veto on booting
        replacement workers during re-expansion (promotion of
        already-booted spares never consults it).
    event_hook : callable, optional
        Deprecated dict-callable event log, forwarded to the
        :class:`FleetManager`, which subscribes it to the event bus
        through the backwards-compatible shim (see
        :class:`repro.dist.fleet.FleetManager`).
    event_bus : :class:`repro.obs.events.EventBus`, optional
        Bus for the fit's structured events: fleet membership events
        (source ``"fleet"``), coordinator ``recovery`` / ``restore`` /
        ``re_expand`` events (source ``"coordinator"``) and checkpoint
        ``checkpoint_save`` / ``checkpoint_flush`` events (source
        ``"checkpoint"``).  A private bus is created when omitted;
        either way it is exposed as :attr:`event_bus`.
    tracer : :class:`repro.obs.trace.TraceRecorder`, optional
        Span recorder for the coordinator-side stage taxonomy ``fit ->
        round -> {broadcast, compute, gather, merge, update,
        abft_check, checkpoint}`` (see ``docs/observability.md``).  Off
        by default; when enabled it records names and clocks only —
        numerics are untouched, so traced fits stay bit-identical.
    worker_cache : WorkerCacheStore, optional
        Shard-keyed store for the workers' engine operand caches; by
        default derived from a directory-backed checkpoint store (a
        ``worker_cache/`` subdirectory), absent otherwise.
    transport : str, optional
        Round-loop bulk-payload transport ('auto' / 'pipe' / 'shm');
        defaults to ``cfg.transport``.  Resolved per fit against the
        executor backend: 'shm' (the zero-copy shared-memory plane,
        :mod:`repro.dist.shm`) only ever engages on the process
        executor; in-process backends always run 'pipe'.  Under 'auto'
        a failed segment creation falls back to 'pipe' with a warning;
        an explicit 'shm' lets the failure raise.
    """

    #: adaptive deadline = ADAPTIVE_MULT x trailing-median round time
    ADAPTIVE_MULT = 8.0
    #: never arm an adaptive deadline tighter than this (seconds)
    ADAPTIVE_FLOOR_S = 0.5
    #: trailing window of observed round times fed to the median
    ADAPTIVE_WINDOW = 8
    #: observed rounds required before any adaptive deadline is armed
    ADAPTIVE_MIN_SAMPLES = 2

    #: recv bound (seconds) for draining a speculative round whose
    #: results are being discarded (convergence landed first) when no
    #: round deadline is configured — a worker that wedges during that
    #: round must not hang a fit whose result already exists
    DISCARD_TIMEOUT = 5.0

    def __init__(self, cfg: KMeansConfig, *,
                 executor: str | BaseExecutor | None = None,
                 plan: ShardPlan | None = None,
                 checkpoint: CheckpointStore | None = None,
                 checkpoint_every: int | None = None,
                 worker_faults: WorkerFaultInjector | None = None,
                 max_recoveries: int = 8,
                 partial_tol: float = PARTIAL_CHECK_RTOL,
                 elastic: bool | None = None,
                 round_timeout: float | str | None = None,
                 overlap_rounds: bool = True,
                 target_workers: int | None = None,
                 hot_spares: int | None = None,
                 heartbeat_interval: float | None = None,
                 spawn_hook=None, event_hook=None,
                 event_bus: EventBus | None = None, tracer=None,
                 worker_cache: WorkerCacheStore | None = None,
                 transport: str | None = None):
        if cfg.mode != "fast":
            raise ValueError("sharded execution requires mode='fast'")
        self.cfg = cfg
        executor = executor if executor is not None else cfg.executor
        self.executor = (executor if isinstance(executor, BaseExecutor)
                         else make_executor(executor))
        self.plan = plan
        self.store = checkpoint if checkpoint is not None else CheckpointStore()
        self.checkpoint_every = (cfg.checkpoint_every
                                 if checkpoint_every is None
                                 else int(checkpoint_every))
        self.faults = worker_faults
        self.max_recoveries = int(max_recoveries)
        self.partial_tol = float(partial_tol)
        self.elastic = bool(cfg.elastic if elastic is None else elastic)
        self.overlap_rounds = bool(overlap_rounds)
        round_timeout = (cfg.round_timeout if round_timeout is None
                         else round_timeout)
        self.adaptive_timeout = round_timeout == "auto"
        if self.adaptive_timeout:
            round_timeout = None  # armed per round from observed times
        if round_timeout is not None and round_timeout <= 0:
            raise ValueError(
                f"round_timeout must be > 0, got {round_timeout}")
        self.round_timeout = (None if round_timeout is None
                              else float(round_timeout))
        self.executor.round_timeout = self.round_timeout
        self.transport = cfg.transport if transport is None else transport
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"choose from {TRANSPORTS}")
        self.event_bus = event_bus if event_bus is not None else EventBus()
        self.tracer = tracer
        self.fleet = FleetManager(
            target_workers=(cfg.target_workers if target_workers is None
                            else target_workers),
            hot_spares=(cfg.hot_spares if hot_spares is None
                        else hot_spares),
            heartbeat_interval=(cfg.heartbeat_interval
                                if heartbeat_interval is None
                                else heartbeat_interval),
            spawn_hook=spawn_hook, event_hook=event_hook,
            event_bus=self.event_bus)
        # the snapshot store and the executor publish on the fit's bus
        # unless pre-wired to one of their own
        if getattr(self.store, "event_bus", None) is None:
            self.store.event_bus = self.event_bus
        if getattr(self.executor, "event_bus", None) is None:
            self.executor.event_bus = self.event_bus
        if worker_cache is None and self.store.directory is not None:
            # inherit the snapshot store's sync mode: one knob governs
            # whether any fit-path write may ride the daemon writer
            worker_cache = WorkerCacheStore(
                self.store.directory / "worker_cache",
                sync=self.store.sync)
        self.worker_cache = worker_cache

    # ------------------------------------------------------------------
    def _worker_cfg(self, m: int, k: int) -> KMeansConfig:
        """The per-worker config: tile='auto' resolved at the *full*
        problem shape, so every shard runs the same kernel geometry."""
        cfg = self.cfg
        if cfg.tile == "auto":
            return replace(cfg, tile=_resolve_tile(cfg, m, k))
        return cfg

    @staticmethod
    def _snapshot(iteration: int, y, monitor, clock, counters) -> dict:
        return {"iteration": iteration, "y": y.copy(), "monitor": monitor,
                "clock": clock, "counters": counters}

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y0: np.ndarray, *,
            sample_weight: np.ndarray | None = None) -> DistFitResult:
        """Run the sharded Lloyd loop to convergence (or ``max_iter``).

        ``x`` and ``y0`` must already be validated in the kernel dtype
        (the estimator does this); ``sample_weight`` is float64 per
        sample or None.
        """
        cfg = self.cfg
        # resolved once per fit: the real recorder when tracing is on,
        # a shared no-op otherwise — span sites below cost nothing when
        # tracing is off (and never touch a disabled recorder at all)
        tr = active_tracer(self.tracer)
        bus = self.event_bus
        m, k = x.shape
        n_clusters = cfg.n_clusters
        worker_cfg = self._worker_cfg(m, k)
        # one probe kernel pins the engine's GEMM row unit for this
        # geometry; shard boundaries align to it (the bit-identity key).
        # A bare unit_rows_for_tile(worker_cfg.tile) is not enough:
        # variant constructors substitute dtype/scheme-specific default
        # tiles when cfg.tile is None, and the unit must match the tile
        # the workers' engines will actually run.
        probe = build_assignment(worker_cfg, m, k, np.random.default_rng(0))
        plan = self.plan or ShardPlan.build(m, cfg.n_workers,
                                            probe.engine.unit_rows)
        base_seed = cfg.seed if cfg.seed is not None else 0

        # tree rounds need the workers' fold states on every result;
        # membership can only shrink below (or regrow back to) the
        # initial plan, so the initial resolution decides once per fit
        # whether any round of this fit can be a tree round
        export_state = (cfg.reduce_topology == "tree"
                        or (cfg.reduce_topology == "auto"
                            and plan.n_workers >= 8))
        # refresh the shard operand-cache entry once per recovery
        # window, so a replacement booting after a *late* crash still
        # preloads even if compaction evicted the boot-time entry
        cache_refresh_every = (self.checkpoint_every
                               if self.worker_cache is not None else 0)

        # transport resolution: the shared-memory plane only ever
        # engages on the process executor (the in-process backends have
        # no serialization to eliminate); 'auto' degrades to 'pipe'
        # with a warning if segment creation fails, explicit 'shm' lets
        # the failure surface
        transport = ("shm" if (getattr(self.executor, "name", "custom")
                               == "process"
                               and self.transport in ("auto", "shm"))
                     else "pipe")
        shm_session = None
        if transport == "shm":
            try:
                shm_session = ShmSession(x, sample_weight)
            except OSError as exc:
                if self.transport == "shm":
                    raise
                warnings.warn(
                    f"shared-memory transport unavailable "
                    f"({exc}); falling back to the pipe transport",
                    RuntimeWarning, stacklevel=2)
                transport = "pipe"

        # functools.partial of a module-level function: picklable, so
        # the process executor can ship it under any start method.  The
        # plan is baked in, so every membership change builds a fresh
        # factory for the executor restart.  Under shm the factory
        # carries segment *refs* instead of the arrays — booting a
        # replacement (cold, spare promote, or re-expand) pickles a few
        # hundred bytes and attaches the shard as a view in O(1).
        def make_factory(p: ShardPlan):
            if shm_session is not None:
                shm_session.make_slots(p, n_clusters, k, cfg.dtype,
                                       export_state)
                return partial(build_worker, plan=p, cfg=worker_cfg,
                               n_clusters=n_clusters,
                               data_ref=shm_session.data_ref,
                               weight_ref=shm_session.weight_ref,
                               base_seed=base_seed,
                               cache_store=self.worker_cache,
                               cache_refresh_every=cache_refresh_every,
                               export_state=export_state)
            return partial(build_worker, x=x, plan=p, cfg=worker_cfg,
                           n_clusters=n_clusters,
                           sample_weight=sample_weight,
                           base_seed=base_seed,
                           cache_store=self.worker_cache,
                           cache_refresh_every=cache_refresh_every,
                           export_state=export_state)

        factory = make_factory(plan)

        updater = UpdateStage(cfg.device, cfg.dtype, dmr=cfg.dmr_update,
                              update_mode=cfg.resolved_update_mode())
        merge_acc = StreamedAccumulator(n_clusters, k)
        merge_acc.bind_weights(sample_weight)
        # merge-operand hoist: one transposed copy of x lets every
        # round's sequential-continuation re-feed read contiguous
        # feature rows instead of re-transposing all of x (identical
        # bits; same budget policy as the engine's operand caches).
        # The same copy serves the update stage's DMR duplicate
        # re-accumulation, which streams the full x once per iteration.
        chunk_budget = (cfg.chunk_bytes if cfg.chunk_bytes is not None
                        else cfg.device.fastpath_chunk_bytes())
        if x.nbytes <= resolve_operand_budget(cfg.operand_cache,
                                              chunk_budget):
            xt = transpose_blocked(x)
            merge_acc.bind_source_t(xt)
            updater.bind_source_t(x, xt)
        labels = np.empty(m, dtype=np.int64)
        best = np.empty(m, dtype=cfg.dtype)

        y = y0.astype(cfg.dtype) if y0.dtype != cfg.dtype else y0.copy()
        monitor = ConvergenceMonitor(cfg.tol)
        clock = SimClock()
        counters = PerfCounters()
        trace: list[dict] = []
        recoveries = 0
        crash_workers_lost = 0
        stall_workers_lost = 0
        shrinks = 0
        heartbeat_failures = 0
        converged = False
        upd = None
        # coordinator-level fault events are one-shot: a checkpoint
        # restore must not erase them (the replayed rounds run clean),
        # so they tally outside the snapshots and apply to the final
        # counters once the loop ends
        faults_seen = {"stalls": 0, "injected": 0, "detected": 0,
                       "corrected": 0}
        # the implicit iteration-0 snapshot: recovery's floor when no
        # periodic checkpoint exists yet
        initial_blob = pickle.dumps(
            self._snapshot(0, y, monitor, clock, counters),
            protocol=pickle.HIGHEST_PROTOCOL)
        # a reused store (e.g. a checkpoint_dir shared across fits) must
        # not leak a previous fit's snapshots into this one's recovery
        self.store.clear()
        if self.worker_cache is not None:
            # operand caches are pure functions of this fit's x — a
            # previous fit's entries must never be adopted
            self.worker_cache.clear()
        ckpt_save_s = 0.0
        ckpt_flush_s = 0.0
        if self.checkpoint_every:
            t0 = time.perf_counter()
            self.store.save(0, self._snapshot(0, y, monitor, clock, counters))
            ckpt_save_s += time.perf_counter() - t0

        # the double-buffered round pipeline: only on backends whose
        # workers compute between send and collect, and only on
        # fault-free fits — an injected fault schedule must see exactly
        # the sequential loop's rounds (a converged fit never draws the
        # next round's directives)
        overlap = (self.overlap_rounds and self.faults is None
                   and getattr(self.executor, "supports_overlap", False))
        round_times: deque[float] = deque(maxlen=self.ADAPTIVE_WINDOW)
        occ = ReduceOccupancy()
        # re-resolved per round against the plan the round ran on (an
        # elastic shrink can cross an 'auto' threshold mid-fit); this
        # initial value only seeds the result field for 0-round fits
        topology = cfg.resolved_reduce_topology(plan.n_workers)

        # the fit span brackets the whole round loop including the
        # shutdown/flush tail; opened by hand (not ``with``) so the
        # 200-line loop below keeps its indentation — closed in the
        # ``finally`` underneath the flush barrier
        fit_span = tr.span("fit", m=int(m), n_features=int(k),
                           n_workers=int(plan.n_workers))
        fit_span.__enter__()
        self.fleet.attach(self.executor, plan)
        if hasattr(self.executor, "reset_transport_stats"):
            self.executor.reset_transport_stats()
        self.executor.shm_session = shm_session
        self.executor.start(factory, plan.worker_ids)
        n_iter = 0
        # the round in flight: (iteration, directives, send time, plan
        # it was sent under) — membership may change at a later round
        # boundary, and the gather must use the plan the round ran on
        pending: tuple[int, dict, float, ShardPlan] | None = None
        try:
            it = 1
            while it <= cfg.max_iter:
                if pending is None:
                    self._arm_deadline(round_times)
                    directives = (self.faults.directives_for_round(
                        it, plan.worker_ids)
                        if self.faults is not None else {})
                    t_send = time.monotonic()
                    with tr.span("broadcast", iteration=int(it)) as sp:
                        b0 = getattr(self.executor, "broadcast_bytes", 0)
                        self.executor.send_round(y, it, directives)
                        if sp is not None:
                            sp.meta["payload_bytes"] = (
                                getattr(self.executor,
                                        "broadcast_bytes", 0) - b0)
                    pending = (it, directives, t_send, plan)
                cur, directives, t_send, cur_plan = pending
                topology = cfg.resolved_reduce_topology(cur_plan.n_workers)
                occ.begin_round()
                g0 = getattr(self.executor, "gather_bytes", 0)
                abft_done = False
                round_span = None
                try:
                    if topology == "stream":
                        # arrival-ordered consume, shard-ordered commit:
                        # the per-shard merge spans nest under the
                        # compute span they genuinely overlap
                        with tr.span("compute", iteration=int(cur)):
                            results = self._stream_reduce(
                                cur_plan, x, labels, best, counters,
                                clock, merge_acc, occ, tr)
                        merged = merge_acc.packed()
                    else:
                        with tr.span("compute", iteration=int(cur)):
                            results = self.executor.collect_round()
                        occ.arrival()
                    # between-round liveness sweep (rate-limited): a
                    # worker that answered its round but wedged after
                    # is caught here, not one full round budget later.
                    # No round is in flight at this point — the next
                    # speculative send happens after the merge.
                    self.fleet.maybe_heartbeat(cur)
                    if topology != "stream":
                        # the ``round`` span covers the coordinator-side
                        # stages of an answered round (gather -> reduce
                        # -> update -> tail); stream rounds open it
                        # after the try — their gather/merge already
                        # streamed under the compute span
                        round_span = tr.span("round", iteration=int(cur))
                        round_span.__enter__()
                        # -- gather (worker order == sample order) -----
                        with tr.span("gather") as sp:
                            t0 = time.monotonic()
                            for res, shard in zip(results,
                                                  cur_plan.shards):
                                labels[shard.lo:shard.hi] = res.labels
                                best[shard.lo:shard.hi] = res.best
                                counters.merge(res.counters)
                            self._charge_round(clock, results)
                            occ.segment(t0)
                            if sp is not None:
                                sp.meta["payload_bytes"] = (
                                    getattr(self.executor,
                                            "gather_bytes", 0) - g0)
                        if topology == "tree":
                            # pairwise combine tree on the workers; a
                            # mid-combine death routes into the same
                            # recovery handler as a round death
                            merged = self._tree_reduce(
                                results, cur_plan, labels, merge_acc,
                                occ, tr, cur)
                            # inline pre-update checksum: the combine
                            # chain ran on workers, so its output is
                            # vetted before the update adopts it
                            counters.checksum_tests += 1
                            with tr.span("abft_check"):
                                t0 = time.monotonic()
                                merged = self._tree_check(
                                    merged, results, cur_plan, x,
                                    labels, sample_weight, merge_acc,
                                    faults_seen, trace, cur)
                                occ.segment(t0)
                            abft_done = True
                        else:
                            # -- sequential-continuation merge (star) --
                            with tr.span("merge"):
                                t0 = time.monotonic()
                                merge_acc.reset()
                                for shard in cur_plan.shards:
                                    merge_acc.feed(x[shard.slice],
                                                   labels[shard.slice])
                                merged = merge_acc.packed()
                                occ.segment(t0)
                except WorkerCrash as crash:
                    if round_span is not None:
                        round_span.__exit__(None, None, None)
                    pending = None
                    recoveries += 1
                    crash_workers_lost += len(crash.crashed_ids)
                    stall_workers_lost += len(crash.stalled_ids)
                    detector = getattr(crash, "detector", "deadline")
                    if detector == "heartbeat":
                        heartbeat_failures += 1
                    # explicit handle (not ``with``): the handler exits
                    # through both ``raise`` and ``continue``, so the
                    # span is closed on each path by hand
                    rec_span = tr.span("recovery",
                                       iteration=int(crash.iteration),
                                       detector=detector)
                    rec_span.__enter__()
                    bus.publish("recovery", source="coordinator",
                                iteration=int(crash.iteration),
                                detector=detector,
                                crashed=sorted(crash.crashed_ids),
                                stalled=sorted(crash.stalled_ids))
                    for wid in crash.crashed_ids:
                        trace.append({"kind": "crash", "worker": wid,
                                      "iteration": crash.iteration,
                                      "reason": crash.reason,
                                      "detector": detector})
                    for wid in crash.stalled_ids:
                        trace.append({"kind": "stall_timeout", "worker": wid,
                                      "iteration": crash.iteration,
                                      "detector": detector,
                                      "round_timeout":
                                          self.executor.round_timeout})
                    if recoveries > self.max_recoveries:
                        rec_span.__exit__(None, None, None)
                        raise
                    loaded = self.store.load_latest()
                    if loaded is None:
                        loaded = (0, pickle.loads(initial_blob))
                    restored_it, state = loaded
                    y = state["y"]
                    monitor = state["monitor"]
                    clock = state["clock"]
                    counters = state["counters"]
                    trace.append({"kind": "restore",
                                  "iteration": restored_it})
                    bus.publish("restore", source="coordinator",
                                iteration=int(restored_it))
                    # the adaptive deadline's history describes the
                    # pre-recovery membership: after an elastic shrink
                    # the surviving shards are larger and an honest
                    # round is legitimately slower, so the median must
                    # re-warm (deadline disarmed for the warm-up
                    # rounds) instead of condemning healthy survivors
                    # as phantom stalls round after round
                    if self.adaptive_timeout:
                        round_times.clear()
                        self.executor.round_timeout = None
                    survivors = tuple(w for w in plan.worker_ids
                                      if w not in crash.failed_ids)
                    if self.fleet.manages_membership and survivors:
                        # fleet recovery: promote ready spares onto the
                        # dead ids in place (plan unchanged, survivors
                        # keep running) or shrink onto the survivors
                        # now and re-expand at a later round boundary
                        plan, factory, action = self.fleet.recover(
                            plan, make_factory, crash)
                        if action == "promote":
                            trace.append({"kind": "promote",
                                          "iteration": crash.iteration,
                                          "promoted":
                                              sorted(crash.failed_ids),
                                          "n_workers": plan.n_workers})
                        else:
                            shrinks += 1
                            trace.append({"kind": "shrink",
                                          "iteration": crash.iteration,
                                          "lost": sorted(crash.failed_ids),
                                          "survivors":
                                              list(plan.worker_ids),
                                          "n_workers": plan.n_workers})
                    elif self.elastic and survivors:
                        # shrink: the lost rows re-shard onto the
                        # survivors (same unit grid, same row order, so
                        # the merge bits never move); only survivors
                        # respawn
                        plan = plan.replan(survivors)
                        factory = make_factory(plan)
                        shrinks += 1
                        trace.append({"kind": "shrink",
                                      "iteration": crash.iteration,
                                      "lost": sorted(crash.failed_ids),
                                      "survivors": list(plan.worker_ids),
                                      "n_workers": plan.n_workers})
                        self.executor.restart(factory, plan.worker_ids)
                    else:
                        # non-elastic (or every member lost at once):
                        # respawn the current membership in full
                        self.executor.restart()
                    it = restored_it + 1
                    rec_span.__exit__(None, None, None)
                    continue
                pending = None
                round_times.append(time.monotonic() - t_send)
                occ.end_round()
                if round_span is None:
                    # stream round: the reduce streamed under compute,
                    # so the round span brackets update + tail only.
                    # Under double buffering the *next* round's
                    # broadcast nests here, where it genuinely happens.
                    round_span = tr.span("round", iteration=int(cur))
                    round_span.__enter__()

                # -- the exact single-device update + convergence ------
                with tr.span("update"):
                    upd = updater.update(x, labels, best, y, counters,
                                         fused_sums=merged,
                                         sample_weight=sample_weight)
                for label, t in upd.timings:
                    clock.charge(label, t)
                y = upd.centroids

                # -- re-expansion: a shrunken fleet regrows toward the
                # target at this round boundary (no round in flight;
                # replacements reuse the missing ids, so a full regrow
                # restores the original plan).  Overlaps nothing —
                # membership changes are rare and must precede the next
                # broadcast.
                if self.fleet.manages_membership:
                    grown = self.fleet.maybe_expand(plan, make_factory)
                    if grown is not None:
                        plan, factory = grown
                        trace.append({"kind": "expand", "iteration": cur,
                                      "members": list(plan.worker_ids),
                                      "n_workers": plan.n_workers})
                        bus.publish("re_expand", source="coordinator",
                                    iteration=int(cur),
                                    members=list(plan.worker_ids))

                # -- double buffering: the next round's broadcast leaves
                # as soon as the centroids exist; everything below
                # overlaps the workers' compute.  The send is
                # speculative against convergence — at most one round is
                # computed and discarded, at the very end of the fit.
                if overlap and cur < cfg.max_iter:
                    self._arm_deadline(round_times)
                    t_send = time.monotonic()
                    with tr.span("broadcast", iteration=int(cur + 1)) as sp:
                        b0 = getattr(self.executor, "broadcast_bytes", 0)
                        self.executor.send_round(y, cur + 1, {})
                        if sp is not None:
                            sp.meta["payload_bytes"] = (
                                getattr(self.executor,
                                        "broadcast_bytes", 0) - b0)
                    pending = (cur + 1, {}, t_send, plan)

                # -- off-critical tail ---------------------------------
                self._count_directives(faults_seen, trace, directives, cur)
                if not abft_done:
                    counters.checksum_tests += 1
                    with tr.span("abft_check"):
                        self._check_partials(merged, results, cur_plan, x,
                                             labels, sample_weight,
                                             faults_seen, trace, cur)
                best64 = best.astype(np.float64)
                inertia = float(np.sum(best64 * sample_weight)
                                if sample_weight is not None
                                else np.sum(best64))
                n_iter = cur
                converged = monitor.update(inertia, upd.shift)
                if (self.checkpoint_every
                        and cur % self.checkpoint_every == 0):
                    with tr.span("checkpoint", iteration=int(cur)):
                        t0 = time.perf_counter()
                        self.store.save(cur, self._snapshot(
                            cur, y, monitor, clock, counters))
                        ckpt_save_s += time.perf_counter() - t0
                round_span.__exit__(None, None, None)
                if converged:
                    break
                it = cur + 1
        finally:
            if pending is not None:
                # a speculative round was in flight when the fit ended
                # (convergence, or an error): nobody wants its results,
                # so cancel it outright — shutdown follows immediately,
                # which is the contract cancel_round requires.  Custom
                # executors without a cancel fall back to a bounded
                # collect-and-discard drain: with no configured deadline
                # a worker that wedges during this already-discarded
                # round would otherwise hang a finished fit forever
                cancel = getattr(self.executor, "cancel_round", None)
                if cancel is not None:
                    cancel()
                else:
                    if self.executor.round_timeout is None:
                        self.executor.round_timeout = self.DISCARD_TIMEOUT
                    try:
                        self.executor.collect_round()
                    except Exception:
                        pass
            self.executor.shutdown()
            # unlink the fit's shared segments on the way out (error
            # paths included); a coordinator killed before reaching
            # here is covered by the resource tracker — either way
            # /dev/shm holds no strays once the fit is gone
            self.executor.shm_session = None
            if shm_session is not None:
                shm_session.close()
            # flush barrier: every snapshot of this fit is durable
            # before fit() returns (or propagates its error)
            t0 = time.perf_counter()
            with tr.span("checkpoint_flush"):
                if sys.exc_info()[0] is None:
                    self.store.flush()
                else:
                    try:
                        self.store.flush()
                    except Exception:
                        pass
            ckpt_flush_s = time.perf_counter() - t0
            fit_span.__exit__(None, None, None)

        # fold the restore-proof tallies into the final counter totals:
        # crashes and deadline-tripped stalls count the workers lost,
        # tolerated (sub-deadline) stall directives count as stragglers
        counters.worker_crashes = crash_workers_lost
        counters.worker_stalls += stall_workers_lost + faults_seen["stalls"]
        counters.checkpoint_restores = recoveries
        counters.errors_injected += faults_seen["injected"]
        counters.errors_detected += faults_seen["detected"]
        counters.errors_corrected += faults_seen["corrected"]
        result = DistFitResult(
            centroids=y, labels=labels, best=best,
            counts=(upd.counts.copy() if upd is not None
                    else np.zeros(n_clusters, dtype=np.int64)),
            inertia=monitor.history[-1] if monitor.history else float("nan"),
            inertia_history=list(monitor.history), n_iter=n_iter,
            converged=converged, counters=counters, clock=clock,
            recoveries=recoveries, trace=trace, plan=plan,
            executor=getattr(self.executor, "name", "custom"),
            crash_recoveries=crash_workers_lost,
            stall_recoveries=stall_workers_lost, shrinks=shrinks,
            checkpoint_save_s=ckpt_save_s, checkpoint_flush_s=ckpt_flush_s,
            promotions=self.fleet.promotions, expands=self.fleet.expands,
            heartbeat_failures=heartbeat_failures,
            reduce_busy_s=occ.busy_s, reduce_topology=topology,
            transport=transport,
            broadcast_bytes=int(getattr(self.executor,
                                        "broadcast_bytes", 0)),
            gather_bytes=int(getattr(self.executor, "gather_bytes", 0)),
            boot_stats=_boot_stats(getattr(self.executor,
                                           "boot_events", [])))
        # per-fit metrics delta: a fresh registry ingests the fit's two
        # counter surfaces, and the delta against the empty snapshot —
        # i.e. exactly what *this* fit contributed — rides on the result
        # (and from there into bench records)
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.register_perf_counters(counters)
        registry.register_dist_result(result)
        result.metrics = MetricsRegistry.delta(before, registry.snapshot())
        return result

    # ------------------------------------------------------------------
    def _arm_deadline(self, round_times: deque) -> None:
        """Re-arm the executor deadline under ``round_timeout='auto'``.

        A multiple of the trailing median of observed round times; no
        deadline until enough rounds have been observed (a cold start
        must never be misread as a stall), and never tighter than the
        floor.
        """
        if not self.adaptive_timeout:
            return
        if len(round_times) >= self.ADAPTIVE_MIN_SAMPLES:
            self.executor.round_timeout = max(
                self.ADAPTIVE_FLOOR_S,
                self.ADAPTIVE_MULT * float(np.median(round_times)))

    @staticmethod
    def _charge_round(clock: SimClock, results: list[RoundResult]) -> None:
        """Charge the slowest worker's modelled kernel times: shards run
        concurrently on independent devices, so the round's simulated
        duration is the makespan, not the sum."""
        slow = max(results, key=lambda r: r.sim_time_s)
        for label, t in slow.timings:
            clock.charge(label, t)

    def _stream_reduce(self, cur_plan: ShardPlan, x: np.ndarray,
                       labels: np.ndarray, best: np.ndarray,
                       counters: PerfCounters, clock: SimClock,
                       merge_acc: StreamedAccumulator,
                       occ: ReduceOccupancy, tr) -> list[RoundResult]:
        """The ``'stream'`` topology's collect: arrival-ordered consume,
        shard-ordered commit.

        Results are buffered as they arrive and committed strictly in
        shard order — the order the sequential-continuation merge
        requires, regardless of which worker answered first — so each
        committed shard's gather writes and merge re-feed overlap the
        still-computing workers.  The executor raises its round failure
        only after the stream ends; everything committed by then is
        discarded through the normal recovery path (the next round
        resets the accumulator and rewrites the gather arrays).

        Returns the round's results in shard order.
        """
        shards = cur_plan.shards
        arrived: dict[int, RoundResult] = {}
        results: list[RoundResult] = [None] * len(shards)
        next_pos = 0
        merge_acc.reset()
        for wid, res in self.executor.collect_round_stream():
            occ.arrival()
            arrived[wid] = res
            while (next_pos < len(shards)
                   and shards[next_pos].worker_id in arrived):
                shard = shards[next_pos]
                r = arrived.pop(shard.worker_id)
                results[next_pos] = r
                t0 = time.monotonic()
                with tr.span("merge", worker=int(shard.worker_id),
                             lo=int(shard.lo), hi=int(shard.hi)):
                    labels[shard.lo:shard.hi] = r.labels
                    best[shard.lo:shard.hi] = r.best
                    counters.merge(r.counters)
                    merge_acc.feed(x[shard.slice], labels[shard.slice])
                occ.segment(t0)
                next_pos += 1
        if next_pos != len(shards):  # pragma: no cover - defensive
            raise RuntimeError("round stream ended with uncommitted "
                               "shards and no failure raised")
        self._charge_round(clock, results)
        return results

    def _tree_reduce(self, results: list[RoundResult],
                     cur_plan: ShardPlan, labels: np.ndarray,
                     merge_acc: StreamedAccumulator,
                     occ: ReduceOccupancy, tr, it: int) -> np.ndarray:
        """The ``'tree'`` topology's reduce: pairwise combines on the
        workers, in continuation order.

        Worker 0's exported fold state seeds the chain; each
        :class:`~repro.dist.plan.CombineStep`'s owner extends the
        prefix over its row range (level 1 folds the owner's own shard
        from its cached labels; deeper levels ship the gathered label
        slice).  The coordinator's only reduce work is adopting the
        final state — the combines themselves are worker time, like
        the round's compute.  A worker dying mid-combine raises
        :class:`WorkerCrash` into the standard recovery path.
        """
        by_wid = {res.worker_id: res for res in results}
        state = by_wid[cur_plan.shards[0].worker_id].state
        if state is None:  # pragma: no cover - defensive
            raise RuntimeError("tree reduce needs workers built with "
                               "export_state=True")
        for step in combine_schedule(cur_plan):
            lab = None if step.level == 1 else labels[step.lo:step.hi]
            with tr.span("combine", level=int(step.level),
                         lo=int(step.lo), hi=int(step.hi),
                         owner=int(step.owner_id)):
                state = self.executor.combine(step.owner_id, state,
                                              step.lo, step.hi, it, lab)
        t0 = time.monotonic()
        merge_acc.reset()
        merge_acc.merge_from(state)
        occ.segment(t0)
        return merge_acc.packed()

    def _tree_check(self, merged: np.ndarray, results: list[RoundResult],
                    cur_plan: ShardPlan, x: np.ndarray,
                    labels: np.ndarray,
                    sample_weight: np.ndarray | None,
                    merge_acc: StreamedAccumulator, faults_seen: dict,
                    trace: list[dict], it: int) -> np.ndarray:
        """Pre-update checksum over tree-combined sums; returns the
        sums the update may trust.

        Clean rounds return ``merged`` unchanged.  On alarm the
        coordinator falls back to the authoritative star re-feed — the
        tree's output is discarded wholesale, so a corruption anywhere
        in the combine chain is *contained*, not merely detected — and
        localizes the offender through the standard per-shard recompute
        (:meth:`_check_partials`).
        """
        total = np.zeros_like(merged)
        for res in results:
            total += res.partial
        scale = np.maximum(1.0, np.maximum(np.abs(total), np.abs(merged)))
        if not (np.abs(total - merged) > self.partial_tol * scale).any():
            return merged
        merge_acc.reset()
        for shard in cur_plan.shards:
            merge_acc.feed(x[shard.slice], labels[shard.slice])
        authoritative = merge_acc.packed()
        if not np.array_equal(authoritative, merged):
            # the combine chain itself was corrupted (not just a
            # returned partial copy): the per-shard localization below
            # cannot see it, so count the containment here
            faults_seen["detected"] += 1
            faults_seen["corrected"] += 1
            trace.append({"kind": "combine_mismatch_detected",
                          "iteration": it})
        self._check_partials(authoritative, results, cur_plan, x, labels,
                             sample_weight, faults_seen, trace, it)
        return authoritative

    @staticmethod
    def _count_directives(faults_seen: dict, trace: list[dict],
                          directives: dict[int, dict], it: int) -> None:
        """Tally the injected faults of a *completed* round.

        Tallies go to the restore-proof ``faults_seen`` dict, not the
        (checkpoint-snapshotted) counters: the directives are one-shot,
        so a replayed round runs clean and could never re-count them.
        """
        for wid, d in directives.items():
            if "corrupt" in d:
                faults_seen["injected"] += 1
                trace.append({"kind": "corrupt_partial", "worker": wid,
                              "iteration": it})
            if d.get("stall_s"):
                faults_seen["stalls"] += 1
                trace.append({"kind": "stall", "worker": wid,
                              "iteration": it,
                              "stall_s": d["stall_s"]})

    def _check_partials(self, merged: np.ndarray,
                        results: list[RoundResult], plan: ShardPlan,
                        x: np.ndarray, labels: np.ndarray,
                        sample_weight: np.ndarray | None,
                        faults_seen: dict, trace: list[dict],
                        it: int) -> None:
        """ABFT checksum over the merged partials.

        The worker-order sum of per-shard partials must agree with the
        sequential-continuation merge up to float64 re-association.  On
        alarm, each worker's partial is recomputed shard-locally (bit
        -exactly, thanks to the continuation design) to localize the
        corrupt worker; the merged sums are already authoritative, so
        the event counts as detected *and* corrected.  Detection events
        tally into the restore-proof ``faults_seen`` (one-shot faults
        never replay, so a checkpoint restore must not erase them).
        """
        total = np.zeros_like(merged)
        for res in results:
            total += res.partial
        scale = np.maximum(1.0, np.maximum(np.abs(total), np.abs(merged)))
        if not (np.abs(total - merged) > self.partial_tol * scale).any():
            return
        faults_seen["detected"] += 1
        located = False
        for res, shard in zip(results, plan.shards):
            ref = StreamedAccumulator(merged.shape[0], x.shape[1])
            if sample_weight is not None:
                ref.bind_weights(sample_weight[shard.slice])
            ref.feed(x[shard.slice], labels[shard.slice])
            bad = ref.packed() != res.partial
            if bad.any():
                located = True
                faults_seen["corrected"] += 1
                trace.append({"kind": "corrupt_partial_detected",
                              "worker": res.worker_id, "iteration": it,
                              "cells": int(bad.sum())})
        if not located:  # pragma: no cover - defensive
            trace.append({"kind": "partial_mismatch_unlocated",
                          "iteration": it})
