"""Executor backends: how shard workers actually run.

Three interchangeable backends drive the same :class:`ShardWorker`
round protocol:

* :class:`SerialExecutor` — an in-process loop.  Zero concurrency, zero
  overhead; the correctness/debug baseline every other backend must
  match bit-for-bit.
* :class:`ThreadExecutor` — one thread per worker.  BLAS releases the
  GIL inside each worker's GEMMs, so shard assignment genuinely
  overlaps on multicore hosts (the same reasoning as the engine's
  chunk threads, one level up).
* :class:`ProcessExecutor` — one OS process per worker, talking over
  pipes.  The only backend where a worker can *really die*: an injected
  crash hard-exits the child, the coordinator observes the broken pipe
  and runs checkpoint recovery exactly as it would for a real worker
  loss.

All three return round results **in worker order**, so the coordinator's
merge order — and therefore every accumulated bit — is
executor-independent.  A crashed worker surfaces as
:class:`~repro.dist.faults.WorkerCrash` from :meth:`run_round`;
``restart()`` rebuilds the full worker set from the factory the
coordinator registered with :meth:`start`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor

from repro.dist.faults import WorkerCrash
from repro.dist.worker import RoundResult, ShardWorker

__all__ = ["BaseExecutor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "make_executor"]


class BaseExecutor(ABC):
    """Round-based execution of a fixed worker set."""

    def __init__(self) -> None:
        self._factory = None
        self._worker_ids: tuple[int, ...] = ()

    def start(self, factory, worker_ids) -> None:
        """Build one worker per id via ``factory(worker_id)``."""
        self._factory = factory
        self._worker_ids = tuple(worker_ids)
        self._spawn()

    def restart(self) -> None:
        """Tear down every worker and rebuild from the factory (crash
        recovery; surviving workers restart too so the whole round
        replays from a clean slate)."""
        self._teardown()
        self._spawn()

    def shutdown(self) -> None:
        self._teardown()

    @abstractmethod
    def _spawn(self) -> None: ...

    @abstractmethod
    def _teardown(self) -> None: ...

    @abstractmethod
    def run_round(self, y, iteration: int,
                  directives: dict[int, dict]) -> list[RoundResult]:
        """One Lloyd round on every worker; results in worker order.

        Raises :class:`WorkerCrash` when any worker dies (injected or
        real); the surviving results of that round are discarded by the
        coordinator's recovery path.
        """


class SerialExecutor(BaseExecutor):
    """In-process sequential backend (the bit-reference)."""

    name = "serial"

    def _spawn(self) -> None:
        self._workers: dict[int, ShardWorker] = {
            wid: self._factory(wid) for wid in self._worker_ids}

    def _teardown(self) -> None:
        for w in getattr(self, "_workers", {}).values():
            w.close()
        self._workers = {}

    def run_round(self, y, iteration, directives) -> list[RoundResult]:
        return [self._workers[wid].run_round(y, iteration,
                                             directives.get(wid))
                for wid in self._worker_ids]


class ThreadExecutor(BaseExecutor):
    """One thread per worker; rounds join before returning."""

    name = "thread"

    def _spawn(self) -> None:
        self._workers = {wid: self._factory(wid) for wid in self._worker_ids}
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self._worker_ids)))

    def _teardown(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None
        for w in getattr(self, "_workers", {}).values():
            w.close()
        self._workers = {}

    def run_round(self, y, iteration, directives) -> list[RoundResult]:
        futures = [
            self._pool.submit(self._workers[wid].run_round, y, iteration,
                              directives.get(wid))
            for wid in self._worker_ids]
        results, crash = [], None
        # drain every future before raising: no worker may still be
        # writing when the coordinator starts recovery
        for fut in futures:
            try:
                results.append(fut.result())
            except WorkerCrash as exc:
                crash = crash or exc
        if crash is not None:
            raise crash
        return results


def _child_main(conn, factory, worker_id: int) -> None:
    """Process-executor child loop: build the worker, answer rounds.

    An injected crash hard-exits the process (no exception channel, no
    cleanup) so the parent sees exactly what a real worker death looks
    like: a broken pipe.
    """
    worker = factory(worker_id)
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            y, iteration, directive = msg
            try:
                result = worker.run_round(y, iteration, directive)
            except WorkerCrash:
                os._exit(17)
            conn.send(result)
    finally:
        worker.close()
        conn.close()


class ProcessExecutor(BaseExecutor):
    """One OS process per worker (pipes; fork start method by default).

    The worker factory must be picklable under the 'spawn' method
    (:func:`repro.dist.worker.build_worker` partials are); under 'fork'
    it is inherited.
    """

    name = "process"

    def __init__(self, start_method: str | None = None):
        super().__init__()
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)

    def _spawn(self) -> None:
        self._procs: dict[int, mp.Process] = {}
        self._conns: dict[int, object] = {}
        for wid in self._worker_ids:
            parent, child = self._ctx.Pipe()
            proc = self._ctx.Process(target=_child_main,
                                     args=(child, self._factory, wid),
                                     daemon=True)
            proc.start()
            child.close()
            self._procs[wid] = proc
            self._conns[wid] = parent

    def _teardown(self) -> None:
        for wid, conn in getattr(self, "_conns", {}).items():
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in getattr(self, "_procs", {}).values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = {}
        self._conns = {}

    def run_round(self, y, iteration, directives) -> list[RoundResult]:
        for wid in self._worker_ids:
            try:
                self._conns[wid].send((y, iteration, directives.get(wid)))
            except (BrokenPipeError, OSError):
                raise WorkerCrash(wid, iteration, reason="send failed")
        results, crash = [], None
        for wid in self._worker_ids:
            try:
                results.append(self._conns[wid].recv())
            except (EOFError, OSError):
                # the child is gone: a real (or injected-hard-exit) death
                crash = crash or WorkerCrash(wid, iteration,
                                             reason="worker process died")
        if crash is not None:
            raise crash
        return results


def make_executor(name: str) -> BaseExecutor:
    """Build an executor backend by config name."""
    try:
        cls = {"serial": SerialExecutor, "thread": ThreadExecutor,
               "process": ProcessExecutor}[name]
    except KeyError:
        raise ValueError(f"unknown executor {name!r}; choose from "
                         f"('serial', 'thread', 'process')")
    return cls()
