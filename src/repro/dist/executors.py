"""Executor backends: how shard workers actually run.

Three interchangeable backends drive the same :class:`ShardWorker`
round protocol:

* :class:`SerialExecutor` — an in-process loop.  Zero concurrency, zero
  overhead; the correctness/debug baseline every other backend must
  match bit-for-bit.
* :class:`ThreadExecutor` — one thread per worker.  BLAS releases the
  GIL inside each worker's GEMMs, so shard assignment genuinely
  overlaps on multicore hosts (the same reasoning as the engine's
  chunk threads, one level up).
* :class:`ProcessExecutor` — one OS process per worker, talking over
  pipes.  The only backend where a worker can *really die*: an injected
  crash hard-exits the child, the coordinator observes the broken pipe
  and runs checkpoint recovery exactly as it would for a real worker
  loss.

All three return round results **in worker order**, so the coordinator's
merge order — and therefore every accumulated bit — is
executor-independent.  A crashed worker surfaces as
:class:`~repro.dist.faults.WorkerCrash` from :meth:`run_round`;
``restart()`` rebuilds the worker set from the factory the coordinator
registered with :meth:`start` — or from a *new* (factory, worker set)
when the coordinator re-shards elastically after a loss.

**Failure detection.**  Every backend honours ``round_timeout`` (seconds
per round, None = wait forever): a worker that has not answered when the
deadline expires is classified *stalled* and surfaces as a typed
:class:`~repro.dist.faults.WorkerStall`.  How hard the detector can act
differs by backend:

* ``process`` — the real detector: ``Connection``\\ s are polled against
  the deadline and an expired worker is escalated (terminate, then
  kill), so a stalled-but-alive child can never hang the fit.  Child
  boot is excluded from the deadline by a spawn-time ready handshake;
* ``thread`` — futures time out at the deadline; the stalled thread
  cannot be killed, so recovery *abandons* it (thread + worker are
  dropped, reclaimed when the stall runs dry) rather than joining —
  the fit's wall time stays bounded, at the cost of a leaked thread
  for the stall's duration;
* ``serial`` — no preemption is possible in-process; the stall is
  detected *retroactively* from the worker's wall time (useful for
  deterministic recovery tests).

A round collects **every** failure before raising — after the first
dead pipe the remaining connections are drained under per-connection
deadlines, so a second crashed or stalled worker in the same round can
never turn recovery into a hang.

**Split-phase rounds.**  ``run_round`` is also available as an explicit
``send_round`` / ``collect_round`` pair: the coordinator broadcasts the
next round as soon as the new centroids exist, runs the previous
round's off-critical bookkeeping (ABFT partial check, convergence,
checkpoint snapshot) while the workers compute, and only then collects
— the double-buffered round pipeline.  Backends whose workers genuinely
compute between send and collect advertise ``supports_overlap``; the
serial backend computes inside the round itself, so its split-phase
form simply stashes the arguments and runs at collect time.  For the
deadline-armed backends the answer deadline starts at ``collect_round``
(exactly where the legacy combined round started its recv phase), so
overlapped coordinator work can never eat a worker's round budget.

**Streaming collect.**  ``collect_round_stream()`` yields ``(worker_id,
result)`` pairs in *arrival* order instead of blocking for the full
worker-order list — the coordinator's ``'stream'`` reduce topology
commits each shard's merge work as soon as (in-shard-order) results
allow, hiding merge time under the slowest worker.  Failure semantics
are identical to ``collect_round``: every failure of the round is
collected and one typed exception raised *after* the stream ends, so a
consumer that buffered early arrivals discards them through the same
recovery path.  The base implementation degrades to worker order (one
blocking collect, then yield); backends whose workers genuinely race
override it with true arrival order.

**Tree combine.**  ``combine(worker_id, seed_state, lo, hi, iteration,
labels)`` runs one tree-reduce step on the named worker (see
:meth:`repro.dist.worker.ShardWorker.combine`): the worker seeds an
accumulator with the prefix fold state and extends it over ``[lo, hi)``.
On the process backend this is a round-trip message; a child that dies
mid-combine surfaces as :class:`WorkerCrash` exactly like a round
death, and a combine that answers past ``round_timeout`` is escalated
like a round stall.  Worker-side ``ValueError``\\ s (out-of-order
combine, missing labels) re-raise in the coordinator — they are
scheduling bugs, not worker faults.

**Membership management.**  The fleet manager
(:mod:`repro.dist.fleet`) drives four further verbs on top of the round
protocol:

* ``heartbeat(iteration, timeout)`` — a cheap between-rounds liveness
  probe.  A worker that answered its round but *then* wedged is
  invisible to the round deadline until the next round blows it; the
  heartbeat catches it between rounds instead.  Failures surface
  through the same typed exceptions as round failures, tagged with
  ``exc.detector = "heartbeat"``.
* ``prewarm_spares(n)`` / ``spares_ready()`` — hot spares.  On the
  process backend these are genuinely pre-booted (interpreter up,
  imports done) but *unconfigured* children, so promoting one onto a
  dead worker's shard skips the child's cold-start entirely; on the
  in-process backends a spare is just a promotion token (there is no
  boot cost to hide).
* ``replace_workers(factory, worker_ids)`` — replace exactly the named
  workers, leaving the survivors untouched (workers are stateless
  between rounds, so survivors keep their warm operand caches).
* ``reconfigure(factory, worker_ids)`` — adopt a new (factory, worker
  set) like ``restart`` but reusing warm children where possible; the
  base implementation simply delegates to ``restart``.

``cancel_round()`` abandons a sent-but-uncollected round without
waiting for its answers — the speculative round after convergence.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from multiprocessing.connection import wait as conn_wait

from repro.dist.faults import WorkerCrash, WorkerStall
from repro.dist.shm import detach_all as _shm_detach_all
from repro.dist.shm import read_broadcast as _shm_read_broadcast
from repro.dist.shm import write_slot as _shm_write_slot
from repro.dist.worker import RoundResult, ShardWorker

__all__ = ["BaseExecutor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "make_executor"]


def _pickled_nbytes(obj) -> int:
    """Exact pickled size of a (small) pipe payload."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _result_nbytes(res: RoundResult) -> int:
    """Pipe-payload size estimate of a full round result.

    Analytic (array nbytes + a small framing constant) rather than a
    second ``pickle.dumps`` of arrays the pipe already serialised once
    — the estimate is for the transport counters, not for billing.
    """
    n = 256
    for arr in (res.labels, res.best, res.partial):
        if arr is not None:
            n += arr.nbytes
    if res.state is not None:
        n += (res.state["sums_t"].nbytes + res.state["counts"].nbytes + 64)
    return n


def _round_failure(iteration: int, crashed: list[int], stalled: list[int],
                   crash_reason: str = "worker died") -> WorkerCrash:
    """One typed exception for everything a round lost.

    Crash outranks stall (any dead worker makes it a
    :class:`WorkerCrash`, stalled ids riding along); a stall-only round
    raises the :class:`WorkerStall` subtype so the coordinator can
    classify and count the two failure kinds separately.
    """
    if crashed:
        return WorkerCrash(crashed[0], iteration, reason=crash_reason,
                           crashed_ids=tuple(crashed),
                           stalled_ids=tuple(stalled))
    return WorkerStall(stalled[0], iteration, stalled_ids=tuple(stalled))


class BaseExecutor(ABC):
    """Round-based execution of a (re-startable) worker set.

    ``round_timeout`` — seconds each round may take before unanswered
    workers are classified stalled (None = no deadline); the coordinator
    sets it from the fit configuration (and re-arms it per round under
    the adaptive deadline).
    """

    #: True when workers genuinely compute between ``send_round`` and
    #: ``collect_round`` — the coordinator only overlaps bookkeeping
    #: with an in-flight round on such backends
    supports_overlap = False

    def __init__(self) -> None:
        self._factory = None
        self._worker_ids: tuple[int, ...] = ()
        self.round_timeout: float | None = None
        self._stashed_round: tuple | None = None
        self._spare_tokens = 0
        #: optional :class:`repro.obs.events.EventBus` — the coordinator
        #: wires its fit bus in so worker-set lifecycle transitions
        #: (``executor_start`` / ``executor_restart``, source
        #: ``"executor"``) appear in the same ordered event stream as
        #: the fleet and checkpoint events
        self.event_bus = None
        #: coordinator-owned :class:`repro.dist.shm.ShmSession` when the
        #: fit's resolved transport is 'shm' (process backend only);
        #: None keeps the legacy everything-over-the-pipe transport
        self.shm_session = None
        #: per-fit transport counters: bytes moved over the executor's
        #: worker channel — under 'pipe' that is the full pickled round
        #: traffic, under 'shm' only the control/ack tokens (the bulk
        #: payloads move through shared memory and cost the pipes
        #: nothing).  In-process backends move no bytes and stay 0.
        self.broadcast_bytes = 0
        self.gather_bytes = 0
        #: worker boot/attach walls of the current fit (process
        #: backend): {"kind": 'cold_spawn'|'spare_promote'|'reconfigure',
        #: "worker_id", "wall_s"} per ready handshake
        self.boot_events: list[dict] = []

    def reset_transport_stats(self) -> None:
        """Zero the per-fit transport counters and boot-event log."""
        self.broadcast_bytes = 0
        self.gather_bytes = 0
        self.boot_events = []

    def _publish(self, kind: str, **fields) -> None:
        bus = getattr(self, "event_bus", None)
        if bus is not None:
            bus.publish(kind, source="executor", **fields)

    def start(self, factory, worker_ids) -> None:
        """Build one worker per id via ``factory(worker_id)``."""
        self._factory = factory
        self._worker_ids = tuple(worker_ids)
        self._spawn()
        self._publish("executor_start", backend=getattr(self, "name", "?"),
                      worker_ids=list(self._worker_ids))

    def restart(self, factory=None, worker_ids=None) -> None:
        """Tear down every worker and rebuild (crash recovery).

        With no arguments the original worker set respawns from the
        registered factory; passing a new ``factory`` / ``worker_ids``
        re-registers them first — the elastic path, where the
        coordinator re-shards onto the survivors and restarts only
        those.  Surviving workers restart too either way, so the whole
        round replays from a clean slate.
        """
        if factory is not None:
            self._factory = factory
        if worker_ids is not None:
            self._worker_ids = tuple(worker_ids)
        self._teardown()
        self._spawn()
        self._publish("executor_restart",
                      backend=getattr(self, "name", "?"),
                      worker_ids=list(self._worker_ids))

    def shutdown(self) -> None:
        self._teardown()

    @abstractmethod
    def _spawn(self) -> None: ...

    @abstractmethod
    def _teardown(self) -> None: ...

    @abstractmethod
    def run_round(self, y, iteration: int,
                  directives: dict[int, dict]) -> list[RoundResult]:
        """One Lloyd round on every worker; results in worker order.

        Raises :class:`WorkerCrash` when any worker dies (injected or
        real); the surviving results of that round are discarded by the
        coordinator's recovery path.
        """

    def send_round(self, y, iteration: int,
                   directives: dict[int, dict]) -> None:
        """Broadcast one round; its results come from the next
        :meth:`collect_round`.  The base implementation stashes the
        arguments and runs the whole round synchronously at collect
        time (no overlap — see ``supports_overlap``)."""
        self._stashed_round = (y, iteration, directives)

    def collect_round(self) -> list[RoundResult]:
        """Results of the round last sent with :meth:`send_round`, in
        worker order; raises exactly like :meth:`run_round`."""
        if self._stashed_round is None:
            raise RuntimeError("collect_round without a sent round")
        y, iteration, directives = self._stashed_round
        self._stashed_round = None
        return self.run_round(y, iteration, directives)

    def collect_round_stream(self):
        """Yield ``(worker_id, result)`` in arrival order.

        Base implementation: one blocking :meth:`collect_round`, then
        worker order (arrival order is unobservable without real
        concurrency).  Raises exactly like ``collect_round``, after
        every healthy result has been yielded.
        """
        for res in self.collect_round():
            yield res.worker_id, res

    def combine(self, worker_id: int, seed_state: dict, lo: int, hi: int,
                iteration: int, labels=None) -> dict:
        """Run one tree-reduce combine on the named worker.

        Shared in-process implementation: a direct method call (the
        combine then runs on the coordinator's thread, like the serial
        backend's rounds).  Returns the extended prefix state.
        """
        return self._workers[worker_id].combine(seed_state, lo, hi,
                                                iteration, labels)

    def cancel_round(self) -> None:
        """Abandon a sent-but-uncollected round (no results wanted).

        Used for the speculative round still in flight when the fit
        converges: the coordinator will never collect it, so the backend
        may drop it as cheaply as it can.  Only ``shutdown`` or
        ``restart`` may follow a cancel — the round protocol is not
        resumable past one.
        """
        self._stashed_round = None

    # -- membership management (driven by repro.dist.fleet) ------------
    def heartbeat(self, iteration: int, timeout: float) -> None:
        """Probe every worker for liveness between rounds.

        Raises the same typed exceptions as a round failure —
        :class:`WorkerCrash` / :class:`WorkerStall` with the full
        failed-worker classification — additionally tagged with
        ``exc.detector = "heartbeat"`` so traces can tell the two
        detectors apart.  Must not be called with a round in flight.
        The base implementation is a no-op (no probe channel).
        """

    def prewarm_spares(self, n: int) -> None:
        """Provision ``n`` replacement slots ahead of any failure.

        In-process backends have no boot cost to hide, so a spare is
        just a promotion token; the process backend overrides this with
        genuinely pre-booted (unconfigured) children.
        """
        self._spare_tokens = int(n)

    def spares_ready(self) -> int:
        """Number of spares promotable right now (never blocks)."""
        return self._spare_tokens

    def replace_workers(self, factory, worker_ids) -> None:
        """Replace exactly ``worker_ids``; every other worker is left
        running untouched (promotion in place — the shard plan did not
        change, so survivors keep their warm per-fit operand caches).

        The shared in-process implementation rebuilds the named workers
        from ``factory``; zombie workers abandoned by a heartbeat (see
        :class:`ThreadExecutor`) are dropped without a close.
        """
        self._factory = factory
        worker_ids = tuple(worker_ids)
        zombies = getattr(self, "_zombies", set())
        for wid in worker_ids:
            old = self._workers.pop(wid, None)
            if old is not None and wid not in zombies:
                old.close()
            zombies.discard(wid)
            self._workers[wid] = factory(wid)
        self._spare_tokens = max(0, self._spare_tokens - len(worker_ids))

    def reconfigure(self, factory=None, worker_ids=None) -> None:
        """Adopt a new (factory, worker set), reusing warm state where
        the backend can; base implementation = plain :meth:`restart`."""
        self.restart(factory, worker_ids)


class SerialExecutor(BaseExecutor):
    """In-process sequential backend (the bit-reference)."""

    name = "serial"

    def _spawn(self) -> None:
        self._workers: dict[int, ShardWorker] = {
            wid: self._factory(wid) for wid in self._worker_ids}

    def _teardown(self) -> None:
        for w in getattr(self, "_workers", {}).values():
            w.close()
        self._workers = {}

    def run_round(self, y, iteration, directives) -> list[RoundResult]:
        results, crashed, stalled = [], [], []
        for wid in self._worker_ids:
            t0 = time.monotonic()
            try:
                res = self._workers[wid].run_round(y, iteration,
                                                   directives.get(wid))
            except WorkerCrash:
                # keep going: the round collects every failure (a crash
                # must not drop stalls already detected, or still to
                # come, from the classification)
                crashed.append(wid)
                continue
            results.append(res)
            # in-process, sequential: preemption is impossible, so the
            # deadline is enforced retroactively on the worker's wall
            # time (the round's results are discarded by recovery)
            if (self.round_timeout is not None
                    and time.monotonic() - t0 > self.round_timeout):
                stalled.append(wid)
        if crashed or stalled:
            raise _round_failure(iteration, crashed, stalled,
                                 crash_reason="injected")
        return results

    def collect_round_stream(self):
        """Yield each worker's result as soon as it is computed.

        Sequential, so "arrival order" is worker order — but yielding
        per worker (instead of after the full loop) lets the streaming
        merge interleave with the remaining workers' compute, which is
        what the ``'stream'`` topology tests on this backend.  A worker
        classified retroactively stalled is not yielded (its result is
        doomed to the recovery discard anyway); failures raise after
        the loop, exactly like :meth:`run_round`.
        """
        if self._stashed_round is None:
            raise RuntimeError("collect_round without a sent round")
        y, iteration, directives = self._stashed_round
        self._stashed_round = None
        crashed, stalled = [], []
        for wid in self._worker_ids:
            t0 = time.monotonic()
            try:
                res = self._workers[wid].run_round(y, iteration,
                                                   directives.get(wid))
            except WorkerCrash:
                crashed.append(wid)
                continue
            if (self.round_timeout is not None
                    and time.monotonic() - t0 > self.round_timeout):
                stalled.append(wid)
                continue
            yield wid, res
        if crashed or stalled:
            raise _round_failure(iteration, crashed, stalled,
                                 crash_reason="injected")

    def heartbeat(self, iteration: int, timeout: float) -> None:
        """Sequential ping of every worker, classified retroactively
        (like the serial round deadline: no in-process preemption, so a
        wedged ping blocks for its full wedge — keep injected wedges
        short on this backend)."""
        stalled = []
        for wid in self._worker_ids:
            t0 = time.monotonic()
            self._workers[wid].ping()
            if time.monotonic() - t0 > timeout:
                stalled.append(wid)
        if stalled:
            exc = _round_failure(iteration, [], stalled)
            exc.detector = "heartbeat"
            raise exc


class _RoundTask:
    """One worker's round on a daemon thread (a poor man's future).

    Daemon on purpose: ``ThreadPoolExecutor`` threads are non-daemon
    and joined by an atexit hook, so an *unbounded* stall abandoned in
    a pool would block interpreter exit — the hang this layer exists to
    prevent, resurfacing one layer down.  A daemon thread just dies
    with the process.
    """

    def __init__(self, fn, args):
        self.result = None
        self.exc: BaseException | None = None
        self.done = threading.Event()
        self.thread = threading.Thread(target=self._run, args=(fn, args),
                                       daemon=True)
        self.thread.start()

    def _run(self, fn, args):
        try:
            self.result = fn(*args)
        except BaseException as exc:
            self.exc = exc
        finally:
            self.done.set()


class ThreadExecutor(BaseExecutor):
    """One daemon thread per worker per round; rounds join before
    returning."""

    name = "thread"
    supports_overlap = True

    def _spawn(self) -> None:
        self._workers = {wid: self._factory(wid) for wid in self._worker_ids}
        self._inflight: dict[int, _RoundTask] = {}
        self._round_it: int | None = None
        #: workers whose heartbeat ping was abandoned mid-wedge: a
        #: daemon thread still owns them, so teardown / replacement must
        #: drop them without a close
        self._zombies: set[int] = set()

    def _teardown(self) -> None:
        # a stalled thread cannot be killed, and joining it would block
        # recovery for the whole stall — abandon it instead: its worker
        # is left un-closed (the thread still owns it; engine caches are
        # reclaimed by GC once the round finishes, and the daemon thread
        # never blocks process exit).  Heartbeat zombies are abandoned
        # the same way.
        running = {wid for wid, task in getattr(self, "_inflight",
                                                {}).items()
                   if not task.done.is_set()}
        running |= set(getattr(self, "_zombies", ()))
        for wid, w in getattr(self, "_workers", {}).items():
            if wid not in running:
                w.close()
            elif hasattr(w, "cancel"):
                # cooperative stop: the abandoned pass raises out of its
                # chunk loop within one chunk instead of burning CPU to
                # the end of the shard
                w.cancel()
        self._workers = {}
        self._inflight = {}
        self._zombies = set()

    def send_round(self, y, iteration, directives) -> None:
        self._round_it = iteration
        self._inflight = {wid: _RoundTask(self._workers[wid].run_round,
                                          (y, iteration,
                                           directives.get(wid)))
                          for wid in self._worker_ids}

    def collect_round(self) -> list[RoundResult]:
        if self._round_it is None:
            raise RuntimeError("collect_round without a sent round")
        iteration, self._round_it = self._round_it, None
        # the answer deadline starts at collect: workers have been
        # computing since send, so overlapped coordinator work only ever
        # extends their budget, never shrinks it
        deadline = (None if self.round_timeout is None
                    else time.monotonic() + self.round_timeout)
        tasks = self._inflight
        results: dict[int, RoundResult] = {}
        crashed, stalled = [], []
        # drain every task before raising: no worker may still be
        # writing when the coordinator starts recovery.  All workers run
        # concurrently, so one absolute deadline doubles as the
        # per-task deadline.
        for wid, task in tasks.items():
            if deadline is None:
                task.done.wait()
            elif not task.done.wait(max(0.0,
                                        deadline - time.monotonic())):
                # a thread cannot be killed: mark it stalled; teardown
                # abandons it (thread + worker reclaimed when the stall
                # runs dry) so recovery never waits the stall out.  The
                # cancel token bounds how long "dry" takes: a pass still
                # chunking stops at its next chunk boundary.
                stalled.append(wid)
                w = self._workers.get(wid)
                if w is not None and hasattr(w, "cancel"):
                    w.cancel()
                continue
            if isinstance(task.exc, WorkerCrash):
                crashed.append(wid)
            elif task.exc is not None:
                raise task.exc
            else:
                results[wid] = task.result
        if crashed or stalled:
            raise _round_failure(iteration, crashed, stalled,
                                 crash_reason="injected")
        return [results[wid] for wid in self._worker_ids]

    def collect_round_stream(self):
        """Yield results in true arrival order (done-event polling).

        The same absolute deadline and stall semantics as
        :meth:`collect_round`: a task still pending at the deadline is
        marked stalled, cancelled and abandoned; every failure raises
        in one typed exception after the stream ends.
        """
        if self._round_it is None:
            raise RuntimeError("collect_round without a sent round")
        iteration, self._round_it = self._round_it, None
        deadline = (None if self.round_timeout is None
                    else time.monotonic() + self.round_timeout)
        pending = dict(self._inflight)
        crashed, stalled = [], []
        while pending:
            fired = [wid for wid, task in pending.items()
                     if task.done.is_set()]
            if not fired:
                if (deadline is not None
                        and time.monotonic() >= deadline):
                    for wid in list(pending):
                        stalled.append(wid)
                        w = self._workers.get(wid)
                        if w is not None and hasattr(w, "cancel"):
                            w.cancel()
                    pending.clear()
                    break
                # wait on an arbitrary pending task with a short slice,
                # so any *other* task finishing first is picked up
                # within one slice (there is no wait-any for Events)
                slice_s = 0.005
                if deadline is not None:
                    slice_s = min(slice_s,
                                  max(0.0, deadline - time.monotonic()))
                next(iter(pending.values())).done.wait(slice_s)
                continue
            for wid in fired:
                task = pending.pop(wid)
                if isinstance(task.exc, WorkerCrash):
                    crashed.append(wid)
                elif task.exc is not None:
                    raise task.exc
                else:
                    yield wid, task.result
        if crashed or stalled:
            raise _round_failure(iteration, crashed, stalled,
                                 crash_reason="injected")

    def run_round(self, y, iteration, directives) -> list[RoundResult]:
        self.send_round(y, iteration, directives)
        return self.collect_round()

    def cancel_round(self) -> None:
        """Abandon the in-flight round: forget it was sent.  The tasks
        keep running on their daemon threads; teardown (which must
        follow) already skips closing workers still owned by a running
        task."""
        self._round_it = None

    def heartbeat(self, iteration: int, timeout: float) -> None:
        """Concurrent ping of every worker under one shared deadline.

        A worker whose ping misses the deadline is classified stalled
        and becomes a *zombie*: its sleeping daemon thread still owns
        it, so it is excluded from teardown/replacement closes and
        reclaimed by GC when the wedge runs dry.
        """
        tasks = {wid: _RoundTask(self._workers[wid].ping, ())
                 for wid in self._worker_ids}
        deadline = time.monotonic() + timeout
        stalled = []
        for wid, task in tasks.items():
            if not task.done.wait(max(0.0, deadline - time.monotonic())):
                stalled.append(wid)
                self._zombies.add(wid)
                w = self._workers.get(wid)
                if w is not None and hasattr(w, "cancel"):
                    w.cancel()
            elif task.exc is not None:
                raise task.exc
        if stalled:
            exc = _round_failure(iteration, [], stalled)
            exc.detector = "heartbeat"
            raise exc


#: spawn handshake sentinel: the child sends it once its worker is
#: built, so boot cost (interpreter + shard unpickling under 'spawn')
#: never counts against a round deadline
_READY = "__worker_ready__"

#: pre-boot handshake of an *unconfigured* hot spare: interpreter and
#: imports are up, no worker exists yet — a 'configure' message turns
#: it into a worker (which answers with ``_READY``)
_SPARE_READY = "__spare_ready__"

#: heartbeat reply sentinel
_PONG = "__pong__"

#: first element of a combine reply carrying a worker-side exception
#: (ValueError contract violations etc.) back to the coordinator — a
#: combine has a real return value, so errors need an in-band marker
_COMBINE_ERR = "__combine_error__"


def _child_main(conn, factory, worker_id: int, stale_conns=()) -> None:
    """Process-executor child loop: build the worker, answer messages.

    ``stale_conns`` are parent-side pipe ends a *forked* child inherited
    (other workers' conns, spare conns, and this pipe's own parent end);
    they are closed first thing so that coordinator death reaches every
    worker as pipe EOF instead of deadlocking the fleet on fd copies.

    Messages are tagged tuples — ``("round", y, iteration, directive)``,
    ``("shmround", bcast_ref, slot_ref, generation, iteration,
    directive)``, ``("ping",)``, ``("configure", factory, worker_id)``
    — or ``None`` (shut down).  With ``factory=None`` the child boots
    as an *unconfigured hot spare*: interpreter and imports are paid
    for up front, the worker itself is built by a later configure
    message.

    A ``shmround`` is the shared-memory transport's round: the token
    names the generation-stamped broadcast buffer and this worker's
    result slot; the child reads the centroids out of the buffer
    (validating the seqlock stamps against the token's generation),
    runs the identical round, writes its arrays into the slot, and
    acks with the *stripped* round result — counters/timings only, no
    arrays — so the pipe carries tokens either way.

    An injected crash hard-exits the process (no exception channel, no
    cleanup) so the parent sees exactly what a real worker death looks
    like: a broken pipe.
    """
    for stale in stale_conns:
        stale.close()
    worker = None
    if factory is not None:
        worker = factory(worker_id)
        conn.send(_READY)
    else:
        conn.send(_SPARE_READY)
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            tag = msg[0]
            if tag == "configure":
                _, factory, worker_id = msg
                if worker is not None:
                    worker.close()
                worker = factory(worker_id)
                conn.send(_READY)
            elif tag == "ping":
                if worker is not None:
                    worker.ping()
                conn.send(_PONG)
            elif tag == "combine":
                _, seed_state, lo, hi, iteration, labels = msg
                try:
                    out = worker.combine(seed_state, lo, hi, iteration,
                                         labels)
                except WorkerCrash:
                    os._exit(17)
                except Exception as exc:
                    # contract violations (out-of-order seed, missing
                    # labels) are coordinator bugs: marshal them back to
                    # re-raise there, instead of dying like a fault
                    out = (_COMBINE_ERR, exc)
                conn.send(out)
            elif tag == "shmround":
                _, bcast_ref, slot_ref, generation, iteration, directive = msg
                y = _shm_read_broadcast(bcast_ref, generation)
                try:
                    result = worker.run_round(y, iteration, directive)
                except WorkerCrash:
                    os._exit(17)
                # arrays go through the slot (including an injected
                # corrupt-partial flip — ABFT checks the shared plane,
                # not a pipe copy); the ack is token-sized
                _shm_write_slot(slot_ref, result, generation)
                conn.send(dataclasses.replace(
                    result, labels=None, best=None, partial=None,
                    state=None))
            else:                              # "round"
                _, y, iteration, directive = msg
                try:
                    result = worker.run_round(y, iteration, directive)
                except WorkerCrash:
                    os._exit(17)
                conn.send(result)
    finally:
        if worker is not None:
            worker.close()
        _shm_detach_all()
        conn.close()


class ProcessExecutor(BaseExecutor):
    """One OS process per worker (pipes; fork start method by default).

    The worker factory must be picklable under the 'spawn' method
    (:func:`repro.dist.worker.build_worker` partials are); under 'fork'
    it is inherited.
    """

    name = "process"
    supports_overlap = True

    #: recv bound (seconds) for the *remaining* connections once a round
    #: has already lost a worker and no round deadline is configured: a
    #: second stalled worker must never turn a crash into a hang.  On
    #: expiry the pending children are abandoned, not killed — without a
    #: configured deadline nothing licenses classifying them stalled —
    #: and the recovery restart's teardown reaps them.
    DRAIN_TIMEOUT = 5.0

    #: seconds teardown waits for a child to exit after the shutdown
    #: message before escalating to terminate (abandoned or stalled
    #: children ignore the message and eat the whole wait)
    JOIN_TIMEOUT = 5.0

    #: seconds each child gets to finish booting and send its ready
    #: handshake at (re)spawn.  Keeping boot out of the round protocol
    #: means a round deadline measures compute + IPC only — a slow
    #: cold start (interpreter boot, numpy import, shard unpickling
    #: under 'spawn') can never be misread as a stall.
    SPAWN_TIMEOUT = 120.0

    #: per-send floor (seconds) under an expired round deadline.  Send
    #: is pure IPC — a healthy child drains its pipe in microseconds —
    #: so after one wedged worker eats the whole round budget, later
    #: sends still get this grace instead of being condemned unsent.
    SEND_GRACE = 0.25

    def __init__(self, start_method: str | None = None):
        super().__init__()
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        #: pre-booted unconfigured children: [proc, conn, ready] — ready
        #: flips True once the _SPARE_READY handshake has been consumed
        self._spares: list[list] = []
        #: broadcast ref + generation of the round in flight (shm)
        self._shm_bcast_ref = None
        self._shm_generation = 0
        #: boots awaiting their ready handshake: wid -> (kind, t0)
        self._boot_pending: dict[int, tuple[str, float]] = {}

    # -- boot-wall accounting ------------------------------------------
    def _note_boot(self, wid: int, kind: str) -> None:
        self._boot_pending[wid] = (kind, time.monotonic())

    def _finish_boot(self, wid: int) -> None:
        note = self._boot_pending.pop(wid, None)
        if note is not None:
            kind, t0 = note
            self.boot_events.append(
                {"kind": kind, "worker_id": int(wid),
                 "wall_s": time.monotonic() - t0})

    # -- shm round plumbing --------------------------------------------
    def _round_payload(self, wid: int, y, iteration: int, directives):
        """This worker's round message (and its pipe byte cost)."""
        if self.shm_session is not None:
            payload = ("shmround", self._shm_bcast_ref,
                       self.shm_session.slot_ref(wid),
                       self._shm_generation, iteration,
                       directives.get(wid))
        else:
            payload = ("round", y, iteration, directives.get(wid))
        self.broadcast_bytes += _pickled_nbytes(payload)
        return payload

    def _hydrate(self, wid: int, res):
        """Rebuild a shm-stripped round result from the worker's slot.

        Arrays come back as **copies** of the slot (the coordinator may
        overlap the next round before the ABFT check reads these
        partials, so a fast worker must never scribble over them);
        the slot stamps are validated against the in-flight generation.
        Pipe-transport results pass through, only counted.
        """
        if not isinstance(res, RoundResult):
            return res
        if res.labels is None and self.shm_session is not None:
            self.gather_bytes += _pickled_nbytes(res)
            data = self.shm_session.read_slot(wid, self._shm_generation)
            res.labels = data["labels"]
            res.best = data["best"]
            res.partial = data["partial"]
            res.state = data["state"]
        else:
            self.gather_bytes += _result_nbytes(res)
        return res

    def _boot_child(self, factory, wid: int):
        """Fork/spawn one child process; returns (proc, parent_conn)."""
        parent, child = self._ctx.Pipe()
        stale = ()
        if self._ctx.get_start_method() == "fork":
            # a forked child inherits every parent-side pipe fd open at
            # fork time — including its *own* pipe's parent end.  Those
            # copies keep the pipe peers alive after a coordinator
            # SIGKILL, so EOF — the workers' only signal that the
            # coordinator died — would never fire and the fleet (and
            # with it the resource tracker holding the shm segments)
            # would outlive the fit forever.  Hand the stale Connection
            # objects to the child to close at boot; under 'spawn'
            # nothing is inherited and pickling them would *duplicate*
            # the handles instead.
            stale = (tuple(getattr(self, "_conns", {}).values())
                     + tuple(entry[1] for entry in self._spares)
                     + (parent,))
        proc = self._ctx.Process(target=_child_main,
                                 args=(child, factory, wid, stale),
                                 daemon=True)
        proc.start()
        child.close()
        return proc, parent

    def _spawn(self) -> None:
        self._round_state: tuple | None = None
        self._procs: dict[int, mp.Process] = {}
        self._conns: dict[int, object] = {}
        for wid in self._worker_ids:
            self._note_boot(wid, "cold_spawn")
            proc, parent = self._boot_child(self._factory, wid)
            self._procs[wid] = proc
            self._conns[wid] = parent
        # collect every child's ready handshake before the first round:
        # a worker that cannot even boot is not recoverable by respawn,
        # so this raises (after cleaning up the brood) instead of
        # letting run_round misclassify the boot as a stall
        for wid in self._worker_ids:
            conn = self._conns[wid]
            msg = None
            try:
                if conn.poll(self.SPAWN_TIMEOUT):
                    msg = conn.recv()
            except (EOFError, OSError):
                msg = None
            if msg != _READY:
                self._teardown()
                raise WorkerCrash(wid, 0,
                                  reason="worker failed to start")
            self._finish_boot(wid)

    def _teardown(self) -> None:
        spare_conns = [entry[1] for entry in getattr(self, "_spares", [])]
        spare_procs = [entry[0] for entry in getattr(self, "_spares", [])]
        for conn in list(getattr(self, "_conns", {}).values()) + spare_conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in list(getattr(self, "_procs",
                                 {}).values()) + spare_procs:
            proc.join(timeout=self.JOIN_TIMEOUT)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = {}
        self._conns = {}
        self._spares = []

    def _kill_worker(self, wid: int) -> None:
        """Escalated removal of a stalled child: terminate, then kill.

        The worker is dropped from the live maps so teardown/respawn
        never touches the corpse again.
        """
        proc = self._procs.pop(wid, None)
        conn = self._conns.pop(wid, None)
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _send_bounded(self, wid: int, payload, deadline: float) -> str:
        """Broadcast to one worker under the round deadline.

        A healthy child sits in ``recv()`` between rounds, draining its
        pipe — but a wedged one leaves the buffer full, and a payload
        larger than the OS pipe buffer then blocks ``send()`` *before*
        the recv deadline ever starts.  Shipping from a helper thread
        bounds it: on expiry the child is killed, which breaks the pipe
        and unblocks the writer.  Returns 'ok' / 'crashed' / 'stalled'.
        """
        conn = self._conns[wid]
        outcome: list = []

        def ship():
            try:
                conn.send(payload)
                outcome.append("ok")
            except (BrokenPipeError, OSError):
                outcome.append("crashed")
            except BaseException as exc:     # e.g. a pickling TypeError
                outcome.append(exc)

        t = threading.Thread(target=ship, daemon=True)
        t.start()
        t.join(max(self.SEND_GRACE, deadline - time.monotonic()))
        if t.is_alive():
            # deadline hit mid-send: the child is not draining its pipe
            self._kill_worker(wid)       # EPIPE unblocks the writer
            t.join(timeout=5.0)
            return "stalled"
        got = outcome[0] if outcome else "crashed"
        if isinstance(got, BaseException):
            # a non-IPC failure (bad payload) is the caller's bug, not a
            # worker fault: surface it instead of spinning recovery
            raise got
        return got

    def send_round(self, y, iteration, directives) -> None:
        crashed, stalled = [], []
        deadline = (None if self.round_timeout is None
                    else time.monotonic() + self.round_timeout)
        if self.shm_session is not None:
            # one buffer write for the whole fleet; each pipe then
            # carries only a generation-stamped token
            self._shm_bcast_ref, self._shm_generation = (
                self.shm_session.publish(y, iteration))
        for wid in self._worker_ids:
            payload = self._round_payload(wid, y, iteration, directives)
            if deadline is None:
                try:
                    self._conns[wid].send(payload)
                except (BrokenPipeError, OSError):
                    self._kill_worker(wid)   # reap the corpse now
                    crashed.append(wid)
            else:
                sent = self._send_bounded(wid, payload, deadline)
                if sent == "crashed":
                    self._kill_worker(wid)
                    crashed.append(wid)
                elif sent == "stalled":
                    stalled.append(wid)
        self._round_state = (iteration, crashed, stalled)

    def collect_round(self) -> list[RoundResult]:
        if self._round_state is None:
            raise RuntimeError("collect_round without a sent round")
        iteration, crashed, stalled = self._round_state
        self._round_state = None
        # per-phase budget: the broadcast was bounded on its own
        # deadline, so the answer deadline starts only now — a wedged
        # send (killed at send time) can never condemn the other
        # workers' compute time, and overlapped coordinator work between
        # send and collect never shrinks a worker's budget.  A
        # worst-case faulty round is therefore bounded by
        # ~2x round_timeout, never unbounded.
        deadline = (None if self.round_timeout is None
                    else time.monotonic() + self.round_timeout)
        results: dict[int, RoundResult] = {}
        # workers killed at send time are already out of _conns
        pending = {self._conns[wid]: wid for wid in self._worker_ids
                   if wid not in crashed and wid in self._conns}
        while pending:
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            elif crashed or stalled:
                # the round already lost a worker: bound the remaining
                # recv()s so a second stalled worker cannot hang recovery
                timeout = self.DRAIN_TIMEOUT
            else:
                timeout = None       # wait forever (legacy behaviour)
            ready = conn_wait(list(pending), timeout)
            if not ready:
                if deadline is not None:
                    # the configured deadline expired with answers still
                    # missing: every pending child is stalled-but-alive
                    # — escalate
                    for conn, wid in list(pending.items()):
                        self._kill_worker(wid)
                        stalled.append(wid)
                else:
                    # drain bound hit with *no* deadline configured: the
                    # user never opted into stall detection, so pending
                    # children may just be slow — abandon their answers
                    # (the round is discarded by recovery anyway) without
                    # killing or evicting them; the recovery restart's
                    # teardown reaps them, escalating only if they
                    # ignore it
                    pass
                pending.clear()
                break
            for conn in ready:
                wid = pending.pop(conn)
                try:
                    results[wid] = self._hydrate(wid, conn.recv())
                except (EOFError, OSError):
                    # the child is gone: real (or injected-hard-exit)
                    # death.  Reap the corpse immediately — an in-place
                    # promotion (see replace_workers) must find only
                    # live children in the maps
                    self._kill_worker(wid)
                    crashed.append(wid)
        if crashed or stalled:
            raise _round_failure(iteration, crashed, stalled,
                                 crash_reason="worker process died")
        return [results[wid] for wid in self._worker_ids]

    def collect_round_stream(self):
        """Yield results as their pipes become readable (arrival order).

        The same deadline / drain-bound / escalation ladder as
        :meth:`collect_round`; failures raise in one typed exception
        after the stream ends, so a consumer that already committed
        early arrivals discards them through the normal recovery path.
        """
        if self._round_state is None:
            raise RuntimeError("collect_round without a sent round")
        iteration, crashed, stalled = self._round_state
        self._round_state = None
        deadline = (None if self.round_timeout is None
                    else time.monotonic() + self.round_timeout)
        pending = {self._conns[wid]: wid for wid in self._worker_ids
                   if wid not in crashed and wid in self._conns}
        while pending:
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            elif crashed or stalled:
                timeout = self.DRAIN_TIMEOUT
            else:
                timeout = None
            ready = conn_wait(list(pending), timeout)
            if not ready:
                if deadline is not None:
                    for conn, wid in list(pending.items()):
                        self._kill_worker(wid)
                        stalled.append(wid)
                pending.clear()
                break
            for conn in ready:
                wid = pending.pop(conn)
                try:
                    result = self._hydrate(wid, conn.recv())
                except (EOFError, OSError):
                    self._kill_worker(wid)
                    crashed.append(wid)
                    continue
                yield wid, result
        if crashed or stalled:
            raise _round_failure(iteration, crashed, stalled,
                                 crash_reason="worker process died")

    def combine(self, worker_id: int, seed_state: dict, lo: int, hi: int,
                iteration: int, labels=None) -> dict:
        """One tree-combine round trip to the named child.

        A broken pipe at either phase is a worker death
        (:class:`WorkerCrash`); an answer missing past ``round_timeout``
        escalates the child exactly like a round stall
        (:class:`WorkerStall`).  Worker-side exceptions arrive marshalled
        under the ``_COMBINE_ERR`` marker and re-raise here.
        """
        conn = self._conns.get(worker_id)
        if conn is None:
            raise WorkerCrash(worker_id, iteration,
                              reason="worker process died")
        payload = ("combine", seed_state, lo, hi, iteration, labels)
        # combine traffic stays on the pipe under both transports (an
        # O(log W) trickle of continuation states, not a bulk payload)
        # and counts against the same per-fit byte totals
        self.broadcast_bytes += _pickled_nbytes(payload)
        try:
            conn.send(payload)
            if self.round_timeout is not None:
                if not conn.poll(self.round_timeout):
                    self._kill_worker(worker_id)
                    raise WorkerStall(worker_id, iteration)
            out = conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            self._kill_worker(worker_id)
            raise WorkerCrash(worker_id, iteration,
                              reason="worker process died") from None
        if isinstance(out, tuple) and len(out) == 2 and out[0] == _COMBINE_ERR:
            raise out[1]
        self.gather_bytes += _pickled_nbytes(out)
        return out

    def run_round(self, y, iteration, directives) -> list[RoundResult]:
        self.send_round(y, iteration, directives)
        return self.collect_round()

    def cancel_round(self) -> None:
        """Abandon the in-flight round.  Children may be mid-compute
        with a result about to hit a pipe nobody will drain, so the
        whole brood is killed; ``shutdown`` or ``restart`` must follow
        (the coordinator's teardown path does exactly that)."""
        if self._round_state is None:
            return
        self._round_state = None
        for wid in list(self._conns):
            self._kill_worker(wid)

    def heartbeat(self, iteration: int, timeout: float) -> None:
        """Ping every child and poll the replies against one deadline.

        This is the real detector: a child that does not answer in time
        is escalated (terminate, then kill) exactly like a round-
        deadline stall, so even a multi-minute wedge costs at most
        ``timeout`` wall seconds.  A broken pipe at either phase is a
        death.
        """
        if self._round_state is not None:
            raise RuntimeError("heartbeat with a round in flight")
        crashed, stalled = [], []
        pending = {}
        for wid in self._worker_ids:
            conn = self._conns.get(wid)
            if conn is None:
                crashed.append(wid)
                continue
            try:
                conn.send(("ping",))
            except (BrokenPipeError, OSError):
                self._kill_worker(wid)
                crashed.append(wid)
                continue
            pending[conn] = wid
        deadline = time.monotonic() + timeout
        while pending:
            ready = conn_wait(list(pending),
                              max(0.0, deadline - time.monotonic()))
            if not ready:
                for conn, wid in list(pending.items()):
                    self._kill_worker(wid)
                    stalled.append(wid)
                pending.clear()
                break
            for conn in ready:
                wid = pending.pop(conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._kill_worker(wid)
                    crashed.append(wid)
                    continue
                if msg != _PONG:
                    # protocol desync — treat like a death
                    self._kill_worker(wid)
                    crashed.append(wid)
        if crashed or stalled:
            exc = _round_failure(iteration, crashed, stalled,
                                 crash_reason="worker process died")
            exc.detector = "heartbeat"
            raise exc

    # -- hot spares / membership ---------------------------------------
    def prewarm_spares(self, n: int) -> None:
        """Top the spare pool up to ``n`` pre-booted children.

        Boot is asynchronous: this returns immediately, the spares
        announce themselves via the ``_SPARE_READY`` handshake which
        :meth:`spares_ready` consumes without blocking.  A spare costs
        one idle interpreter; it holds no shard until configured.
        """
        while len(self._spares) < int(n):
            proc, conn = self._boot_child(None, -1)
            self._spares.append([proc, conn, False])

    def spares_ready(self) -> int:
        """Count booted spares, consuming pending handshakes (never
        blocks); dead spares are reaped from the pool."""
        live, ready = [], 0
        for entry in self._spares:
            proc, conn, is_ready = entry
            if not is_ready:
                try:
                    if conn.poll(0):
                        entry[2] = conn.recv() == _SPARE_READY
                except (EOFError, OSError):
                    self._reap(proc, conn)
                    continue
            if entry[2]:
                ready += 1
            live.append(entry)
        self._spares = live
        return ready

    @staticmethod
    def _reap(proc, conn) -> None:
        try:
            conn.close()
        except OSError:
            pass
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)

    def _take_ready_spare(self):
        """Pop one booted spare as (proc, conn), or None."""
        self.spares_ready()
        for entry in self._spares:
            if entry[2]:
                self._spares.remove(entry)
                return entry[0], entry[1]
        return None

    def _collect_ready(self, wids, reason: str) -> None:
        """Second phase of a two-phase (re)configure: every named child
        must answer ``_READY`` within the spawn budget."""
        for wid in wids:
            conn = self._conns.get(wid)
            msg = None
            try:
                if conn is not None and conn.poll(self.SPAWN_TIMEOUT):
                    msg = conn.recv()
            except (EOFError, OSError):
                msg = None
            if msg != _READY:
                self._kill_worker(wid)
                raise WorkerCrash(wid, 0, reason=reason)
            self._finish_boot(wid)

    def replace_workers(self, factory, worker_ids) -> None:
        """Promote spares (or cold-spawn) onto exactly ``worker_ids``.

        Survivors are left running — they keep their warm engine caches
        and never re-handshake.  Ready spares are configured in place
        (the whole child cold-start is skipped); only if the pool runs
        dry does a replacement pay a cold spawn.  Two-phase: all
        configures are sent before any ready handshake is awaited, so
        multiple replacements boot concurrently.
        """
        self._factory = factory
        worker_ids = tuple(worker_ids)
        for wid in worker_ids:
            self._kill_worker(wid)           # sweep any corpse remains
            spare = self._take_ready_spare()
            if spare is not None:
                proc, conn = spare
                self._note_boot(wid, "spare_promote")
                conn.send(("configure", factory, wid))
            else:
                self._note_boot(wid, "cold_spawn")
                proc, conn = self._boot_child(factory, wid)
            self._procs[wid] = proc
            self._conns[wid] = conn
        self._collect_ready(worker_ids,
                            "replacement worker failed to start")

    def reconfigure(self, factory=None, worker_ids=None) -> None:
        """Adopt a new (factory, worker set), reusing warm children.

        Like ``restart`` but without burning the brood: every live
        child (and every ready spare) is re-targeted with a configure
        message — it closes its old worker and builds the new shard in
        the warm interpreter.  Surplus warm children demote back into
        the spare pool; missing slots cold-spawn.  Used by the fleet's
        shrink and re-expand transitions.
        """
        if factory is not None:
            self._factory = factory
        if worker_ids is not None:
            self._worker_ids = tuple(worker_ids)
        self._round_state = None
        pool = [(self._procs[wid], self._conns[wid])
                for wid in list(self._procs)]
        self._procs, self._conns = {}, {}
        while True:
            spare = self._take_ready_spare()
            if spare is None:
                break
            pool.append(spare)
        for wid in self._worker_ids:
            proc = conn = None
            while pool:
                proc, conn = pool.pop(0)
                try:
                    self._note_boot(wid, "reconfigure")
                    conn.send(("configure", self._factory, wid))
                    break
                except (BrokenPipeError, OSError):
                    self._reap(proc, conn)    # died warm — try the next
                    proc = conn = None
            if proc is None:
                self._note_boot(wid, "cold_spawn")
                proc, conn = self._boot_child(self._factory, wid)
            self._procs[wid] = proc
            self._conns[wid] = conn
        # surplus warm children become ready spares: still configured
        # with their old shard, but a future configure re-targets them
        for proc, conn in pool:
            self._spares.append([proc, conn, True])
        self._collect_ready(self._worker_ids,
                            "worker failed to start")


def make_executor(name: str) -> BaseExecutor:
    """Build an executor backend by config name."""
    try:
        cls = {"serial": SerialExecutor, "thread": ThreadExecutor,
               "process": ProcessExecutor}[name]
    except KeyError:
        raise ValueError(f"unknown executor {name!r}; choose from "
                         f"('serial', 'thread', 'process')")
    return cls()
