"""Worker-level fault injection: crash, stall, corrupt-partial.

The paper's ABFT/DMR protects against *silent* SEUs inside a device;
this module models the orthogonal failure class of a distributed fit —
a whole worker misbehaving — and extends the taxonomy of
:mod:`repro.gpusim.faults` up one level:

========================  ==========================================
kind                      models
========================  ==========================================
``crash``                 the worker process dies mid-round (the
                          process executor really ``_exit``\\ s; the
                          in-process executors raise
                          :class:`WorkerCrash`)
``stall``                 a straggler: the worker sleeps before
                          answering its round
``corrupt_partial``       the worker's returned partial sums carry a
                          single flipped bit — located through the
                          same :class:`~repro.gpusim.faults.FaultPlan`
                          fractional geometry the SEU injector uses,
                          and caught by the coordinator's checksum
                          test over the merged partials
``wedge``                 the worker answers its round normally, then
                          wedges *between* rounds: its next heartbeat
                          ``ping`` sleeps for ``wedge_s``.  Invisible
                          to the round deadline (the round was
                          answered); only the between-round heartbeat
                          of the fleet manager catches it
``crash_combine``         the worker answers its round normally, then
                          dies when the coordinator asks it to run a
                          tree-reduce ``combine`` — the mid-reduce
                          crash the tree topology's recovery replay
                          must absorb bit-exactly
========================  ==========================================

Faults can be scheduled explicitly (tests, benchmarks:
:meth:`WorkerFaultInjector.crash_at` et al.) or drawn randomly per
(worker, iteration).  Either way every fault fires **at most once**:
after a crash the coordinator replays iterations from the last
checkpoint, and a re-firing fault would pin the fit in a crash loop.
Random draws are cached per (iteration, worker) so a replayed iteration
neither re-fires nor re-rolls its dice — recovery stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.faults import FaultPlan

__all__ = ["CRASH", "STALL", "CORRUPT_PARTIAL", "WEDGE", "CRASH_COMBINE",
           "WORKER_FAULT_KINDS",
           "WorkerCrash", "WorkerStall", "WorkerFaultPlan",
           "WorkerFaultInjector"]

CRASH = "crash"
STALL = "stall"
CORRUPT_PARTIAL = "corrupt_partial"
WEDGE = "wedge"
CRASH_COMBINE = "crash_combine"
WORKER_FAULT_KINDS = (CRASH, STALL, CORRUPT_PARTIAL, WEDGE, CRASH_COMBINE)


class WorkerCrash(RuntimeError):
    """A worker died (injected or real) during a round.

    The coordinator catches this, restores the last checkpoint and
    restarts (or elastically re-shards) the executor; it propagates only
    when recovery is exhausted (``max_recoveries``).

    A round can lose more than one worker: executors collect *every*
    failure of the round before raising (a second dead or stalled worker
    must never turn recovery into a hang), so the exception carries the
    full classification — ``crashed_ids`` (workers observed dead) and
    ``stalled_ids`` (workers that blew the round deadline and were
    terminated).  ``worker_id`` stays the first failure for
    backward-compatible messages and traces.
    """

    def __init__(self, worker_id: int, iteration: int,
                 reason: str = "injected", *,
                 crashed_ids=None, stalled_ids=None):
        super().__init__(
            f"worker {worker_id} crashed at iteration {iteration} ({reason})")
        self.worker_id = worker_id
        self.iteration = iteration
        self.reason = reason
        self.crashed_ids = (tuple(crashed_ids) if crashed_ids is not None
                            else (worker_id,))
        self.stalled_ids = tuple(stalled_ids or ())

    @property
    def failed_ids(self) -> tuple:
        """Every worker lost this round (crashed then stalled)."""
        return self.crashed_ids + self.stalled_ids


class WorkerStall(WorkerCrash):
    """A worker blew the round deadline (stalled-but-alive).

    Raised by executors whose ``round_timeout`` expired while one or
    more workers had not answered.  A subclass of :class:`WorkerCrash`
    so every existing recovery path applies; the coordinator classifies
    it separately (``worker_stalls`` vs ``worker_crashes``) and, with
    ``elastic=True``, re-shards onto the survivors instead of
    respawning the stalled worker.
    """

    def __init__(self, worker_id: int, iteration: int,
                 reason: str = "stalled past round deadline", *,
                 stalled_ids=None):
        super().__init__(worker_id, iteration, reason, crashed_ids=(),
                         stalled_ids=(stalled_ids if stalled_ids is not None
                                      else (worker_id,)))


@dataclass(frozen=True)
class WorkerFaultPlan:
    """One scheduled worker-level fault.

    ``seu`` reuses the SEU taxonomy's :class:`FaultPlan` to locate the
    corrupt-partial flip inside the worker's packed ``(K, N+1)`` sums
    (fractional coordinates, so one plan applies to any shape); it is
    None for crash/stall plans.
    """

    kind: str
    worker_id: int
    iteration: int
    seu: FaultPlan | None = None
    stall_s: float = 0.0
    wedge_s: float = 600.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(f"unknown worker fault kind {self.kind!r}; "
                             f"choose from {WORKER_FAULT_KINDS}")
        if self.kind == CORRUPT_PARTIAL and self.seu is None:
            raise ValueError("corrupt_partial plans need an seu FaultPlan")


class WorkerFaultInjector:
    """Plans worker-level faults for the coordinator's rounds.

    Parameters
    ----------
    plans : iterable of WorkerFaultPlan
        Explicitly scheduled faults (each fires once).
    rng : np.random.Generator or seed, optional
        Randomness source for the probabilistic mode.
    p_crash, p_stall, p_corrupt : float
        Per-(worker, iteration) probabilities of drawing each fault
        kind (evaluated in that order; at most one fires per cell).
    stall_s : float
        Sleep duration of drawn stalls.
    corrupt_bit : int
        Bit index flipped by drawn corrupt-partial faults (defaults to
        a high-exponent bit so the checksum test sees it; low mantissa
        bits escape the threshold exactly like sub-threshold SEUs).
    max_faults : int, optional
        Global cap across all kinds (None = unlimited).
    """

    def __init__(self, plans=(), *, rng=None, p_crash: float = 0.0,
                 p_stall: float = 0.0, p_corrupt: float = 0.0,
                 stall_s: float = 0.005, corrupt_bit: int = 55,
                 max_faults: int | None = None):
        for name, p in (("p_crash", p_crash), ("p_stall", p_stall),
                        ("p_corrupt", p_corrupt)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.plans: list[WorkerFaultPlan] = list(plans)
        self.rng = np.random.default_rng(rng)
        self.p_crash = float(p_crash)
        self.p_stall = float(p_stall)
        self.p_corrupt = float(p_corrupt)
        self.stall_s = float(stall_s)
        self.corrupt_bit = int(corrupt_bit)
        self.max_faults = max_faults
        self.fired: list[WorkerFaultPlan] = []
        self._fired_scheduled: set[int] = set()       # indices into plans
        self._drawn: dict[tuple[int, int], WorkerFaultPlan | None] = {}
        self._drawn_fired: set[tuple[int, int]] = set()

    # -- convenience constructors --------------------------------------
    @classmethod
    def crash_at(cls, worker_id: int, iteration: int) -> "WorkerFaultInjector":
        return cls([WorkerFaultPlan(CRASH, worker_id, iteration)])

    @classmethod
    def stall_at(cls, worker_id: int, iteration: int,
                 stall_s: float = 0.005) -> "WorkerFaultInjector":
        return cls([WorkerFaultPlan(STALL, worker_id, iteration,
                                    stall_s=stall_s)])

    @classmethod
    def wedge_at(cls, worker_id: int, iteration: int,
                 wedge_s: float = 600.0) -> "WorkerFaultInjector":
        """Worker answers ``iteration`` normally, then wedges: its next
        heartbeat ping hangs for ``wedge_s`` seconds.  Pick a small
        ``wedge_s`` on the serial backend, where the ping runs in the
        coordinator's own thread."""
        return cls([WorkerFaultPlan(WEDGE, worker_id, iteration,
                                    wedge_s=wedge_s)])

    @classmethod
    def crash_combine_at(cls, worker_id: int,
                         iteration: int) -> "WorkerFaultInjector":
        """Worker answers ``iteration``'s round, then dies inside the
        tree reduce's ``combine`` step (no-op on topologies that never
        ask it to combine)."""
        return cls([WorkerFaultPlan(CRASH_COMBINE, worker_id, iteration)])

    @classmethod
    def corrupt_at(cls, worker_id: int, iteration: int, *, bit: int = 55,
                   row_frac: float = 0.5,
                   col_frac: float = 0.5) -> "WorkerFaultInjector":
        seu = FaultPlan(step=0, row_frac=row_frac, col_frac=col_frac, bit=bit)
        return cls([WorkerFaultPlan(CORRUPT_PARTIAL, worker_id, iteration,
                                    seu=seu)])

    # ------------------------------------------------------------------
    @property
    def _budget_left(self) -> bool:
        return self.max_faults is None or len(self.fired) < self.max_faults

    def _draw(self, iteration: int, worker_id: int) -> WorkerFaultPlan | None:
        """Roll the probabilistic fault for one (iteration, worker) cell,
        at most once ever (replayed iterations reuse the cached draw)."""
        key = (iteration, worker_id)
        if key in self._drawn:
            return self._drawn[key]
        plan = None
        if self.p_crash and self.rng.random() < self.p_crash:
            plan = WorkerFaultPlan(CRASH, worker_id, iteration)
        elif self.p_stall and self.rng.random() < self.p_stall:
            plan = WorkerFaultPlan(STALL, worker_id, iteration,
                                   stall_s=self.stall_s)
        elif self.p_corrupt and self.rng.random() < self.p_corrupt:
            seu = FaultPlan(step=0, row_frac=float(self.rng.random()),
                            col_frac=float(self.rng.random()),
                            bit=self.corrupt_bit)
            plan = WorkerFaultPlan(CORRUPT_PARTIAL, worker_id, iteration,
                                   seu=seu)
        self._drawn[key] = plan
        return plan

    def directives_for_round(self, iteration: int,
                             worker_ids) -> dict[int, dict]:
        """Per-worker fault directives for one round (one-shot each).

        Returns a dict ``worker_id -> directive`` where a directive is
        ``{"crash": True}``, ``{"stall_s": s}``, ``{"wedge_s": s}`` or
        ``{"corrupt": FaultPlan}``; workers absent from the dict run
        clean.  Every
        plan returned here is marked fired and will never be returned
        again — including when the iteration replays after recovery.
        """
        directives: dict[int, dict] = {}
        for wid in worker_ids:
            if not self._budget_left:
                break
            plan = None
            for idx, cand in enumerate(self.plans):
                if (idx not in self._fired_scheduled
                        and cand.worker_id == wid
                        and cand.iteration == iteration):
                    plan = cand
                    self._fired_scheduled.add(idx)
                    break
            if plan is None and (self.p_crash or self.p_stall
                                 or self.p_corrupt):
                key = (iteration, wid)
                plan = self._draw(iteration, wid)
                if plan is not None and key in self._drawn_fired:
                    plan = None
                elif plan is not None:
                    self._drawn_fired.add(key)
            if plan is None:
                continue
            self.fired.append(plan)
            if plan.kind == CRASH:
                directives[wid] = {"crash": True}
            elif plan.kind == STALL:
                directives[wid] = {"stall_s": plan.stall_s}
            elif plan.kind == WEDGE:
                directives[wid] = {"wedge_s": plan.wedge_s}
            elif plan.kind == CRASH_COMBINE:
                directives[wid] = {"crash_combine": True}
            else:
                directives[wid] = {"corrupt": plan.seu}
        return directives
