"""Self-healing fleet membership for the sharded coordinator.

The round loop in :mod:`repro.dist.coordinator` already detects worker
loss (round deadlines, broken pipes) and recovers bit-exactly from
checkpoints; what it lacked was *membership* management — the fit
either respawned the original set or shrank permanently onto the
survivors.  :class:`FleetManager` closes that loop with three
mechanisms, all built on the executor verbs documented in
:mod:`repro.dist.executors`:

**Heartbeats.**  Between rounds the manager pings every worker
(rate-limited by ``heartbeat_interval``).  A worker that answered its
round but then wedged is invisible to the round deadline until the
*next* round blows it — one full round budget later; the heartbeat
catches it in at most ``max(0.2, interval)`` seconds instead.
Heartbeat failures raise the same typed exceptions as round failures
(tagged ``detector="heartbeat"``), so every existing recovery path
applies unchanged.

**Hot spares + promotion.**  ``hot_spares`` pre-provisions replacement
capacity: real pre-booted children on the process backend (interpreter
up, imports done), promotion tokens in-process.  When a round loses
workers and enough spares are ready, the manager *promotes in place* —
only the dead ids are rebuilt, the shard plan never changes, and the
survivors keep running with their warm per-fit operand caches (safe:
workers are stateless between rounds, and SEU streams are keyed by
``(base_seed, worker_id, iteration)``, not history).

**Shrink → re-expand.**  When promotion is not possible (no spares
ready), the fit shrinks elastically onto the survivors to keep making
progress, and the manager re-expands back toward ``target_workers`` at
a later round boundary once spares boot: replacements reuse the
missing worker ids (lowest first), so a full re-expansion restores the
original plan exactly.  Because shard boundaries are GEMM-unit-aligned
and the merge is a sequential continuation
(:mod:`repro.dist.plan`), every membership history — shrink, regrow,
repeat — produces bit-identical centroids to an uninterrupted
``n_workers=1`` fit.

The optional ``spawn_hook`` gives the embedding environment (a cluster
scheduler, a test) a veto/budget on *booting new workers*: it is
called with the number of workers the manager wants to boot and
returns how many it may (None = all, 0 = none this round).  Promotion
of already-booted spares never consults it.
"""

from __future__ import annotations

import time

from repro.dist.plan import ShardPlan
from repro.obs.events import EventBus

__all__ = ["FleetManager"]


class FleetManager:
    """Membership policy: heartbeats, spare promotion, re-expansion.

    Parameters
    ----------
    target_workers : int, optional
        Fleet size the manager steers toward (promotion and
        re-expansion).  None leaves membership untouched — heartbeats
        can still run, and recovery semantics stay with the
        coordinator's ``elastic`` flag.
    hot_spares : int
        Replacement capacity kept provisioned ahead of any failure
        (pre-booted children on the process backend, promotion tokens
        in-process).  Re-provisioned after every promotion/expansion.
    heartbeat_interval : float, optional
        Minimum seconds between between-round heartbeat sweeps; None
        disables heartbeats.  The per-sweep timeout is
        ``max(0.2, interval)`` — detection latency is therefore bounded
        by roughly ``interval + timeout``, independent of (and in
        practice far below) the round deadline.
    spawn_hook : callable, optional
        ``spawn_hook(n_needed) -> int | None`` — budget on booting new
        workers (see module docstring).
    event_hook : callable, optional
        **Deprecated** in favour of ``event_bus`` — kept as a
        backwards-compatible shim.  ``event_hook(event: dict) -> None``
        receives the same payloads as before (a dict with an
        ``"event"`` key plus action-specific fields); internally the
        callable is subscribed to the fleet's event bus through
        :func:`repro.obs.events.legacy_hook_adapter` filtered to
        ``source="fleet"``, so it sees exactly the fleet event stream
        it always did — in the same relative order a full-bus
        subscriber observes those events — while new coordinator /
        checkpoint / executor kinds stay bus-only.  Exceptions from
        the hook propagate — keep it cheap and non-throwing.
    event_bus : :class:`repro.obs.events.EventBus`, optional
        Bus the manager publishes membership events onto (source
        ``"fleet"``): ``heartbeat`` sweeps (and ``heartbeat_failed``
        when a sweep detects a loss, published before the typed
        failure propagates), ``promote`` / ``shrink`` recovery
        decisions and ``expand`` regrowth.  A private bus is created
        when neither a bus nor a legacy hook is given, so
        :attr:`event_bus` is always subscribable.  Subscribers run
        synchronously in publish order on the fit thread.
    """

    #: floor of the per-sweep ping timeout: pings are pure IPC, but a
    #: loaded host needs some slack before "slow" means "wedged"
    MIN_PING_TIMEOUT = 0.2

    def __init__(self, target_workers: int | None = None,
                 hot_spares: int = 0,
                 heartbeat_interval: float | None = None,
                 spawn_hook=None, event_hook=None, event_bus=None):
        if target_workers is not None and target_workers < 1:
            raise ValueError(
                f"target_workers must be >= 1, got {target_workers}")
        if hot_spares < 0:
            raise ValueError(f"hot_spares must be >= 0, got {hot_spares}")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0, got "
                             f"{heartbeat_interval}")
        self.target_workers = target_workers
        self.hot_spares = int(hot_spares)
        self.heartbeat_interval = heartbeat_interval
        self.spawn_hook = spawn_hook
        self.event_hook = event_hook
        self.event_bus = event_bus if event_bus is not None else EventBus()
        if event_hook is not None:
            # deprecated dict-callable path: subscribe it through the
            # legacy adapter, filtered to fleet events — the PR 7 hook
            # never saw other subsystems, and the shared bus now
            # carries coordinator/checkpoint/executor kinds too
            self.event_bus.subscribe_legacy(event_hook, source="fleet")
        self.executor = None
        self._last_beat = 0.0
        #: counters the coordinator folds into its fit result
        self.promotions = 0
        self.expands = 0

    def _emit(self, event: str, **fields) -> None:
        """Publish one structured event (ordered, sync) on the bus."""
        self.event_bus.publish(event, source="fleet", **fields)

    # ------------------------------------------------------------------
    @property
    def manages_membership(self) -> bool:
        """True when recovery/expansion decisions route through the
        fleet (otherwise the coordinator's legacy elastic/restart
        policy applies unchanged)."""
        return self.target_workers is not None or self.hot_spares > 0

    def attach(self, executor, plan: ShardPlan) -> None:
        """Bind to the fit's executor and initial plan; clamps the
        target to the starting fleet (a fleet never grows past the
        size it started with — shards would have no rows to split) and
        provisions the first spares."""
        self.executor = executor
        # rate-limit from fit start: the first sweep fires one interval
        # into the fit, not at an arbitrary offset from process boot
        self._last_beat = time.monotonic()
        if self.target_workers is None and self.manages_membership:
            self.target_workers = plan.n_workers
        if self.target_workers is not None:
            self.target_workers = min(self.target_workers, plan.n_workers)
        if self.hot_spares:
            executor.prewarm_spares(self.hot_spares)

    # -- heartbeats ----------------------------------------------------
    def maybe_heartbeat(self, iteration: int) -> None:
        """Run one heartbeat sweep if the interval has elapsed.

        Must be called with no round in flight; raises the executor's
        typed failure (``detector="heartbeat"``) on a dead or wedged
        worker, caught by the coordinator's normal recovery path.
        """
        if self.heartbeat_interval is None or self.executor is None:
            return
        now = time.monotonic()
        if now - self._last_beat < self.heartbeat_interval:
            return
        self._last_beat = now
        timeout = max(self.MIN_PING_TIMEOUT, self.heartbeat_interval)
        try:
            self.executor.heartbeat(iteration, timeout)
        except Exception as exc:
            # log before the typed failure reaches the coordinator's
            # recovery path, so the event stream reads kill -> promote
            self._emit("heartbeat_failed", iteration=int(iteration),
                       failed_ids=sorted(getattr(exc, "failed_ids", ())))
            raise
        self._emit("heartbeat", iteration=int(iteration))

    # -- recovery ------------------------------------------------------
    def recover(self, plan: ShardPlan, make_factory, crash
                ) -> tuple[ShardPlan, object, str]:
        """Re-establish a working fleet after losing ``crash.failed_ids``.

        Returns ``(plan, factory, action)`` where action is:

        * ``"promote"`` — enough spares were ready: the dead ids were
          rebuilt in place, the plan is unchanged, survivors kept
          running.  The cheapest path (no restart, no replan).
        * ``"shrink"`` — spares were not ready: re-sharded onto the
          survivors (same as the legacy elastic path) so the fit keeps
          making progress; :meth:`maybe_expand` regrows later.

        Readiness is checked *before* provisioning more spares, so the
        promote/shrink choice is deterministic for a given
        ``hot_spares`` setting; the pool is re-warmed afterwards either
        way.
        """
        lost = [wid for wid in crash.failed_ids if wid in plan.worker_ids]
        survivors = [wid for wid in plan.worker_ids if wid not in lost]
        if not survivors:
            raise ValueError("recover() needs at least one survivor")
        if lost and self.executor.spares_ready() >= len(lost):
            factory = make_factory(plan)
            self.executor.replace_workers(factory, lost)
            self.promotions += len(lost)
            action = "promote"
            self._emit("promote", lost=sorted(lost),
                       survivors=sorted(survivors))
        else:
            plan = plan.replan(survivors)
            factory = make_factory(plan)
            self.executor.reconfigure(factory, plan.worker_ids)
            action = "shrink"
            self._emit("shrink", lost=sorted(lost),
                       survivors=sorted(survivors))
        if self.hot_spares:
            self.executor.prewarm_spares(self.hot_spares)
        return plan, factory, action

    # -- re-expansion --------------------------------------------------
    def maybe_expand(self, plan: ShardPlan, make_factory
                     ) -> tuple[ShardPlan, object] | None:
        """Regrow a shrunken fleet toward ``target_workers`` at a round
        boundary, or None when already at target (or not managing).

        Replacements reuse the *missing* worker ids, lowest first, so
        regrowing to the full target restores the original plan (and
        therefore the original shard boundaries) exactly.  Only boots
        as many new workers as ready spares + the ``spawn_hook`` budget
        allow; a partial expansion regrows the rest at later
        boundaries.
        """
        if self.target_workers is None or self.executor is None:
            return None
        have = plan.n_workers
        if have >= self.target_workers:
            return None
        missing = sorted(set(range(self.target_workers))
                         - set(plan.worker_ids))
        grow = len(missing)
        ready = self.executor.spares_ready()
        to_boot = max(0, grow - ready)
        if to_boot and self.spawn_hook is not None:
            allowed = self.spawn_hook(to_boot)
            if allowed is not None:
                to_boot = min(to_boot, max(0, int(allowed)))
        grow = min(grow, ready + to_boot)
        if grow <= 0:
            return None
        member_ids = sorted(list(plan.worker_ids) + missing[:grow])
        new_plan = plan.replan(member_ids)
        factory = make_factory(new_plan)
        self.executor.reconfigure(factory, new_plan.worker_ids)
        self.expands += grow
        self._emit("expand", grown=missing[:grow],
                   members=list(new_plan.worker_ids))
        if self.hot_spares:
            self.executor.prewarm_spares(self.hot_spares)
        return new_plan, factory
