"""Sharding a sample matrix across workers, bit-stably.

A :class:`ShardPlan` partitions the M sample rows into contiguous
per-worker shards whose boundaries are multiples of the engine's fixed
inner-GEMM row unit (:func:`repro.core.engine.unit_rows_for_tile`).
Because the streaming engine always issues GEMMs on that unit grid —
globally aligned from row 0 — a worker running the engine over its shard
executes the *identical* sequence of GEMM calls the single-worker engine
would execute over the same rows.  Per-row quantities (labels, min
squared distances, sample norms) are therefore bit-identical for any
shard count, which is the foundation of the ``repro.dist`` determinism
contract (see ``docs/distributed.md``).

Shards are balanced in whole units: with U total units and W workers,
each worker receives ``U // W`` units and the first ``U % W`` workers one
extra.  When there are fewer units than requested workers, the plan
clamps to one shard per unit (the effective worker count the coordinator
then uses).

**Tree reduce schedule.**  :func:`combine_schedule` derives the
coordinator's pairwise combine tree from a plan: level ``l`` extends
the running *prefix* — the continuation fold over shards ``[0, p)`` —
by the next ``p`` shards (``p`` doubles per level), so the whole
reduce is ``ceil(log2(W))`` combine messages instead of ``W - 1``
coordinator-side merge segments.  Each combine is owned by the lowest
worker of its right-hand range: it seeds an accumulator with the
prefix state and folds the range's rows in order, which keeps the
float association — and therefore every merged bit — identical to the
sequential star merge.  (A fuller binary tree would not help: float
addition is non-associative, so a combine whose left operand is not
the global prefix produces sums no exact reduce can use.)

**Elastic membership.**  :meth:`ShardPlan.replan` re-partitions the same
``[0, m)`` rows onto an arbitrary member set — the surviving workers
after a loss, or a grown set when replacements spawn.  The re-plan keeps
the two invariants the merge depends on: boundaries stay on the same
unit grid, and shards stay in ascending row order (members sorted by
id), so the coordinator's sequential-continuation merge over the new
shards carries exactly the same bits as before the membership change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.arrays import ceil_div

__all__ = ["Shard", "ShardPlan", "CombineStep", "combine_schedule"]


def _partition(m: int, unit_rows: int, worker_ids) -> tuple["Shard", ...]:
    """Balanced unit-aligned shards over ``[0, m)``, one per worker id,
    assigned in the given id order (ascending row ranges)."""
    ids = list(worker_ids)
    n_units = ceil_div(m, unit_rows)
    eff = min(len(ids), n_units)
    base, extra = divmod(n_units, eff)
    shards = []
    lo = 0
    for i in range(eff):
        units = base + (1 if i < extra else 0)
        hi = min(lo + units * unit_rows, m)
        shards.append(Shard(worker_id=ids[i], lo=lo, hi=hi))
        lo = hi
    assert lo == m, "shard plan does not cover all rows"
    return tuple(shards)


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous row range ``[lo, hi)``."""

    worker_id: int
    lo: int
    hi: int

    @property
    def rows(self) -> int:
        return self.hi - self.lo

    @property
    def slice(self) -> slice:
        return slice(self.lo, self.hi)


@dataclass(frozen=True)
class ShardPlan:
    """Unit-aligned partition of ``m`` sample rows across workers."""

    m: int
    unit_rows: int
    shards: tuple[Shard, ...]

    @classmethod
    def build(cls, m: int, n_workers: int, unit_rows: int) -> "ShardPlan":
        """Partition ``[0, m)`` into at most ``n_workers`` aligned shards.

        Parameters
        ----------
        m : int
            Total sample rows (>= 1).
        n_workers : int
            Requested worker count (>= 1); clamped to the number of
            whole GEMM units so every shard is non-empty.
        unit_rows : int
            The engine's fixed inner-GEMM row unit for the fit's tile
            geometry.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if unit_rows < 1:
            raise ValueError(f"unit_rows must be >= 1, got {unit_rows}")
        return cls(m=m, unit_rows=unit_rows,
                   shards=_partition(m, unit_rows, range(n_workers)))

    def replan(self, member_ids) -> "ShardPlan":
        """The same rows, re-balanced onto ``member_ids`` (elastic).

        Used by the coordinator to shrink onto the survivors after a
        worker loss — or to re-expand when replacements spawn.  Members
        are sorted by id and assigned shards in row order, boundaries
        stay on the original unit grid, and the member count clamps to
        the unit count exactly like :meth:`build`; the merge order (and
        therefore every merged bit) is unchanged by any membership
        history.
        """
        members = sorted({int(w) for w in member_ids})
        if not members:
            raise ValueError("replan needs at least one member")
        return ShardPlan(m=self.m, unit_rows=self.unit_rows,
                         shards=_partition(self.m, self.unit_rows, members))

    def shard_of(self, worker_id: int) -> Shard:
        """The shard owned by ``worker_id`` (ids are sparse after a
        re-plan, so positional indexing does not apply)."""
        for shard in self.shards:
            if shard.worker_id == worker_id:
                return shard
        raise KeyError(f"worker {worker_id} owns no shard in this plan")

    @property
    def n_workers(self) -> int:
        """Effective worker count (after the unit clamp)."""
        return len(self.shards)

    @property
    def worker_ids(self) -> tuple[int, ...]:
        return tuple(s.worker_id for s in self.shards)

    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(s.rows for s in self.shards)


@dataclass(frozen=True)
class CombineStep:
    """One level of the pairwise combine tree.

    The owner worker receives the prefix state (the continuation fold
    over rows ``[0, lo)``), folds rows ``[lo, hi)`` through it in
    order, and returns the extended prefix state covering ``[0, hi)``.

    Attributes
    ----------
    level:
        1-based tree level (``prefix_shards`` doubles per level).
    lo, hi:
        Absolute row range the owner folds at this level (adjacent to
        the prefix: ``lo`` equals the prefix state's ``hi``).
    owner_id:
        Worker that executes the combine — the lowest-id member of the
        right-hand shard range (level 1's owner folds exactly its own
        shard, so its cached round labels suffice).
    prefix_shards:
        Number of shards the incoming prefix state covers.
    """

    level: int
    lo: int
    hi: int
    owner_id: int
    prefix_shards: int


def combine_schedule(plan: ShardPlan) -> tuple[CombineStep, ...]:
    """The plan's pairwise combine tree, in execution order.

    Level ``l`` combines the prefix over shards ``[0, p)`` with shards
    ``[p, min(2p, W))`` where ``p = 2**(l-1)`` — ``ceil(log2(W))``
    steps total, each strictly extending the prefix in shard order.  A
    single-shard plan needs no combine (the coordinator adopts worker
    0's partial directly).
    """
    shards = plan.shards
    w = len(shards)
    steps = []
    p = 1
    level = 1
    while p < w:
        q = min(2 * p, w)
        steps.append(CombineStep(
            level=level, lo=shards[p].lo, hi=shards[q - 1].hi,
            owner_id=shards[p].worker_id, prefix_shards=p))
        p = q
        level += 1
    return tuple(steps)
