"""Sharding a sample matrix across workers, bit-stably.

A :class:`ShardPlan` partitions the M sample rows into contiguous
per-worker shards whose boundaries are multiples of the engine's fixed
inner-GEMM row unit (:func:`repro.core.engine.unit_rows_for_tile`).
Because the streaming engine always issues GEMMs on that unit grid —
globally aligned from row 0 — a worker running the engine over its shard
executes the *identical* sequence of GEMM calls the single-worker engine
would execute over the same rows.  Per-row quantities (labels, min
squared distances, sample norms) are therefore bit-identical for any
shard count, which is the foundation of the ``repro.dist`` determinism
contract (see ``docs/distributed.md``).

Shards are balanced in whole units: with U total units and W workers,
each worker receives ``U // W`` units and the first ``U % W`` workers one
extra.  When there are fewer units than requested workers, the plan
clamps to one shard per unit (the effective worker count the coordinator
then uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.arrays import ceil_div

__all__ = ["Shard", "ShardPlan"]


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous row range ``[lo, hi)``."""

    worker_id: int
    lo: int
    hi: int

    @property
    def rows(self) -> int:
        return self.hi - self.lo

    @property
    def slice(self) -> slice:
        return slice(self.lo, self.hi)


@dataclass(frozen=True)
class ShardPlan:
    """Unit-aligned partition of ``m`` sample rows across workers."""

    m: int
    unit_rows: int
    shards: tuple[Shard, ...]

    @classmethod
    def build(cls, m: int, n_workers: int, unit_rows: int) -> "ShardPlan":
        """Partition ``[0, m)`` into at most ``n_workers`` aligned shards.

        Parameters
        ----------
        m : int
            Total sample rows (>= 1).
        n_workers : int
            Requested worker count (>= 1); clamped to the number of
            whole GEMM units so every shard is non-empty.
        unit_rows : int
            The engine's fixed inner-GEMM row unit for the fit's tile
            geometry.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if unit_rows < 1:
            raise ValueError(f"unit_rows must be >= 1, got {unit_rows}")
        n_units = ceil_div(m, unit_rows)
        eff = min(n_workers, n_units)
        base, extra = divmod(n_units, eff)
        shards = []
        lo = 0
        for wid in range(eff):
            units = base + (1 if wid < extra else 0)
            hi = min(lo + units * unit_rows, m)
            shards.append(Shard(worker_id=wid, lo=lo, hi=hi))
            lo = hi
        assert lo == m, "shard plan does not cover all rows"
        return cls(m=m, unit_rows=unit_rows, shards=tuple(shards))

    @property
    def n_workers(self) -> int:
        """Effective worker count (after the unit clamp)."""
        return len(self.shards)

    @property
    def worker_ids(self) -> tuple[int, ...]:
        return tuple(s.worker_id for s in self.shards)

    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(s.rows for s in self.shards)
