"""Zero-copy shared-memory data plane for the process executor.

The pipe transport pays a serialization tax on every hop of a sharded
fit: the dataset is pickled into each child at boot (and again for
every hot-spare promotion and re-expand), the centroids are pickled
``W`` times per round, and the ``(K, N+1)`` partials come back the
same way.  This module moves the bulk payloads into
:mod:`multiprocessing.shared_memory` segments and demotes the pipes to
small control/ack tokens:

* **Dataset segment** — ``x`` (and ``sample_weight``) are placed once
  in a shared segment; every worker maps its GEMM-unit-aligned shard
  as a *view* of the same physical pages.  Worker factories then
  pickle only a tiny :class:`ArrayRef`, so a cold spawn, a spare
  promotion and an elastic re-expand all attach in O(1) instead of
  re-shipping the shard.
* **Broadcast buffer** — the per-round centroids are written once into
  a generation-stamped buffer (seqlock style: ``gen_begin`` is written
  before the payload, ``gen_end`` after; a reader copies the payload
  and then validates both stamps against the generation its round
  token named, raising :class:`StaleGenerationError` on any mismatch)
  instead of being pickled into ``W`` pipes.
* **Result slots** — each worker owns one slot segment per shard plan;
  a round's labels / min-distances / fused partial (and, under the
  tree topology, the exported continuation state) are written there
  and the pipe carries back a stripped, token-sized ack.  The
  coordinator *copies* arrays out of the slot at collect time, so an
  overlapped next round can never scribble over partials the ABFT
  check still wants — and corrupt-partial injection lands in the slot
  itself, so the checksum path exercises the real shared data plane.

Synchronisation is by the round protocol, not by the stamps: the
coordinator publishes a generation strictly after every reply of the
previous one was collected, and a worker reads the buffer exactly once
per round token before answering.  The stamps are validation
(defence in depth), catching a torn or stale read as a hard error
instead of a silent wrong-centroid round.

**Cleanup.**  Segments are created by the coordinator process only,
so they are registered with the interpreter's ``resource_tracker`` —
if the coordinator dies without unlinking (even ``SIGKILL``), the
tracker process outlives it and unlinks every registered segment, so a
kill anywhere leaves no stranded ``/dev/shm`` entries.  Attach-side
opens in the children re-register the same names, but the children
*share the parent's tracker* (its fd is inherited under both fork and
spawn), so the registration set is one idempotent pool — the creator's
unlink unregisters exactly once and no child can race a second unlink.
:meth:`ShmSession.close` unlinks everything eagerly on the normal
path; Linux keeps existing mappings valid after an unlink, so a
straggler child can never fault on a replaced slot epoch.

Bit-identity: every array crosses the plane as raw bytes of the exact
dtype the pipe transport would have pickled — the shm fit is
bit-identical to the pipe fit (asserted by the hypothesis suite in
``tests/distributed/test_shm_transport.py`` and re-proved by the
``runner --smoke`` transport gate).
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass, replace
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SEGMENT_PREFIX", "ArrayRef", "BroadcastRef", "SlotRef",
           "ShmSession", "StaleGenerationError", "attach_array",
           "read_broadcast", "write_slot", "detach_all"]

#: every segment name starts with this marker, so tests (and humans)
#: can audit ``/dev/shm`` for strays left by a killed fit
SEGMENT_PREFIX = "reproshm"

#: int64 header words of the broadcast buffer and the result slots:
#: [gen_begin, gen_end, iteration, has_state]
_HEADER_WORDS = 4
_HEADER_BYTES = _HEADER_WORDS * 8


class StaleGenerationError(RuntimeError):
    """A generation-stamped read did not match the expected generation.

    Raised when a reader's copy of a broadcast buffer or result slot
    carries stamps other than the generation its control token named —
    a torn write or a protocol desync.  The round protocol makes this
    unreachable on healthy paths; reaching it is a hard error, never a
    retry.
    """


@dataclass(frozen=True)
class ArrayRef:
    """Picklable handle to one shared ndarray (name + layout)."""

    name: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class BroadcastRef:
    """Picklable handle to the generation-stamped centroid buffer."""

    name: str
    shape: tuple          # (K, N)
    dtype: str


@dataclass(frozen=True)
class SlotRef:
    """Picklable handle to one worker's per-round result slot."""

    name: str
    rows: int             # shard rows (labels / best length)
    n_clusters: int
    n_features: int
    dtype: str            # kernel dtype of ``best``
    with_state: bool      # slot reserves the continuation-state region


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _slot_layout(ref: SlotRef) -> tuple[dict, int]:
    """Field name -> (offset, shape, dtype) map of a slot, plus size.

    Regions are laid out back to back, each 8-byte aligned so every
    ndarray view lands on a natural boundary for its dtype.
    """
    dtype = np.dtype(ref.dtype)
    fields = {}
    off = 0

    def region(name, shape, dt):
        nonlocal off
        fields[name] = (off, shape, np.dtype(dt))
        off = _align8(off + int(np.prod(shape)) * np.dtype(dt).itemsize)

    region("header", (_HEADER_WORDS,), np.int64)
    region("labels", (ref.rows,), np.int64)
    region("best", (ref.rows,), dtype)
    region("partial", (ref.n_clusters, ref.n_features + 1), np.float64)
    if ref.with_state:
        region("sums_t", (ref.n_features, ref.n_clusters), np.float64)
        region("counts", (ref.n_clusters,), np.float64)
        region("lohi", (2,), np.int64)
    return fields, off


def _views(buf, ref: SlotRef) -> dict:
    fields, _ = _slot_layout(ref)
    return {name: np.ndarray(shape, dtype=dt, buffer=buf, offset=off)
            for name, (off, shape, dt) in fields.items()}


# -- attach-side cache (worker processes) ------------------------------

#: per-process cache of attached segments: a worker touches the same
#: dataset / broadcast / slot names every round, so each attaches once
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHED.get(name)
    if seg is None:
        # the attach re-registers the name with the resource tracker the
        # child shares with the creator — an idempotent set-add, undone
        # exactly once by the creator's unlink (module docstring)
        seg = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = seg
    return seg


def detach_all() -> None:
    """Close every cached attachment (worker shutdown path)."""
    for seg in _ATTACHED.values():
        try:
            seg.close()
        except OSError:  # pragma: no cover - defensive
            pass
    _ATTACHED.clear()


def attach_array(ref: ArrayRef) -> np.ndarray:
    """Map a shared ndarray by reference (zero-copy view)."""
    seg = _attach(ref.name)
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)


def read_broadcast(ref: BroadcastRef, expected_generation: int) -> np.ndarray:
    """Copy the broadcast centroids out, validating the seqlock stamps.

    The copy happens *before* the validation (classic seqlock order):
    a torn read can never be returned, because the stamps it copied
    under cannot both equal the expected generation.
    """
    seg = _attach(ref.name)
    header = np.ndarray((_HEADER_WORDS,), dtype=np.int64, buffer=seg.buf)
    payload = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                         buffer=seg.buf, offset=_HEADER_BYTES)
    y = payload.copy()
    gen_begin, gen_end = int(header[0]), int(header[1])
    if not (gen_begin == gen_end == int(expected_generation)):
        raise StaleGenerationError(
            f"broadcast read expected generation {expected_generation}, "
            f"buffer is stamped [{gen_begin}, {gen_end}]")
    return y


def write_slot(ref: SlotRef, result, generation: int) -> None:
    """Write one round's arrays into the worker's slot (child side).

    ``gen_begin`` goes first and ``gen_end`` last, so a reader that
    validates both against its expected generation can never adopt a
    torn write.
    """
    seg = _attach(ref.name)
    v = _views(seg.buf, ref)
    header = v["header"]
    header[0] = int(generation)
    v["labels"][:] = result.labels
    v["best"][:] = result.best
    v["partial"][:] = result.partial
    has_state = int(ref.with_state and result.state is not None)
    if has_state:
        v["sums_t"][:] = result.state["sums_t"]
        v["counts"][:] = result.state["counts"]
        v["lohi"][0] = int(result.state["lo"])
        v["lohi"][1] = int(result.state["hi"])
    header[3] = has_state
    header[2] = int(result.iteration)
    header[1] = int(generation)


# -- coordinator-side session ------------------------------------------

class ShmSession:
    """Owns every shared segment of one sharded fit (creator side).

    Created by the coordinator when the resolved transport is
    ``'shm'``: the dataset (and weights) are copied into shared
    segments once, the broadcast buffer is created lazily at the first
    publish, and the per-worker result slots are (re)built whenever
    the shard plan changes geometry.  :meth:`close` unlinks everything
    and is idempotent; a process killed before it runs is covered by
    the resource tracker (see the module docstring).
    """

    def __init__(self, x: np.ndarray, sample_weight: np.ndarray | None = None):
        self._prefix = (f"{SEGMENT_PREFIX}-{os.getpid()}-"
                        f"{secrets.token_hex(4)}")
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        self._generation = 0
        self._broadcast_ref: BroadcastRef | None = None
        self._slots: dict[int, SlotRef] = {}
        self._slot_epoch = 0
        self.data_ref = self._create_array("x", x)
        self.weight_ref = (None if sample_weight is None
                           else self._create_array("w", sample_weight))

    # -- segment bookkeeping -------------------------------------------
    def _create(self, tag: str, size: int) -> shared_memory.SharedMemory:
        name = f"{self._prefix}-{tag}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._segments[name] = seg
        return seg

    def _unlink(self, name: str) -> None:
        seg = self._segments.pop(name, None)
        if seg is None:
            return
        try:
            seg.close()
            seg.unlink()
        except OSError:  # pragma: no cover - already gone
            pass

    def _create_array(self, tag: str, arr: np.ndarray) -> ArrayRef:
        arr = np.ascontiguousarray(arr)
        seg = self._create(tag, max(1, arr.nbytes))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[:] = arr
        return ArrayRef(name=seg.name, shape=tuple(arr.shape),
                        dtype=arr.dtype.str)

    # -- broadcast ------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def publish(self, y: np.ndarray, iteration: int) -> tuple[BroadcastRef,
                                                              int]:
        """Write the round's centroids; returns (ref, generation).

        One write per round regardless of the fleet width — the pipes
        then carry only the generation-stamped control tokens.
        """
        if self._broadcast_ref is None:
            seg = self._create("bcast", _HEADER_BYTES + max(1, y.nbytes))
            self._broadcast_ref = BroadcastRef(
                name=seg.name, shape=tuple(y.shape), dtype=y.dtype.str)
        ref = self._broadcast_ref
        if tuple(y.shape) != ref.shape or y.dtype.str != ref.dtype:
            raise ValueError(
                f"broadcast shape changed mid-fit: buffer is "
                f"{ref.shape}/{ref.dtype}, got {y.shape}/{y.dtype.str}")
        seg = self._segments[ref.name]
        header = np.ndarray((_HEADER_WORDS,), dtype=np.int64, buffer=seg.buf)
        payload = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                             buffer=seg.buf, offset=_HEADER_BYTES)
        self._generation += 1
        gen = self._generation
        header[0] = gen
        payload[:] = y
        header[2] = int(iteration)
        header[1] = gen
        return ref, gen

    # -- result slots ---------------------------------------------------
    def make_slots(self, plan, n_clusters: int, n_features: int,
                   dtype, with_state: bool) -> None:
        """(Re)build one result slot per worker of ``plan``.

        A no-op when the plan's shard geometry matches the current
        slots (promotion in place reuses them); otherwise a new slot
        epoch is created and the previous epoch's segments unlinked —
        existing mappings in straggler children stay valid (Linux
        semantics), they are simply no longer read.
        """
        dtype = np.dtype(dtype)
        want = {int(s.worker_id): (int(s.hi - s.lo)) for s in plan.shards}
        have = {wid: ref.rows for wid, ref in self._slots.items()}
        if want == have:
            return
        for wid in list(self._slots):
            self._unlink(self._slots.pop(wid).name)
        self._slot_epoch += 1
        for shard in plan.shards:
            ref = SlotRef(name="", rows=int(shard.hi - shard.lo),
                          n_clusters=int(n_clusters),
                          n_features=int(n_features), dtype=dtype.str,
                          with_state=bool(with_state))
            _, size = _slot_layout(ref)
            seg = self._create(
                f"slot{self._slot_epoch}w{shard.worker_id}", size)
            self._slots[int(shard.worker_id)] = replace(ref, name=seg.name)

    def slot_ref(self, worker_id: int) -> SlotRef:
        return self._slots[int(worker_id)]

    def read_slot(self, worker_id: int, expected_generation: int) -> dict:
        """Copy one worker's round arrays out of its slot (creator side).

        Arrays are **copies**: the coordinator may overlap the next
        round's broadcast before the previous round's ABFT check reads
        these partials, and a fast worker must never scribble over
        them.  Stamps are validated after the copy, seqlock order.
        """
        ref = self._slots[int(worker_id)]
        seg = self._segments[ref.name]
        v = _views(seg.buf, ref)
        out = {"labels": v["labels"].copy(), "best": v["best"].copy(),
               "partial": v["partial"].copy()}
        header = v["header"]
        state = None
        if ref.with_state and int(header[3]):
            state = {"lo": int(v["lohi"][0]), "hi": int(v["lohi"][1]),
                     "sums_t": v["sums_t"].copy(),
                     "counts": v["counts"].copy()}
        gen_begin, gen_end = int(header[0]), int(header[1])
        if not (gen_begin == gen_end == int(expected_generation)):
            raise StaleGenerationError(
                f"slot read (worker {worker_id}) expected generation "
                f"{expected_generation}, slot is stamped "
                f"[{gen_begin}, {gen_end}]")
        out["state"] = state
        out["iteration"] = int(header[2])
        return out

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment of this session (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for name in list(self._segments):
            self._unlink(name)
        self._slots = {}
        self._broadcast_ref = None

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
