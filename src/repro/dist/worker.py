"""The per-shard worker: one simulated device running the fast path.

A :class:`ShardWorker` owns one shard of the sample matrix and a fully
configured assignment kernel (the same :func:`build_assignment` product
the single-device estimator uses, fast mode only).  Per round it runs
one fused assignment pass over its shard against the broadcast centroids
and returns a :class:`RoundResult` with the shard's labels, min squared
distances, fused partial sums and counters — the "map" half of the
coordinator's map-reduce Lloyd iteration.

Determinism: the shard's labels/distances are bit-identical to the rows
a single-worker engine would produce (see :mod:`repro.dist.plan`), and
the fused partial sums are bit-identical to a sequential accumulation
over the shard alone — which is exactly what the coordinator's
localization step recomputes when its checksum test fires.

SEU injection inside a worker draws a fresh, per-round injector seeded
from ``(base_seed, worker_id, iteration)``: the fault pattern of
iteration *k* never depends on how many iterations ran before it, so a
checkpoint-restored replay re-injects the identical flips and recovery
stays bit-exact even under injection.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.accumulate import StreamedAccumulator
from repro.core.variants import build_assignment
from repro.dist.faults import WorkerCrash
from repro.gpusim.counters import PerfCounters
from repro.gpusim.faults import FaultInjector
from repro.utils.bits import flip_bit

__all__ = ["RoundResult", "ShardWorker", "build_worker"]


@dataclass
class RoundResult:
    """One worker's answer for one Lloyd iteration (picklable).

    ``state`` carries the shard's accumulator fold state (absolute row
    window, see :meth:`StreamedAccumulator.export_state`) when the
    worker was built with ``export_state=True`` — the tree reduce's
    combine seed.  It is exported *before* any corrupt-partial
    directive touches the returned ``partial`` copy, so an injected
    flip stays detectable by the coordinator's checksum without ever
    entering the tree-combined sums.
    """

    worker_id: int
    iteration: int
    labels: np.ndarray            # (shard_rows,) int64, owned
    best: np.ndarray              # (shard_rows,) kernel dtype, owned
    partial: np.ndarray           # (K, N+1) float64 fused sums ‖ counts
    counters: PerfCounters
    timings: list = field(default_factory=list)
    wall_s: float = 0.0
    state: dict | None = None

    @property
    def sim_time_s(self) -> float:
        return sum(t.time_s for _, t in self.timings)


class ShardWorker:
    """One shard's assignment + fused accumulation, round by round.

    Parameters
    ----------
    worker_id : int
        Position in the shard plan (also the fault-directive address).
    x_shard : ndarray of shape (shard_rows, N)
        This worker's resident sample rows.
    cfg : KMeansConfig
        The fit configuration (``mode`` must be 'fast'; ``tile`` must
        already be resolved — never 'auto', which is shard-shape
        dependent).
    n_clusters : int
        K (redundant with cfg but kept explicit for the engine cache).
    sample_weight : ndarray of shape (shard_rows,), optional
        This shard's slice of the fit's sample weights.
    base_seed : int
        Entropy root of the per-round SEU injector streams.
    cache_store : WorkerCacheStore, optional
        Shard-local operand-cache checkpoints (see
        :class:`repro.dist.checkpoint.WorkerCacheStore`).  On boot the
        worker preloads its shard's entry (skipping the x-norm pass and,
        when cached, the transposed/rounded operand builds) and saves a
        fresh export after ``begin_fit`` so a replacement worker booting
        onto the same shard skips them too.  Purely a boot-time
        optimisation: preloaded operands are validated (shape/dtype)
        and never change a single bit of the fit.
    cache_key : str, optional
        The shard's key in ``cache_store`` (normally
        ``"shard_{lo}_{hi}"``, derived by :func:`build_worker`).
    cache_refresh_every : int
        Re-assert the shard's cache entry every this many rounds (0 =
        boot-time save only): a long fit whose entry was compacted away
        re-saves it, so replacement preloads stay warm past the first
        recovery window.  Refreshes are first-writer-wins re-saves of
        the same per-fit-static operands — they never change bits.
    shard_lo : int
        Absolute row offset of ``x_shard`` in the full sample matrix
        (the base of exported fold states).
    x_full, weight_full : ndarray, optional
        The *full* sample matrix / weight vector (references, not
        copies — the worker factory already closes over them), needed
        by the tree reduce's :meth:`combine`: a combine's right-hand
        row range spans other workers' shards at levels past the first.
    export_state : bool
        Ship the shard's accumulator fold state on every
        :class:`RoundResult` (tree topology only — the state seeds the
        first combine).
    """

    def __init__(self, worker_id: int, x_shard: np.ndarray, cfg,
                 n_clusters: int, *, sample_weight=None, base_seed: int = 0,
                 cache_store=None, cache_key: str | None = None,
                 cache_refresh_every: int = 0, shard_lo: int = 0,
                 x_full=None, weight_full=None, export_state: bool = False):
        if cfg.mode != "fast":
            raise ValueError("ShardWorker requires mode='fast'")
        if cfg.tile == "auto":
            raise ValueError("resolve tile='auto' before building workers")
        self.worker_id = int(worker_id)
        self.x = x_shard
        self.cfg = cfg
        self.n_clusters = int(n_clusters)
        self.base_seed = int(base_seed)
        self.cache_store = cache_store
        self.cache_key = cache_key
        m, k = x_shard.shape
        self.kernel = build_assignment(
            cfg, m, k, np.random.default_rng(self.base_seed))
        preload = (cache_store.load(cache_key)
                   if cache_store is not None and cache_key else None)
        self.kernel.begin_fit(x_shard, n_clusters, preload=preload)
        if cache_store is not None and cache_key:
            # force the transposed update operand now (normally lazy) so
            # the export — and any replacement worker that preloads it —
            # covers the full operand cache, then persist the shard entry
            self.kernel.engine.prepare_update_operand()
            cache_store.save(cache_key, self.kernel.engine.export_operands())
        self.acc = StreamedAccumulator(n_clusters, k)
        self.acc.bind_weights(sample_weight)
        self.cache_refresh_every = int(cache_refresh_every)
        self.shard_lo = int(shard_lo)
        self.x_full = x_full
        self.weight_full = weight_full
        self.export_state = bool(export_state)
        #: lazily built combine accumulator (tree reduce): bound to the
        #: *full* weight vector because its fold windows are absolute
        self._combine_acc: StreamedAccumulator | None = None
        self._last_labels: np.ndarray | None = None
        self._last_iteration: int | None = None
        self._crash_combine = False
        self.rounds_run = 0
        self._wedge_s = 0.0
        # cooperative cancellation: the engine checks this token at
        # every chunk boundary, so an abandoned in-process worker stops
        # within one chunk of being cancelled instead of burning CPU
        # through the rest of its pass
        self._cancel = threading.Event()
        self.kernel.engine.cancel_token = self._cancel

    # ------------------------------------------------------------------
    def _round_injector(self, iteration: int) -> None:
        """Per-round SEU injector, seeded by (base, worker, iteration)."""
        if self.cfg.p_inject <= 0:
            return
        seq = np.random.SeedSequence(
            [self.base_seed, self.worker_id, int(iteration)])
        inj = FaultInjector(np.random.default_rng(seq), self.cfg.p_inject,
                            self.cfg.dtype)
        self.kernel.injector = inj
        self.kernel.engine.injector = inj

    def run_round(self, y: np.ndarray, iteration: int,
                  directive: dict | None = None) -> RoundResult:
        """One fused assignment pass over the shard.

        ``directive`` (from :class:`repro.dist.faults.WorkerFaultInjector`)
        may order this worker to stall, crash, or corrupt its partial.
        """
        t0 = time.perf_counter()
        if directive:
            if directive.get("stall_s"):
                time.sleep(float(directive["stall_s"]))
            if directive.get("crash"):
                raise WorkerCrash(self.worker_id, iteration)
            if directive.get("crash_combine"):
                # armed now, fired when the coordinator asks this
                # worker to run a tree combine for this round
                self._crash_combine = True
        self._round_injector(iteration)
        self.acc.reset()
        res = self.kernel.assign(self.x, y, accumulator=self.acc)
        partial = self.acc.packed()
        # exported before the corrupt directive below flips a bit in the
        # returned *copy*: the combine seed never carries the corruption,
        # while the checksum over returned partials still detects it
        state = (self.acc.export_state(base=self.shard_lo)
                 if self.export_state else None)
        if directive and "corrupt" in directive:
            plan = directive["corrupt"]
            r, c = plan.locate(partial.shape[0], partial.shape[1])
            partial[r, c] = flip_bit(partial[r, c], plan.bit)
        if directive and directive.get("wedge_s"):
            # wedge AFTER answering: the round succeeds, the next ping
            # hangs — visible only to the between-round heartbeat
            self._wedge_s = float(directive["wedge_s"])
        labels = res.labels.copy()
        self._last_labels = labels
        self._last_iteration = int(iteration)
        self.rounds_run += 1
        if (self.cache_refresh_every and self.cache_store is not None
                and self.cache_key
                and self.rounds_run % self.cache_refresh_every == 0):
            # keep the shard's preload entry warm on long fits: a no-op
            # while the entry exists, a re-save once compaction evicted
            # it (operands are per-fit-static, so bits never change)
            self.cache_store.refresh(
                self.cache_key, self.kernel.engine.export_operands)
        return RoundResult(
            worker_id=self.worker_id, iteration=iteration,
            labels=labels, best=res.min_sqdist.copy(),
            partial=partial, counters=res.counters, timings=res.timings,
            wall_s=time.perf_counter() - t0, state=state)

    def combine(self, seed_state: dict, lo: int, hi: int, iteration: int,
                labels: np.ndarray | None = None) -> dict:
        """One tree-reduce step: extend the prefix fold over this range.

        Seeds an accumulator with ``seed_state`` (the continuation fold
        over rows ``[0, lo)``) and folds rows ``[lo, hi)`` through it in
        sample order — bit-equal to the coordinator's sequential star
        merge reaching ``hi``.  ``labels`` are the range's assignments
        from this round's gather; ``None`` means the range is exactly
        this worker's own shard (level 1), whose labels are still
        cached from :meth:`run_round`.

        Raises ``ValueError`` when the seed state does not stop exactly
        at ``lo`` — an out-of-order combine can never be exact, so the
        ordering contract is enforced here, on the worker, where a
        scheduling bug would otherwise silently change bits.
        """
        if self._crash_combine:
            self._crash_combine = False
            raise WorkerCrash(self.worker_id, iteration,
                              reason="injected (mid-combine)")
        if int(seed_state["hi"]) != int(lo):
            raise ValueError(
                f"out-of-order combine: seed state stops at row "
                f"{seed_state['hi']}, combine range starts at {lo}")
        if labels is None:
            own_hi = self.shard_lo + self.x.shape[0]
            if lo != self.shard_lo or hi != own_hi:
                raise ValueError(
                    f"combine without labels must cover this worker's "
                    f"own shard [{self.shard_lo}, {own_hi}), got "
                    f"[{lo}, {hi})")
            if self._last_labels is None or self._last_iteration != int(
                    iteration):
                raise ValueError(
                    f"no cached labels for iteration {iteration}")
            labels = self._last_labels
        rows = self.x if (lo == self.shard_lo
                          and hi == self.shard_lo + self.x.shape[0]) else None
        if rows is None:
            if self.x_full is None:
                raise ValueError(
                    "combine past the worker's own shard needs x_full")
            rows = self.x_full[lo:hi]
        acc = self._combine_acc
        if acc is None:
            acc = StreamedAccumulator(self.n_clusters, self.x.shape[1])
            acc.bind_weights(self.weight_full)
            self._combine_acc = acc
        acc.load_state(seed_state)
        acc.feed(rows, labels)
        return acc.export_state()

    def ping(self) -> bool:
        """Heartbeat probe: answer promptly unless wedged.

        A wedged worker (see the ``wedge`` fault) sleeps ``wedge_s``
        before answering — on the process backend the executor kills the
        child long before that; in-process backends classify the late
        answer retroactively.
        """
        if self._wedge_s:
            time.sleep(self._wedge_s)
        return True

    def cancel(self) -> None:
        """Request a cooperative stop of any in-flight assignment pass.

        Sets the engine's cancellation token: the chunk loop raises
        :class:`repro.core.engine.EngineCancelled` at its next chunk
        boundary, so an abandoned thread-backend worker stops within a
        bounded number of chunks.  Idempotent; the worker must not be
        reused for further rounds afterwards.
        """
        self._cancel.set()

    def close(self) -> None:
        """Release the engine's fit cache / scratch / threads."""
        self.kernel.end_fit()


def build_worker(worker_id: int, *, x: np.ndarray | None = None, plan, cfg,
                 n_clusters: int, sample_weight=None,
                 base_seed: int = 0, cache_store=None,
                 cache_refresh_every: int = 0,
                 export_state: bool = False,
                 data_ref=None, weight_ref=None) -> ShardWorker:
    """Module-level worker factory (picklable for the process executor).

    Slices the worker's shard out of the full arrays via the
    :class:`~repro.dist.plan.ShardPlan`, so one factory serves the
    initial spawn and every post-crash respawn alike.  Lookup is by
    worker id, not position: after an elastic re-plan the surviving ids
    are sparse.

    ``cache_store`` keys the worker's operand-cache checkpoint by its
    shard's row range, so any worker booting onto the same rows — the
    original, a respawn, or a promoted spare — shares one entry.  The
    full ``x`` / ``sample_weight`` references ride into the worker for
    the tree reduce's cross-shard combines (the factory closure holds
    them already, so this costs nothing).

    Under the shared-memory transport the factory carries ``data_ref``
    / ``weight_ref`` (:class:`repro.dist.shm.ArrayRef`) instead of the
    arrays themselves: the worker maps the shared dataset segment and
    takes its shard as a zero-copy **view**, so pickling the factory —
    at boot, spare promotion, or elastic re-expand — ships only the
    tiny refs, never the rows.
    """
    if data_ref is not None:
        from repro.dist.shm import attach_array
        x = attach_array(data_ref)
        if weight_ref is not None:
            sample_weight = attach_array(weight_ref)
    shard = plan.shard_of(worker_id)
    w = (None if sample_weight is None
         else sample_weight[shard.lo:shard.hi])
    key = f"shard_{shard.lo}_{shard.hi}"
    return ShardWorker(worker_id, x[shard.lo:shard.hi], cfg, n_clusters,
                       sample_weight=w, base_seed=base_seed,
                       cache_store=cache_store, cache_key=key,
                       cache_refresh_every=cache_refresh_every,
                       shard_lo=shard.lo, x_full=x, weight_full=sample_weight,
                       export_state=export_state)
