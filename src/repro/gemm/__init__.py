"""Tiled GEMM kernels on the simulated GPU (distance-computation substrate)."""

from repro.gemm.epilogue import (
    BroadcastArgminEpilogue,
    EpilogueContext,
    PartialArgminEpilogue,
    StoreEpilogue,
)
from repro.gemm.reference import (
    reference_assignment,
    reference_distance_matrix,
    reference_gemm,
    reference_inertia,
    reference_update,
)
from repro.gemm.shapes import GemmShape, distance_flops
from repro.gemm.simt_gemm import SimtGemm
from repro.gemm.tensorop_gemm import TensorOpGemm
from repro.gemm.tiling import THREAD_TILE, Tile3, TileConfig, validate_rules
from repro.gemm.verify import (
    assert_allclose_gemm,
    gemm_tolerance,
    labels_agree_fraction,
)

__all__ = [
    "BroadcastArgminEpilogue",
    "EpilogueContext",
    "PartialArgminEpilogue",
    "StoreEpilogue",
    "reference_assignment",
    "reference_distance_matrix",
    "reference_gemm",
    "reference_inertia",
    "reference_update",
    "GemmShape",
    "distance_flops",
    "SimtGemm",
    "TensorOpGemm",
    "THREAD_TILE",
    "Tile3",
    "TileConfig",
    "validate_rules",
    "assert_allclose_gemm",
    "gemm_tolerance",
    "labels_agree_fraction",
]
