"""GEMM epilogues.

The step-wise optimisation of Sec. III-A is, at heart, a progression of
epilogues for the same main loop:

* :class:`StoreEpilogue`       — V1: write the whole distance tile back to
  global memory (a separate kernel then reduces it).
* :class:`PartialArgminEpilogue` — V2: fold the row-wise argmin into the
  GEMM kernel at thread/threadblock level; each block writes one partial
  (min, argmin) pair per row, and a light second pass merges block
  columns.
* :class:`BroadcastArgminEpilogue` — V3/final: finish the global argmin
  inside the kernel with a per-row lock + atomic-min ("threadblock level
  broadcast"), eliminating the second pass.

All epilogues add the precomputed norm terms, converting the GEMM
accumulator ``X @ Yᵀ`` into squared distances ``‖x‖² + ‖y‖² − 2·acc``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.counters import PerfCounters
from repro.gpusim.memory import GlobalMemory

__all__ = [
    "EpilogueContext",
    "StoreEpilogue",
    "PartialArgminEpilogue",
    "BroadcastArgminEpilogue",
]


@dataclass
class EpilogueContext:
    """Everything an epilogue needs about the current block.

    ``acc`` is the block's (tb_m x tb_n) GEMM accumulator; ``rows`` /
    ``cols`` are the *valid* global index ranges (predication against the
    problem boundary); norm vectors are global-memory handles.
    """

    gmem: GlobalMemory
    counters: PerfCounters
    acc: np.ndarray
    row0: int
    col0: int
    rows: int
    cols: int
    block_col: int = 0

    def distances(self) -> np.ndarray:
        """Valid-region squared distances ``x² + y² − 2·acc``."""
        xx = self.gmem.load("x_norms", slice(self.row0, self.row0 + self.rows),
                            slice(None))
        yy = self.gmem.load("y_norms", slice(self.col0, self.col0 + self.cols),
                            slice(None))
        tile = self.acc[: self.rows, : self.cols]
        with np.errstate(over="ignore", invalid="ignore"):
            # Inf/NaN distances are legitimate when a corrupted (and
            # unprotected) accumulator reaches the epilogue
            return xx.reshape(-1, 1) + yy.reshape(1, -1) - 2.0 * tile


class StoreEpilogue:
    """V1: store raw distances; reduction happens in a separate kernel."""

    name = "store"
    needs_merge_kernel = True

    def __call__(self, ctx: EpilogueContext) -> None:
        d = ctx.distances()
        ctx.gmem.store("distances",
                       slice(ctx.row0, ctx.row0 + ctx.rows),
                       slice(ctx.col0, ctx.col0 + ctx.cols), d)


class PartialArgminEpilogue:
    """V2: per-block fused argmin; partials merged by a second pass.

    Per the paper: each thread reduces its sub-tile, writes to shared
    memory, and thread 0 reduces the block's candidates — modelled here as
    the tile-level reduction plus a shared-memory round trip in the
    counters.
    """

    name = "partial_argmin"
    needs_merge_kernel = True

    def __call__(self, ctx: EpilogueContext) -> None:
        d = ctx.distances()
        # thread-level partials pass through shared memory (Fig. 2 step 2)
        ctx.counters.shared_stores += d.shape[0] * (d.dtype.itemsize + 4)
        ctx.counters.shared_loads += d.shape[0] * (d.dtype.itemsize + 4)
        mins = d.min(axis=1)
        args = d.argmin(axis=1) + ctx.col0
        rows = slice(ctx.row0, ctx.row0 + ctx.rows)
        cols = slice(ctx.block_col, ctx.block_col + 1)
        ctx.gmem.store("partial_min", rows, cols, mins.reshape(-1, 1))
        ctx.gmem.store("partial_arg", rows, cols,
                       args.reshape(-1, 1).astype(np.int64))


class BroadcastArgminEpilogue:
    """V3/final: global argmin finished in-kernel via per-row atomics."""

    name = "broadcast_argmin"
    needs_merge_kernel = False

    def __call__(self, ctx: EpilogueContext) -> None:
        d = ctx.distances()
        mins = d.min(axis=1)
        args = d.argmin(axis=1) + ctx.col0
        for i in range(ctx.rows):
            # per-row lock + compare-and-swap against the broadcast vector
            ctx.gmem.atomic_min_packed("assign", ctx.row0 + i,
                                       float(mins[i]), int(args[i]))
