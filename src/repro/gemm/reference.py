"""NumPy reference implementations (the simulator's ground truth).

Every functional kernel in the package is tested against these plain,
obviously-correct formulations.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.mma import round_tf32

__all__ = [
    "reference_gemm",
    "reference_distance_matrix",
    "reference_assignment",
    "reference_update",
    "reference_inertia",
]


def reference_gemm(x: np.ndarray, y: np.ndarray, *, tf32: bool = False) -> np.ndarray:
    """``X @ Yᵀ`` with optional TF32 operand rounding.

    ``x``: (m, k) samples; ``y``: (n, k) centroids; result (m, n).
    TF32 rounding mirrors what the tensor-core kernel does on FP32 inputs,
    so the functional kernel can be compared bit-for-bit.
    """
    if tf32 and x.dtype == np.float32:
        return round_tf32(x) @ round_tf32(y).T
    return x @ y.T


def reference_distance_matrix(x: np.ndarray, y: np.ndarray, *,
                              tf32: bool = False) -> np.ndarray:
    """Squared Euclidean distances ``‖x_i − y_j‖²`` via the GEMM identity.

    Uses the exact decomposition of Sec. III-A2:
    ``Σ x² + Σ y² − 2 Σ x·y`` (square root omitted, as in the paper).
    """
    xx = np.sum(x.astype(x.dtype) ** 2, axis=1)[:, None]
    yy = np.sum(y.astype(y.dtype) ** 2, axis=1)[None, :]
    return xx + yy - 2.0 * reference_gemm(x, y, tf32=tf32)


def reference_assignment(x: np.ndarray, y: np.ndarray, *,
                         tf32: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """(labels, min squared distances) for every sample."""
    d = reference_distance_matrix(x, y, tf32=tf32)
    labels = np.argmin(d, axis=1)
    return labels.astype(np.int64), d[np.arange(d.shape[0]), labels]


def reference_update(x: np.ndarray, labels: np.ndarray, n_clusters: int) -> tuple[np.ndarray, np.ndarray]:
    """New centroids = per-cluster means; empty clusters keep zero rows.

    Returns (centroids, counts).  Callers decide the empty-cluster policy
    (the estimator re-seeds empties from the farthest points).
    """
    k = x.shape[1]
    sums = np.zeros((n_clusters, k), dtype=np.float64)
    np.add.at(sums, labels, x.astype(np.float64))
    counts = np.bincount(labels, minlength=n_clusters).astype(np.int64)
    out = np.zeros_like(sums)
    nz = counts > 0
    out[nz] = sums[nz] / counts[nz, None]
    return out.astype(x.dtype), counts


def reference_inertia(x: np.ndarray, y: np.ndarray, labels: np.ndarray) -> float:
    """Sum of squared distances of samples to their assigned centroid."""
    diff = x.astype(np.float64) - y[labels].astype(np.float64)
    return float(np.sum(diff * diff))
