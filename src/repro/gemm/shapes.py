"""Problem geometry for the K-means distance GEMM.

The paper's distance stage computes ``D = -2 * X @ Yᵀ`` (plus rank-1 norm
terms) where ``X`` is (M samples x N features) and ``Y`` is (K clusters x
N features).  In GEMM convention that is an ``M x K`` output with an
``N``-deep inner dimension — a *tall-and-skinny* multiply, which is why
tile-parameter selection matters so much (Sec. I).

To avoid the M/N/K naming clash between K-means and GEMM, this module
fixes the vocabulary used across the package:

* ``m``  — number of samples (GEMM M),
* ``n``  — number of clusters (GEMM N; K-means' "K"),
* ``k``  — feature dimension (GEMM K; K-means' "N").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GemmShape", "distance_flops"]


@dataclass(frozen=True)
class GemmShape:
    """Distance-GEMM extents: ``m`` samples, ``n`` clusters, ``k`` features."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError(f"GemmShape extents must be positive, got {self}")

    @property
    def flops(self) -> float:
        """Useful FLOPs of the multiply, counted the way the paper does."""
        return 2.0 * self.m * self.n * self.k

    @classmethod
    def from_kmeans(cls, n_samples: int, n_clusters: int, n_features: int) -> "GemmShape":
        """Build from K-means vocabulary (M, K, N in the paper's notation)."""
        return cls(m=n_samples, n=n_clusters, k=n_features)

    def check_operands(self, x: np.ndarray, y: np.ndarray) -> None:
        """Validate sample/centroid matrices against this shape."""
        if x.shape != (self.m, self.k):
            raise ValueError(f"X shape {x.shape} != ({self.m}, {self.k})")
        if y.shape != (self.n, self.k):
            raise ValueError(f"Y shape {y.shape} != ({self.n}, {self.k})")


def distance_flops(n_samples: int, n_clusters: int, n_features: int) -> float:
    """``2*M*K*N`` — the FLOP count behind every GFLOPS figure in Sec. V."""
    return 2.0 * n_samples * n_clusters * n_features
