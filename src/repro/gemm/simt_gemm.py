"""Functional SIMT (CUDA-core) GEMM — the pre-Ampere data path.

Loads stage through the *register file* (global → registers → shared),
which is precisely the property the older ABFT schemes exploit: while an
element sits in a register en route to shared memory, checksum partial
sums can be accumulated at no extra global-memory cost ("register
reusing", Sec. I / Fig. 1).  The :meth:`on_stage_register` hook exposes
that window; :class:`repro.abft.wu.WuFtGemm` overrides it.

This kernel backs the paper's step-wise variants V1–V3 (Sec. III-A2..4)
via pluggable epilogues, and Wu's threadblock-level FT-GEMM baseline.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.epilogue import EpilogueContext, StoreEpilogue
from repro.gemm.shapes import GemmShape
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.faults import NullInjector
from repro.gpusim.hierarchy import Grid, LaunchConfig, ThreadBlock, Warp
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.simt import SimtUnit
from repro.gpusim.trace import NullTrace
from repro.utils.arrays import ceil_div

__all__ = ["SimtGemm"]


class SimtGemm:
    """Tile-accurate SIMT GEMM with register-staged loads.

    Same grid/tile structure as the tensor-core kernel but: no async
    pipeline (double-buffered synchronous staging), CUDA-core FMAs instead
    of MMA instructions, and a register-reuse hook during staging.
    """

    def __init__(self, device: DeviceSpec, tile: TileConfig, dtype, *,
                 epilogue=None, counters: PerfCounters | None = None,
                 trace=None, injector=None):
        self.device = device
        self.tile = tile
        self.dtype = np.dtype(dtype)
        self.counters = counters if counters is not None else PerfCounters()
        self.trace = trace if trace is not None else NullTrace()
        self.injector = injector if injector is not None else NullInjector()
        self.epilogue = epilogue if epilogue is not None else StoreEpilogue()
        self.simt = SimtUnit(dtype, self.counters)
        if hasattr(self.injector, "counters"):
            self.injector.counters = self.counters
        tile.assert_feasible(device, dtype)

    # -- hook points --------------------------------------------------------
    def block_begin(self, block: ThreadBlock, warps: list[Warp]):
        return None

    def on_stage_register(self, state, a_tile: np.ndarray, b_tile: np.ndarray,
                          k_iter: int) -> None:
        """Register-reuse window: tiles are in registers on their way to
        shared memory.  Pre-Ampere ABFT accumulates checksums here."""

    def warp_step(self, state, warp: Warp, a_w: np.ndarray, b_w: np.ndarray,
                  acc_w: np.ndarray, k_iter: int) -> None:
        self.simt.fma_gemm(a_w, b_w.T, acc_w)

    def block_end(self, state, block: ThreadBlock, warps: list[Warp],
                  acc: np.ndarray) -> None:
        pass

    # -- driver ---------------------------------------------------------------
    def run(self, gmem: GlobalMemory, shape: GemmShape) -> None:
        gmem.counters = self.counters
        tb = self.tile.tb
        cfg = LaunchConfig(
            grid_m=ceil_div(shape.m, tb.m),
            grid_n=ceil_div(shape.n, tb.n),
            threads_per_block=self.tile.threads_per_block,
            smem_bytes=self.tile.smem_bytes(self.dtype),
            regs_per_thread=min(self.tile.regs_per_thread(self.dtype),
                                self.device.regs_per_thread_max),
        )
        grid = Grid(self.device, cfg, counters=self.counters)
        for block in grid.blocks():
            self._run_block(block, gmem, shape)

    def _run_block(self, block: ThreadBlock, gmem: GlobalMemory,
                   shape: GemmShape) -> None:
        tile, dt = self.tile, self.dtype
        tb_m, tb_n, tb_k = tile.tb.m, tile.tb.n, tile.tb.k
        k_iters = ceil_div(shape.k, tb_k)
        row0, col0 = block.block_m * tb_m, block.block_n * tb_n
        rows = min(tb_m, shape.m - row0)
        cols = min(tb_n, shape.n - col0)

        a_sh = block.smem.alloc("A_tb", (tb_m, tb_k), dt)
        b_sh = block.smem.alloc("B_tb", (tb_n, tb_k), dt)
        acc = np.zeros((tb_m, tb_n), dt)
        warps = block.warps(tb_m // tile.warp.m, tb_n // tile.warp.n)
        state = self.block_begin(block, warps)
        fault = self.injector.plan_for_block(block.block_id, k_iters)

        for ki in range(k_iters):
            kk0 = ki * tb_k
            kw = min(tb_k, shape.k - kk0)
            # global -> registers (counted as plain loads: no cp.async here)
            a_reg = np.zeros((tb_m, tb_k), dt)
            a_reg[:rows, :kw] = gmem.load(
                "samples", slice(row0, row0 + rows), slice(kk0, kk0 + kw))
            b_reg = np.zeros((tb_n, tb_k), dt)
            b_reg[:cols, :kw] = gmem.load(
                "centroids", slice(col0, col0 + cols), slice(kk0, kk0 + kw))
            # the register-reuse window
            self.on_stage_register(state, a_reg, b_reg, ki)
            # registers -> shared memory, then block-wide barrier
            block.smem.write("A_tb", slice(None), a_reg)
            block.smem.write("B_tb", slice(None), b_reg)
            block.syncthreads()
            a_tile = block.smem.read("A_tb", slice(None))
            b_tile = block.smem.read("B_tb", slice(None))
            for w in warps:
                wm0, wn0 = w.warp_m * tile.warp.m, w.warp_n * tile.warp.n
                a_w = a_tile[wm0: wm0 + tile.warp.m]
                b_w = b_tile[wn0: wn0 + tile.warp.n]
                acc_w = acc[wm0: wm0 + tile.warp.m, wn0: wn0 + tile.warp.n]
                self.warp_step(state, w, a_w, b_w, acc_w, ki)
            if fault is not None and fault.step == ki:
                r, c = self.injector.apply(fault, acc)
                self.trace.emit("fault", block.block_id, ki, row=r, col=c,
                                bit=fault.bit)
            block.syncthreads()

        self.block_end(state, block, warps, acc)
        ctx = EpilogueContext(gmem=gmem, counters=self.counters, acc=acc,
                              row0=row0, col0=col0, rows=rows, cols=cols,
                              block_col=block.block_n)
        self.epilogue(ctx)
