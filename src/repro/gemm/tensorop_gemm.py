"""Functional tensor-core GEMM with the async-copy pipeline.

This is the tile-accurate model of the kernel in the paper's Fig. 4:

* a ``stages``-deep ``cp.async`` pipeline prefetches A (samples) and B
  (centroids) tiles from global to shared memory, bypassing registers;
* each iteration of the main loop advances the pipeline by one commit
  group, loads warp fragments from shared memory and issues warp-level
  MMA operations on the (simulated) tensor cores;
* a pluggable epilogue turns the accumulator into distances and performs
  the fused nearest-centroid reduction.

Subclass hook points (``block_begin`` / ``warp_step`` / ``interval_check``
/ ``block_end``) are where :class:`repro.core.ft_kmeans.FtTensorOpGemm`
splices in the warp-level ABFT of Fig. 6 — same main loop, extra
instructions, exactly like the real fused kernel.

Blocks execute sequentially (GPU blocks are independent, so this is
semantics-preserving), and the per-block SEU injector corrupts
accumulators mid-loop for fault-tolerance tests.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.epilogue import BroadcastArgminEpilogue, EpilogueContext
from repro.gemm.shapes import GemmShape
from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.faults import NullInjector
from repro.gpusim.hierarchy import Grid, LaunchConfig, ThreadBlock, Warp
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.mma import MmaUnit
from repro.gpusim.pipeline import AsyncCopyPipeline
from repro.gpusim.trace import NullTrace
from repro.utils.arrays import ceil_div

__all__ = ["TensorOpGemm"]


class TensorOpGemm:
    """Tile-accurate fused distance kernel (tensor-core path).

    Parameters
    ----------
    device:
        Target :class:`DeviceSpec`; controls whether the async pipeline is
        enabled (Ampere) or copies are synchronous (Turing).
    tile:
        Validated :class:`TileConfig`.
    dtype:
        float32 (TF32 MMA) or float64 (DMMA).
    epilogue:
        Callable receiving an :class:`EpilogueContext`; defaults to the
        fused broadcast argmin (the paper's final form).
    injector:
        SEU fault injector (default: no faults).
    use_tf32:
        Round FP32 operands to TF32 on tensor-core ingestion.
    """

    def __init__(self, device: DeviceSpec, tile: TileConfig, dtype, *,
                 epilogue=None, counters: PerfCounters | None = None,
                 trace=None, injector=None, use_tf32: bool = True):
        self.device = device
        self.tile = tile
        self.dtype = np.dtype(dtype)
        self.counters = counters if counters is not None else PerfCounters()
        self.trace = trace if trace is not None else NullTrace()
        self.injector = injector if injector is not None else NullInjector()
        self.epilogue = epilogue if epilogue is not None else BroadcastArgminEpilogue()
        self.mma_unit = MmaUnit(dtype, self.counters, use_tf32=use_tf32)
        if hasattr(self.injector, "counters"):
            self.injector.counters = self.counters
        tile.assert_feasible(device, dtype)

    # ------------------------------------------------------------------
    # subclass hook points (base implementations are no-ops)
    # ------------------------------------------------------------------
    def block_begin(self, block: ThreadBlock, warps: list[Warp]):
        """Create per-block ABFT state; returns an opaque state object."""
        return None

    def warp_step(self, state, warp: Warp, a_w: np.ndarray, b_w: np.ndarray,
                  acc_w: np.ndarray, k_iter: int) -> None:
        """One warp's work for one main-loop iteration.

        ``a_w``: (w_m, tb_k) sample fragment; ``b_w``: (w_n, tb_k) centroid
        fragment; ``acc_w``: the warp's accumulator view (w_m, w_n).
        """
        self.mma_unit.mma(a_w, b_w.T, acc_w)

    def interval_check(self, state, block: ThreadBlock, warps: list[Warp],
                       acc: np.ndarray, k_iter: int) -> None:
        """Called at detection-interval boundaries (``k % 256 == 0``)."""

    def block_end(self, state, block: ThreadBlock, warps: list[Warp],
                  acc: np.ndarray) -> None:
        """Called after the main loop, before the epilogue."""

    # ------------------------------------------------------------------
    # kernel driver
    # ------------------------------------------------------------------
    def run(self, gmem: GlobalMemory, shape: GemmShape) -> None:
        """Execute the kernel over the whole grid.

        Expects ``gmem`` to hold 'samples' (m x k), 'centroids' (n x k),
        'x_norms' (m x 1), 'y_norms' (n x 1), and the epilogue outputs
        ('assign' (m x 2) for the broadcast epilogue).  The memory's
        traffic counters are redirected to this kernel's for the launch.
        """
        gmem.counters = self.counters
        tb = self.tile.tb
        cfg = LaunchConfig(
            grid_m=ceil_div(shape.m, tb.m),
            grid_n=ceil_div(shape.n, tb.n),
            threads_per_block=self.tile.threads_per_block,
            smem_bytes=self.tile.smem_bytes(self.dtype),
            regs_per_thread=min(self.tile.regs_per_thread(self.dtype),
                                self.device.regs_per_thread_max),
        )
        grid = Grid(self.device, cfg, counters=self.counters)
        for block in grid.blocks():
            self._run_block(block, gmem, shape)

    # ------------------------------------------------------------------
    def _run_block(self, block: ThreadBlock, gmem: GlobalMemory,
                   shape: GemmShape) -> None:
        tile, dt = self.tile, self.dtype
        tb_m, tb_n, tb_k = tile.tb.m, tile.tb.n, tile.tb.k
        stages = tile.stages
        k_iters = ceil_div(shape.k, tb_k)
        row0, col0 = block.block_m * tb_m, block.block_n * tb_n
        rows = min(tb_m, shape.m - row0)
        cols = min(tb_n, shape.n - col0)

        a_st = block.smem.alloc("A_tb", (stages, tb_m, tb_k), dt)
        b_st = block.smem.alloc("B_tb", (stages, tb_n, tb_k), dt)
        pipe = AsyncCopyPipeline(self.counters, enabled=self.device.has_async_copy)

        def issue(k_iter: int) -> None:
            """cp.async one A tile and one B tile into the slot buffers."""
            slot = k_iter % stages
            kk0 = k_iter * tb_k
            kw = min(tb_k, shape.k - kk0)
            a_tile = np.zeros((tb_m, tb_k), dt)
            a_tile[:rows, :kw] = gmem.async_copy(
                "samples", slice(row0, row0 + rows), slice(kk0, kk0 + kw))
            b_tile = np.zeros((tb_n, tb_k), dt)
            b_tile[:cols, :kw] = gmem.async_copy(
                "centroids", slice(col0, col0 + cols), slice(kk0, kk0 + kw))
            pipe.async_copy(a_st[slot], a_tile)
            pipe.async_copy(b_st[slot], b_tile)

        # prologue: prefetch the first (stages - 1) tiles (Fig. 4 l.3-8).
        # When the main loop is shorter than the pipeline (k_iters <
        # stages - 1, e.g. very low feature counts) fewer groups are ever
        # in flight; the steady-state wait depth must shrink with it or
        # iterations would read stages that never completed.  Waiting to
        # (prologue_groups - 1) in flight always completes exactly the
        # group the next iteration consumes.
        prologue_groups = min(stages - 1, k_iters)
        wait_depth = max(0, prologue_groups - 1)
        for s in range(prologue_groups):
            issue(s)
            pipe.commit_group()
        pipe.wait_group(wait_depth)
        block.syncthreads()

        acc = np.zeros((tb_m, tb_n), dt)
        warps = block.warps(tb_m // tile.warp.m, tb_n // tile.warp.n)
        state = self.block_begin(block, warps)
        fault = self.injector.plan_for_block(block.block_id, k_iters)

        interval_iters = max(1, 256 // tb_k)
        for ki in range(k_iters):
            slot = ki % stages
            # prefetch the tile (stages - 1) iterations ahead (Fig. 4 l.13-14)
            nxt = ki + stages - 1
            if nxt < k_iters:
                issue(nxt)
            # shared -> register fragment loads for this iteration
            a_tile = block.smem.read("A_tb", slot)
            b_tile = block.smem.read("B_tb", slot)
            for w in warps:
                wm0, wn0 = w.warp_m * tile.warp.m, w.warp_n * tile.warp.n
                a_w = a_tile[wm0: wm0 + tile.warp.m]
                b_w = b_tile[wn0: wn0 + tile.warp.n]
                acc_w = acc[wm0: wm0 + tile.warp.m, wn0: wn0 + tile.warp.n]
                self.warp_step(state, w, a_w, b_w, acc_w, ki)
            if fault is not None and fault.step == ki:
                r, c = self.injector.apply(fault, acc)
                self.trace.emit("fault", block.block_id, ki, row=r, col=c,
                                bit=fault.bit)
            if (ki + 1) % interval_iters == 0 and ki + 1 < k_iters:
                self.interval_check(state, block, warps, acc, ki)
            pipe.commit_group()
            pipe.wait_group(wait_depth)
        pipe.drain()
        block.syncthreads()
        self.block_end(state, block, warps, acc)

        ctx = EpilogueContext(gmem=gmem, counters=self.counters, acc=acc,
                              row0=row0, col0=col0, rows=rows, cols=cols,
                              block_col=block.block_n)
        self.epilogue(ctx)
