"""Tile configurations and the paper's kernel-parameter rules.

A kernel parameter group (Sec. III-B1) is three levels of (M, N, K) tile
extents — threadblock, warp, thread — subject to:

1. every parameter is a power of two;
2. ``Warp.K == Threadblock.K``;
3. the warp-tile / thread-tile area ratio (MMA tiles per warp per K-step,
   ``m_w * n_w``) is 8 or 16;
4. the thread level is fixed by the tensor-core fragment size:
   (16, 8, 4) for FP32 and (8, 8, 4) for FP64.

:class:`TileConfig` validates a parameter group against those rules plus
basic divisibility, and derives the launch resources the occupancy
calculator and the feasibility check consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.errors import ResourceLimitExceeded
from repro.gpusim.occupancy import compute_occupancy
from repro.utils.arrays import is_power_of_two

__all__ = ["Tile3", "TileConfig", "THREAD_TILE", "validate_rules"]


@dataclass(frozen=True)
class Tile3:
    """An (m, n, k) tile extent triple."""

    m: int
    n: int
    k: int

    def __iter__(self):
        return iter((self.m, self.n, self.k))

    def __str__(self) -> str:
        return f"{self.m},{self.n},{self.k}"


#: Fixed thread-level (tensor-core fragment) tiles per dtype (paper rule 4).
THREAD_TILE = {
    np.dtype(np.float32): Tile3(16, 8, 4),
    np.dtype(np.float64): Tile3(8, 8, 4),
}


def validate_rules(tb: Tile3, warp: Tile3, thread: Tile3) -> list[str]:
    """Return the list of violated paper rules (empty = valid)."""
    violations: list[str] = []
    for level, t in (("threadblock", tb), ("warp", warp), ("thread", thread)):
        for dim, v in (("M", t.m), ("N", t.n), ("K", t.k)):
            if not is_power_of_two(v):
                violations.append(f"{level}.{dim}={v} is not a power of two")
    if warp.k != tb.k:
        violations.append(f"Warp.K ({warp.k}) != Threadblock.K ({tb.k})")
    if tb.m % warp.m or tb.n % warp.n:
        violations.append(
            f"threadblock tile {tb} not divisible by warp tile {warp}")
    if warp.m % thread.m or warp.n % thread.n:
        violations.append(
            f"warp tile {warp} not divisible by thread tile {thread}")
    else:
        ratio = (warp.m // thread.m) * (warp.n // thread.n)
        if ratio not in (8, 16):
            violations.append(
                f"warp/thread area ratio {ratio} not in {{8, 16}}")
    return violations


@dataclass(frozen=True)
class TileConfig:
    """One validated kernel parameter group.

    Attributes
    ----------
    tb, warp, thread:
        Tile extents at the three levels.
    stages:
        Depth of the async-copy pipeline (shared-memory multi-buffering).
    param_id:
        Identifier assigned by the enumeration order of the code
        generator (mirrors the parameter numbers in Fig. 13/14/Table I).
    """

    tb: Tile3
    warp: Tile3
    thread: Tile3
    stages: int = 3
    param_id: int = -1

    def __post_init__(self) -> None:
        violations = validate_rules(self.tb, self.warp, self.thread)
        if self.stages < 2:
            violations.append(f"stages must be >= 2, got {self.stages}")
        if violations:
            raise ValueError("invalid tile configuration: " + "; ".join(violations))

    # -- derived resources ------------------------------------------------
    @property
    def warps_per_block(self) -> int:
        return (self.tb.m // self.warp.m) * (self.tb.n // self.warp.n)

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * 32

    @property
    def mma_tiles_per_warp(self) -> int:
        """``m_w * n_w``: MMA fragments per warp per K-step; the ABFT
        overhead denominator (paper Sec. IV-B)."""
        return (self.warp.m // self.thread.m) * (self.warp.n // self.thread.n)

    @property
    def m_w(self) -> int:
        return self.warp.m // self.thread.m

    @property
    def n_w(self) -> int:
        return self.warp.n // self.thread.n

    def smem_bytes(self, dtype) -> int:
        """Staged shared-memory footprint for the A and B tiles."""
        itemsize = np.dtype(dtype).itemsize
        return self.stages * (self.tb.m + self.tb.n) * self.tb.k * itemsize

    def regs_per_thread(self, dtype) -> int:
        """Estimated register footprint (accumulator + fragments + control).

        Deliberately *uncapped*: a footprint above the device's per-thread
        limit is how the feasibility check rejects oversized warp tiles.
        """
        words = 2 if np.dtype(dtype) == np.float64 else 1
        acc = (self.warp.m * self.warp.n) // 32 * words
        frags = (self.warp.m + self.warp.n) // 4 * words
        return acc + frags + 24

    def feasible_on(self, device: DeviceSpec, dtype) -> bool:
        """The code generator's demo check: can this kernel launch at all?"""
        try:
            self.assert_feasible(device, dtype)
        except ResourceLimitExceeded:
            return False
        return True

    def assert_feasible(self, device: DeviceSpec, dtype) -> None:
        """Raise :class:`ResourceLimitExceeded` when the kernel cannot run."""
        if self.threads_per_block > device.max_threads_per_block:
            raise ResourceLimitExceeded(
                f"{self.threads_per_block} threads/block > device max "
                f"{device.max_threads_per_block}")
        smem = self.smem_bytes(dtype)
        if smem > device.smem_per_block:
            raise ResourceLimitExceeded(
                f"{smem} B shared memory > per-block max {device.smem_per_block}")
        regs = self.regs_per_thread(dtype)
        if regs > device.regs_per_thread_max:
            raise ResourceLimitExceeded(
                f"{regs} registers/thread > device max {device.regs_per_thread_max}")
        occ = compute_occupancy(device, self.threads_per_block, smem, regs)
        if not occ.feasible:
            raise ResourceLimitExceeded(
                f"zero occupancy (limited by {occ.limiter})")

    # -- misc ---------------------------------------------------------------
    def label(self) -> str:
        """Human-readable form matching the paper's Table I layout."""
        return f"TB({self.tb}) W({self.warp}) T({self.thread})"

    @classmethod
    def make(cls, tb: tuple, warp: tuple, dtype, *, stages: int = 3,
             param_id: int = -1) -> "TileConfig":
        """Convenience constructor with the dtype-implied thread tile."""
        thread = THREAD_TILE[np.dtype(dtype)]
        return cls(Tile3(*tb), Tile3(*warp), thread, stages=stages,
                   param_id=param_id)
