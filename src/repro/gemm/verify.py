"""Tolerant comparison helpers for kernel outputs.

TF32 rounding makes bit-exact comparison against full-precision references
meaningless for FP32 tensor-core results; these helpers centralise the
appropriate tolerances so tests state *why* a bound holds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm_tolerance", "assert_allclose_gemm", "labels_agree_fraction"]


def gemm_tolerance(dtype, k: int, *, tf32: bool = False) -> float:
    """Worst-case relative accumulation error bound for a k-deep dot.

    ``~u * sqrt(k)`` for stochastic rounding behaviour with a 8x safety
    factor; TF32 uses its 10-bit-mantissa unit roundoff for the products.
    """
    dt = np.dtype(dtype)
    if dt == np.float32:
        u = 2.0 ** -10 if tf32 else 2.0 ** -23
    elif dt == np.float64:
        u = 2.0 ** -52
    else:
        raise ValueError(f"unsupported dtype {dt!r}")
    return 8.0 * u * max(1.0, np.sqrt(k))


def assert_allclose_gemm(actual: np.ndarray, expected: np.ndarray, dtype,
                         k: int, *, tf32: bool = False) -> None:
    """Assert element-wise closeness under the GEMM accumulation bound."""
    rtol = gemm_tolerance(dtype, k, tf32=tf32)
    scale = np.maximum(np.abs(expected), 1.0)
    err = np.abs(actual.astype(np.float64) - expected.astype(np.float64))
    worst = float(np.max(err / scale))
    if worst > rtol:
        idx = np.unravel_index(int(np.argmax(err / scale)), err.shape)
        raise AssertionError(
            f"GEMM mismatch: rel err {worst:.3e} > tol {rtol:.3e} at {idx} "
            f"(actual={actual[idx]!r}, expected={expected[idx]!r})")


def labels_agree_fraction(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of identical assignments (ties under TF32 may flip a few)."""
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        raise ValueError(f"label shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean(a == b))
