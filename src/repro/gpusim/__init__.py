"""GPU execution-model simulator.

Substrate for the FT K-Means reproduction: a functional model of the
grid/threadblock/warp hierarchy, the memory spaces, the ``cp.async``
pipeline, the tensor-core MMA and SIMT compute units, SEU fault injection,
and an analytic timing model that regenerates the paper's performance
figures from tile parameters and device specs.
"""

from repro.gpusim.clock import SimClock
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB, DEVICES, TESLA_T4, DeviceSpec, get_device
from repro.gpusim.errors import (
    GpuSimError,
    LaunchError,
    MemoryFault,
    PipelineError,
    ResourceLimitExceeded,
    UncorrectableError,
)
from repro.gpusim.faults import FaultInjector, FaultPlan, NullInjector
from repro.gpusim.hierarchy import Grid, LaunchConfig, ThreadBlock, Warp
from repro.gpusim.memory import GlobalMemory, RegisterFile, SharedMemory
from repro.gpusim.mma import (
    MMA_FP32_TF32,
    MMA_FP64,
    MmaShape,
    MmaUnit,
    mma_shape_for,
    round_tf32,
)
from repro.gpusim.occupancy import Occupancy, compute_occupancy
from repro.gpusim.pipeline import AsyncCopyPipeline
from repro.gpusim.simt import SimtUnit
from repro.gpusim.timing import (
    DEFAULT_CALIBRATION,
    Calibration,
    KernelTiming,
    TimingModel,
)
from repro.gpusim.trace import NullTrace, Trace, TraceEvent

__all__ = [
    "SimClock",
    "PerfCounters",
    "A100_PCIE_40GB",
    "TESLA_T4",
    "DEVICES",
    "DeviceSpec",
    "get_device",
    "GpuSimError",
    "LaunchError",
    "MemoryFault",
    "PipelineError",
    "ResourceLimitExceeded",
    "UncorrectableError",
    "FaultInjector",
    "FaultPlan",
    "NullInjector",
    "Grid",
    "LaunchConfig",
    "ThreadBlock",
    "Warp",
    "GlobalMemory",
    "RegisterFile",
    "SharedMemory",
    "MMA_FP32_TF32",
    "MMA_FP64",
    "MmaShape",
    "MmaUnit",
    "mma_shape_for",
    "round_tf32",
    "Occupancy",
    "compute_occupancy",
    "AsyncCopyPipeline",
    "SimtUnit",
    "DEFAULT_CALIBRATION",
    "Calibration",
    "KernelTiming",
    "TimingModel",
    "NullTrace",
    "Trace",
    "TraceEvent",
]
