"""Simulated clock: accumulates modelled kernel times for a run.

The benchmark harness executes kernels functionally (for numerics) while
charging their *modelled* duration to a :class:`SimClock`, so a full
K-means fit reports a simulated wall time / GFLOPS exactly the way the
paper's tables do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.timing import KernelTiming

__all__ = ["SimClock"]


@dataclass
class SimClock:
    """Accumulates simulated seconds, with a per-kernel log."""

    elapsed_s: float = 0.0
    log: list[tuple[str, float]] = field(default_factory=list)

    def charge(self, label: str, timing: KernelTiming | float) -> None:
        """Add one kernel's modelled duration."""
        dt = timing.time_s if isinstance(timing, KernelTiming) else float(timing)
        if dt < 0:
            raise ValueError(f"negative duration for {label!r}")
        self.elapsed_s += dt
        self.log.append((label, dt))

    def reset(self) -> None:
        self.elapsed_s = 0.0
        self.log.clear()

    def total(self, label_prefix: str | None = None) -> float:
        """Total time, optionally restricted to kernels whose label starts
        with ``label_prefix`` (e.g. 'distance')."""
        if label_prefix is None:
            return self.elapsed_s
        return sum(dt for label, dt in self.log if label.startswith(label_prefix))
