"""Performance counters collected by the functional simulator.

Every memory space, MMA unit and SIMT unit increments these counters as a
kernel executes.  Tests use them to prove structural claims from the paper
(e.g. "V2 loads only TB_N/N of the data the separate reduction kernel
loaded", "ABFT adds exactly 3 MMAs per warp-tile iteration").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Mutable counter bundle; one per simulated kernel launch or device."""

    # memory traffic in bytes
    global_loads: int = 0
    global_stores: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    async_copies: int = 0           # bytes moved by cp.async (global->shared)
    # synchronisation
    atomics: int = 0                # global atomic operations
    barriers: int = 0               # __syncthreads() count
    commit_groups: int = 0          # cp.async.commit_group count
    wait_groups: int = 0            # cp.async.wait_group count
    # compute
    flops: int = 0                  # useful floating point operations
    mma_ops: int = 0                # tensor-core MMA instructions issued
    simt_fma: int = 0               # SIMT fused multiply-add count
    abft_mma_ops: int = 0           # MMAs issued purely for checksums
    abft_simt_ops: int = 0          # SIMT ops issued purely for checksums
    # fault tolerance events
    checksum_tests: int = 0
    errors_detected: int = 0
    errors_corrected: int = 0
    errors_injected: int = 0
    false_alarms: int = 0
    dmr_checks: int = 0
    dmr_mismatches: int = 0
    kernels_launched: int = 0
    # worker-level fault tolerance (repro.dist): whole-process failures,
    # the failure class orthogonal to the SEU counters above
    worker_crashes: int = 0
    worker_stalls: int = 0
    checkpoint_restores: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def merge(self, other: "PerfCounters") -> None:
        """Accumulate ``other`` into ``self`` (used to roll up per-kernel
        counters into a per-run total)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    # convenience -------------------------------------------------------
    @property
    def total_global_bytes(self) -> int:
        """All traffic that touched global memory (incl. async copies)."""
        return self.global_loads + self.global_stores + self.async_copies

    @property
    def abft_mma_fraction(self) -> float:
        """Fraction of MMA instructions that are checksum-only.

        The paper's theoretical overhead is ``3 / (m_w * n_w)`` extra MMAs
        per warp-tile iteration; this property lets tests check it exactly.
        """
        if self.mma_ops == 0:
            return 0.0
        return self.abft_mma_ops / self.mma_ops

    def snapshot(self) -> dict:
        """Plain-dict copy (for logging / bench result records)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}
