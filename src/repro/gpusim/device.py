"""Device specifications for the simulated GPUs.

The analytic timing model (:mod:`repro.gpusim.timing`) and the occupancy
calculator are parameterised by a :class:`DeviceSpec`.  Two presets mirror
the evaluation hardware of the paper (Sec. V):

* ``A100_PCIE_40GB`` — SM80 (Ampere): tensor cores *and* ``cp.async``
  asynchronous global→shared copies.
* ``TESLA_T4``       — SM75 (Turing): tensor cores but **no** ``cp.async``;
  the pre-Ampere register-mediated data path applies, which is what makes
  Wu-style register-reuse ABFT viable there.

Two peak families matter and the paper's analysis (Sec. V-A6) hinges on
their gap:

* ``simt_tflops_*`` — plain CUDA-core FMA peaks.  These are the numbers the
  paper quotes ("19.5 TFLOPS single / 9.7 TFLOPS double" on A100).
* ``tensor_tflops_*`` — tensor-core MMA peaks (TF32 on A100 FP32 = 156
  TFLOPS; DMMA FP64 = 19.5 TFLOPS).  FP32 kernels therefore run at ~11% of
  tensor peak (bound by data movement and the epilogue, so tile-parameter
  choice has huge headroom), while FP64 kernels run near the DMMA roofline
  (little headroom) — exactly the asymmetry the paper observes between
  Fig. 12's FP32 (avg 2.49x) and FP64 (avg 1.04x) speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["DeviceSpec", "A100_PCIE_40GB", "TESLA_T4", "get_device", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name:
        Human-readable device name.
    sm_version:
        Compute capability major*10+minor (80 = Ampere, 75 = Turing).
    num_sms:
        Streaming multiprocessor count.
    tensor_tflops_fp32 / tensor_tflops_fp64:
        Tensor-core MMA peak per precision (TFLOPS).  On T4 there is no
        FP64 tensor path, so its value equals the (tiny) CUDA-core rate.
    simt_tflops_fp32 / simt_tflops_fp64:
        CUDA-core FMA peaks, used by the naive/V1–V3 kernels and by Wu's
        register-reuse GEMM.
    mem_bw_gbps:
        Global-memory bandwidth in GB/s.
    smem_per_sm / smem_per_block:
        Shared-memory capacity in bytes.
    regs_per_sm / regs_per_thread_max:
        32-bit register file size per SM and the per-thread cap.
    max_threads_per_sm / max_threads_per_block / max_blocks_per_sm:
        Occupancy limits.
    has_async_copy:
        True on SM80+ (``cp.async``: global→shared bypassing registers).
    atomic_ns:
        Modelled cost of one contended global atomic (V3 broadcast locks,
        centroid-update accumulation).
    kernel_launch_us:
        Host-side launch latency per kernel, in microseconds.
    """

    name: str
    sm_version: int
    num_sms: int
    tensor_tflops_fp32: float
    tensor_tflops_fp64: float
    simt_tflops_fp32: float
    simt_tflops_fp64: float
    mem_bw_gbps: float
    smem_per_sm: int = 164 * 1024
    smem_per_block: int = 48 * 1024
    regs_per_sm: int = 65536
    regs_per_thread_max: int = 255
    max_threads_per_sm: int = 2048
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 32
    warp_size: int = 32
    has_async_copy: bool = True
    l2_bytes: int = 40 * 1024 * 1024
    atomic_ns: float = 15.0
    kernel_launch_us: float = 3.0

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def peak_flops(self, dtype, *, tensor_core: bool = True) -> float:
        """Peak FLOP/s for ``dtype`` on the chosen execution path."""
        dt = np.dtype(dtype)
        if dt == np.float32:
            t = self.tensor_tflops_fp32 if tensor_core else self.simt_tflops_fp32
        elif dt == np.float64:
            t = self.tensor_tflops_fp64 if tensor_core else self.simt_tflops_fp64
        else:
            raise ValueError(f"unsupported dtype {dt!r}")
        return t * 1e12

    def mem_bw(self) -> float:
        """Global-memory bandwidth in bytes/s."""
        return self.mem_bw_gbps * 1e9

    def has_fp64_tensor(self) -> bool:
        """True when a dedicated FP64 MMA path exists (A100 DMMA)."""
        return self.tensor_tflops_fp64 > self.simt_tflops_fp64

    def fastpath_chunk_bytes(self) -> int:
        """Auto memory budget for the blocked streaming fast path.

        Half the L2 capacity: one chunk's distance accumulator stays
        cache-resident through the fused inject/epilogue/argmin passes
        while leaving room for the operand stream.
        """
        return max(1 << 20, self.l2_bytes // 2)

    def with_(self, **kw) -> "DeviceSpec":
        """Return a modified copy (for what-if experiments/ablations)."""
        return replace(self, **kw)


A100_PCIE_40GB = DeviceSpec(
    name="NVIDIA A100-PCIE-40GB",
    sm_version=80,
    num_sms=108,
    tensor_tflops_fp32=156.0,   # TF32 MMA
    tensor_tflops_fp64=19.5,    # DMMA
    simt_tflops_fp32=19.5,      # the peaks the paper quotes
    simt_tflops_fp64=9.7,
    mem_bw_gbps=1555.0,
    smem_per_sm=164 * 1024,
    smem_per_block=164 * 1024,  # A100 allows opt-in up to 164 KB
    max_threads_per_sm=2048,
    has_async_copy=True,
    l2_bytes=40 * 1024 * 1024,
)

TESLA_T4 = DeviceSpec(
    name="NVIDIA Tesla T4",
    sm_version=75,
    num_sms=40,
    tensor_tflops_fp32=65.0,    # FP16-in/FP32-accumulate MMA
    tensor_tflops_fp64=0.253,   # no FP64 tensor path on Turing
    simt_tflops_fp32=8.1,       # paper-quoted peaks
    simt_tflops_fp64=0.253,
    mem_bw_gbps=320.0,
    smem_per_sm=64 * 1024,
    smem_per_block=64 * 1024,
    max_threads_per_sm=1024,
    has_async_copy=False,
    l2_bytes=4 * 1024 * 1024,
)

DEVICES = {
    "a100": A100_PCIE_40GB,
    "t4": TESLA_T4,
}


def get_device(name) -> DeviceSpec:
    """Look up a device preset by short name ('a100', 't4') or full name."""
    if isinstance(name, DeviceSpec):
        return name
    key = str(name).lower()
    if key in DEVICES:
        return DEVICES[key]
    for dev in DEVICES.values():
        if dev.name == name:
            return dev
    raise KeyError(f"unknown device {name!r}; available: a100, t4")
