"""Exception types raised by the GPU simulator."""

from __future__ import annotations

__all__ = [
    "GpuSimError",
    "LaunchError",
    "ResourceLimitExceeded",
    "MemoryFault",
    "PipelineError",
    "UncorrectableError",
]


class GpuSimError(RuntimeError):
    """Base class for all simulator errors."""


class LaunchError(GpuSimError):
    """Invalid kernel launch configuration (grid/block shape, etc.)."""


class ResourceLimitExceeded(LaunchError):
    """Launch exceeds shared memory / register / thread limits.

    The code-generation feasibility check ("try it in a demo code",
    Fig. 3) treats this as a *rejected* candidate parameter set, mirroring
    how real CUTLASS kernels fail to launch when tiles do not fit.
    """


class MemoryFault(GpuSimError):
    """Out-of-bounds access in a simulated memory space."""


class PipelineError(GpuSimError):
    """Misuse of the async-copy pipeline (e.g. waiting on an uncommitted
    group, or issuing copies into a stage still in flight)."""


class UncorrectableError(GpuSimError):
    """ABFT detected more errors than the scheme can correct within one
    detection interval (violates the single-event-upset assumption)."""
