"""Transient-fault (SEU) injection.

Implements the paper's fault model (Sec. II-A) verbatim:

* Only *compute* errors are injected — memory is assumed ECC-protected.
* Single-event-upset assumption: at most one error per detection/correction
  interval (the ``k % 256 == 0`` checksum window in Fig. 6).
* Each selected threadblock corrupts one element of its accumulator by
  flipping one uniformly-random bit of the fp32/fp64 representation.

The injector pre-plans faults per (kernel, block) from its own RNG stream
so results are reproducible no matter in which order the functional
simulator visits blocks, and so the vectorised ``fast`` execution mode can
apply the *same* plan to whole block regions of the distance matrix.

This module covers *silent* in-device SEUs.  The orthogonal failure
class — a whole worker/process dying, stalling or returning a corrupted
partial result — lives in :mod:`repro.dist.faults`, which reuses the
:class:`FaultPlan` geometry for its corrupt-partial flips and reports
through the same :class:`~repro.gpusim.counters.PerfCounters` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.counters import PerfCounters
from repro.utils.bits import flip_bit, num_bits, random_bit_index

__all__ = ["FaultPlan", "FaultInjector", "NullInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """One planned SEU inside a threadblock's main loop.

    Attributes
    ----------
    step:
        Main-loop iteration index (over the GEMM K dimension) at which the
        flip happens.
    row_frac, col_frac:
        Target element inside the block's accumulator tile, as fractions in
        [0, 1) so the same plan applies to any tile geometry.
    bit:
        Bit index to flip in the element's float representation.
    """

    step: int
    row_frac: float
    col_frac: float
    bit: int

    def locate(self, tile_m: int, tile_n: int) -> tuple[int, int]:
        """Resolve the fractional target to concrete tile coordinates."""
        return (
            min(int(self.row_frac * tile_m), tile_m - 1),
            min(int(self.col_frac * tile_n), tile_n - 1),
        )


class FaultInjector:
    """Plans and applies SEU bit flips.

    Parameters
    ----------
    rng:
        NumPy Generator (or integer seed).
    p_block:
        Probability that a given threadblock suffers one SEU during one
        kernel execution.  The paper's "tens of errors per second" maps to
        a per-block probability via the error-injection benchmarks
        (see :mod:`repro.bench.figures`).
    dtype:
        Accumulator element type (sets the bit-width for flips).
    max_faults:
        Optional global cap (None = unlimited).
    """

    def __init__(self, rng, p_block: float, dtype, *, max_faults: int | None = None,
                 counters: PerfCounters | None = None):
        if not 0.0 <= p_block <= 1.0:
            raise ValueError(f"p_block must be in [0, 1], got {p_block}")
        self.rng = np.random.default_rng(rng)
        self.p_block = float(p_block)
        self.dtype = np.dtype(dtype)
        self.max_faults = max_faults
        self.counters = counters if counters is not None else PerfCounters()
        self.injected: list[tuple[int, FaultPlan]] = []

    @property
    def enabled(self) -> bool:
        return self.p_block > 0.0

    def plan_for_block(self, block_id: int, n_steps: int) -> FaultPlan | None:
        """Decide (once) whether / where this block is corrupted.

        ``n_steps`` is the number of main-loop iterations (the fault can
        strike at any of them).  Deterministic given the injector's RNG
        stream and call order; callers invoke it exactly once per block.
        """
        if not self.enabled or n_steps <= 0:
            return None
        if self.max_faults is not None and len(self.injected) >= self.max_faults:
            return None
        if self.rng.random() >= self.p_block:
            return None
        plan = FaultPlan(
            step=int(self.rng.integers(0, n_steps)),
            row_frac=float(self.rng.random()),
            col_frac=float(self.rng.random()),
            bit=random_bit_index(self.rng, self.dtype),
        )
        self.injected.append((block_id, plan))
        return plan

    def apply(self, plan: FaultPlan, acc: np.ndarray) -> tuple[int, int]:
        """Flip the planned bit in accumulator tile ``acc`` (in place).

        Returns the (row, col) that was corrupted.
        """
        r, c = plan.locate(acc.shape[0], acc.shape[1])
        acc[r, c] = flip_bit(acc[r, c], plan.bit)
        self.counters.errors_injected += 1
        return r, c


class NullInjector:
    """No-fault stand-in with the same interface (default for clean runs)."""

    enabled = False
    injected: list = []

    def plan_for_block(self, block_id: int, n_steps: int) -> None:
        return None

    def apply(self, plan, acc) -> tuple[int, int]:  # pragma: no cover - unreachable
        raise RuntimeError("NullInjector cannot apply faults")
