"""Grid / threadblock / warp execution hierarchy.

The functional simulator executes kernels block-by-block (GPU blocks are
independent by construction, so sequential execution is semantics-
preserving).  A :class:`LaunchConfig` validates the launch against device
limits; :class:`ThreadBlock` carries per-block shared memory, the async
pipeline and the fault-injection context; :class:`Warp` is a lightweight
index/bookkeeping handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.errors import LaunchError, ResourceLimitExceeded
from repro.gpusim.memory import RegisterFile, SharedMemory
from repro.utils.arrays import ceil_div

__all__ = ["LaunchConfig", "Grid", "ThreadBlock", "Warp"]


@dataclass(frozen=True)
class LaunchConfig:
    """Validated kernel launch configuration.

    Attributes
    ----------
    grid_m, grid_n:
        Threadblock grid extents (rows of samples x columns of clusters).
    threads_per_block:
        Must be a positive multiple of the warp size within device limits.
    smem_bytes:
        Static shared-memory request per block.
    regs_per_thread:
        Declared register footprint per thread.
    """

    grid_m: int
    grid_n: int
    threads_per_block: int
    smem_bytes: int = 0
    regs_per_thread: int = 32

    def validate(self, device: DeviceSpec) -> "LaunchConfig":
        """Raise :class:`LaunchError` / :class:`ResourceLimitExceeded` if the
        launch cannot run on ``device``; return self otherwise."""
        if self.grid_m <= 0 or self.grid_n <= 0:
            raise LaunchError(f"grid must be positive, got {self.grid_m}x{self.grid_n}")
        if self.threads_per_block <= 0:
            raise LaunchError("threads_per_block must be positive")
        if self.threads_per_block % device.warp_size != 0:
            raise LaunchError(
                f"threads_per_block ({self.threads_per_block}) must be a "
                f"multiple of the warp size ({device.warp_size})"
            )
        if self.threads_per_block > device.max_threads_per_block:
            raise ResourceLimitExceeded(
                f"{self.threads_per_block} threads/block exceeds device max "
                f"{device.max_threads_per_block}"
            )
        if self.smem_bytes > device.smem_per_block:
            raise ResourceLimitExceeded(
                f"{self.smem_bytes} B shared memory exceeds per-block max "
                f"{device.smem_per_block}"
            )
        if self.regs_per_thread > device.regs_per_thread_max:
            raise ResourceLimitExceeded(
                f"{self.regs_per_thread} regs/thread exceeds device max "
                f"{device.regs_per_thread_max}"
            )
        if self.regs_per_thread * self.threads_per_block > device.regs_per_sm:
            raise ResourceLimitExceeded(
                "register file cannot host a single block: "
                f"{self.regs_per_thread} x {self.threads_per_block} > "
                f"{device.regs_per_sm}"
            )
        return self

    @property
    def num_blocks(self) -> int:
        return self.grid_m * self.grid_n

    @property
    def warps_per_block(self) -> int:
        return self.threads_per_block // 32


@dataclass
class Warp:
    """A warp's coordinates inside its block (index only; lanes execute in
    lockstep, which NumPy tile ops model exactly)."""

    block: "ThreadBlock"
    warp_id: int
    # warp coordinates inside the block's warp raster (set by the kernel)
    warp_m: int = 0
    warp_n: int = 0


class ThreadBlock:
    """Execution context for one threadblock.

    Owns its shared memory, register accounting and per-block RNG stream so
    fault injection is reproducible regardless of block execution order.
    """

    def __init__(self, grid: "Grid", block_m: int, block_n: int):
        self.grid = grid
        self.block_m = block_m
        self.block_n = block_n
        device = grid.device
        self.smem = SharedMemory(device.smem_per_block, counters=grid.counters)
        self.regs = RegisterFile(device.regs_per_thread_max)
        self.counters = grid.counters

    @property
    def block_id(self) -> int:
        """Linear block index (row-major over the grid)."""
        return self.block_m * self.grid.config.grid_n + self.block_n

    def warps(self, raster_m: int, raster_n: int) -> list[Warp]:
        """Enumerate the block's warps over an (raster_m x raster_n) raster.

        raster_m * raster_n must equal warps_per_block; kernels derive the
        raster from TB tile / warp tile ratios.
        """
        expected = self.grid.config.warps_per_block
        if raster_m * raster_n != expected:
            raise LaunchError(
                f"warp raster {raster_m}x{raster_n} does not cover the "
                f"{expected} warps in this block"
            )
        out = []
        for wm in range(raster_m):
            for wn in range(raster_n):
                w = Warp(self, wm * raster_n + wn, warp_m=wm, warp_n=wn)
                out.append(w)
        return out

    def syncthreads(self) -> None:
        """Record a block-wide barrier (functional execution is already
        sequential so this is pure accounting)."""
        self.counters.barriers += 1


class Grid:
    """A validated kernel launch: iterates threadblocks sequentially."""

    def __init__(self, device: DeviceSpec, config: LaunchConfig,
                 counters: PerfCounters | None = None):
        self.device = device
        self.config = config.validate(device)
        self.counters = counters if counters is not None else PerfCounters()
        self.counters.kernels_launched += 1

    def blocks(self) -> Iterator[ThreadBlock]:
        """Yield every threadblock in row-major order."""
        for bm in range(self.config.grid_m):
            for bn in range(self.config.grid_n):
                yield ThreadBlock(self, bm, bn)

    @classmethod
    def for_tiles(cls, device: DeviceSpec, rows: int, cols: int,
                  tile_m: int, tile_n: int, threads_per_block: int,
                  smem_bytes: int = 0, regs_per_thread: int = 32,
                  counters: PerfCounters | None = None) -> "Grid":
        """Build the grid that tiles an (rows x cols) output with
        (tile_m x tile_n) blocks."""
        cfg = LaunchConfig(
            grid_m=ceil_div(rows, tile_m),
            grid_n=ceil_div(cols, tile_n),
            threads_per_block=threads_per_block,
            smem_bytes=smem_bytes,
            regs_per_thread=regs_per_thread,
        )
        return cls(device, cfg, counters=counters)
