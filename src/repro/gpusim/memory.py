"""Simulated GPU memory spaces with traffic accounting.

Three spaces mirror the hierarchy in Fig. 1 of the paper:

* :class:`GlobalMemory` — device memory; every load/store/atomic is counted.
* :class:`SharedMemory` — per-threadblock scratch with a capacity limit;
  allocation failures surface as :class:`ResourceLimitExceeded`, which is
  exactly the signal the code-generation feasibility check consumes.
* :class:`RegisterFile` — per-thread register accounting used by the
  occupancy calculator.

The functional kernels operate on NumPy views obtained through these
wrappers, so numerical behaviour is bit-faithful while the counters record
the traffic the timing model and the tests reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.counters import PerfCounters
from repro.gpusim.errors import MemoryFault, ResourceLimitExceeded

__all__ = ["GlobalMemory", "SharedMemory", "RegisterFile"]


class GlobalMemory:
    """Named global-memory arrays plus byte-level traffic counters."""

    def __init__(self, counters: PerfCounters | None = None):
        self._arrays: dict[str, np.ndarray] = {}
        self.counters = counters if counters is not None else PerfCounters()

    # -- allocation -----------------------------------------------------
    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate (or replace) a zero-initialised array."""
        arr = np.zeros(shape, dtype=dtype)
        self._arrays[name] = arr
        return arr

    def bind(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register an existing host array as device-resident."""
        self._arrays[name] = array
        return array

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise MemoryFault(f"no global allocation named {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    # -- counted accesses -------------------------------------------------
    def load(self, name: str, rows: slice, cols: slice) -> np.ndarray:
        """Counted read of a 2-D region; returns a copy (registers)."""
        arr = self[name]
        tile = arr[rows, cols].copy()
        self.counters.global_loads += tile.nbytes
        return tile

    def store(self, name: str, rows: slice, cols: slice, tile: np.ndarray) -> None:
        """Counted write of a 2-D region."""
        arr = self[name]
        arr[rows, cols] = tile
        self.counters.global_stores += np.asarray(tile).nbytes

    def async_copy(self, name: str, rows: slice, cols: slice) -> np.ndarray:
        """``cp.async``-style read: bypasses the register file.

        Byte count is recorded separately so tests can verify that the
        Ampere tensor-core kernel moves its operands via the async path
        (and that the pre-Ampere SIMT kernel never does).
        """
        arr = self[name]
        tile = arr[rows, cols].copy()
        self.counters.async_copies += tile.nbytes
        return tile

    def atomic_add(self, name: str, index, value) -> None:
        """Counted atomic add to one element or a row (vectorised)."""
        arr = self[name]
        np.add.at(arr, index, value)
        v = np.asarray(value)
        self.counters.atomics += max(1, v.size)

    def atomic_min_packed(self, name: str, row: int, key: float, payload: int) -> bool:
        """Atomic "min with payload" used by the V3 broadcast epilogue.

        Emulates the paper's per-row lock + compare: keeps the smaller
        ``key`` (distance) and its ``payload`` (centroid id) for ``row``.
        The target array has shape (M, 2): column 0 = key, column 1 = id.
        Returns True iff this call won (updated the row).
        """
        arr = self[name]
        self.counters.atomics += 1
        if key < arr[row, 0]:
            arr[row, 0] = key
            arr[row, 1] = payload
            return True
        return False


class SharedMemory:
    """Per-threadblock shared memory with a hard capacity limit."""

    def __init__(self, capacity_bytes: int, counters: PerfCounters | None = None):
        self.capacity_bytes = int(capacity_bytes)
        self.counters = counters if counters is not None else PerfCounters()
        self._arrays: dict[str, np.ndarray] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate a shared array; raises when over capacity.

        The code generator relies on this exception to discard infeasible
        tile parameter sets, mirroring the paper's demo-compile check.
        """
        arr = np.zeros(shape, dtype=dtype)
        if self._used + arr.nbytes > self.capacity_bytes:
            raise ResourceLimitExceeded(
                f"shared memory over capacity: {self._used + arr.nbytes} B "
                f"requested, {self.capacity_bytes} B available"
            )
        self._arrays[name] = arr
        self._used += arr.nbytes
        return arr

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise MemoryFault(f"no shared allocation named {name!r}")

    def write(self, name: str, index, tile) -> None:
        """Counted write into shared memory."""
        arr = self[name]
        arr[index] = tile
        self.counters.shared_stores += np.asarray(tile).nbytes

    def read(self, name: str, index) -> np.ndarray:
        """Counted read from shared memory (returns a copy)."""
        arr = self[name]
        tile = np.array(arr[index], copy=True)
        self.counters.shared_loads += tile.nbytes
        return tile


@dataclass
class RegisterFile:
    """Per-thread register accounting.

    The functional kernels do not route every scalar through this class —
    NumPy locals stand in for registers — but each kernel *declares* its
    register footprint here so the occupancy calculator and the feasibility
    check see the same resource pressure a real CUTLASS kernel would have.
    """

    regs_per_thread_max: int = 255
    declared: int = 0

    def declare(self, count: int) -> None:
        """Declare ``count`` additional 32-bit registers per thread."""
        if count < 0:
            raise ValueError("register count must be non-negative")
        self.declared += count
        if self.declared > self.regs_per_thread_max:
            raise ResourceLimitExceeded(
                f"register file over capacity: {self.declared} regs/thread "
                f"declared, max {self.regs_per_thread_max}"
            )

    def reset(self) -> None:
        self.declared = 0
