"""Tensor-core MMA (matrix-multiply-accumulate) functional model.

A warp-level tensor-core operation computes ``acc += a @ b`` on small
fragments.  The instruction shapes mirror the hardware the paper targets:

* FP32 path: ``mma.sync.m16n8k8`` with **TF32** operands — inputs are
  rounded to TF32 (10-bit mantissa) before the multiply, accumulation stays
  in FP32.  This is the "enable TF32 in FP32 precision" step of Sec. III-A5
  and the reason FP32 has more headroom than FP64 (Sec. V-A6).
* FP64 path: ``mma.sync.m8n8k4`` (the instruction quoted verbatim in the
  paper's Fig. 4/6 pseudocode), full-precision accumulate.

:class:`MmaUnit` executes whole warp fragments with a single NumPy matmul
(bit-faithful dataflow, fast) while counting how many hardware MMA
instructions the fragment decomposes into, so overhead ratios such as the
ABFT ``3/(m_w·n_w)`` extra MMAs are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.counters import PerfCounters
from repro.utils.arrays import ceil_div

__all__ = ["MmaShape", "MMA_FP32_TF32", "MMA_FP64", "mma_shape_for", "round_tf32", "MmaUnit"]


@dataclass(frozen=True)
class MmaShape:
    """One hardware MMA instruction's (m, n, k) fragment shape."""

    m: int
    n: int
    k: int
    name: str

    def instructions_for(self, frag_m: int, frag_n: int, frag_k: int) -> int:
        """How many instructions cover a (frag_m x frag_n x frag_k) op."""
        return (
            ceil_div(frag_m, self.m)
            * ceil_div(frag_n, self.n)
            * ceil_div(frag_k, self.k)
        )


MMA_FP32_TF32 = MmaShape(16, 8, 8, "mma.sync.aligned.m16n8k8.f32.tf32")
MMA_FP64 = MmaShape(8, 8, 4, "mma.sync.aligned.m8n8k4.f64")


def mma_shape_for(dtype) -> MmaShape:
    """Instruction shape used for ``dtype`` (paper Sec. III-B1 rule 4)."""
    dt = np.dtype(dtype)
    if dt == np.float32:
        return MMA_FP32_TF32
    if dt == np.float64:
        return MMA_FP64
    raise ValueError(f"unsupported dtype {dt!r}")


def round_tf32(x: np.ndarray) -> np.ndarray:
    """Round FP32 values to TF32 precision (10-bit mantissa, RNE).

    TF32 keeps FP32's 8-bit exponent but only 10 mantissa bits; hardware
    rounds to nearest-even on tensor-core ingestion (truncation would bias
    dot products toward zero and visibly inflate K-means inertia).
    Accumulation stays full FP32, which is why the checksum threshold
    analysis in :mod:`repro.abft.thresholds` uses TF32 unit roundoff for
    the products but FP32 for the sums.
    """
    x = np.asarray(x, dtype=np.float32)
    bits = x.view(np.uint32)
    # round-to-nearest-even on the low 13 bits; mantissa carries propagate
    # into the exponent exactly as the hardware rounder does
    lsb = (bits >> np.uint32(13)) & np.uint32(1)
    rounded = (bits + np.uint32(0xFFF) + lsb) & np.uint32(0xFFFFE000)
    out = rounded.view(np.float32)
    # non-finite payloads must pass through untouched
    finite = np.isfinite(x)
    if not finite.all():
        out = np.where(finite, out, x)
    return out


class MmaUnit:
    """Executes warp-fragment matmuls on the (simulated) tensor cores.

    Parameters
    ----------
    dtype:
        Element type; selects the instruction shape and TF32 rounding.
    counters:
        Per-launch counters (instructions, flops).
    use_tf32:
        When False the FP32 path multiplies at full precision (used for
        ablations; the paper's kernels always enable TF32).
    """

    def __init__(self, dtype, counters: PerfCounters | None = None, *,
                 use_tf32: bool = True):
        self.dtype = np.dtype(dtype)
        self.shape = mma_shape_for(dtype)
        self.counters = counters if counters is not None else PerfCounters()
        self.use_tf32 = use_tf32 and self.dtype == np.float32

    def mma(self, a_frag: np.ndarray, b_frag: np.ndarray, acc: np.ndarray, *,
            abft: bool = False) -> None:
        """``acc += a_frag @ b_frag`` with instruction accounting.

        a_frag: (m, k); b_frag: (k, n); acc: (m, n) updated in place.
        ``abft=True`` marks the instructions as checksum-only work so the
        overhead ratio is measurable.
        """
        m, k = a_frag.shape
        k2, n = b_frag.shape
        if k != k2 or acc.shape != (m, n):
            raise ValueError(
                f"fragment mismatch: a {a_frag.shape}, b {b_frag.shape}, acc {acc.shape}"
            )
        if self.use_tf32:
            prod = round_tf32(a_frag).astype(np.float32) @ round_tf32(b_frag).astype(np.float32)
        else:
            prod = a_frag.astype(self.dtype) @ b_frag.astype(self.dtype)
        with np.errstate(invalid="ignore", over="ignore"):
            # NaN/Inf accumulators are legitimate simulator states after a
            # fault injection; warnings would only be noise here
            acc += prod.astype(acc.dtype, copy=False)
        n_instr = self.shape.instructions_for(m, n, k)
        self.counters.mma_ops += n_instr
        self.counters.flops += 2 * m * n * k
        if abft:
            self.counters.abft_mma_ops += n_instr
