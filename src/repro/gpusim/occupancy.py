"""Occupancy calculation for simulated kernel launches.

Occupancy — how many threadblocks (and hence warps) an SM can host
concurrently — is the lever through which tile-parameter choice affects
both latency hiding and achievable memory bandwidth.  The paper's analysis
of why cuML's fixed ``Threadblock.N = 256`` loses at small cluster counts
("the occupancy is very low", Sec. V-A6) is reproduced by this module plus
the timing model's occupancy-dependent efficiency terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec

__all__ = ["Occupancy", "compute_occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy calculation.

    Attributes
    ----------
    blocks_per_sm:
        Concurrent resident blocks per SM (0 = launch cannot run at all).
    warps_per_sm:
        Resident warps per SM.
    occupancy:
        warps_per_sm / max warps per SM, in [0, 1].
    limiter:
        Which resource bound first: 'smem', 'regs', 'threads' or 'blocks'.
    """

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    limiter: str

    @property
    def feasible(self) -> bool:
        return self.blocks_per_sm >= 1


def compute_occupancy(device: DeviceSpec, threads_per_block: int,
                      smem_bytes: int, regs_per_thread: int) -> Occupancy:
    """Blocks-per-SM under the shared-memory / register / thread limits."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")

    limits: dict[str, int] = {}
    limits["threads"] = device.max_threads_per_sm // threads_per_block
    limits["blocks"] = device.max_blocks_per_sm
    if smem_bytes > 0:
        limits["smem"] = device.smem_per_sm // smem_bytes
    regs_per_block = regs_per_thread * threads_per_block
    if regs_per_block > 0:
        limits["regs"] = device.regs_per_sm // regs_per_block

    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_sm = limits[limiter]
    warps_per_block = threads_per_block // device.warp_size
    warps_per_sm = blocks_per_sm * warps_per_block
    max_warps = device.max_threads_per_sm // device.warp_size
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        warps_per_sm=warps_per_sm,
        occupancy=min(1.0, warps_per_sm / max_warps),
        limiter=limiter,
    )
