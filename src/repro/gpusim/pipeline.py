"""Asynchronous global→shared copy pipeline (``cp.async`` model).

Ampere's ``cp.async`` instructions move data from global memory straight
into shared memory, *bypassing the register file*.  This is the
architectural change at the heart of the paper: pre-Ampere ABFT schemes
computed checksums "for free" while data passed through registers, and that
free ride disappears on SM80.  The functional pipeline here reproduces the
commit-group / wait-group semantics of the pseudocode in Fig. 4:

    for stage in range(k_stage - 1):       # prologue: prefetch
        pipe.async_copy(...); pipe.commit_group()
    pipe.wait_group(k_stage - 2)           # at least one stage ready
    for k in main_loop:
        pipe.async_copy(...)               # prefetch next stage
        ... MMA on current stage ...
        pipe.commit_group()
        pipe.wait_group(k_stage - 2)

Copies land in the destination buffers only when their group completes,
so a kernel that reads a stage before waiting observes stale data — tests
assert this failure mode to show the model is not just a pass-through.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.gpusim.counters import PerfCounters
from repro.gpusim.errors import PipelineError

__all__ = ["AsyncCopyPipeline", "PendingCopy"]


@dataclass
class PendingCopy:
    """A single in-flight cp.async transfer."""

    dest: np.ndarray      # view into a shared-memory stage buffer
    src: np.ndarray       # the already-materialised global tile (copy)

    def complete(self) -> None:
        self.dest[...] = self.src


class AsyncCopyPipeline:
    """Commit-group FIFO for asynchronous copies of one threadblock."""

    def __init__(self, counters: PerfCounters | None = None, *, enabled: bool = True):
        self.counters = counters if counters is not None else PerfCounters()
        self.enabled = enabled
        self._staged: list[PendingCopy] = []
        self._groups: deque[list[PendingCopy]] = deque()

    @property
    def groups_in_flight(self) -> int:
        return len(self._groups)

    def async_copy(self, dest: np.ndarray, src_tile: np.ndarray) -> None:
        """Issue one cp.async transfer into the current (uncommitted) group.

        ``src_tile`` is the global-memory tile (the caller obtains it via
        ``GlobalMemory.async_copy`` which does the byte accounting).  When
        the pipeline is disabled (pre-Ampere device) the copy completes
        immediately — that is the synchronous, register-mediated path.
        """
        if dest.shape != src_tile.shape:
            raise PipelineError(
                f"cp.async shape mismatch: dest {dest.shape} vs src {src_tile.shape}"
            )
        pc = PendingCopy(dest=dest, src=np.array(src_tile, copy=True))
        if not self.enabled:
            pc.complete()
            return
        self._staged.append(pc)

    def commit_group(self) -> None:
        """Seal the staged copies into one commit group (may be empty)."""
        if not self.enabled:
            return
        self.counters.commit_groups += 1
        self._groups.append(self._staged)
        self._staged = []

    def wait_group(self, max_in_flight: int) -> None:
        """Block until at most ``max_in_flight`` groups remain in flight.

        Completes the *oldest* groups first, exactly like
        ``cp.async.wait_group N``.
        """
        if not self.enabled:
            return
        if max_in_flight < 0:
            raise PipelineError("wait_group argument must be >= 0")
        self.counters.wait_groups += 1
        while len(self._groups) > max_in_flight:
            group = self._groups.popleft()
            for copy in group:
                copy.complete()

    def drain(self) -> None:
        """Complete everything (kernel epilogue)."""
        if self._staged:
            # uncommitted copies would be lost on a real GPU; surface misuse
            raise PipelineError("pipeline drained with uncommitted copies staged")
        self.wait_group(0)
