"""SIMT (CUDA-core) functional compute units.

The pre-Ampere GEMM path, the naive/V1–V3 K-means kernels, the warp-level
checksum accumulations (Fig. 6 lines 15–18) and the DMR-protected centroid
update all execute on plain CUDA cores.  :class:`SimtUnit` performs those
operations with NumPy while counting FMA-equivalents, so the timing model
and the ABFT-overhead tests can reason about SIMT work separately from
tensor-core work.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import PerfCounters

__all__ = ["SimtUnit"]


class SimtUnit:
    """Counted elementwise / reduction operations on CUDA cores."""

    def __init__(self, dtype, counters: PerfCounters | None = None):
        self.dtype = np.dtype(dtype)
        self.counters = counters if counters is not None else PerfCounters()

    # -- GEMM-ish --------------------------------------------------------
    def fma_gemm(self, a: np.ndarray, b: np.ndarray, acc: np.ndarray) -> None:
        """``acc += a @ b`` on CUDA cores (full precision, no TF32)."""
        m, k = a.shape
        _, n = b.shape
        acc += (a.astype(self.dtype) @ b.astype(self.dtype)).astype(acc.dtype, copy=False)
        self.counters.simt_fma += m * n * k
        self.counters.flops += 2 * m * n * k

    # -- checksum accumulations (Fig. 6 lines 15-18) ----------------------
    def weighted_rowsum(self, tile: np.ndarray, weights: np.ndarray, *,
                        abft: bool = False) -> np.ndarray:
        """``weights @ tile`` — e.g. e1ᵀA or e2ᵀA over a warp fragment.

        ``tile``: (m, k); ``weights``: (m,).  Returns a (k,) vector.
        Counted as m*k FMAs; flagged as ABFT work when requested.
        """
        out = weights.astype(self.dtype) @ tile.astype(self.dtype)
        ops = tile.shape[0] * tile.shape[1]
        self.counters.simt_fma += ops
        if abft:
            self.counters.abft_simt_ops += ops
        return out

    def weighted_colsum(self, tile: np.ndarray, weights: np.ndarray, *,
                        abft: bool = False) -> np.ndarray:
        """``tile @ weights`` — e.g. B·e1 or B·e2 over a warp fragment."""
        out = tile.astype(self.dtype) @ weights.astype(self.dtype)
        ops = tile.shape[0] * tile.shape[1]
        self.counters.simt_fma += ops
        if abft:
            self.counters.abft_simt_ops += ops
        return out

    # -- elementwise ------------------------------------------------------
    def axpy(self, alpha, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Counted ``alpha * x + y``."""
        self.counters.simt_fma += x.size
        self.counters.flops += 2 * x.size
        return (alpha * x + y).astype(self.dtype, copy=False)

    def square_rowsum(self, tile: np.ndarray) -> np.ndarray:
        """Row-wise sum of squares (the ``Samples²`` kernel of Fig. 2)."""
        self.counters.simt_fma += tile.size
        self.counters.flops += 2 * tile.size
        return np.sum(tile.astype(self.dtype) ** 2, axis=1)

    def row_argmin(self, tile: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise (min, argmin) — the fused epilogue reduction."""
        self.counters.flops += tile.size
        return tile.min(axis=1), tile.argmin(axis=1)
