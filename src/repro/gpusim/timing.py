"""Analytic kernel timing model.

The paper's performance results cannot be reproduced by wall-clock on this
host (no GPU), so every figure is regenerated from an analytic model that
is driven by the *same quantities the paper's analysis reasons about*:

* **Padding waste** — tensor cores execute full ``TB_M x TB_N`` tiles, so a
  fixed ``Threadblock.N = 256`` against ``K = 8`` clusters burns 31/32 of
  the MMA work (the cuML failure mode of Sec. V-A6).  Compute time is
  charged for *padded* tiles; memory traffic only for *real* (predicated)
  bytes, like CUTLASS.
* **Occupancy** — shared-memory/register pressure bounds resident warps,
  which gates both latency hiding (compute efficiency) and achievable
  memory bandwidth.
* **Pipeline fill/drain** — a ``k_iters``-step main loop behind an
  ``stages``-deep async pipeline spends ``(stages-1)/(k_iters+stages-1)``
  of its life filling/draining; short feature dimensions are punished.
* **Two peak families** — FP32 kernels are bound far below the TF32 tensor
  peak (issue/data movement), so extra ABFT MMAs slide into idle tensor
  slots (paper: 37.5% theoretical → ~11% observed).  FP64 runs near the
  DMMA roofline, so the same MMAs cost real time (paper: K=128 FP64
  overhead ≈ 20%).
* **Async-copy overlap** — Ampere kernels overlap memory with compute
  (``max``); pre-Ampere / Wu-style synchronous staging serialises part of
  it (``+``), which is exactly why Wu's scheme pays ~30%.

Calibration constants live in :class:`Calibration` with documented
physical meaning; EXPERIMENTS.md records paper-vs-model numbers for every
figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.mma import mma_shape_for
from repro.gpusim.occupancy import Occupancy, compute_occupancy
from repro.utils.arrays import ceil_div

__all__ = ["Calibration", "KernelTiming", "TimingModel", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Tunable constants of the timing model (all dimensionless unless
    noted).  Values were fit to the paper's anchor numbers; each constant
    has a physical interpretation, not a per-figure fudge."""

    # Fraction of the *tensor* peak attainable by the fused tall-skinny
    # distance kernel in steady state with ideal parameters.  FP32/TF32 is
    # issue- and epilogue-bound far below the 156 TFLOPS MMA peak (the
    # paper's "less than 10% of peak" observation); FP64 DMMA is nearly
    # compute-bound.
    eff_tensor_fp32: float = 0.20
    eff_tensor_fp64: float = 0.80
    # SIMT GEMM efficiencies (hand-written kernels of Sec. III-A).
    eff_simt_gemm: float = 0.26
    eff_naive: float = 0.026
    # Steady-state fraction of DRAM bandwidth reachable at full occupancy.
    eff_mem_base: float = 0.88
    # Warps/SM needed to saturate the MMA issue pipes: tensor cores keep up
    # with very few warps (2 MMA issues/cycle/SM), which is why cuML's
    # 8-resident-warp configuration still runs its padded tiles near full
    # rate — padding waste, not starvation, is its penalty.
    warps_needed_compute: float = 4.0
    # Warps/SM needed to saturate DRAM bandwidth: reaching the full
    # 1.55 TB/s needs nearly full occupancy (~48+ warps of outstanding
    # loads); low-occupancy kernels see a steep bandwidth cliff.  This is
    # the dominant cost at skinny shapes (K=8 panels of Figs. 8/9).
    warps_needed_mem: float = 48.0
    mem_occ_exponent: float = 0.75
    # Occupancy softness: eff = w / (w + soft * needed).
    occ_softness: float = 0.12
    # Warp-tile operand reuse: flops per staged fragment element peak for
    # balanced warp tiles (harmonic mean of w_m, w_n); skewed tiles like
    # W(128,8) starve the MMA pipes on shared-memory traffic.
    frag_reuse_ref_fp32: float = 40.0
    frag_reuse_ref_fp64: float = 30.0
    # Threadblock-level balance: global->shared traffic per output element
    # is (TB_M+TB_N)/(TB_M*TB_N); skewed blocks like cuML's (32,256) move
    # ~2x the data of a balanced (128,128) block (the paper's Sec. V-A6
    # explanation of parameter 83's win at large N).
    tb_balance_ref_fp32: float = 96.0
    tb_balance_ref_fp64: float = 60.0
    tb_balance_exponent: float = 0.25
    # Per-main-loop-iteration bookkeeping (commit/wait, address math)
    # favours deeper K-tiles: eff = tb_k / (tb_k + cost).
    iter_overhead_k: float = 2.0
    # FP64 vectorised-load penalty (alignment fixed to 1 in CUTLASS FP64).
    fp64_vec_penalty: float = 1.0
    # L2 reuse: repeated B-tile (centroid) traffic is served at an
    # effective rate l2_speedup x DRAM.
    l2_speedup: float = 6.0
    # Fraction of memory time NOT hidden by register double-buffering on
    # the synchronous (pre-Ampere) data path.
    sync_mem_exposed: float = 0.45
    # Wu's threadblock-level scheme: extra time for smem checksum
    # reductions + block-wide barriers, as a fraction of main-loop time.
    # Without cp.async (T4, or any pre-Ampere device) there is no
    # concurrent copy stream to hide the barrier stalls behind, so the
    # penalty is much larger — the "elimination of threadblock-level
    # synchronization" advantage the paper measures at ~60% on T4.
    wu_sync_overhead: float = 0.12
    wu_sync_overhead_no_async: float = 0.55
    # Fraction of idle SIMT issue slots usable to hide checksum arithmetic
    # (scaled by 1 - tensor busy fraction).
    simt_hide_budget: float = 0.40
    # When memory-bound, fraction of checksum SIMT arithmetic that still
    # delays the load path (LSU/issue contention); FP64's half-rate 64-bit
    # datapath makes its pressure much larger.
    simt_mem_contention_fp32: float = 0.10
    simt_mem_contention_fp64: float = 0.50
    # Tensor-core-only checksum ablation (Sec. IV-B): embedding e1/e2 as
    # extra operand columns; cannot be hidden.
    tensor_only_abft_overhead: float = 0.50
    # In-place correction cost per affected block, as a fraction of its
    # main loop (pipeline drain + the Fig. 6 l.26-31 fix sequence).
    correction_cost_frac_fp32: float = 0.025
    correction_cost_frac_fp64: float = 0.095
    # Detection interval in GEMM-K elements (Fig. 6 line 25).
    detection_interval: int = 256
    # Atomic traffic model: each global atomic costs one L2 transaction of
    # ~32 B served at the L2-to-SM bandwidth (mostly-uncontended per-row
    # locks of the broadcast epilogue).
    atomic_bytes: float = 32.0
    atomic_bw: float = 2.0e12
    # Atomic throughput for the update stage's contended accumulation.
    atomic_ops_per_s: float = 4.0e9


DEFAULT_CALIBRATION = Calibration()


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one simulated kernel launch.

    ``time_s`` is the modelled wall time; ``gflops`` is computed against
    the *useful* FLOP count ``2*M*K*N`` exactly as the paper reports.
    """

    time_s: float
    useful_flops: float
    t_compute: float
    t_memory: float
    t_epilogue: float
    t_abft: float
    t_correction: float
    t_launch: float
    occupancy: Occupancy
    limiter: str
    details: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return self.useful_flops / self.time_s / 1e9

    @property
    def tflops(self) -> float:
        return self.gflops / 1e3

    def with_time(self, time_s: float) -> "KernelTiming":
        return replace(self, time_s=time_s)


def _saturating(w: float, needed: float, softness: float) -> float:
    """Smooth saturating efficiency in the number of resident warps."""
    if w <= 0:
        return 0.0
    return min(1.0, w / (w + softness * needed))


class TimingModel:
    """Analytic cost model for the kernels of the paper on one device."""

    def __init__(self, device: DeviceSpec, calib: Calibration | None = None):
        self.device = device
        self.calib = calib if calib is not None else DEFAULT_CALIBRATION

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _resources(self, tb_m: int, tb_n: int, tb_k: int, w_m: int, w_n: int,
                   stages: int, dtype) -> tuple[int, int, int, Occupancy]:
        """threads/block, smem bytes, regs/thread and occupancy for a tile."""
        itemsize = np.dtype(dtype).itemsize
        warps = max(1, (tb_m // w_m) * (tb_n // w_n))
        threads = warps * self.device.warp_size
        smem = stages * (tb_m + tb_n) * tb_k * itemsize
        # accumulator registers per thread + operand fragments + control.
        acc_elems = (w_m * w_n) / self.device.warp_size
        regs = int(acc_elems * (2 if np.dtype(dtype) == np.float64 else 1)
                   + (w_m + w_n) / 4 + 24)
        regs = min(regs, self.device.regs_per_thread_max)
        occ = compute_occupancy(self.device, threads, smem, regs)
        return threads, smem, regs, occ

    def _wave_utilisation(self, blocks: int, occ: Occupancy) -> float:
        """Tail-wave quantisation: partially filled final waves waste SMs."""
        slots = max(1, occ.blocks_per_sm * self.device.num_sms)
        waves = ceil_div(blocks, slots)
        return blocks / (waves * slots)

    def _traffic_bytes(self, m: int, n_clusters: int, k_features: int,
                       grid_m: int, grid_n: int, dtype) -> float:
        """Effective-DRAM bytes for the distance main loop.

        Sample tiles (A) are re-read once per column of blocks, but when
        the whole sample matrix fits in L2 (the N<=32 regime on A100 —
        131072 x 32 x 4B = 16.8 MB against 40 MB of L2) the re-reads are
        served at the L2-discounted rate.  That capacity cliff is what
        creates the paper's Fig. 14 selection regions along the feature
        dimension.  Centroid tiles (B) are always small enough to stay L2
        resident.  Only real (predicated) elements count.
        """
        sz = np.dtype(dtype).itemsize
        a_once = m * k_features * sz
        if a_once <= self.device.l2_bytes:
            a_bytes = a_once + max(0, grid_n - 1) * a_once / self.calib.l2_speedup
        else:
            a_bytes = grid_n * a_once
        b_once = n_clusters * k_features * sz
        b_rereads = max(0, grid_m - 1) * n_clusters * k_features * sz
        return a_bytes + b_once + b_rereads / self.calib.l2_speedup

    def _mem_eff(self, warps_per_sm: float, dtype) -> float:
        """Achievable fraction of DRAM bandwidth at this occupancy.

        Bandwidth needs outstanding *bytes*, not warps: FP64's 64-bit
        accesses reach saturation at half the occupancy of FP32's, so
        occupancy is byte-weighted by the element width.
        """
        cal = self.calib
        weighted = warps_per_sm * (np.dtype(dtype).itemsize / 4.0)
        occ = min(1.0, weighted / cal.warps_needed_mem) ** cal.mem_occ_exponent
        e = cal.eff_mem_base * occ
        if np.dtype(dtype) == np.float64:
            e *= cal.fp64_vec_penalty
        return e

    def _tb_balance_eff(self, tb_m: int, tb_n: int, dtype) -> float:
        """Threadblock shape efficiency (global traffic per output).

        The reference scales with element width: an FP64 (64,64) tile
        moves as many bytes per output as an FP32 (128,128) one.
        """
        cal = self.calib
        ref = (cal.tb_balance_ref_fp64 if np.dtype(dtype) == np.float64
               else cal.tb_balance_ref_fp32)
        hm = 2.0 * tb_m * tb_n / (tb_m + tb_n)
        return min(1.0, hm / ref) ** cal.tb_balance_exponent

    def _frag_reuse_eff(self, w_m: int, w_n: int, dtype) -> float:
        """Operand-reuse efficiency of the warp tile (harmonic mean)."""
        cal = self.calib
        ref = (cal.frag_reuse_ref_fp64 if np.dtype(dtype) == np.float64
               else cal.frag_reuse_ref_fp32)
        hm = 2.0 * w_m * w_n / (w_m + w_n)
        return min(1.0, hm / ref)

    def _epilogue_time(self, m: int, grid_n: int, dtype, *, atomic: bool) -> float:
        """Fused distance-NN epilogue: one (min, argmin) write per sample
        per block column; cross-block merging costs atomics when grid_n>1
        or the broadcast variant is used."""
        sz = np.dtype(dtype).itemsize + 4  # key + index
        t_store = grid_n * m * sz / self.device.mem_bw()
        t_atomic = 0.0
        if atomic and grid_n >= 1:
            t_atomic = grid_n * m * self.calib.atomic_bytes / self.calib.atomic_bw
        return t_store + t_atomic

    # ------------------------------------------------------------------
    # tensor-core fused distance kernel (FT K-means final form)
    # ------------------------------------------------------------------
    def distance_tensorop(self, m: int, n_clusters: int, k_features: int, dtype,
                          tb_m: int, tb_n: int, tb_k: int, w_m: int, w_n: int,
                          *, stages: int = 3, abft: str = "none",
                          p_block_inject: float = 0.0,
                          use_async: bool | None = None) -> KernelTiming:
        """Model the fused distance + nearest-centroid kernel (Sec. III).

        ``abft`` is one of ``none | ftkmeans | kosaian | tensor_only | wu``.
        ``p_block_inject`` is the SEU probability per threadblock and adds
        correction time under the ``ftkmeans``/``wu`` schemes.
        """
        dev, cal = self.device, self.calib
        dt = np.dtype(dtype)
        if use_async is None:
            use_async = dev.has_async_copy
        grid_m, grid_n = ceil_div(m, tb_m), ceil_div(n_clusters, tb_n)
        blocks = grid_m * grid_n
        k_pad = ceil_div(k_features, tb_k) * tb_k
        k_iters = k_pad // tb_k
        # CUTLASS handles the K residue at MMA-instruction granularity, so
        # compute is only charged for k padded to the instruction depth
        # (the pipeline still runs ceil(k / TB_K) iterations)
        mma = mma_shape_for(dt)
        k_mma_pad = ceil_div(k_features, mma.k) * mma.k

        threads, smem, regs, occ = self._resources(tb_m, tb_n, tb_k, w_m, w_n, stages, dt)
        if not occ.feasible:
            raise ValueError("tile parameters cannot be resident on this device")

        # ---- compute side -------------------------------------------------
        padded_flops = 2.0 * (grid_m * tb_m) * (grid_n * tb_n) * k_mma_pad
        tensor_peak = dev.peak_flops(dt, tensor_core=True)
        eff_base = (cal.eff_tensor_fp32 if dt == np.float32 else cal.eff_tensor_fp64)
        eff_pipe = k_iters / (k_iters + (stages - 1)) if use_async \
            else k_iters / (k_iters + 1)
        eff_occ = _saturating(occ.warps_per_sm, cal.warps_needed_compute,
                              cal.occ_softness)
        wave_util = self._wave_utilisation(blocks, occ)
        eff_frag = self._frag_reuse_eff(w_m, w_n, dt)
        eff_tb = self._tb_balance_eff(tb_m, tb_n, dt)
        eff_iter = tb_k / (tb_k + cal.iter_overhead_k)
        eff_c = (eff_base * eff_pipe * eff_occ * wave_util * eff_frag
                 * eff_tb * eff_iter)
        t_comp = padded_flops / (tensor_peak * max(eff_c, 1e-9))
        # tensor pipes' true busy time (idle slots absorb ABFT MMAs)
        t_mma_busy = padded_flops / tensor_peak

        # ---- memory side --------------------------------------------------
        bytes_eff = self._traffic_bytes(m, n_clusters, k_features, grid_m, grid_n, dt)
        t_mem = bytes_eff / (dev.mem_bw() * max(self._mem_eff(occ.warps_per_sm, dt), 1e-9))
        t_mem /= max(wave_util, 1e-9)

        # ---- ABFT extras ---------------------------------------------------
        m_w, n_w = max(1, w_m // mma.m), max(1, w_n // mma.n)
        t_abft_tensor = 0.0
        t_abft_simt_visible = 0.0
        sync_penalty = 0.0
        if abft in ("ftkmeans", "kosaian"):
            n_checksum_mma = 3 if abft == "ftkmeans" else 1
            ratio = n_checksum_mma / (m_w * n_w)
            if dt == np.float32:
                # TF32 pipes are ~15-20% busy: checksum MMAs slot into idle
                # issue cycles, paying only their raw pipe time
                t_abft_tensor = ratio * t_mma_busy
            else:
                # the DMMA pipe runs near the roofline AND the checksum
                # MMAs depend on the freshly produced SIMT sums, so their
                # latency is exposed on the critical path (paper: K=128
                # FP64 overhead ≈ 20% ≈ 3/(m_w·n_w))
                t_abft_tensor = ratio * t_comp
            # SIMT accumulation of e1ᵀA, Be1 (+ e2ᵀA, Be2 for correction)
            n_sums = 4 if abft == "ftkmeans" else 2
            simt_flops = n_sums * 0.5 * (w_m + w_n) * tb_k \
                * (threads // dev.warp_size) * blocks * k_iters
            simt_peak = dev.peak_flops(dt, tensor_core=False)
            t_simt = simt_flops / simt_peak
            tensor_busy_frac = min(1.0, t_mma_busy / max(t_comp, 1e-12))
            hide_budget = cal.simt_hide_budget * (1.0 - tensor_busy_frac) * t_comp
            if use_async:
                # the memory/compute overlap bubble absorbs checksum
                # arithmetic first (the paper's 37.5% -> 11% effect); a
                # synchronous pipeline has no such bubble
                hide_budget += max(0.0, t_mem - t_comp)
            t_abft_simt_visible = max(0.0, t_simt - hide_budget)
            if t_mem > t_comp:  # memory-bound: LSU/issue contention
                gamma = (cal.simt_mem_contention_fp64 if dt == np.float64
                         else cal.simt_mem_contention_fp32)
                t_abft_simt_visible += gamma * min(t_simt, hide_budget)
        elif abft == "tensor_only":
            t_abft_tensor = cal.tensor_only_abft_overhead * t_comp
        elif abft == "wu":
            # threadblock-level checksums forbid cp.async (register reuse);
            # without an async pipeline the block-wide barriers around the
            # shared-memory checksum reductions stall every warp directly
            use_async = False
            sync_penalty = (cal.wu_sync_overhead if dev.has_async_copy
                            else cal.wu_sync_overhead_no_async)
        elif abft != "none":
            raise ValueError(f"unknown abft scheme {abft!r}")

        # ---- combine main loop ---------------------------------------------
        if use_async:
            t_main = max(t_comp + t_abft_tensor, t_mem) + t_abft_simt_visible
        else:
            t_main = (t_comp + t_abft_tensor
                      + cal.sync_mem_exposed * t_mem
                      + t_abft_simt_visible)
            t_main *= (1.0 + sync_penalty)

        # ---- correction under injection -------------------------------------
        t_corr = 0.0
        if p_block_inject > 0.0 and abft in ("ftkmeans", "wu"):
            # Online correction is in place (no recompute): a corrupted
            # block drains its pipeline and runs the locate-and-fix
            # sequence of Fig. 6 l.26-31 serially within the warp.  The
            # cost per affected block is a dtype-dependent fraction of its
            # main loop (FP64's half-rate SIMT datapath and busier DMMA
            # pipe make its sequence ~4x more visible).
            frac = (cal.correction_cost_frac_fp64 if dt == np.float64
                    else cal.correction_cost_frac_fp32)
            t_corr = min(1.0, p_block_inject) * frac * t_main
        elif p_block_inject > 0.0 and abft == "kosaian":
            # detection only: recovery is time-redundant recomputation of
            # every affected block
            t_corr = min(1.0, p_block_inject) * t_main

        t_epi = self._epilogue_time(m, grid_n, dt, atomic=True)
        t_launch = dev.kernel_launch_us * 1e-6
        total = t_main + t_epi + t_corr + t_launch

        useful = 2.0 * m * n_clusters * k_features
        limiter = "memory" if t_mem > t_comp + t_abft_tensor else "compute"
        return KernelTiming(
            time_s=total, useful_flops=useful, t_compute=t_comp, t_memory=t_mem,
            t_epilogue=t_epi, t_abft=t_abft_tensor + t_abft_simt_visible,
            t_correction=t_corr, t_launch=t_launch, occupancy=occ,
            limiter=limiter,
            details=dict(blocks=blocks, k_iters=k_iters, smem=smem, regs=regs,
                         padded_flops=padded_flops, bytes=bytes_eff,
                         eff_compute=eff_c, wave_util=wave_util,
                         m_w=m_w, n_w=n_w, use_async=use_async),
        )

    # ------------------------------------------------------------------
    # SIMT step-wise variants (Sec. III-A)
    # ------------------------------------------------------------------
    def distance_naive(self, m: int, n_clusters: int, k_features: int, dtype) -> KernelTiming:
        """V0: one thread per sample scans every centroid serially."""
        dev, cal = self.device, self.calib
        dt = np.dtype(dtype)
        useful = 2.0 * m * n_clusters * k_features
        t_comp = useful / (dev.peak_flops(dt, tensor_core=False) * cal.eff_naive)
        bytes_eff = m * k_features * dt.itemsize * 1.2  # samples + cached centroids
        t_mem = bytes_eff / (dev.mem_bw() * cal.eff_mem_base)
        occ = compute_occupancy(dev, 256, 0, 32)
        total = max(t_comp, t_mem) + dev.kernel_launch_us * 1e-6
        return KernelTiming(total, useful, t_comp, t_mem, 0.0, 0.0, 0.0,
                            dev.kernel_launch_us * 1e-6, occ,
                            "compute" if t_comp > t_mem else "memory",
                            details=dict(variant="naive"))

    def distance_simt(self, m: int, n_clusters: int, k_features: int, dtype,
                      tb_m: int, tb_n: int, tb_k: int, w_m: int, w_n: int,
                      *, variant: str = "v1") -> KernelTiming:
        """V1/V2/V3: hand-written SIMT GEMM with increasing fusion.

        * v1 — GEMM writes the full distance matrix; a separate reduction
          kernel re-reads it (extra traffic + extra launch).
        * v2 — fused thread/threadblock argmin; partial results per block
          column merged by a small second pass.
        * v3 — threadblock broadcast with per-row locks: single kernel.
        """
        dev, cal = self.device, self.calib
        dt = np.dtype(dtype)
        grid_m, grid_n = ceil_div(m, tb_m), ceil_div(n_clusters, tb_n)
        blocks = grid_m * grid_n
        k_pad = ceil_div(k_features, tb_k) * tb_k
        threads, smem, regs, occ = self._resources(tb_m, tb_n, tb_k, w_m, w_n, 2, dt)

        padded_flops = 2.0 * (grid_m * tb_m) * (grid_n * tb_n) * k_pad
        eff_variant = {"v1": 1.0, "v2": 1.13, "v3": 1.30}[variant]
        eff_occ = _saturating(occ.warps_per_sm, 2 * self.calib.warps_needed_compute,
                              cal.occ_softness)
        wave_util = self._wave_utilisation(blocks, occ)
        eff = cal.eff_simt_gemm * eff_variant * eff_occ * wave_util
        t_comp = padded_flops / (dev.peak_flops(dt, tensor_core=False) * max(eff, 1e-9))

        bytes_eff = self._traffic_bytes(m, n_clusters, k_features, grid_m, grid_n, dt)
        n_launch = 1
        if variant == "v1":
            # write D, then re-read it in the reduction kernel (plus norms)
            bytes_eff += 2.0 * m * n_clusters * dt.itemsize + m * dt.itemsize
            n_launch = 2
        elif variant == "v2":
            bytes_eff += 2.0 * m * grid_n * (dt.itemsize + 4)
            n_launch = 2 if grid_n > 1 else 1
        t_mem = bytes_eff / (dev.mem_bw() * max(self._mem_eff(occ.warps_per_sm, dt), 1e-9))
        t_mem /= max(wave_util, 1e-9)

        # synchronous staging path: register double-buffering hides part
        t_main = t_comp + cal.sync_mem_exposed * t_mem
        t_epi = self._epilogue_time(m, grid_n, dt, atomic=variant == "v3")
        t_launch = n_launch * dev.kernel_launch_us * 1e-6
        total = t_main + t_epi + t_launch
        useful = 2.0 * m * n_clusters * k_features
        return KernelTiming(total, useful, t_comp, t_mem, t_epi, 0.0, 0.0,
                            t_launch, occ,
                            "compute" if t_comp > t_mem else "memory",
                            details=dict(variant=variant, blocks=blocks))

    # ------------------------------------------------------------------
    # auxiliary stages
    # ------------------------------------------------------------------
    def norms_kernel(self, m: int, k_features: int, dtype) -> KernelTiming:
        """Row-wise squared-norm pass over the samples (Fig. 2 step 1)."""
        dev = self.device
        dt = np.dtype(dtype)
        bytes_eff = m * k_features * dt.itemsize + m * dt.itemsize
        t_mem = bytes_eff / (dev.mem_bw() * self.calib.eff_mem_base)
        useful = 2.0 * m * k_features
        occ = compute_occupancy(dev, 256, 0, 32)
        total = t_mem + dev.kernel_launch_us * 1e-6
        return KernelTiming(total, useful, 0.0, t_mem, 0.0, 0.0, 0.0,
                            dev.kernel_launch_us * 1e-6, occ, "memory",
                            details=dict(variant="norms"))

    def update_kernel(self, m: int, n_clusters: int, k_features: int, dtype,
                      *, dmr: bool = False, serial_kernels: bool = False) -> KernelTiming:
        """Centroid update (Fig. 2 step 3).

        ``serial_kernels=True`` models the naive variant's one-kernel-per-
        centroid scheme; otherwise a single atomic-add kernel.  DMR
        duplicates the arithmetic, which hides entirely behind the memory
        latency except for a <1% issue cost (the paper's Sec. I claim).
        """
        dev = self.device
        dt = np.dtype(dtype)
        bytes_eff = m * k_features * dt.itemsize + n_clusters * k_features * dt.itemsize
        t_mem = bytes_eff / (dev.mem_bw() * self.calib.eff_mem_base)
        t_atomic = m * (k_features + 1) / self.calib.atomic_ops_per_s / dev.num_sms
        n_launch = (n_clusters + 1) if serial_kernels else 2
        if serial_kernels:
            t_mem *= n_clusters  # every serial kernel re-reads the samples
        t_launch = n_launch * dev.kernel_launch_us * 1e-6
        total = max(t_mem, t_atomic) + t_launch
        if dmr:
            total *= 1.008  # duplicated arithmetic: <1% (paper Sec. I)
        useful = m * k_features
        occ = compute_occupancy(dev, 256, 0, 32)
        return KernelTiming(total, useful, t_atomic, t_mem, 0.0, 0.0, 0.0,
                            t_launch, occ, "memory",
                            details=dict(variant="update", dmr=dmr))
