"""Structured event trace for the functional simulator.

Tests use the trace to assert *dataflow* properties the counters alone
cannot express — e.g. that the async pipeline committed exactly
``k_iters + stages - 1`` groups, that the checksum test fired at the
``k % 256`` boundary, or that a correction event targeted the same block
the injector corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "Trace", "NullTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event."""

    kind: str                 # e.g. 'mma', 'checksum_test', 'fault', 'correct'
    block_id: int
    step: int
    payload: dict = field(default_factory=dict)


class Trace:
    """Append-only event log with simple query helpers."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, kind: str, block_id: int = -1, step: int = -1, **payload: Any) -> None:
        self.events.append(TraceEvent(kind, block_id, step, dict(payload)))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class NullTrace:
    """No-op trace (default: tracing off keeps functional runs fast)."""

    events: list = []

    def emit(self, kind: str, block_id: int = -1, step: int = -1, **payload: Any) -> None:
        pass

    def of_kind(self, kind: str) -> list:
        return []

    def count(self, kind: str) -> int:
        return 0

    def __len__(self) -> int:
        return 0
