"""Unified observability layer: trace spans, metrics, events.

Zero-dependency (stdlib-only) subsystem threaded through the engine,
the coordinator, the fleet, and the checkpoint store:

- :class:`~repro.obs.trace.TraceRecorder` — bounded nested wall-clock
  spans (off by default; numerics-neutral when on).
- :class:`~repro.obs.metrics.MetricsRegistry` — typed counters /
  gauges / histograms unifying ``PerfCounters``, ``EngineStats`` and
  the ``dist_*`` result fields, with snapshot/delta and JSONL export.
- :class:`~repro.obs.events.EventBus` — ordered, subscribable
  structured events generalising the PR 7 fleet ``event_hook``.

See ``docs/observability.md`` for the span taxonomy, the metric table
and the event schema.
"""

from repro.obs.events import Event, EventBus, legacy_hook_adapter
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               dist_result_metric_names,
                               engine_stat_metric_names,
                               perf_counter_metric_names)
from repro.obs.trace import NULL_TRACER, Span, TraceRecorder, active_tracer

__all__ = [
    "Event", "EventBus", "legacy_hook_adapter",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "perf_counter_metric_names", "engine_stat_metric_names",
    "dist_result_metric_names",
    "NULL_TRACER", "Span", "TraceRecorder", "active_tracer",
]
