"""Ordered, subscribable structured events for the distributed stack.

:class:`EventBus` generalises the fleet-only ``event_hook`` callable of
PR 7 into the subscription surface the future ``repro.serve`` layer
needs: the coordinator publishes recovery / restore / re-expand
events, the checkpoint store publishes save / flush events, and the
heartbeat path publishes liveness events — all through one bus with a
**total order** (a monotonically increasing ``seq`` stamped under the
publisher lock) and a bounded replayable history.

Events are plain :class:`Event` records: a ``kind`` string, a
``source`` subsystem tag (``fleet`` / ``coordinator`` / ``checkpoint``),
the order stamp, and a flat ``fields`` dict of scalars.  Subscribers
are called synchronously in subscription order on the publishing
thread; a subscriber that raises propagates to the publisher (same
contract the legacy fleet hook had — a failing hook fails the fit
loudly rather than dropping events silently).

Backwards compatibility: :func:`legacy_hook_adapter` wraps an
old-style ``event_hook(dict)`` callable so it keeps receiving the
exact PR 7 payload shape ``{"event": kind, **fields}``, and
:meth:`EventBus.subscribe_legacy` can filter by ``source`` — the
fleet shim subscribes with ``source="fleet"`` so old hooks see
exactly the fleet stream they always did (the bus carries new
coordinator/checkpoint/executor kinds that never reached them), in
the same order a full-bus subscriber observes it.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Event", "EventBus", "legacy_hook_adapter"]


@dataclass(frozen=True)
class Event:
    """One structured event on the bus."""

    kind: str
    source: str
    seq: int
    fields: dict = field(default_factory=dict)

    def to_legacy_dict(self) -> dict:
        """The PR 7 ``event_hook`` payload shape."""
        return {"event": self.kind, **self.fields}

    def to_dict(self) -> dict:
        return {"kind": self.kind, "source": self.source,
                "seq": self.seq, **self.fields}


def legacy_hook_adapter(hook, *, source: str | None = None):
    """Wrap an old-style ``event_hook(dict)`` callable as a subscriber.

    The wrapped callable receives each event re-shaped to the PR 7
    payload ``{"event": kind, **fields}`` — the ``source``/``seq``
    envelope stays on the bus side, so code written against the old
    hook keeps working unchanged.  With ``source`` set, events from
    other subsystems are filtered out (the fleet shim uses
    ``source="fleet"`` to preserve the old hook's event surface).
    """
    def _subscriber(event: Event) -> None:
        if source is not None and event.source != source:
            return
        hook(event.to_legacy_dict())
    _subscriber.__wrapped_hook__ = hook
    return _subscriber


class EventBus:
    """Ordered pub/sub with bounded replayable history.

    Parameters
    ----------
    max_history:
        Events kept for :attr:`history` replay; oldest dropped first.
    """

    def __init__(self, *, max_history: int = 10_000):
        self._subscribers: list = []
        self._history: deque[Event] = deque(maxlen=int(max_history))
        self._lock = threading.Lock()
        self._seq = 0

    # -- pub/sub ------------------------------------------------------

    def subscribe(self, callback) -> object:
        """Register ``callback(event: Event)``; returns an unsubscribe token."""
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(self, token) -> None:
        with self._lock:
            try:
                self._subscribers.remove(token)
            except ValueError:
                pass

    def subscribe_legacy(self, hook, *, source: str | None = None) -> object:
        """Subscribe an old-style ``event_hook(dict)`` callable,
        optionally filtered to one publishing ``source``."""
        return self.subscribe(legacy_hook_adapter(hook, source=source))

    def publish(self, kind: str, source: str = "", **fields) -> Event:
        """Stamp, record, and deliver one event; returns it."""
        with self._lock:
            self._seq += 1
            event = Event(kind=kind, source=source, seq=self._seq,
                          fields=fields)
            self._history.append(event)
            subscribers = list(self._subscribers)
        for cb in subscribers:
            cb(event)
        return event

    # -- inspection / export ------------------------------------------

    @property
    def history(self) -> list:
        """Published events, oldest first (copy)."""
        with self._lock:
            return list(self._history)

    def __len__(self) -> int:
        return len(self._history)

    def to_jsonl(self) -> str:
        """Serialise the retained history as JSON lines."""
        return "".join(json.dumps(e.to_dict(), sort_keys=True) + "\n"
                       for e in self.history)
