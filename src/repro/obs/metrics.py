"""Typed metrics registry unifying the repo's scattered counters.

Before this module the stack exposed three disjoint counter surfaces:
the simulator's :class:`~repro.gpusim.counters.PerfCounters` (flat
dataclass, snapshot() dict), the engine's ``EngineStats`` (another flat
dataclass), and the ``dist_*_`` scalar fields scattered over
:class:`~repro.dist.coordinator.DistFitResult`.  :class:`MetricsRegistry`
gives them one typed namespace — ``Counter`` (monotonic int),
``Gauge`` (last-write-wins float), ``Histogram`` (bounded sample
reservoir with count/sum/min/max) — with point-in-time
:meth:`~MetricsRegistry.snapshot`, :meth:`~MetricsRegistry.delta`
between snapshots, and JSON-lines export for offline analysis.

Completeness is machine-checked: :func:`perf_counter_metric_names`
derives the canonical registry name for **every**
``PerfCounters.__dataclass_fields__`` entry, and a tier-1 test asserts
:meth:`MetricsRegistry.register_perf_counters` covers them all — a new
simulator counter cannot silently bypass export.
"""

from __future__ import annotations

import io
import json
import threading
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "perf_counter_metric_names", "engine_stat_metric_names",
           "dist_result_metric_names"]


@dataclass
class Counter:
    """Monotonic integer counter."""

    name: str
    help: str = ""
    value: int = 0

    kind = "counter"

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def get(self):
        return self.value


@dataclass
class Gauge:
    """Last-write-wins scalar."""

    name: str
    help: str = ""
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)

    def get(self):
        return self.value


@dataclass
class Histogram:
    """Bounded sample accumulator (count / sum / min / max + reservoir).

    Keeps the first ``max_samples`` observations verbatim (enough for
    the smoke-scale runs the bench analytics consume) while count/sum/
    min/max stay exact regardless of how many samples arrive.
    """

    name: str
    help: str = ""
    max_samples: int = 512
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: list = field(default_factory=list)

    kind = "histogram"

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    def get(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None}
        return {"count": self.count, "sum": self.sum, "min": self.min,
                "max": self.max, "mean": self.sum / self.count}


# -- canonical names for the three legacy surfaces ---------------------

def perf_counter_metric_names() -> dict:
    """``{registry_name: dataclass_field}`` for every PerfCounters field."""
    from repro.gpusim.counters import PerfCounters
    return {f"sim.{name}": name
            for name in PerfCounters.__dataclass_fields__}


def engine_stat_metric_names() -> dict:
    """``{registry_name: dataclass_field}`` for every EngineStats field."""
    from repro.core.engine import EngineStats
    return {f"engine.{name}": name
            for name in EngineStats.__dataclass_fields__}


#: the scalar DistFitResult fields exported as ``dist.*`` metrics —
#: array/object fields (centroids, labels, plan, clock, ...) stay on
#: the result object
_DIST_SCALAR_FIELDS = (
    "inertia", "n_iter", "recoveries", "crash_recoveries",
    "stall_recoveries", "shrinks", "checkpoint_save_s",
    "checkpoint_flush_s", "promotions", "expands", "heartbeat_failures",
    "reduce_busy_s", "broadcast_bytes", "gather_bytes",
)

_DIST_GAUGES = {"inertia", "checkpoint_save_s", "checkpoint_flush_s",
                "reduce_busy_s"}


def dist_result_metric_names() -> dict:
    """``{registry_name: result_field}`` for the scalar dist_* fields."""
    return {f"dist.{name}": name for name in _DIST_SCALAR_FIELDS}


class MetricsRegistry:
    """One namespace of typed metrics with snapshot/delta and JSONL export."""

    def __init__(self):
        self._metrics: dict = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------

    def _register(self, metric):
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.kind}")
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  max_samples: int = 512) -> Histogram:
        return self._register(Histogram(name, help, max_samples))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics[name]

    # -- legacy-surface ingestion -------------------------------------

    def register_perf_counters(self, counters=None) -> list:
        """Register (and optionally load) every ``PerfCounters`` field.

        Each field becomes a ``sim.<field>`` counter.  When a live
        ``counters`` bundle is passed its snapshot() values are added.
        Returns the registered metric names.
        """
        names = []
        for reg_name, fld in perf_counter_metric_names().items():
            c = self.counter(reg_name, f"PerfCounters.{fld}")
            if counters is not None:
                c.inc(int(getattr(counters, fld)))
            names.append(reg_name)
        return names

    def register_engine_stats(self, stats=None) -> list:
        """Register every ``EngineStats`` field as ``engine.<field>``.

        Integer fields become counters; float fields (``last_active_frac``)
        become gauges.
        """
        from repro.core.engine import EngineStats
        names = []
        for reg_name, fld in engine_stat_metric_names().items():
            default = EngineStats.__dataclass_fields__[fld].default
            if isinstance(default, float):
                m = self.gauge(reg_name, f"EngineStats.{fld}")
                if stats is not None:
                    m.set(getattr(stats, fld))
            else:
                m = self.counter(reg_name, f"EngineStats.{fld}")
                if stats is not None:
                    m.inc(int(getattr(stats, fld)))
            names.append(reg_name)
        return names

    def register_dist_result(self, result=None) -> list:
        """Register the scalar ``DistFitResult`` fields as ``dist.<field>``."""
        names = []
        for reg_name, fld in dist_result_metric_names().items():
            if fld in _DIST_GAUGES:
                m = self.gauge(reg_name, f"DistFitResult.{fld}")
                if result is not None:
                    m.set(float(getattr(result, fld)))
            else:
                m = self.counter(reg_name, f"DistFitResult.{fld}")
                if result is not None:
                    m.inc(int(getattr(result, fld)))
            names.append(reg_name)
        return names

    # -- snapshot / delta / export ------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time ``{name: value}`` copy (histograms as dicts)."""
        with self._lock:
            return {name: m.get() for name, m in sorted(self._metrics.items())}

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Numeric difference of two snapshots (histograms by count/sum).

        Names present only in ``after`` are reported at full value;
        names only in ``before`` are dropped.
        """
        out = {}
        for name, val in after.items():
            prev = before.get(name)
            if isinstance(val, dict):
                pc = prev["count"] if isinstance(prev, dict) else 0
                ps = prev["sum"] if isinstance(prev, dict) else 0.0
                out[name] = {"count": val["count"] - pc,
                             "sum": val["sum"] - (ps or 0.0)}
            else:
                out[name] = val - (prev if isinstance(prev, (int, float))
                                   else 0)
        return out

    def to_jsonl(self, fh=None) -> str:
        """One JSON line per metric: name, kind, help, value."""
        buf = fh if fh is not None else io.StringIO()
        with self._lock:
            for name, m in sorted(self._metrics.items()):
                buf.write(json.dumps(
                    {"name": name, "kind": m.kind, "help": m.help,
                     "value": m.get()}, sort_keys=True))
                buf.write("\n")
        return "" if fh is not None else buf.getvalue()
