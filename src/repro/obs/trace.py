"""Bounded, low-overhead span tracer for the whole stack.

:class:`TraceRecorder` records **nested wall-clock spans** — the
coordinator's ``fit -> round -> {broadcast, compute, gather, merge,
update, abft_check, checkpoint}`` tree and the engine's ``fit ->
iteration -> {assign_chunk, gemm, update_feed, bounds_refresh}`` tree —
into a bounded in-memory ring.  It is **off by default** everywhere:
every instrumentation site in the engine and the coordinator is gated
as ``tracer is not None and tracer.enabled``, so the disabled path
costs one attribute test and never calls into this module (the
overhead-neutrality tests in ``tests/obs`` assert exactly that with a
booby-trapped recorder).

Tracing never perturbs numerics: a span records *names and clocks
only* — no array is read, copied, or allocated on behalf of a span, so
every bit-identity suite passes unchanged with tracing enabled (also
asserted under hypothesis, including with SEU injection on).

Spans nest via an explicit per-recorder stack, so the recorder needs no
thread-local magic for the common single-threaded coordinator/engine
loops; the engine's threaded dispatch records worker-side chunk spans
through :meth:`TraceRecorder.span` under a lock, keeping the ring
consistent (ordering between workers is by completion, as with any
tracer).
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Span", "TraceRecorder", "NULL_TRACER", "active_tracer"]


@dataclass
class Span:
    """One completed timed region.

    Attributes
    ----------
    name:
        Stage name from the span taxonomy (``docs/observability.md``).
    t0, t1:
        perf_counter() timestamps at enter/exit.
    depth:
        Nesting depth at enter time (``fit`` is 0).
    parent:
        Name of the enclosing span ('' at the root).
    meta:
        Small scalar annotations (round index, chunk bounds, ...).
        Values are plain ints/floats/strings — never arrays.
    """

    name: str
    t0: float
    t1: float = 0.0
    depth: int = 0
    parent: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        d = {"name": self.name, "t0": self.t0, "t1": self.t1,
             "wall_s": self.wall_s, "depth": self.depth,
             "parent": self.parent}
        if self.meta:
            d["meta"] = dict(self.meta)
        return d


class _SpanHandle:
    """Context manager returned by :meth:`TraceRecorder.span`."""

    __slots__ = ("_rec", "_span")

    def __init__(self, rec: "TraceRecorder", span: Span):
        self._rec = rec
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._rec._finish(self._span)
        return None


class _NullHandle:
    """No-op handle for a disabled recorder (still usable as a span)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


_NULL_HANDLE = _NullHandle()


class TraceRecorder:
    """Bounded recorder of nested wall-clock spans.

    Parameters
    ----------
    enabled:
        Master switch.  Instrumentation sites check this flag (through
        the module-level idiom ``tracer is not None and
        tracer.enabled``) before doing anything else, so a disabled
        recorder — or no recorder at all — costs nothing per iteration.
    max_spans:
        Ring capacity; the oldest completed spans are dropped first.
        Bounded so a long fit can run with tracing on without the
        trace growing without limit.
    clock:
        Timestamp source (injectable for deterministic tests).
    sink:
        Optional streaming JSONL destination.  A path (str/PathLike) is
        opened lazily on the first completed span; a file-like object is
        written to directly and never closed by the recorder.  Each span
        is appended as one JSON line *as it closes* (inside
        :meth:`_finish` / :meth:`instant`) and flushed, so a trace
        survives a crash mid-fit and a tail of the file follows the run
        live — unlike the post-hoc :meth:`to_jsonl` export, which only
        sees spans still in the bounded ring.
    """

    def __init__(self, enabled: bool = True, *, max_spans: int = 100_000,
                 clock=time.perf_counter, sink=None):
        self.enabled = bool(enabled)
        self.max_spans = int(max_spans)
        self._clock = clock
        self._spans: deque[Span] = deque(maxlen=self.max_spans)
        self._stack: list[Span] = []
        self._lock = threading.Lock()
        self.dropped = 0
        self._sink = sink
        self._sink_fh = None
        self._owns_sink = False
        self.sink_spans = 0

    # -- recording ----------------------------------------------------

    def span(self, name: str, **meta):
        """Open a nested span; use as ``with tracer.span('gemm'): ...``.

        Returns a context manager.  When the recorder is disabled this
        returns a shared no-op handle without touching the clock.
        """
        if not self.enabled:
            return _NULL_HANDLE
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            span = Span(name=name, t0=self._clock(),
                        depth=len(self._stack),
                        parent=parent.name if parent is not None else "",
                        meta=meta)
            self._stack.append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            span.t1 = self._clock()
            # unwind to (and including) this span — robust to a worker
            # thread finishing out of stack order
            if span in self._stack:
                while self._stack:
                    top = self._stack.pop()
                    if top is span:
                        break
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)
            self._stream(span)

    def instant(self, name: str, **meta) -> None:
        """Record a zero-duration marker span."""
        if not self.enabled:
            return
        t = self._clock()
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            span = Span(
                name=name, t0=t, t1=t, depth=len(self._stack),
                parent=parent.name if parent is not None else "",
                meta=meta)
            self._spans.append(span)
            self._stream(span)

    # -- streaming sink -----------------------------------------------

    def _stream(self, span: Span) -> None:
        """Append one closed span to the sink (caller holds the lock)."""
        if self._sink is None:
            return
        if self._sink_fh is None:
            if hasattr(self._sink, "write"):
                self._sink_fh = self._sink
            else:
                self._sink_fh = open(self._sink, "a", encoding="utf-8")
                self._owns_sink = True
        self._sink_fh.write(json.dumps(span.to_dict(), sort_keys=True))
        self._sink_fh.write("\n")
        self._sink_fh.flush()
        self.sink_spans += 1

    def close_sink(self) -> None:
        """Flush and close a recorder-owned sink (no-op otherwise)."""
        with self._lock:
            fh = self._sink_fh
            self._sink_fh = None
            self._sink = None
            if fh is not None and self._owns_sink:
                fh.close()
            self._owns_sink = False

    # -- inspection ---------------------------------------------------

    @property
    def spans(self) -> list:
        """Completed spans, oldest first (copy)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._stack.clear()
            self.dropped = 0

    def stage_totals(self) -> dict:
        """Aggregate wall seconds and call counts per span name.

        Returns ``{name: {"wall_s": float, "count": int}}`` over all
        completed spans — the per-stage breakdown that feeds the bench
        records and ``docs/perf.md``.  Self-time is not subtracted;
        parent spans (``fit``, ``round``, ``iteration``) include their
        children, which the report renderer accounts for by grouping on
        depth.
        """
        totals: dict = {}
        for s in self.spans:
            agg = totals.setdefault(s.name, {"wall_s": 0.0, "count": 0})
            agg["wall_s"] += s.wall_s
            agg["count"] += 1
        return totals

    # -- export -------------------------------------------------------

    def to_jsonl(self, fh=None) -> str:
        """Serialise completed spans as JSON lines (one span per line)."""
        buf = fh if fh is not None else io.StringIO()
        for s in self.spans:
            buf.write(json.dumps(s.to_dict(), sort_keys=True))
            buf.write("\n")
        return "" if fh is not None else buf.getvalue()

    def to_chrome_trace(self, fh=None) -> str:
        """Serialise completed spans in Chrome trace-event JSON.

        The output loads directly into ``chrome://tracing`` / Perfetto:
        each span becomes one complete event (``"ph": "X"``) with
        microsecond ``ts``/``dur`` on the recorder's own clock origin,
        and its meta dict rides along as ``args``.  All spans land on
        one track (``pid``/``tid`` 0) — nesting is reconstructed by the
        viewer from timestamps, which is exactly how the recorder's
        depth field was derived in the first place.
        """
        events = []
        for s in self.spans:
            ev = {"ph": "X", "name": s.name, "ts": s.t0 * 1e6,
                  "dur": (s.t1 - s.t0) * 1e6, "pid": 0, "tid": 0}
            if s.meta:
                ev["args"] = dict(s.meta)
            events.append(ev)
        doc = json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                         sort_keys=True)
        if fh is not None:
            fh.write(doc)
            return ""
        return doc


class _NullTracer:
    """Shared stand-in used when tracing is off.

    Instrumented code resolves its recorder once per pass through
    :func:`active_tracer`; when the caller passed no recorder — or a
    disabled one — the sites run against this object, whose ``span``
    returns a shared no-op handle without touching a clock.  The
    caller's *disabled* recorder is therefore never invoked at all
    (the overhead-neutrality tests booby-trap one to prove it).
    """

    enabled = False
    spans = ()

    def span(self, name: str, **meta):
        return _NULL_HANDLE

    def instant(self, name: str, **meta) -> None:
        return None

    def stage_totals(self) -> dict:
        return {}


NULL_TRACER = _NullTracer()


def active_tracer(tracer):
    """The gate idiom: ``tracer`` when enabled, else the shared null.

    Every instrumented subsystem calls this once at pass entry, so the
    per-span cost with tracing off is a no-op method call and nothing
    else — no clock read, no allocation, no lock.
    """
    if tracer is not None and tracer.enabled:
        return tracer
    return NULL_TRACER
