"""Shared utilities: bit manipulation, array helpers, logging."""

from repro.utils.arrays import (
    as_float,
    ceil_div,
    check_2d,
    is_power_of_two,
    pad_to_multiple,
)
from repro.utils.bits import (
    bits_to_float,
    flip_bit,
    flip_bit_array,
    float_to_bits,
    num_bits,
    random_bit_index,
)
from repro.utils.logging import get_logger

__all__ = [
    "as_float",
    "ceil_div",
    "check_2d",
    "is_power_of_two",
    "pad_to_multiple",
    "bits_to_float",
    "flip_bit",
    "flip_bit_array",
    "float_to_bits",
    "num_bits",
    "random_bit_index",
    "get_logger",
]
