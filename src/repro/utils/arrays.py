"""Small array utilities shared across the package."""

from __future__ import annotations

import numpy as np

__all__ = ["ceil_div", "pad_to_multiple", "as_float", "is_power_of_two", "check_2d"]


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def pad_to_multiple(a: np.ndarray, multiple_rows: int, multiple_cols: int,
                    fill=0.0) -> np.ndarray:
    """Zero-pad a 2-D array so each dimension is a multiple of the tile size.

    GPU GEMM kernels operate on full tiles; out-of-range elements are
    logically zero.  Returns a new array (never a view) so kernels can
    mutate tiles freely.
    """
    if a.ndim != 2:
        raise ValueError(f"expected 2-D array, got {a.ndim}-D")
    rows = ceil_div(a.shape[0], multiple_rows) * multiple_rows
    cols = ceil_div(a.shape[1], multiple_cols) * multiple_cols
    out = np.full((rows, cols), fill, dtype=a.dtype)
    out[: a.shape[0], : a.shape[1]] = a
    return out


def as_float(a, dtype) -> np.ndarray:
    """Return ``a`` as a C-contiguous 2-D float array of ``dtype``."""
    arr = np.ascontiguousarray(np.asarray(a, dtype=dtype))
    return arr


def check_2d(a: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``a`` is a non-empty 2-D array."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {a.shape}")
    if a.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return a
