"""Bit-level manipulation of IEEE-754 floats.

The paper's fault model (Sec. II-A) corrupts a value by flipping a single
bit of its 32-bit float or 64-bit double representation.  These helpers
implement that flip exactly, plus inspection utilities used by tests and by
the fault injector in :mod:`repro.gpusim.faults`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "flip_bit",
    "flip_bit_array",
    "float_to_bits",
    "bits_to_float",
    "num_bits",
    "random_bit_index",
]

_INT_FOR = {np.dtype(np.float32): np.uint32, np.dtype(np.float64): np.uint64}


def num_bits(dtype) -> int:
    """Number of bits in the binary representation of ``dtype``."""
    return np.dtype(dtype).itemsize * 8


def float_to_bits(value) -> int:
    """Return the raw IEEE-754 bit pattern of a float scalar as an int."""
    arr = np.asarray(value)
    try:
        int_t = _INT_FOR[arr.dtype]
    except KeyError:
        raise TypeError(f"unsupported dtype {arr.dtype!r}; expected float32/float64")
    return int(arr.view(int_t))


def bits_to_float(bits: int, dtype):
    """Inverse of :func:`float_to_bits`."""
    dtype = np.dtype(dtype)
    try:
        int_t = _INT_FOR[dtype]
    except KeyError:
        raise TypeError(f"unsupported dtype {dtype!r}; expected float32/float64")
    return np.array(bits, dtype=int_t).view(dtype)[()]


def flip_bit(value, bit: int):
    """Flip bit ``bit`` (0 = least significant) of a float scalar.

    Returns a scalar of the same dtype.  Flipping the same bit twice is the
    identity (an invariant exercised by the property tests).
    """
    arr = np.asarray(value)
    nb = num_bits(arr.dtype)
    if not 0 <= bit < nb:
        raise ValueError(f"bit index {bit} out of range for {nb}-bit float")
    raw = float_to_bits(arr)
    return bits_to_float(raw ^ (1 << bit), arr.dtype)


def flip_bit_array(arr: np.ndarray, flat_index: int, bit: int) -> None:
    """Flip ``bit`` of element ``flat_index`` of ``arr`` in place."""
    flat = arr.reshape(-1)
    flat[flat_index] = flip_bit(flat[flat_index], bit)


def random_bit_index(rng: np.random.Generator, dtype) -> int:
    """Draw a uniformly random bit position for ``dtype``.

    The exponent's top bits produce astronomically large corruptions while
    low mantissa bits produce tiny ones; the paper flips uniformly over all
    bits, so we do too.  NaN-producing flips are allowed — the checksum test
    flags them since ``NaN > delta`` comparisons are handled explicitly by
    the detector.
    """
    return int(rng.integers(0, num_bits(dtype)))
