"""Package-wide logging helpers.

We keep a single namespaced logger (``repro``) so applications can attach a
handler once.  Library code never configures the root logger.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]


def get_logger(name: str = "repro") -> logging.Logger:
    """Return a child of the ``repro`` logger.

    ``name`` may be a bare suffix (``"gpusim"``) or a full dotted path.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
