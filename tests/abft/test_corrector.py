"""Tests for online error location and correction."""

import numpy as np
import pytest

from repro.abft.corrector import CorrectionKind, Corrector
from repro.abft.detector import Detector
from repro.abft.encoding import acc_checksum_triple
from repro.abft.thresholds import ThresholdPolicy
from repro.gpusim.errors import UncorrectableError
from repro.utils.bits import flip_bit


def _corrector(dtype, tf32=False):
    return Corrector(Detector(ThresholdPolicy(dtype, tf32=tf32)))


def _clean_state(rng, dtype, shape=(16, 16)):
    acc = (rng.standard_normal(shape) * 3).astype(dtype)
    return acc, acc_checksum_triple(acc)


class TestClean:
    def test_no_fault_is_clean(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        result, d2 = _corrector(dtype).check_and_correct(d, acc)
        assert result.kind is CorrectionKind.CLEAN
        assert d2 == d


class TestLocateAndCorrect:
    @pytest.mark.parametrize("pos", [(0, 0), (3, 11), (15, 15), (7, 0)])
    def test_exact_location(self, rng, dtype, pos):
        acc, d = _clean_state(rng, dtype)
        original = acc.copy()
        acc[pos] += acc.dtype.type(1000.0)
        result, _ = _corrector(dtype).check_and_correct(d, acc)
        assert result.kind is CorrectionKind.CORRECTED
        assert (result.row, result.col) == pos
        # adding/removing 1000 loses the element's low mantissa bits
        np.testing.assert_allclose(acc, original, rtol=1e-4, atol=2e-3)

    def test_bit_flip_high_exponent(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        original = acc.copy()
        high_bit = 30 if dtype == np.float32 else 62
        acc[5, 5] = flip_bit(acc[5, 5], high_bit)
        result, _ = _corrector(dtype).check_and_correct(d, acc)
        assert result.kind is CorrectionKind.CORRECTED
        np.testing.assert_allclose(acc, original, rtol=1e-4)

    def test_sign_flip(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        original = acc.copy()
        # make the target large enough to clear the detection threshold
        acc[2, 3] = acc.dtype.type(500.0)
        d = acc_checksum_triple(acc)
        original = acc.copy()
        sign = 31 if dtype == np.float32 else 63
        acc[2, 3] = flip_bit(acc[2, 3], sign)
        result, _ = _corrector(dtype).check_and_correct(d, acc)
        assert result.kind is CorrectionKind.CORRECTED
        np.testing.assert_allclose(acc, original, rtol=1e-5)

    def test_returned_checksums_are_consistent(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        acc[1, 2] += acc.dtype.type(777.0)
        _, fresh = _corrector(dtype).check_and_correct(d, acc)
        np.testing.assert_allclose(
            fresh, acc_checksum_triple(acc, dtype=np.float64), rtol=1e-9)


class TestNonFinite:
    @pytest.mark.parametrize("bad", [np.inf, -np.inf, np.nan])
    def test_nonfinite_recovered_from_checksum(self, rng, dtype, bad):
        acc, d = _clean_state(rng, dtype)
        original = acc.copy()
        acc[4, 9] = bad
        result, _ = _corrector(dtype).check_and_correct(d, acc)
        assert result.kind is CorrectionKind.CORRECTED
        assert (result.row, result.col) == (4, 9)
        assert np.isfinite(acc).all()
        np.testing.assert_allclose(acc, original, atol=1e-3)

    def test_two_nonfinite_uncorrectable(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        acc[0, 0] = np.inf
        acc[1, 1] = np.nan
        with pytest.raises(UncorrectableError):
            _corrector(dtype).check_and_correct(d, acc)

    def test_nonfinite_checksum_requests_recompute(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        acc[0, 0] = np.nan
        result, _ = _corrector(dtype).check_and_correct(
            (np.nan, d[1], d[2]), acc)
        assert result.kind is CorrectionKind.RECOMPUTE


class TestChecksumRegisterFaults:
    def test_d2_corruption_resyncs(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        original = acc.copy()
        corrupted = (d[0], d[1] + 1e8, d[2])
        result, fresh = _corrector(dtype).check_and_correct(corrupted, acc)
        assert result.kind is CorrectionKind.CHECKSUM_RESYNC
        np.testing.assert_array_equal(acc, original)  # acc untouched
        np.testing.assert_allclose(fresh, acc_checksum_triple(acc), rtol=1e-9)

    def test_d1_corruption_resyncs(self, rng, dtype):
        acc, d = _clean_state(rng, dtype)
        corrupted = (d[0] + 1e9, d[1], d[2])
        result, fresh = _corrector(dtype).check_and_correct(corrupted, acc)
        assert result.kind is CorrectionKind.CHECKSUM_RESYNC


class TestUnlocatable:
    def test_marginal_error_never_miscorrects(self, rng):
        """Errors inside the TF32 decode noise band on large tiles either
        decode-and-verify, fall back to RECOMPUTE, or get (harmlessly)
        diagnosed as a checksum-register hit — but never corrupt other
        elements of the tile."""
        dtype = np.dtype(np.float32)
        corr = _corrector(dtype, tf32=True)
        policy = corr.detector.policy
        acc = (rng.standard_normal((32, 32)) * 3).astype(dtype)
        d = acc_checksum_triple(acc)
        original = acc.copy()
        from repro.abft.detector import measure_residuals

        scale = measure_residuals(d, acc).scale
        eps = policy.delta(scale) * 1.5  # detectable, hard to locate
        acc[9, 9] += dtype.type(eps)
        result, _ = corr.check_and_correct(d, acc)
        assert result.kind is not CorrectionKind.CLEAN
        # whatever the diagnosis, the tile stays within the (noise-level)
        # corruption magnitude of the original
        np.testing.assert_allclose(acc, original, atol=2 * eps)
