"""Tests for checksum encodings, thresholds and the detector."""

import numpy as np
import pytest

from repro.abft.detector import Detector, measure_residuals
from repro.abft.encoding import acc_checksum_triple, checksum_triple, e1, e2
from repro.abft.thresholds import ThresholdPolicy, detection_threshold, unit_roundoff


class TestVectors:
    def test_e1(self):
        np.testing.assert_array_equal(e1(4), [1, 1, 1, 1])

    def test_e2(self):
        np.testing.assert_array_equal(e2(4), [1, 2, 3, 4])

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            e1(0)
        with pytest.raises(ValueError):
            e2(-1)


class TestChecksumAlgebra:
    def test_factored_equals_direct(self, rng):
        """(e1ᵀA)(Be1) == e1ᵀ(ABᵀ)e1 exactly in float64."""
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((12, 8))
        d1, d2, d3 = checksum_triple(a, b)
        c = a @ b.T
        assert d1 == pytest.approx(float(e1(16) @ c @ e1(12)), rel=1e-12)
        assert d2 == pytest.approx(float(e1(16) @ c @ e2(12)), rel=1e-12)
        assert d3 == pytest.approx(float(e2(16) @ c @ e1(12)), rel=1e-12)

    def test_acc_triple_matches(self, rng):
        acc = rng.standard_normal((8, 8))
        c1, c2, c3 = acc_checksum_triple(acc)
        assert c1 == pytest.approx(acc.sum(), rel=1e-12)
        assert c2 == pytest.approx(float(acc.sum(axis=0) @ e2(8)), rel=1e-12)
        assert c3 == pytest.approx(float(e2(8) @ acc.sum(axis=1)), rel=1e-12)

    def test_additivity_over_k_steps(self, rng):
        """The online property: checksums accumulate across K steps."""
        total = np.zeros(3)
        acc = np.zeros((8, 8))
        for _ in range(5):
            a = rng.standard_normal((8, 4))
            b = rng.standard_normal((8, 4))
            total += checksum_triple(a, b)
            acc += a @ b.T
        c = acc_checksum_triple(acc)
        np.testing.assert_allclose(total, c, rtol=1e-10)


class TestThresholds:
    def test_unit_roundoff(self):
        assert unit_roundoff(np.float32) == 2.0 ** -23
        assert unit_roundoff(np.float32, tf32=True) == 2.0 ** -10
        assert unit_roundoff(np.float64) == 2.0 ** -52

    def test_threshold_scales(self):
        assert detection_threshold(np.float32, 100.0) \
            == 100 * detection_threshold(np.float32, 1.0)

    def test_exceeds_handles_nan_inf(self):
        p = ThresholdPolicy(np.float32)
        assert p.exceeds(float("nan"), 1.0)
        assert p.exceeds(float("inf"), 1.0)
        assert not p.exceeds(0.0, 1.0)

    def test_weight_loosens(self):
        p = ThresholdPolicy(np.float32, tf32=True)
        r = p.delta(100.0) * 2
        assert p.exceeds(r, 100.0)
        assert not p.exceeds(r, 100.0, weight=32)

    def test_locatable_needs_more_clearance(self):
        p = ThresholdPolicy(np.float32, tf32=True)
        r = p.delta(100.0) * 1.5   # detectable
        assert p.exceeds(r, 100.0)
        assert not p.locatable(r, 100.0, tile_dim=32)


class TestDetector:
    def _policy(self, dtype, tf32=False):
        return ThresholdPolicy(dtype, tf32=tf32)

    def test_clean_accumulation_no_false_alarm(self, rng, dtype):
        """Fault-free residuals stay under δ at realistic depths/scales."""
        tf32 = dtype == np.float32
        det = Detector(self._policy(dtype, tf32))
        from repro.gpusim.mma import round_tf32

        for scale in (0.1, 1.0, 100.0):
            acc = np.zeros((32, 32), dtype)
            d = np.zeros(3)
            for _ in range(16):
                a = (rng.standard_normal((32, 16)) * scale).astype(dtype)
                b = (rng.standard_normal((32, 16)) * scale).astype(dtype)
                if tf32:
                    acc += round_tf32(a) @ round_tf32(b).T
                else:
                    acc += (a @ b.T).astype(dtype)
                d += checksum_triple(a, b)
            res = measure_residuals(tuple(d), acc)
            assert not det.is_faulty(res)

    def test_detects_large_corruption(self, rng, dtype):
        det = Detector(self._policy(dtype, dtype == np.float32))
        acc = rng.standard_normal((16, 16)).astype(dtype)
        d = acc_checksum_triple(acc)
        acc[3, 5] += acc.dtype.type(50.0)
        res = measure_residuals(d, acc)
        assert det.is_faulty(res)
        assert det.acc_is_faulty(res)

    def test_checksum_register_fault_pattern(self, rng):
        """d2 corrupted, acc clean: r1 small, r2 large."""
        det = Detector(self._policy(np.float64))
        acc = rng.standard_normal((16, 16))
        d1, d2, d3 = acc_checksum_triple(acc)
        res = measure_residuals((d1, d2 + 1e6, d3), acc)
        assert det.is_faulty(res)
        assert not det.acc_is_faulty(res)

    def test_scale_robust_to_outlier(self, rng):
        """A huge corrupted element must not raise δ past its own residual."""
        acc = rng.standard_normal((16, 16)).astype(np.float32)
        d = acc_checksum_triple(acc)
        acc[0, 0] = np.float32(3e38)  # near float32 max, finite
        res = measure_residuals(d, acc)
        det = Detector(self._policy(np.float32, tf32=True))
        assert det.is_faulty(res)
