"""Tests for the scheme registry, DMR, and the Wu/Kosaian baseline kernels."""

import numpy as np
import pytest

from repro.abft.dmr import dmr_protected
from repro.abft.kosaian import KosaianDetectGemm
from repro.abft.schemes import FTKMEANS, KOSAIAN, NONE, SCHEMES, WU, get_scheme
from repro.abft.wu import WuFtGemm
from repro.gemm.epilogue import BroadcastArgminEpilogue, StoreEpilogue
from repro.gemm.reference import reference_assignment, reference_distance_matrix
from repro.gemm.shapes import GemmShape
from repro.gemm.verify import assert_allclose_gemm, labels_agree_fraction
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB
from repro.gpusim.errors import UncorrectableError
from repro.gpusim.faults import FaultInjector


class TestSchemeRegistry:
    def test_capability_matrix_fig5d(self):
        """The paper's Fig. 5(d) comparison table."""
        assert WU.level == "threadblock" and WU.corrects
        assert not WU.uses_tensor_checksums          # tensor core ✗
        assert KOSAIAN.level == "warp" and KOSAIAN.detects
        assert not KOSAIAN.corrects                  # correction ✗
        assert FTKMEANS.level == "warp"
        assert FTKMEANS.detects and FTKMEANS.corrects
        assert FTKMEANS.uses_tensor_checksums

    def test_async_compatibility(self):
        """Wu's register reuse breaks under cp.async; FT K-means doesn't."""
        assert not WU.async_compatible
        assert FTKMEANS.async_compatible

    def test_checksum_mma_counts(self):
        assert FTKMEANS.checksum_mmas_per_warp_step == 3
        assert KOSAIAN.checksum_mmas_per_warp_step == 1

    def test_lookup(self):
        assert get_scheme("ftkmeans") is FTKMEANS
        assert get_scheme(NONE) is NONE
        with pytest.raises(KeyError):
            get_scheme("unknown")
        assert set(SCHEMES) == {"none", "ftkmeans", "wu", "kosaian",
                                "tensor_only"}


class TestDmr:
    def test_clean_pass(self):
        out = dmr_protected(lambda: np.arange(5.0))
        np.testing.assert_array_equal(out, np.arange(5.0))

    def test_detects_and_recovers(self):
        c = PerfCounters()

        def corrupt(arr):
            arr[2] = 999.0

        out = dmr_protected(lambda: np.arange(5.0), counters=c,
                            corrupt_first=corrupt)
        np.testing.assert_array_equal(out, np.arange(5.0))
        assert c.dmr_mismatches == 1
        assert c.errors_detected == 1
        assert c.dmr_checks == 2  # first attempt + retry

    def test_persistent_error_raises(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            return np.array([calls["n"] % 2], dtype=float)

        with pytest.raises(UncorrectableError):
            dmr_protected(flaky, max_retries=2)

    def test_nan_equal_comparison(self):
        out = dmr_protected(lambda: np.array([np.nan, 1.0]))
        assert np.isnan(out[0])


def _setup(x, y, counters, with_distances=False):
    from repro.core.assignment import setup_gmem

    gmem = setup_gmem(x, y, counters)
    if with_distances:
        gmem.alloc("distances", (x.shape[0], y.shape[0]), x.dtype)
    return gmem


class TestWuKernel:
    def test_corrects_injected_faults(self, rng, dtype, small_tile):
        x = rng.standard_normal((128, 48)).astype(dtype)
        y = rng.standard_normal((16, 48)).astype(dtype)
        dref = reference_distance_matrix(x, y)
        for seed in range(6):
            inj = FaultInjector(seed, p_block=1.0, dtype=dtype)
            c = PerfCounters()
            gmem = _setup(x, y, c, with_distances=True)
            kern = WuFtGemm(A100_PCIE_40GB, small_tile, dtype,
                            epilogue=StoreEpilogue(), counters=c, injector=inj)
            kern.run(gmem, GemmShape(128, 16, 48))
            ref, _ = reference_assignment(x, y)
            got = np.argmin(gmem["distances"], axis=1)
            assert labels_agree_fraction(got, ref) == 1.0
            assert c.errors_injected > 0

    def test_register_reuse_hook_called(self, operands, dtype, small_tile):
        x, y = operands
        c = PerfCounters()
        gmem = _setup(x, y, c, with_distances=True)
        kern = WuFtGemm(A100_PCIE_40GB, small_tile, dtype,
                        epilogue=StoreEpilogue(), counters=c)
        kern.run(gmem, GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        assert c.abft_simt_ops > 0       # checksums folded during staging
        assert c.abft_mma_ops == 0       # no tensor-core checksums (Fig. 5d)

    def test_block_level_barriers(self, operands, dtype, small_tile):
        """Wu's verification costs extra block-wide barriers."""
        x, y = operands
        shape = GemmShape(x.shape[0], y.shape[0], x.shape[1])
        c_plain = PerfCounters()
        from repro.gemm.simt_gemm import SimtGemm

        SimtGemm(A100_PCIE_40GB, small_tile, dtype, counters=c_plain,
                 epilogue=StoreEpilogue()).run(
            _setup(x, y, c_plain, True), shape)
        c_wu = PerfCounters()
        WuFtGemm(A100_PCIE_40GB, small_tile, dtype, counters=c_wu,
                 epilogue=StoreEpilogue()).run(_setup(x, y, c_wu, True), shape)
        assert c_wu.barriers > c_plain.barriers


class TestKosaianKernel:
    def test_detects_and_recomputes(self, rng, dtype, small_tile):
        x = rng.standard_normal((128, 48)).astype(dtype)
        y = rng.standard_normal((16, 48)).astype(dtype)
        detected_any = False
        for seed in range(6):
            inj = FaultInjector(seed + 100, p_block=1.0, dtype=dtype)
            c = PerfCounters()
            gmem = _setup(x, y, c)
            kern = KosaianDetectGemm(A100_PCIE_40GB, small_tile, dtype,
                                     epilogue=BroadcastArgminEpilogue(),
                                     counters=c, injector=inj)
            kern.run(gmem, GemmShape(128, 16, 48))
            ref, _ = reference_assignment(x, y, tf32=(dtype == np.float32))
            got = gmem["assign"][:, 1].astype(np.int64)
            assert labels_agree_fraction(got, ref) == 1.0
            if c.errors_detected:
                detected_any = True
                assert kern.recomputed_blocks  # recovery is recomputation
                assert c.errors_corrected == 0  # never corrects in place
        assert detected_any

    def test_one_checksum_mma_per_warp_step(self, operands, small_tile):
        x, y = operands
        c = PerfCounters()
        gmem = _setup(x, y, c)
        kern = KosaianDetectGemm(A100_PCIE_40GB, small_tile, np.float32,
                                 counters=c)
        kern.run(gmem, GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        from repro.utils.arrays import ceil_div

        blocks = ceil_div(x.shape[0], 64) * ceil_div(y.shape[0], 32)
        steps = blocks * ceil_div(x.shape[1], 16) * small_tile.warps_per_block
        assert c.abft_mma_ops == steps
