"""Tests for the bench trajectory analytics (repro.bench.analysis)."""

import json
from pathlib import Path

import pytest

from repro.bench import analysis, runner
from repro.bench.fastpath import write_record

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _fp_entry(wall, *, host="ci", m=1024, schema=None, trace=None,
              extra=None):
    e = {"host": host, "bench": "fastpath_walltime",
         "config": {"m": m, "n_features": 64, "n_clusters": 64,
                    "iters": 1, "dtype": "float32", "workers": 1,
                    "chunk_bytes": 20971520, "operand_cache": 1 << 30},
         "engine": {"wall_s": wall}}
    if schema:
        e["schema"] = schema
    if trace:
        e["trace"] = trace
    if extra:
        e.update(extra)
    return e


def _fp_doc(walls, **kw):
    return {"schema": "fastpath_walltime/v1",
            "entries": [_fp_entry(w, **kw) for w in walls]}


class TestSchemaHelpers:
    def test_schema_version(self):
        assert analysis.schema_version("fastpath_walltime/v3") == 3
        assert analysis.schema_version("dist_scaling/v10") == 10
        assert analysis.schema_version(None) == 0
        assert analysis.schema_version("junk") == 0

    def test_schema_family(self):
        assert analysis.schema_family("fastpath_walltime/v1") \
            == "fastpath_walltime"
        assert analysis.schema_family("dist_scaling/v4") == "dist_scaling"
        assert analysis.schema_family("unknown/v1") is None

    def test_infer_fastpath_generations(self):
        assert analysis.infer_entry_schema({}, "fastpath_walltime") \
            == "fastpath_walltime/v1"
        assert analysis.infer_entry_schema(
            {"unit_path_bit_identical": True},
            "fastpath_walltime") == "fastpath_walltime/v2"
        assert analysis.infer_entry_schema(
            {"pruning": {}}, "fastpath_walltime") == "fastpath_walltime/v3"
        assert analysis.infer_entry_schema(
            {"trace": {}}, "fastpath_walltime") == "fastpath_walltime/v4"

    def test_infer_dist_generations(self):
        fam = "dist_scaling"
        assert analysis.infer_entry_schema({}, fam) == "dist_scaling/v1"
        assert analysis.infer_entry_schema({"elastic": {}}, fam) \
            == "dist_scaling/v2"
        assert analysis.infer_entry_schema({"checkpoint": {}}, fam) \
            == "dist_scaling/v3"
        assert analysis.infer_entry_schema({"selfheal": {}}, fam) \
            == "dist_scaling/v4"
        assert analysis.infer_entry_schema({"trace": {}}, fam) \
            == "dist_scaling/v5"
        assert analysis.infer_entry_schema({"reduce": {}}, fam) \
            == "dist_scaling/v6"
        assert analysis.infer_entry_schema({"transport": {}}, fam) \
            == "dist_scaling/v7"

    def test_migrate_entry_stamps_schema(self):
        out = analysis.migrate_entry(_fp_entry(1.0), "fastpath_walltime")
        assert out["schema"] == "fastpath_walltime/v1"
        assert out["schema_version"] == 1

    def test_migrate_rejects_wrong_family(self):
        e = _fp_entry(1.0, schema="dist_scaling/v4")
        with pytest.raises(analysis.SchemaError, match="does not belong"):
            analysis.migrate_entry(e, "fastpath_walltime")

    def test_migrate_rejects_future_schema(self):
        e = _fp_entry(1.0, schema="fastpath_walltime/v99")
        with pytest.raises(analysis.SchemaError, match="postdates"):
            analysis.migrate_entry(e, "fastpath_walltime")

    def test_migrate_rejects_configless_entry(self):
        with pytest.raises(analysis.SchemaError, match="config"):
            analysis.migrate_entry({"engine": {}}, "fastpath_walltime")


class TestLoader:
    def test_load_and_migrate(self, tmp_path):
        p = tmp_path / "t.json"
        doc = _fp_doc([1.0, 2.0])
        doc["entries"][1]["schema"] = "fastpath_walltime/v3"
        doc["entries"][1]["pruning"] = {}
        p.write_text(json.dumps(doc))
        traj = analysis.load_trajectory(p)
        assert traj.family == "fastpath_walltime"
        assert [e["schema_version"] for e in traj.entries] == [1, 3]
        assert traj.newest_schema == "fastpath_walltime/v3"
        assert traj.has_drift is True  # top-level still says v1

    def test_family_fallback_via_bench_key(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps({"entries": [_fp_entry(1.0)]}))
        assert analysis.load_trajectory(p).family == "fastpath_walltime"

    def test_bad_shapes_raise(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text("[]")
        with pytest.raises(analysis.SchemaError):
            analysis.load_trajectory(p)
        p.write_text(json.dumps({"schema": "x", "entries": [{}]}))
        with pytest.raises(analysis.SchemaError):
            analysis.load_trajectory(p)
        with pytest.raises(analysis.SchemaError):
            analysis.load_trajectory(tmp_path / "missing.json")

    def test_host_normalization(self, tmp_path):
        p = tmp_path / "t.json"
        doc = {"schema": "fastpath_walltime/v1",
               "entries": [_fp_entry(1.0, host="slow"),
                           _fp_entry(3.0, host="slow"),
                           _fp_entry(0.1, host="fast")]}
        p.write_text(json.dumps(doc))
        traj = analysis.load_trajectory(p)
        assert traj.host_medians == {"slow": 2.0, "fast": 0.1}
        assert traj.normalized_wall(traj.entries[0]) == pytest.approx(0.5)
        assert traj.normalized_wall(traj.entries[2]) == pytest.approx(1.0)


class TestShippedTrajectories:
    """The committed BENCH files load, migrate and validate end to end
    across every schema generation they accumulated."""

    @pytest.mark.parametrize("name,family,legacy_versions", [
        ("BENCH_fastpath.json", "fastpath_walltime", (1, 2, 3)),
        ("BENCH_dist.json", "dist_scaling", (1, 2, 3, 4)),
    ])
    def test_shipped_file_loads_across_versions(self, name, family,
                                                legacy_versions):
        path = REPO_ROOT / name
        if not path.exists():
            pytest.skip(f"{name} not present in this checkout")
        traj = analysis.load_trajectory(path)
        assert traj.family == family
        assert len(traj.entries) >= len(legacy_versions)
        # the pre-schema-key era really is represented and inferred
        assert set(legacy_versions) <= set(traj.versions)
        for e in traj.entries:
            assert e["schema"].startswith(family + "/v")
            assert e["schema_version"] in range(
                1, analysis.SCHEMA_FAMILIES[family] + 1)
            assert traj.wall_of(e) is not None
        assert traj.hosts  # every entry carries a host

    def test_committed_report_matches_trajectories(self):
        """Tier-1 stale gate: docs/perf.md is a pure function of the
        committed BENCH files; regenerate and diff."""
        fp = REPO_ROOT / "BENCH_fastpath.json"
        dist = REPO_ROOT / "BENCH_dist.json"
        report = REPO_ROOT / "docs" / "perf.md"
        if not fp.exists() and not dist.exists():
            pytest.skip("no trajectory files in this checkout")
        assert report.exists(), (
            "docs/perf.md missing — run `python -m repro.bench.runner "
            "--smoke` and commit the regenerated report")
        assert not analysis.report_is_stale(report, fp, dist), (
            "docs/perf.md is stale — run `python -m repro.bench.runner "
            "--smoke` and commit the regenerated report")


class TestChangepoint:
    def test_detects_step(self):
        cp = analysis.detect_changepoint(
            [1.0, 1.1, 0.9, 1.0, 2.0, 2.1, 1.9, 2.0])
        assert cp is not None
        assert cp.index == 4
        assert cp.pre_mean == pytest.approx(1.0)
        assert cp.post_mean == pytest.approx(2.0)
        assert cp.shift == pytest.approx(2.0)
        assert cp.gain > 0.9

    def test_flat_noise_has_no_changepoint(self):
        assert analysis.detect_changepoint(
            [1.0, 1.05, 0.95, 1.02, 0.98, 1.01]) is None

    def test_short_series_has_no_changepoint(self):
        assert analysis.detect_changepoint([1.0, 2.0, 3.0]) is None
        assert analysis.detect_changepoint([]) is None

    def test_constant_series_has_no_changepoint(self):
        assert analysis.detect_changepoint([1.0] * 8) is None


class TestTrendGate:
    def test_sustained_slowdown_fails(self, tmp_path):
        p = tmp_path / "t.json"
        walls = [1.0, 1.05, 0.95, 1.0, 1.9, 2.0, 2.1]
        doc = _fp_doc(walls)
        p.write_text(json.dumps(doc))
        fresh = doc["entries"][-1]
        with pytest.raises(SystemExit, match="TREND REGRESSION"):
            analysis.check_fastpath_trend(fresh, p)

    def test_flat_series_passes(self, tmp_path):
        p = tmp_path / "t.json"
        walls = [1.0, 1.05, 0.95, 1.0, 1.02, 0.98]
        doc = _fp_doc(walls)
        p.write_text(json.dumps(doc))
        assert "ok" in analysis.check_fastpath_trend(
            doc["entries"][-1], p)

    def test_shift_within_slack_passes(self, tmp_path):
        # 1.0 -> 1.3 is a real changepoint but under the 1.5x slack
        p = tmp_path / "t.json"
        walls = [1.0, 1.01, 0.99, 1.0, 1.3, 1.31, 1.29, 1.3]
        doc = _fp_doc(walls)
        p.write_text(json.dumps(doc))
        verdict = analysis.check_fastpath_trend(doc["entries"][-1], p)
        assert "ok" in verdict and "changepoint" in verdict

    def test_noise_floor_spares_tiny_walls(self, tmp_path):
        # 10 ms -> 50 ms is a 5x shift but under the 0.1 s floor
        p = tmp_path / "t.json"
        walls = [0.01, 0.011, 0.009, 0.01, 0.05, 0.051, 0.049, 0.05]
        doc = _fp_doc(walls)
        p.write_text(json.dumps(doc))
        assert "ok" in analysis.check_fastpath_trend(
            doc["entries"][-1], p)

    def test_short_series_skips(self, tmp_path):
        p = tmp_path / "t.json"
        doc = _fp_doc([1.0, 2.0])
        p.write_text(json.dumps(doc))
        assert "skipped" in analysis.check_fastpath_trend(
            doc["entries"][-1], p)

    def test_other_hosts_and_shapes_excluded(self, tmp_path):
        p = tmp_path / "t.json"
        doc = {"schema": "fastpath_walltime/v1",
               "entries": [_fp_entry(1.0, host="other") for _ in range(6)]
               + [_fp_entry(9.0, m=999) for _ in range(6)]
               + [_fp_entry(5.0)]}
        p.write_text(json.dumps(doc))
        assert "skipped" in analysis.check_fastpath_trend(
            doc["entries"][-1], p)

    def test_unreadable_file_skips(self, tmp_path):
        fresh = _fp_entry(1.0)
        assert "skipped" in analysis.check_fastpath_trend(
            fresh, tmp_path / "missing.json")

    def test_dist_trend_uses_recovery_wall(self, tmp_path):
        p = tmp_path / "d.json"
        entries = []
        for wall in [1.0, 1.02, 0.98, 1.0, 2.4, 2.5, 2.45]:
            entries.append({
                "host": "ci", "bench": "dist_scaling",
                "config": {"m_grid": [16384], "n_features": 32,
                           "n_clusters": 16, "iters": 3,
                           "dtype": "float32", "checkpoint_every": 2},
                "recovery": {"clean_wall_s": wall}})
        p.write_text(json.dumps({"schema": "dist_scaling/v1",
                                 "entries": entries}))
        with pytest.raises(SystemExit, match="TREND REGRESSION"):
            analysis.check_dist_trend(entries[-1], p)


class TestWriteRecordSchemaBump:
    def test_append_bumps_stale_top_level_schema(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps(_fp_doc([1.0])))  # top-level v1
        write_record(_fp_entry(2.0, schema="fastpath_walltime/v4"),
                     p, schema="fastpath_walltime/v4")
        doc = json.loads(p.read_text())
        assert doc["schema"] == "fastpath_walltime/v4"
        assert len(doc["entries"]) == 2

    def test_append_never_downgrades(self, tmp_path):
        p = tmp_path / "t.json"
        doc = _fp_doc([1.0])
        doc["schema"] = "fastpath_walltime/v4"
        p.write_text(json.dumps(doc))
        write_record(_fp_entry(2.0), p, schema="fastpath_walltime/v2")
        assert json.loads(p.read_text())["schema"] == "fastpath_walltime/v4"


class TestReport:
    def _write_files(self, tmp_path):
        fp = tmp_path / "BENCH_fastpath.json"
        trace = {"wall_s": 0.5, "spans": 12, "dropped": 0,
                 "bit_identical_vs_untraced": True,
                 "stage_totals": {
                     "fit": {"wall_s": 0.5, "count": 1},
                     "gemm": {"wall_s": 0.2, "count": 4},
                     "assign_chunk": {"wall_s": 0.3, "count": 4},
                     "update_feed": {"wall_s": 0.1, "count": 4}}}
        doc = _fp_doc([1.0, 1.1])
        doc["entries"].append(
            _fp_entry(1.05, schema="fastpath_walltime/v4", trace=trace))
        fp.write_text(json.dumps(doc))
        return fp, tmp_path / "BENCH_dist.json"  # dist left missing

    def test_render_is_deterministic(self, tmp_path):
        fp, dist = self._write_files(tmp_path)
        a = analysis.render_perf_report(fp, dist)
        b = analysis.render_perf_report(fp, dist)
        assert a == b

    def test_report_contains_stage_breakdown(self, tmp_path):
        fp, dist = self._write_files(tmp_path)
        text = analysis.render_perf_report(fp, dist)
        assert "# Performance report" in text
        assert "distance GEMM" in text and "`gemm`" in text
        assert "observability.md" in text
        assert "unavailable" in text  # the missing dist file is reported

    def test_stale_detection_round_trip(self, tmp_path):
        fp, dist = self._write_files(tmp_path)
        report = tmp_path / "perf.md"
        assert analysis.report_is_stale(report, fp, dist)  # not written yet
        analysis.write_perf_report(report, fp, dist)
        assert not analysis.report_is_stale(report, fp, dist)
        # touching a trajectory re-stales the report
        doc = json.loads(fp.read_text())
        doc["entries"].append(_fp_entry(9.9))
        fp.write_text(json.dumps(doc))
        assert analysis.report_is_stale(report, fp, dist)

    def test_runner_stale_gate(self, tmp_path):
        fp, dist = self._write_files(tmp_path)
        report = tmp_path / "perf.md"
        with pytest.raises(SystemExit, match="STALE PERF REPORT"):
            runner.check_stale_report(report, fp, dist)
        analysis.write_perf_report(report, fp, dist)
        assert "ok" in runner.check_stale_report(report, fp, dist)
        report.write_text("edited by hand\n")
        with pytest.raises(SystemExit, match="STALE PERF REPORT"):
            runner.check_stale_report(report, fp, dist)

    def test_runner_stale_gate_skips_without_trajectories(self, tmp_path):
        assert "skipped" in runner.check_stale_report(
            tmp_path / "perf.md", tmp_path / "a.json", tmp_path / "b.json")
