"""Tests for the figure runner and recorded series structure."""

import json

import numpy as np
import pytest

from repro.bench import figures, runner
from repro.bench.tables import format_figure


class TestFigureStructure:
    def test_fig7_has_all_series(self):
        res = figures.fig7_stepwise()
        assert set(res.series) == {"naive", "v1", "v2", "v3", "ftkmeans",
                                   "cuml"}
        for pts in res.series.values():
            assert len(pts) == 6  # K in 32..192 step 32

    def test_fig8_panel_series(self):
        res = figures.fig8_fig9_distance_vs_features(np.float32)
        names = set(res.series)
        for panel in ("K=8", "K=128"):
            for curve in ("cuml", "param1", "param2", "ftkmeans"):
                assert f"{panel}/{curve}" in names

    def test_fig12_grid_rows(self):
        res = figures.fig12_speedup_grid(np.float32)
        assert len(res.series) == 8          # N rows
        assert all(len(p) == 7 for p in res.series.values())  # K columns

    def test_fig17_includes_wu(self):
        res = figures.fig17_fig18_error_injection(np.float32)
        assert any(name.endswith("wu+inj") for name in res.series)

    def test_format_figure_renders_everything(self):
        res = figures.fig7_stepwise()
        text = format_figure(res, max_rows=3)
        assert "fig7" in text and "cuml" in text and "summary" in text

    def test_injection_probability_parameter(self):
        lo = figures.fig17_fig18_error_injection(np.float32, p_inject=0.1)
        hi = figures.fig17_fig18_error_injection(np.float32, p_inject=1.0)
        assert lo.summary["injection_overhead_pct_avg"] \
            < hi.summary["injection_overhead_pct_avg"]


class TestSmokeGate:
    """`python -m repro.bench.runner --smoke` is tier-1: a broken bench
    harness (or a record missing the per-stage split) must fail the
    suite.  Run at a tiny shape via the runner's argument passthrough so
    the gate stays fast."""

    def test_runner_smoke_invocation_records_stage_split(self, tmp_path):
        out = tmp_path / "bench.json"
        runner.main(["--smoke", "--out", str(out), "--dist-out", "-",
                     "--report", str(tmp_path / "perf.md"),
                     "--m", "1024", "--iters", "1"])
        doc = json.loads(out.read_text())
        assert doc["schema"] == "fastpath_walltime/v4"
        (record,) = doc["entries"]
        assert record["schema"] == "fastpath_walltime/v4"
        assert record["config"]["m"] == 1024
        # the per-stage split the streamed-update PR added
        stages = record["stages"]
        for key in ("assign_per_iter_s", "update_streamed_per_iter_s",
                    "update_oneshot_per_iter_s",
                    "update_speedup_streamed_vs_oneshot"):
            assert key in stages, key
        assert len(stages["update_streamed_per_iter_s"]) == 1
        # baseline comparison + agreement diagnostics present
        assert record["unchunked"]["update_per_iter_s"]
        assert record["label_mismatch_frac"] <= 1e-3
        assert record["engine"]["update_chunks_fed"] >= 1
        # the fast-lane columns of schema v2
        assert record["engine"]["batched_chunks"] >= 1
        assert record["engine"]["hoisted_rounded_operand"] is True
        assert record["engine"]["hoisted_transposed_operand"] is True
        assert record["unit_path_label_mismatch_frac"] == 0.0
        assert record["unit_path_bit_identical"] is True
        # the bound-pruned assignment record of schema v3: the loop
        # asserts bit-equality internally, so the record existing with
        # rows pruned proves the exactness contract held end to end
        pr = record["pruning"]
        assert pr["bit_identical"] is True
        assert pr["rows_pruned"] > 0
        assert pr["bounds_rebuilds"] == 0
        assert pr["final_active_frac"] < 1.0
        assert len(pr["active_frac_per_iter"]) == pr["iters"]
        assert len(pr["pruned_assign_per_iter_s"]) == pr["iters"]
        assert pr["assign_speedup"] > 0
        # the traced re-run of schema v4: bit-identity re-proved on
        # every bench run, with the per-stage span breakdown attached
        tr = record["trace"]
        assert tr["bit_identical_vs_untraced"] is True
        assert tr["spans"] >= 1 and tr["dropped"] == 0
        for stage in ("fit", "iteration", "assign_chunk", "gemm",
                      "update_feed"):
            assert stage in tr["stage_totals"], stage
        # the runner also regenerated the perf report
        assert (tmp_path / "perf.md").exists()

    def test_runner_smoke_appends_to_trajectory(self, tmp_path):
        out = tmp_path / "bench.json"
        for _ in range(2):
            runner.main(["--smoke", "--out", str(out), "--dist-out", "-",
                         "--report", str(tmp_path / "perf.md"),
                         "--m", "1024", "--iters", "1"])
        assert len(json.loads(out.read_text())["entries"]) == 2

    def test_runner_rejects_unknown_args_without_smoke(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["--m", "1024"])
        capsys.readouterr()


class TestRegressionGate:
    """The smoke run compares the fresh fast-path record against the
    best prior same-shape entry and fails loudly past the slack."""

    @staticmethod
    def _entry(wall, m=1024, host="ci", workers=1, operand_cache=1 << 30):
        return {"host": host,
                "config": {"m": m, "n_features": 64, "n_clusters": 64,
                           "iters": 1, "dtype": "float32",
                           "workers": workers, "chunk_bytes": 20971520,
                           "operand_cache": operand_cache},
                "engine": {"wall_s": wall}}

    def test_fresh_slow_record_fails(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(1.0)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v2",
             "entries": [self._entry(0.1), fresh]}))
        with pytest.raises(SystemExit, match="PERF REGRESSION"):
            runner.check_fastpath_regression(fresh, out, slack=1.5)

    def test_fresh_fast_record_passes(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(0.09)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v2",
             "entries": [self._entry(0.1), fresh]}))
        verdict = runner.check_fastpath_regression(fresh, out, slack=1.5)
        assert "ok" in verdict

    def test_no_prior_shape_skips(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(1.0)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v2",
             "entries": [self._entry(0.1, m=999), fresh]}))
        assert "skipped" in runner.check_fastpath_regression(fresh, out)

    def test_noise_floor_spares_tiny_walls(self, tmp_path):
        # 1 ms vs 8 ms is scheduler jitter at smoke shapes, not a
        # regression — the 0.1 s floor keeps the gate quiet
        out = tmp_path / "bench.json"
        fresh = self._entry(0.008)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v2",
             "entries": [self._entry(0.001), fresh]}))
        assert "ok" in runner.check_fastpath_regression(fresh, out,
                                                        slack=1.5)

    def test_cross_host_and_config_never_compared(self, tmp_path):
        """A slow run on another machine — or a deliberately slower
        config — must not fail against the fast-lane best."""
        out = tmp_path / "bench.json"
        fresh = self._entry(1.0)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v2",
             "entries": [self._entry(0.1, host="fastbox"),
                         self._entry(0.1, operand_cache="off"),
                         self._entry(0.1, workers=4), fresh]}))
        assert "skipped" in runner.check_fastpath_regression(fresh, out)

    def test_smoke_gate_end_to_end(self, tmp_path, capsys):
        """Two identical tiny smoke runs: the second sees the first as
        its prior and passes the gate."""
        out = tmp_path / "bench.json"
        for _ in range(2):
            runner.main(["--smoke", "--out", str(out), "--dist-out", "-",
                         "--report", str(tmp_path / "perf.md"),
                         "--m", "1024", "--iters", "1"])
        out_text = capsys.readouterr().out
        assert "regression check" in out_text
        assert "trend" in out_text
        assert "perf report" in out_text


class TestPruningGate:
    """The pruned-assignment record is gated on two axes: its wall
    against the best prior same-host, same-shape entry (with the usual
    noise floor), and its final active fraction — the workload is
    deterministic per shape, so a grown active set is a pruning-logic
    regression regardless of the clock."""

    @staticmethod
    def _entry(wall, frac=0.0, m=1024, host="ci", iters=12):
        return {"host": host,
                "config": {"m": m, "n_features": 64, "n_clusters": 64,
                           "iters": 1, "dtype": "float32",
                           "workers": 1, "chunk_bytes": 20971520,
                           "operand_cache": 1 << 30},
                "pruning": {"iters": iters,
                            "pruned_assign_wall_s": wall,
                            "final_active_frac": frac}}

    def test_fresh_slow_record_fails(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(1.0)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v3",
             "entries": [self._entry(0.3), fresh]}))
        with pytest.raises(SystemExit, match="PRUNING REGRESSION"):
            runner.check_pruning_regression(fresh, out, slack=1.5)

    def test_grown_active_frac_fails_despite_fast_wall(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(0.2, frac=0.8)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v3",
             "entries": [self._entry(0.3, frac=0.0), fresh]}))
        with pytest.raises(SystemExit, match="active_frac"):
            runner.check_pruning_regression(fresh, out, slack=1.5)

    def test_fresh_fast_record_passes(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(0.25)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v3",
             "entries": [self._entry(0.3), fresh]}))
        assert "ok" in runner.check_pruning_regression(fresh, out,
                                                       slack=1.5)

    def test_noise_floor_spares_tiny_walls(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(0.08)
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v3",
             "entries": [self._entry(0.01), fresh]}))
        assert "ok" in runner.check_pruning_regression(fresh, out,
                                                       slack=1.5)

    def test_pre_v3_and_cross_shape_entries_skipped(self, tmp_path):
        out = tmp_path / "bench.json"
        fresh = self._entry(1.0)
        legacy = self._entry(0.1)
        del legacy["pruning"]              # pre-v3 entries lack the record
        out.write_text(json.dumps(
            {"schema": "fastpath_walltime/v3",
             "entries": [self._entry(0.1, host="fastbox"),
                         self._entry(0.1, m=999),
                         self._entry(0.1, iters=4),
                         legacy, fresh]}))
        assert "skipped" in runner.check_pruning_regression(fresh, out)


class TestDistSmokeGate:
    """`runner --smoke` also exercises the sharded layer: a tiny
    2-worker scaling + crash-recovery + elastic stall-then-shrink +
    kill-spawn-re-expand record must land in BENCH_dist.json with the
    bit-identity, recovery, shrink and selfheal columns intact."""

    def test_runner_smoke_records_dist_scaling(self, tmp_path):
        fp_out = tmp_path / "fastpath.json"
        dist_out = tmp_path / "dist.json"
        runner.main(["--smoke", "--out", str(fp_out),
                     "--dist-out", str(dist_out),
                     "--report", str(tmp_path / "perf.md"),
                     "--m", "1024", "--iters", "1"])
        doc = json.loads(dist_out.read_text())
        assert doc["schema"] == "dist_scaling/v7"
        (record,) = doc["entries"]
        assert record["schema"] == "dist_scaling/v7"
        workers = [row["workers"] for row in record["grid"]]
        assert workers == record["config"]["workers_grid"] == [1, 2]
        for row in record["grid"]:
            assert row["bit_identical_vs_single"] is True
            assert row["wall_s"] > 0
        rec = record["recovery"]
        assert rec["recoveries"] == 1
        assert rec["recovered_bit_identical"] is True
        for key in ("clean_wall_s", "crash_wall_s", "recovery_overhead_s",
                    "recovery_overhead_frac", "crash_iteration"):
            assert key in rec, key
        # the stall-then-shrink gate: the stalled worker sleeps far past
        # the deadline, so this record existing at all proves no hang
        el = record["elastic"]
        assert el["stall_recoveries"] == 1
        assert el["shrinks"] == 1
        assert el["workers_after_shrink"] == el["workers"] - 1
        assert el["recovered_bit_identical"] is True
        for key in ("round_timeout", "stall_iteration", "clean_wall_s",
                    "stall_wall_s", "shrink_overhead_s",
                    "shrink_overhead_frac"):
            assert key in el, key
        # the checkpoint sync-vs-async overhead record
        ck = record["checkpoint"]
        assert ck["bit_identical_sync_vs_async"] is True
        assert ck["sync_save_s"] > 0 and ck["async_save_s"] > 0
        for key in ("sync_save_per_checkpoint_s", "async_save_per_checkpoint_s",
                    "sync_overhead_per_round_s",
                    "async_overhead_per_round_s", "async_flush_s",
                    "save_reduction"):
            assert key in ck, key
        # the kill -> spawn -> re-expand self-healing record of v4:
        # the fit must finish back at its target fleet size
        sh = record["selfheal"]
        assert sh["recovered_bit_identical"] is True
        assert sh["re_expanded"] is True
        assert sh["workers_after"] == sh["target_workers"] == sh["workers"]
        assert sh["promotions"] + sh["expands"] >= 1
        assert sh["replayed_rounds"] >= 1
        for key in ("kill_iteration", "clean_wall_s", "kill_wall_s",
                    "heal_overhead_s", "heal_overhead_frac",
                    "recovered_round_overhead_s", "hot_spares",
                    "heartbeat_interval"):
            assert key in sh, key
        # the traced crash-recovery re-run of schema v5
        tr = record["trace"]
        assert tr["bit_identical_vs_untraced"] is True
        assert tr["spans"] >= 1 and tr["dropped"] == 0
        for stage in ("fit", "round", "gather", "merge", "update",
                      "recovery"):
            assert stage in tr["stage_totals"], stage
        # the reduce topology-occupancy curve of schema v6: every cell
        # bit-identical, star above stream and tree at the widest fleet
        red = record["reduce"]
        assert red["workers_grid"] == record["config"]["reduce_workers_grid"]
        assert red["single_wall_s"] > 0
        by_workers = {}
        for row in red["curve"]:
            assert row["bit_identical_vs_single"] is True
            assert row["reduce_busy_s"] >= 0
            assert row["metrics"]["dist.n_iter"] >= 1
            by_workers.setdefault(row["workers"], {})[row["topology"]] = row
        assert all(set(c) == {"star", "stream", "tree"}
                   for c in by_workers.values())
        widest = max(by_workers)
        cells = by_workers[widest]
        star = cells["star"]["reduce_busy_s"]
        assert star > cells["stream"]["reduce_busy_s"]
        assert star > cells["tree"]["reduce_busy_s"]
        assert red["auto_resolved"]["topology"] == "tree"
        # the shared-memory transport record of schema v7: bit-identical
        # to the pipe fit, pipe traffic down to control tokens, and the
        # re-expand-visible boot stats on the selfheal record
        tp = record["transport"]
        assert tp["pipe"]["transport"] == "pipe"
        assert tp["shm"]["transport"] == "shm"
        assert tp["bit_identical_shm_vs_pipe"] is True
        assert tp["bit_identical_vs_single"] is True
        assert tp["shm_broadcast_bytes_per_round_worker"] <= 4096
        assert tp["gather_bytes_reduction"] > 1
        assert tp["shm"]["boot_stats"]["cold_spawn"]["count"] == tp["workers"]
        assert sh["boot_stats"]["cold_spawn"]["count"] >= 1

    def test_dist_bench_cli_direct(self, tmp_path):
        from repro.bench import dist as dist_bench

        out = tmp_path / "dist.json"
        record = dist_bench.main(
            ["--smoke", "--m", "2048", "--clusters", "8", "--iters", "2",
             "--workers", "1,2", "--executor", "serial",
             "--out", str(out)])
        assert [r["m"] for r in record["grid"]] == [2048, 2048]
        assert json.loads(out.read_text())["entries"]


class TestSelfhealGate:
    """The selfheal record's per-recovered-round overhead is gated
    against the best prior same-host, same-shape entry — with a noise
    floor so spawn-jitter-sized overheads never trip it."""

    @staticmethod
    def _entry(overhead, m_grid=(16384,), host="ci", workers=2):
        return {"host": host,
                "config": {"m_grid": list(m_grid), "n_features": 32,
                           "n_clusters": 16, "iters": 3,
                           "dtype": "float32", "checkpoint_every": 2},
                "selfheal": {"workers": workers,
                             "recovered_round_overhead_s": overhead}}

    def test_fresh_slow_record_fails(self, tmp_path):
        out = tmp_path / "dist.json"
        fresh = self._entry(1.0)
        out.write_text(json.dumps(
            {"schema": "dist_scaling/v4",
             "entries": [self._entry(0.3), fresh]}))
        with pytest.raises(SystemExit, match="SELFHEAL REGRESSION"):
            runner.check_selfheal_regression(fresh, out, slack=1.5)

    def test_fresh_fast_record_passes(self, tmp_path):
        out = tmp_path / "dist.json"
        fresh = self._entry(0.25)
        out.write_text(json.dumps(
            {"schema": "dist_scaling/v4",
             "entries": [self._entry(0.3), fresh]}))
        assert "ok" in runner.check_selfheal_regression(fresh, out,
                                                        slack=1.5)

    def test_noise_floor_spares_tiny_overheads(self, tmp_path):
        # best prior 10 ms, fresh 80 ms: 8x worse but both are spawn
        # jitter — the 0.1 s floor keeps the gate quiet
        out = tmp_path / "dist.json"
        fresh = self._entry(0.08)
        out.write_text(json.dumps(
            {"schema": "dist_scaling/v4",
             "entries": [self._entry(0.01), fresh]}))
        assert "ok" in runner.check_selfheal_regression(fresh, out,
                                                        slack=1.5)

    def test_cross_host_shape_and_v3_entries_skipped(self, tmp_path):
        out = tmp_path / "dist.json"
        fresh = self._entry(1.0)
        legacy_v3 = self._entry(0.1)
        del legacy_v3["selfheal"]          # pre-v4 entries lack the record
        out.write_text(json.dumps(
            {"schema": "dist_scaling/v4",
             "entries": [self._entry(0.1, host="fastbox"),
                         self._entry(0.1, m_grid=(999,)),
                         self._entry(0.1, workers=4),
                         legacy_v3, fresh]}))
        assert "skipped" in runner.check_selfheal_regression(fresh, out)
