"""Tests for the figure runner and recorded series structure."""

import numpy as np
import pytest

from repro.bench import figures
from repro.bench.tables import format_figure


class TestFigureStructure:
    def test_fig7_has_all_series(self):
        res = figures.fig7_stepwise()
        assert set(res.series) == {"naive", "v1", "v2", "v3", "ftkmeans",
                                   "cuml"}
        for pts in res.series.values():
            assert len(pts) == 6  # K in 32..192 step 32

    def test_fig8_panel_series(self):
        res = figures.fig8_fig9_distance_vs_features(np.float32)
        names = set(res.series)
        for panel in ("K=8", "K=128"):
            for curve in ("cuml", "param1", "param2", "ftkmeans"):
                assert f"{panel}/{curve}" in names

    def test_fig12_grid_rows(self):
        res = figures.fig12_speedup_grid(np.float32)
        assert len(res.series) == 8          # N rows
        assert all(len(p) == 7 for p in res.series.values())  # K columns

    def test_fig17_includes_wu(self):
        res = figures.fig17_fig18_error_injection(np.float32)
        assert any(name.endswith("wu+inj") for name in res.series)

    def test_format_figure_renders_everything(self):
        res = figures.fig7_stepwise()
        text = format_figure(res, max_rows=3)
        assert "fig7" in text and "cuml" in text and "summary" in text

    def test_injection_probability_parameter(self):
        lo = figures.fig17_fig18_error_injection(np.float32, p_inject=0.1)
        hi = figures.fig17_fig18_error_injection(np.float32, p_inject=1.0)
        assert lo.summary["injection_overhead_pct_avg"] \
            < hi.summary["injection_overhead_pct_avg"]
