"""Tests for the code-generation pipeline: space, templates, compile,
selection and persistence."""

import numpy as np
import pytest

from repro.codegen.bench import rank_candidates, score_candidate
from repro.codegen.compile import compile_kernel, demo_check, feasible_candidates
from repro.codegen.cuml_params import CUML_PARAM_ID, cuml_tile
from repro.codegen.database import (
    load_selection,
    save_selection,
    tile_from_dict,
    tile_to_dict,
)
from repro.codegen.selector import KernelSelector
from repro.codegen.space import SpaceBounds, enumerate_space, enumerate_warp_tiles
from repro.codegen.template import kernel_name, render_kernel_source
from repro.gemm.tiling import TileConfig
from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4
from repro.gpusim.timing import TimingModel


class TestSpace:
    def test_candidate_counts_near_paper(self):
        """Paper: 157 FP32 / 145 FP64 kernel definitions."""
        fp32 = enumerate_space(np.float32)
        fp64 = enumerate_space(np.float64)
        assert 120 <= len(fp32) <= 200
        assert 110 <= len(fp64) <= 180

    def test_all_candidates_valid(self):
        for cfg in enumerate_space(np.float32):
            assert cfg.mma_tiles_per_warp in (8, 16)   # rule 3
            assert cfg.warp.k == cfg.tb.k              # rule 2

    def test_param_ids_sequential(self):
        space = enumerate_space(np.float64)
        assert [c.param_id for c in space] == list(range(len(space)))

    def test_warp_tiles_respect_ratio(self):
        for w_m, w_n in enumerate_warp_tiles(np.float32):
            assert (w_m // 16) * (w_n // 8) in (8, 16)

    def test_bounds_shrink_space(self):
        small = enumerate_space(np.float32, SpaceBounds(tb_m_max=64,
                                                        tb_n_max=64))
        assert 0 < len(small) < len(enumerate_space(np.float32))


class TestTemplate:
    def test_renders_valid_python(self):
        tile = TileConfig.make((64, 64, 16), (32, 32, 16), np.float32,
                               param_id=7)
        src = render_kernel_source(tile, np.float32)
        compile(src, "<test>", "exec")  # must parse
        assert "PARAM_ID = 7" in src
        assert "Tile3(64, 64, 16)" in src

    def test_kernel_name_unique_per_config(self):
        a = TileConfig.make((64, 64, 16), (32, 32, 16), np.float32, param_id=1)
        b = TileConfig.make((64, 32, 16), (32, 32, 16), np.float32, param_id=2)
        assert kernel_name(a, np.float32) != kernel_name(b, np.float32)

    def test_compiled_module_builds_kernel(self):
        tile = TileConfig.make((64, 32, 16), (32, 32, 16), np.float32)
        module = compile_kernel(tile, np.float32)
        kern = module.make_kernel(A100_PCIE_40GB)
        assert kern.tile.tb.m == 64
        assert module.DTYPE == np.float32


class TestDemoCheck:
    def test_feasible_kernel_passes(self):
        tile = TileConfig.make((64, 32, 16), (32, 32, 16), np.float32)
        assert demo_check(tile, np.float32, A100_PCIE_40GB)

    def test_oversized_kernel_rejected(self):
        tile = TileConfig.make((256, 256, 32), (64, 32, 32), np.float32,
                               stages=4)
        assert not demo_check(tile, np.float32, A100_PCIE_40GB)

    def test_feasible_candidates_filters(self):
        space = enumerate_space(np.float32)
        t4_queue = feasible_candidates(space, np.float32, TESLA_T4)
        a100_queue = feasible_candidates(space, np.float32, A100_PCIE_40GB)
        assert len(t4_queue) < len(a100_queue) <= len(space)

    def test_demo_run_on_sample(self):
        """End-to-end demo compile+run for a handful of candidates."""
        space = enumerate_space(np.float32)[:4]
        queue = feasible_candidates(space, np.float32, A100_PCIE_40GB,
                                    run_demo=True)
        assert queue  # at least some survive the functional demo


class TestCumlParams:
    def test_table1_values(self):
        t32 = cuml_tile(np.float32)
        assert tuple(t32.tb) == (32, 256, 16)
        assert tuple(t32.warp) == (32, 64, 16)
        t64 = cuml_tile(np.float64)
        assert tuple(t64.tb) == (64, 64, 16)
        assert tuple(t64.warp) == (32, 32, 16)
        assert t32.param_id == CUML_PARAM_ID

    def test_t4_uses_shallow_pipeline(self):
        assert cuml_tile(np.float32, "t4").stages == 2
        assert cuml_tile(np.float32, "a100").stages == 4


class TestSelector:
    @pytest.fixture(scope="class")
    def sel(self):
        return KernelSelector.for_device("a100", np.float32)

    def test_best_tile_feasible(self, sel):
        tile = sel.best_tile(131072, 64, 64)
        assert tile.feasible_on(A100_PCIE_40GB, np.float32)

    def test_cache_stability(self, sel):
        a = sel.best_tile(131072, 32, 32)
        b = sel.best_tile(131072, 32, 32)
        assert a is b

    def test_selection_beats_cuml(self, sel):
        """The selector's winner never loses to the fixed parameters."""
        model = TimingModel(A100_PCIE_40GB)
        for (nc, nf) in [(8, 64), (64, 16), (128, 128), (320, 40)]:
            best = sel.best_score(131072, nc, nf)
            cu = score_candidate(model, cuml_tile(np.float32), 131072, nc,
                                 nf, np.float32)
            assert best.gflops >= cu.gflops * 0.999

    def test_few_distinct_winners(self, sel):
        """Paper: only a handful of parameter groups ever win."""
        for nc in (64, 192, 320, 448):
            for nf in (16, 48, 96):
                sel.best_tile(131072, nc, nf)
        assert len(sel.selected_param_ids()) <= 15

    def test_rank_candidates_sorted(self, sel):
        scores = rank_candidates(A100_PCIE_40GB, sel.candidates[:30], 131072,
                                 64, 64, np.float32)
        gf = [s.gflops for s in scores]
        assert gf == sorted(gf, reverse=True)

    def test_save_load_roundtrip(self, sel, tmp_path):
        sel.best_tile(131072, 64, 64)
        path = tmp_path / "selection.json"
        sel.save(path)
        loaded = KernelSelector.load(path)
        assert loaded.dtype == np.float32
        t = loaded.best_tile(131072, 64, 64)
        assert tuple(t.tb) == tuple(sel.best_tile(131072, 64, 64).tb)


class TestDatabase:
    def test_tile_dict_roundtrip(self):
        tile = TileConfig.make((128, 64, 16), (64, 32, 16), np.float32,
                               stages=4, param_id=42)
        back = tile_from_dict(tile_to_dict(tile))
        assert back == tile

    def test_save_load_file(self, tmp_path):
        tile = TileConfig.make((64, 64, 16), (32, 32, 16), np.float64,
                               param_id=3)
        path = tmp_path / "sel.json"
        save_selection(path, device_name="dev", dtype=np.float64,
                       entries={"1,2,3": 3}, tiles={3: tile})
        dev, dt, entries, tiles = load_selection(path)
        assert dev == "dev" and dt == "float64"
        assert entries == {"1,2,3": 3}
        assert tiles[3] == tile
