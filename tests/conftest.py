"""Shared fixtures for the FT K-Means reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gemm.tiling import TileConfig
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(params=["a100", "t4"])
def device(request):
    return {"a100": A100_PCIE_40GB, "t4": TESLA_T4}[request.param]


@pytest.fixture
def a100():
    return A100_PCIE_40GB


@pytest.fixture
def t4():
    return TESLA_T4


@pytest.fixture(params=[np.float32, np.float64], ids=["fp32", "fp64"])
def dtype(request):
    return np.dtype(request.param)


@pytest.fixture
def small_tile(dtype):
    """A small valid tile usable for quick functional runs."""
    return TileConfig.make((64, 32, 16), (32, 32, 16), dtype)


@pytest.fixture
def counters():
    return PerfCounters()


@pytest.fixture
def operands(rng, dtype):
    """Small (samples, centroids) pair for kernel-level tests."""
    x = rng.standard_normal((192, 40)).astype(dtype)
    y = rng.standard_normal((24, 40)).astype(dtype)
    return x, y


@pytest.fixture
def blobs(rng):
    """Separable Gaussian blobs for end-to-end clustering tests."""
    from repro.data.synthetic import gaussian_blobs

    x, centers, labels = gaussian_blobs(600, 16, 5, np.float32, seed=7)
    return x, centers, labels
