"""Tests for the FTKMeans public estimator."""

import numpy as np
import pytest

from repro.core.api import FTKMeans
from repro.baselines.sklearn_like import lloyd_reference


class TestFitBasics:
    def test_fit_sets_attributes(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, seed=0).fit(x)
        assert km.cluster_centers_.shape == (5, 16)
        assert km.labels_.shape == (600,)
        assert km.inertia_ > 0
        assert km.n_iter_ >= 1
        assert km.sim_time_s_ > 0
        assert km.assignment_time_s_ > 0
        assert len(km.timing_log_) > 0

    def test_recovers_blob_structure(self, blobs):
        x, centers, true_labels = blobs
        km = FTKMeans(n_clusters=5, seed=0, init="k-means++").fit(x)
        # each true cluster maps to exactly one predicted cluster
        for c in range(5):
            pred = km.labels_[true_labels == c]
            assert np.mean(pred == np.bincount(pred).argmax()) > 0.95

    def test_matches_reference_lloyd_inertia(self, blobs):
        x, _, _ = blobs
        init = FTKMeans(n_clusters=5, seed=2).fit(x)
        ref = lloyd_reference(x, 5, seed=2)
        # same seed, same init: same quality up to TF32 noise
        assert init.inertia_ == pytest.approx(ref.inertia_, rel=0.02)

    def test_explicit_init_centroids(self, blobs):
        x, centers, _ = blobs
        km = FTKMeans(n_clusters=5, init_centroids=centers, max_iter=10).fit(x)
        assert km.n_iter_ <= 5  # already near-converged

    def test_dtype_respected(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, dtype="float64", seed=0).fit(x)
        assert km.cluster_centers_.dtype == np.float64

    def test_too_many_clusters(self):
        with pytest.raises(ValueError):
            FTKMeans(n_clusters=100).fit(np.ones((10, 2)))

    def test_single_cluster(self, rng):
        x = rng.standard_normal((50, 4)).astype(np.float32)
        km = FTKMeans(n_clusters=1, seed=0).fit(x)
        np.testing.assert_allclose(km.cluster_centers_[0], x.mean(axis=0),
                                   atol=1e-3)


class TestPredictScore:
    def test_predict_matches_fit_labels(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, seed=0).fit(x)
        np.testing.assert_array_equal(km.predict(x), km.labels_)

    def test_predict_new_points_near_centroids(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, seed=0).fit(x)
        pred = km.predict(km.cluster_centers_)
        np.testing.assert_array_equal(np.sort(pred), np.arange(5))

    def test_predict_wrong_features(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, seed=0).fit(x)
        with pytest.raises(ValueError, match="features"):
            km.predict(np.ones((4, 3)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            FTKMeans().predict(np.ones((4, 4)))

    def test_fit_predict(self, blobs):
        x, _, _ = blobs
        labels = FTKMeans(n_clusters=5, seed=0).fit_predict(x)
        assert labels.shape == (600,)

    def test_score_is_negative_inertia(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, seed=0).fit(x)
        assert km.score(x) == pytest.approx(-km.inertia_, rel=1e-5)


class TestSimulatedPerformance:
    def test_gflops_reported(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, seed=0).fit(x)
        assert km.distance_gflops_() > 0

    def test_tensorop_faster_than_naive_at_scale(self):
        """The simulated clock reproduces the step-wise ladder at paper
        scale (at toy sizes launch latency legitimately dominates)."""
        from repro.core.naive import NaiveAssignment
        from repro.core.tensorop import TensorOpAssignment
        from repro.gpusim.device import A100_PCIE_40GB

        naive = NaiveAssignment(A100_PCIE_40GB, np.float32)
        tensor = TensorOpAssignment(A100_PCIE_40GB, np.float32)
        t_naive = sum(t.time_s for _, t in naive.estimate(131072, 64, 64))
        t_tensor = sum(t.time_s for _, t in tensor.estimate(131072, 64, 64))
        assert t_tensor < t_naive / 5


class TestFaultToleranceEndToEnd:
    def test_ft_with_injection_matches_clean_run(self, blobs):
        """The headline correctness claim: clustering under SEU injection
        is identical to the fault-free run."""
        x, _, _ = blobs
        clean = FTKMeans(n_clusters=5, variant="ft", seed=0,
                         mode="functional").fit(x)
        for trial in range(3):
            noisy = FTKMeans(n_clusters=5, variant="ft", seed=0,
                             mode="functional", p_inject=0.7).fit(x)
            assert noisy.counters_.errors_injected > 0
            assert np.array_equal(noisy.labels_, clean.labels_), trial
            assert noisy.inertia_ == pytest.approx(clean.inertia_, rel=1e-3)

    def test_unprotected_injection_can_corrupt(self, rng):
        """Without ABFT, heavy injection visibly corrupts assignments.

        Tested at the single-assignment level: full Lloyd runs can wash a
        transient fault out in later (clean) iterations, which would make
        the test flaky rather than meaningful.
        """
        from repro.core.tensorop import TensorOpAssignment
        from repro.gemm.reference import reference_assignment
        from repro.gpusim.device import A100_PCIE_40GB
        from repro.gpusim.faults import FaultInjector

        x = rng.standard_normal((256, 32)).astype(np.float32)
        y = rng.standard_normal((32, 32)).astype(np.float32)
        ref, _ = reference_assignment(x, y, tf32=True)
        corrupted = 0
        for seed in range(12):
            inj = FaultInjector(seed, p_block=1.0, dtype=np.float32)
            kern = TensorOpAssignment(A100_PCIE_40GB, np.float32,
                                      mode="functional", injector=inj)
            res = kern.assign(x, y)
            if not np.array_equal(res.labels, ref):
                corrupted += 1
        assert corrupted > 0

    def test_ft_fast_mode_injection(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, variant="ft", seed=0, mode="fast",
                      p_inject=0.5).fit(x)
        clean = FTKMeans(n_clusters=5, variant="ft", seed=0,
                         mode="fast").fit(x)
        assert np.array_equal(km.labels_, clean.labels_)

    def test_wu_scheme_end_to_end(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, variant="ft", abft="wu", seed=0,
                      mode="functional", p_inject=0.5).fit(x)
        clean = FTKMeans(n_clusters=5, variant="v3", seed=0,
                         mode="functional").fit(x)
        assert np.array_equal(km.labels_, clean.labels_)

    def test_ft_overhead_in_simulated_time(self, blobs):
        """FT adds simulated time, bounded by a modest factor."""
        x, _, _ = blobs
        base = FTKMeans(n_clusters=5, variant="tensorop", seed=0).fit(x)
        ft = FTKMeans(n_clusters=5, variant="ft", seed=0).fit(x)
        ratio = ft.assignment_time_s_ / base.assignment_time_s_
        assert 1.0 <= ratio < 1.6
