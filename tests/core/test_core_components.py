"""Tests for config, initializers, validation, convergence and update."""

import numpy as np
import pytest

from repro.core.config import KMeansConfig
from repro.core.convergence import ConvergenceMonitor
from repro.core.initializers import init_kmeans_plusplus, init_random, initialize
from repro.core.update import UpdateStage
from repro.core.validation import validate_centroids, validate_data
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB


class TestConfig:
    def test_defaults(self):
        cfg = KMeansConfig()
        assert cfg.variant == "tensorop"
        assert cfg.dtype == np.float32
        assert cfg.device.name.startswith("NVIDIA A100")
        assert cfg.abft.name == "none"

    def test_ft_variant_implies_scheme(self):
        cfg = KMeansConfig(variant="ft")
        assert cfg.abft.name == "ftkmeans"

    def test_explicit_scheme(self):
        cfg = KMeansConfig(variant="ft", abft="wu")
        assert cfg.abft.name == "wu"

    @pytest.mark.parametrize("bad", [
        dict(n_clusters=0), dict(variant="v9"), dict(mode="gpu"),
        dict(dtype=np.int32), dict(p_inject=2.0), dict(max_iter=0),
        dict(tol=-1.0), dict(init="foo"),
    ])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            KMeansConfig(**bad)


class TestInitializers:
    def test_random_picks_distinct_rows(self, rng):
        x = np.arange(40.0).reshape(10, 4)
        y = init_random(x, 5, rng)
        assert y.shape == (5, 4)
        assert len({tuple(row) for row in y}) == 5

    def test_kmeanspp_spreads_centroids(self, rng):
        # two far-apart blobs: k-means++ must pick one centroid in each
        x = np.vstack([np.zeros((50, 2)), np.full((50, 2), 100.0)])
        hits = 0
        for seed in range(10):
            y = init_kmeans_plusplus(x, 2, np.random.default_rng(seed))
            if {y[0, 0] < 50, y[1, 0] < 50} == {True, False}:
                hits += 1
        assert hits == 10

    def test_kmeanspp_duplicate_points(self, rng):
        x = np.ones((20, 3))
        y = init_kmeans_plusplus(x, 3, rng)
        assert y.shape == (3, 3)

    def test_too_many_clusters(self, rng):
        with pytest.raises(ValueError):
            init_random(np.ones((3, 2)), 4, rng)

    def test_dispatch(self, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        assert initialize(x, 3, "random", rng).shape == (3, 4)
        assert initialize(x, 3, "k-means++", rng).shape == (3, 4)
        with pytest.raises(ValueError):
            initialize(x, 3, "magic", rng)


class TestValidation:
    def test_validate_data_casts(self):
        x = validate_data([[1, 2], [3, 4]], np.float32)
        assert x.dtype == np.float32 and x.flags["C_CONTIGUOUS"]

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            validate_data(np.array([[np.nan, 1.0]]), np.float32)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            validate_data(np.ones(4), np.float32)

    def test_centroid_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            validate_centroids(np.ones((3, 3)), 4, 3, np.float32)


class TestConvergence:
    def test_stops_on_small_improvement(self):
        mon = ConvergenceMonitor(tol=1e-3)
        assert not mon.update(100.0, 1.0)
        assert not mon.update(50.0, 1.0)
        assert mon.update(49.99, 1.0)   # 0.02% < 0.1%

    def test_stops_on_zero_shift(self):
        mon = ConvergenceMonitor(tol=0.0)
        assert mon.update(10.0, 0.0)

    def test_rejects_nonfinite(self):
        mon = ConvergenceMonitor(tol=1e-4)
        with pytest.raises(ValueError):
            mon.update(float("nan"), 1.0)

    def test_history_recorded(self):
        mon = ConvergenceMonitor(tol=0.0)
        mon.update(3.0, 1.0)
        mon.update(2.0, 1.0)
        assert mon.history == [3.0, 2.0]
        assert mon.n_iterations == 2


class TestUpdateStage:
    def test_means_match_reference(self, rng, dtype):
        x = rng.standard_normal((100, 6)).astype(dtype)
        labels = rng.integers(0, 4, 100)
        old = rng.standard_normal((4, 6)).astype(dtype)
        stage = UpdateStage(A100_PCIE_40GB, dtype, dmr=False)
        res = stage.update(x, labels, np.zeros(100), old, PerfCounters())
        for c in range(4):
            np.testing.assert_allclose(
                res.centroids[c], x[labels == c].mean(axis=0),
                rtol=1e-5 if dtype == np.float32 else 1e-12)
        np.testing.assert_array_equal(res.counts,
                                      np.bincount(labels, minlength=4))

    def test_empty_cluster_reseeded(self, rng, dtype):
        x = rng.standard_normal((50, 4)).astype(dtype)
        labels = np.zeros(50, dtype=np.int64)  # everything in cluster 0
        best = rng.random(50)
        old = rng.standard_normal((3, 4)).astype(dtype)
        stage = UpdateStage(A100_PCIE_40GB, dtype, dmr=False)
        res = stage.update(x, labels, best, old, PerfCounters())
        worst = np.argsort(best)[::-1][:2]
        # clusters 1, 2 re-seeded from the worst-fit samples
        got = {tuple(np.round(res.centroids[c], 5)) for c in (1, 2)}
        want = {tuple(np.round(x[i].astype(dtype), 5)) for i in worst}
        assert got == want

    def test_dmr_detects_injected_seu(self, rng, dtype):
        x = rng.standard_normal((60, 4)).astype(dtype)
        labels = rng.integers(0, 3, 60)
        old = np.zeros((3, 4), dtype)
        c = PerfCounters()

        def corrupt(arr):
            arr.reshape(-1)[7] += 1e6

        stage = UpdateStage(A100_PCIE_40GB, dtype, dmr=True,
                            corrupt_hook=corrupt)
        res = stage.update(x, labels, np.zeros(60), old, c)
        assert c.dmr_mismatches == 1
        assert c.errors_detected == 1
        # the recomputed result is clean
        for k in range(3):
            np.testing.assert_allclose(res.centroids[k],
                                       x[labels == k].mean(axis=0), rtol=1e-4)

    def test_shift_measured(self, rng):
        x = rng.standard_normal((40, 3)).astype(np.float32)
        labels = rng.integers(0, 2, 40)
        old = np.zeros((2, 3), np.float32)
        stage = UpdateStage(A100_PCIE_40GB, np.float32, dmr=False)
        res = stage.update(x, labels, np.zeros(40), old, PerfCounters())
        assert res.shift > 0
