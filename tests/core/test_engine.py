"""Tests for the blocked streaming fast-path engine.

The contract under test: chunking is an implementation detail — for any
``chunk_bytes`` / ``workers`` configuration the engine produces
bit-identical labels and inertia (including under fault injection with a
fixed seed), its scratch memory stays under the configured budget, and
the per-fit invariant cache is actually reused across iterations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import FTKMeans
from repro.core.assignment import fast_assign, setup_gmem
from repro.core.config import KMeansConfig, VARIANT_NAMES
from repro.core.engine import (
    BlockMap,
    FastPathEngine,
    GEMM_UNIT_ROWS,
    unchunked_assign,
)
from repro.core.tensorop import default_tensorop_tile
from repro.core.variants import build_assignment
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB
from repro.gpusim.faults import FaultInjector

#: forces several chunks at the test shapes below (unit = 256 rows)
TINY_BUDGET = 256 * 10 * 4


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    x = rng.standard_normal((700, 24)).astype(np.float32)
    y = rng.standard_normal((10, 24)).astype(np.float32)
    return x, y


def _build(variant, mode, m, k, *, chunk_bytes=None, workers=1,
           p_inject=0.0, seed=0):
    cfg = KMeansConfig(n_clusters=10, variant=variant, mode=mode,
                       p_inject=p_inject, chunk_bytes=chunk_bytes,
                       engine_workers=workers)
    return build_assignment(cfg, m, k, np.random.default_rng(seed))


class TestChunkedEquivalence:
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_chunked_bit_identical_to_unchunked(self, data, variant):
        """Same tile => same inner-GEMM sequence => identical bits, no
        matter how the accumulator is chunked."""
        x, y = data
        results = {}
        for label, budget in (("chunked", TINY_BUDGET), ("whole", 1 << 30)):
            kern = _build(variant, "fast", *x.shape, chunk_bytes=budget)
            res = kern.assign(x, y)
            results[label] = res
            if label == "chunked":
                assert kern.engine.stats.chunks_run > 1
        assert np.array_equal(results["chunked"].labels,
                              results["whole"].labels)
        assert np.array_equal(results["chunked"].min_sqdist,
                              results["whole"].min_sqdist)
        inertia = [float(np.sum(r.min_sqdist.astype(np.float64)))
                   for r in results.values()]
        assert inertia[0] == inertia[1]

    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_chunked_matches_functional_labels(self, data, variant):
        x, y = data
        fast = _build(variant, "fast", *x.shape,
                      chunk_bytes=TINY_BUDGET).assign(x, y)
        func = _build(variant, "functional", *x.shape).assign(x, y)
        assert np.array_equal(fast.labels, func.labels)

    @pytest.mark.parametrize("variant", ["v1", "v2", "v3", "tensorop", "ft"])
    def test_chunked_injection_bit_identical(self, data, variant):
        """With a fixed injector seed the SEU replay lands on the same
        logical tile coordinates whether or not the data was chunked."""
        x, y = data
        results = {}
        for label, budget in (("chunked", TINY_BUDGET), ("whole", 1 << 30)):
            kern = _build(variant, "fast", *x.shape, chunk_bytes=budget,
                          p_inject=0.8, seed=42)
            results[label] = kern.assign(x, y)
        a, b = results["chunked"], results["whole"]
        assert a.counters.errors_injected == b.counters.errors_injected
        assert a.counters.errors_injected > 0
        assert a.counters.errors_detected == b.counters.errors_detected
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.min_sqdist, b.min_sqdist)

    @pytest.mark.parametrize("variant", ["v1", "v2", "v3", "tensorop", "ft"])
    def test_chunked_injection_matches_functional(self, data, variant):
        """Fixed seed, p_inject > 0: the chunked fast path draws the
        same fault plans as the tile-accurate simulator (identical
        injected counts) and lands on the same clustering."""
        x, y = data
        res = {}
        for mode in ("fast", "functional"):
            kern = _build(variant, mode, *x.shape,
                          chunk_bytes=TINY_BUDGET, p_inject=0.8, seed=42)
            res[mode] = kern.assign(x, y)
        fast, func = res["fast"], res["functional"]
        assert fast.counters.errors_injected > 0
        assert (fast.counters.errors_injected
                == func.counters.errors_injected)
        assert np.array_equal(fast.labels, func.labels)

    def test_workers_bit_identical(self, data):
        """Thread dispatch re-partitions the chunks but not the inner
        GEMM units, so the result bits don't move."""
        x, y = data
        base = _build("tensorop", "fast", *x.shape, chunk_bytes=TINY_BUDGET,
                      p_inject=0.5, seed=3).assign(x, y)
        threaded = _build("tensorop", "fast", *x.shape,
                          chunk_bytes=TINY_BUDGET, workers=3,
                          p_inject=0.5, seed=3).assign(x, y)
        assert np.array_equal(base.labels, threaded.labels)
        assert np.array_equal(base.min_sqdist, threaded.min_sqdist)
        assert (base.counters.errors_injected
                == threaded.counters.errors_injected)

    def test_offset_data_distances_nonnegative(self):
        """The GEMM norm identity cancels on offset-heavy data; the
        engine floors squared distances at zero so inertia, score and
        the worst-fit reseed ordering stay meaningful."""
        rng = np.random.default_rng(0)
        x = (1000.0 + 0.01 * rng.standard_normal((500, 8))).astype(np.float32)
        eng = FastPathEngine(None, np.float32)
        _, best = eng.assign(x, x[:4].copy(), PerfCounters())
        assert best.min() >= 0.0
        km = FTKMeans(n_clusters=4, seed=0, variant="naive",
                      max_iter=5).fit(x)
        assert km.inertia_ >= 0.0

    def test_ft_chunked_injection_corrected(self, data):
        """The FT scheme's online correction survives chunking: injected
        runs land on the clean run's clustering."""
        x, y = data
        clean = _build("ft", "fast", *x.shape,
                       chunk_bytes=TINY_BUDGET).assign(x, y)
        noisy = _build("ft", "fast", *x.shape, chunk_bytes=TINY_BUDGET,
                       p_inject=0.9, seed=5).assign(x, y)
        assert noisy.counters.errors_injected > 0
        assert np.array_equal(clean.labels, noisy.labels)

    @given(m=st.integers(40, 500), k=st.integers(2, 24),
           n=st.integers(2, 12), chunk_kb=st.sampled_from([1, 3, 16, 1024]),
           inject=st.booleans(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_property_chunking_invariant(self, m, k, n, chunk_kb, inject,
                                         seed):
        """Random shapes/budgets: chunked labels & inertia are
        bit-identical to the one-chunk engine run."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, k)).astype(np.float32)
        y = rng.standard_normal((n, k)).astype(np.float32)
        tile = default_tensorop_tile(np.float32)
        outs = []
        for budget in (chunk_kb << 10, 1 << 30):
            inj = (FaultInjector(seed, 0.7, np.float32) if inject else None)
            eng = FastPathEngine(None, np.float32, tile=tile, tf32=True,
                                 injector=inj, chunk_bytes=budget)
            counters = PerfCounters()
            labels, best = eng.assign(x, y, counters)
            outs.append((labels.copy(), best.copy(),
                         float(np.sum(best.astype(np.float64)))))
        (l1, b1, i1), (l2, b2, i2) = outs
        assert np.array_equal(l1, l2)
        # compare raw bit patterns: an injected flip can make a distance
        # NaN, and the invariant is bit-identity, not float equality
        assert np.array_equal(b1.view(np.uint32), b2.view(np.uint32))
        assert i1 == i2 or (np.isnan(i1) and np.isnan(i2))


class TestMemoryBudget:
    def test_peak_scratch_bounded_at_200k(self):
        """Acceptance shape M=200k, N(features)=64, K=64: every engine
        allocation obeys the budget; nothing O(M x N) ever appears."""
        m, feats, k = 200_000, 64, 64
        budget = 4 << 20
        rng = np.random.default_rng(0)
        x = rng.random((m, feats), dtype=np.float32)
        y = x[:k].copy()
        allocs: list[tuple[str, int]] = []
        eng = FastPathEngine(A100_PCIE_40GB, np.float32,
                             tile=default_tensorop_tile(np.float32),
                             tf32=True, chunk_bytes=budget,
                             alloc_hook=lambda name, nb: allocs.append((name, nb)))
        eng.begin_fit(x, k)
        for _ in range(3):
            eng.assign(x, y, PerfCounters())
        scratch = [nb for name, nb in allocs if name == "chunk_scratch"]
        assert scratch, "engine never allocated chunk scratch?"
        # pooled scratch: allocated once, reused across all 3 iterations
        assert sum(scratch) <= budget
        assert eng.stats.peak_scratch_bytes <= budget
        # no allocation anywhere near the M x N accumulator (51 MB here)
        full_matrix = m * k * np.dtype(np.float32).itemsize
        assert max(nb for _, nb in allocs) <= budget < full_matrix
        assert eng.stats.chunks_run > 3  # genuinely chunked, each pass

    def test_tf32_operand_staging_charged_to_budget(self):
        """Wide-feature TF32 runs: the per-unit rounded-operand copy is
        part of the contract, so the worker clamp and chunk rows shrink
        to keep accumulator + staging under chunk_bytes."""
        m, feats, n = 4096, 2048, 16
        budget = 8 << 20
        rng = np.random.default_rng(2)
        x = rng.random((m, feats), dtype=np.float32)
        y = x[:n].copy()
        eng = FastPathEngine(None, np.float32, tf32=True,
                             chunk_bytes=budget, workers=2)
        eng.begin_fit(x, n)
        cache = eng._cache
        unit = eng.unit_rows
        operand = unit * feats * 4
        rows = max(hi - lo for lo, hi in cache.chunks)
        # per-worker accumulator + staged operands, summed over workers
        assert cache.workers * (rows * n * 4 + operand) <= budget
        eng.assign(x, y, PerfCounters())
        assert eng.stats.peak_scratch_bytes <= budget

    def test_workers_share_the_budget(self):
        """With worker threads the per-chunk budget divides, so the
        total concurrent scratch stays under chunk_bytes."""
        m, feats, k = 20_000, 32, 16
        budget = 512 << 10
        rng = np.random.default_rng(1)
        x = rng.random((m, feats), dtype=np.float32)
        y = x[:k].copy()
        allocs: list[tuple[str, int]] = []
        eng = FastPathEngine(None, np.float32,
                             tile=default_tensorop_tile(np.float32),
                             chunk_bytes=budget, workers=2,
                             alloc_hook=lambda name, nb: allocs.append((name, nb)))
        eng.begin_fit(x, k)
        for _ in range(2):
            eng.assign(x, y, PerfCounters())
        scratch = [nb for name, nb in allocs if name == "chunk_scratch"]
        assert sum(scratch) <= budget
        assert eng.stats.peak_scratch_bytes <= budget


class TestFitCache:
    def test_invariants_hoisted_across_iterations(self, data):
        x, y = data
        eng = FastPathEngine(A100_PCIE_40GB, np.float32,
                             tile=default_tensorop_tile(np.float32))
        cache = eng.begin_fit(x, y.shape[0])
        l1, b1 = eng.assign(x, y, PerfCounters())
        l2, b2 = eng.assign(x, y * 1.1, PerfCounters())
        assert eng.stats.cache_hits == 2
        # same hoisted buffers handed back each pass
        assert l1 is cache.labels and l2 is cache.labels
        assert b1 is cache.best and b2 is cache.best
        assert cache.chunks is not None and cache.block_map is not None

    def test_foreign_input_uses_transient_cache(self, data):
        x, y = data
        eng = FastPathEngine(A100_PCIE_40GB, np.float32,
                             tile=default_tensorop_tile(np.float32))
        cache = eng.begin_fit(x, y.shape[0])
        other = x[:100].copy()
        labels, _ = eng.assign(other, y, PerfCounters())
        assert labels.shape == (100,)
        assert labels is not cache.labels
        assert eng.stats.cache_hits == 0
        # the fit cache is untouched and still active
        l1, _ = eng.assign(x, y, PerfCounters())
        assert l1 is cache.labels

    def test_empty_input_returns_empty(self, data):
        _, y = data
        eng = FastPathEngine(None, np.float32,
                             tile=default_tensorop_tile(np.float32))
        labels, best = eng.assign(np.empty((0, y.shape[1]), np.float32), y,
                                  PerfCounters())
        assert labels.shape == (0,) and best.shape == (0,)

    def test_workers_clamped_to_budget(self):
        """When the per-worker share would fall below one GEMM unit the
        worker count shrinks instead of the scratch total growing."""
        n = 1024  # unit(256) * 1024 cols * 4 B = 1 MB per worker minimum
        budget = 2 << 20
        rng = np.random.default_rng(0)
        x = rng.random((2048, 8), dtype=np.float32)
        y = rng.random((n, 8), dtype=np.float32)
        eng = FastPathEngine(None, np.float32, chunk_bytes=budget, workers=4)
        eng.begin_fit(x, n)
        eng.assign(x, y, PerfCounters())
        assert eng._cache.workers == 2
        assert eng.stats.peak_scratch_bytes <= budget

    def test_begin_fit_coerces_dtype(self, data):
        """A dtype-mismatched fit array is converted once, not per pass."""
        x, y = data
        x64 = x.astype(np.float64)
        eng = FastPathEngine(None, np.float32,
                             tile=default_tensorop_tile(np.float32))
        cache = eng.begin_fit(x64, y.shape[0])
        assert cache.x.dtype == np.float32
        eng.assign(x64, y, PerfCounters())
        eng.assign(x64, y, PerfCounters())
        assert eng.stats.cache_hits == 2

    def test_executor_lifecycle(self, data):
        """One worker pool serves the whole fit, then shuts down; a
        transient threaded pass never leaves idle threads behind."""
        x, y = data
        eng = FastPathEngine(None, np.float32, chunk_bytes=TINY_BUDGET * 2,
                             workers=2)
        eng.begin_fit(x, y.shape[0])
        eng.assign(x, y, PerfCounters())
        pool = eng._executor
        assert pool is not None
        eng.assign(x, y, PerfCounters())
        assert eng._executor is pool  # reused across iterations
        eng.end_fit()
        assert eng._executor is None
        eng.assign(x, y, PerfCounters())  # transient pass
        assert eng._executor is None

    def test_norms_match_seed_formula(self, data):
        x, _ = data
        eng = FastPathEngine(None, np.float32)
        cache = eng.begin_fit(x)
        np.testing.assert_array_equal(
            cache.x_norms, np.sum(x * x, axis=1, dtype=np.float32))

    def test_fitted_estimator_releases_training_data(self, data):
        """After fit the engine holds no cache: the training array is
        not pinned, and predict/score see in-place mutations instead of
        trusting stale hoisted norms."""
        x, _ = data
        x = x.copy()
        km = FTKMeans(n_clusters=6, seed=0, max_iter=8).fit(x)
        assert km._assigner.engine._cache is None
        assert not km._assigner.engine._pool
        x *= 3.0  # mutate the fitted array in place
        assert km.score(x) == pytest.approx(km.score(x.copy()))
        # transient predict/score passes must not repopulate the pool
        km.predict(x)
        assert not km._assigner.engine._pool
        assert km._assigner.engine.stats.scratch_bytes == 0


class TestBlockMap:
    def test_row_major_ids_and_extents(self):
        tile = default_tensorop_tile(np.float32)  # TB 128x64
        bmap = BlockMap.for_shape(300, 70, 40, tile)
        assert (bmap.grid_m, bmap.grid_n) == (3, 2)
        assert bmap.block_id(0, 0) == 0
        assert bmap.block_id(0, 1) == 1
        assert bmap.block_id(1, 0) == 2
        assert bmap.block_extent(2, 1) == (300 - 2 * 128, 70 - 64)

    def test_blocks_partition_across_chunks(self):
        tile = default_tensorop_tile(np.float32)
        bmap = BlockMap.for_shape(1000, 64, 32, tile)
        seen = []
        for lo, hi in ((0, 256), (256, 512), (512, 768), (768, 1000)):
            seen.extend(bmap.blocks_for_rows(lo, hi))
        assert seen == list(range(bmap.grid_m))

    def test_unit_rows_is_tile_multiple(self):
        for tb_m in (64, 128):
            tile = default_tensorop_tile(np.float32 if tb_m == 128
                                         else np.float64)
            eng = FastPathEngine(None, np.float32, tile=tile)
            assert eng.unit_rows % tile.tb.m == 0
            assert eng.unit_rows >= GEMM_UNIT_ROWS // 2
        assert FastPathEngine(None, np.float32).unit_rows == GEMM_UNIT_ROWS


class TestWiring:
    def test_fast_assign_wrapper_matches_engine(self, data):
        x, y = data
        counters = PerfCounters()
        labels, best = fast_assign(x, y, dtype=np.float32, tf32=True,
                                   counters=counters,
                                   tile=default_tensorop_tile(np.float32))
        eng = FastPathEngine(None, np.float32,
                             tile=default_tensorop_tile(np.float32),
                             tf32=True)
        l2, b2 = eng.assign(x, y, PerfCounters())
        assert np.array_equal(labels, l2)
        assert np.array_equal(best, b2)
        # the wrapper hands back owned arrays, not engine buffers
        assert labels.base is None or labels.base is not l2

    def test_unchunked_reference_agrees_on_labels(self, data):
        x, y = data
        eng = FastPathEngine(None, np.float32,
                             tile=default_tensorop_tile(np.float32),
                             tf32=True)
        l_eng, _ = eng.assign(x, y, PerfCounters())
        l_ref, _ = unchunked_assign(x, y, dtype=np.float32, tf32=True)
        assert np.array_equal(l_eng, l_ref)

    def test_estimator_chunking_invariant_end_to_end(self, data):
        x, _ = data
        fits = [FTKMeans(n_clusters=6, seed=0, max_iter=12,
                         chunk_bytes=cb, engine_workers=w).fit(x)
                for cb, w in ((TINY_BUDGET, 1), (None, 1), (TINY_BUDGET, 2))]
        for other in fits[1:]:
            assert np.array_equal(fits[0].labels_, other.labels_)
            assert fits[0].inertia_ == other.inertia_

    def test_predict_not_aliased_to_engine_buffers(self, data):
        x, _ = data
        km = FTKMeans(n_clusters=6, seed=0, max_iter=8).fit(x)
        pred = km.predict(x)
        again = km.predict(x)
        np.testing.assert_array_equal(pred, again)
        pred[:] = -1
        # neither the fitted state nor other predictions are aliased to
        # the engine's reusable buffers
        assert km.labels_.min() >= 0
        assert again.min() >= 0
        assert km.score(x) == pytest.approx(
            -float(np.sum(km._assigner.assign(
                x, km.cluster_centers_).min_sqdist.astype(np.float64))))

    def test_config_rejects_bad_engine_knobs(self):
        with pytest.raises(ValueError):
            KMeansConfig(chunk_bytes=0)
        with pytest.raises(ValueError):
            KMeansConfig(engine_workers=0)


class TestSetupGmemDtype:
    @pytest.mark.parametrize("dt", [np.float32, np.float64])
    def test_assign_buffer_in_kernel_dtype(self, dt):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 8)).astype(dt)
        y = rng.standard_normal((4, 8)).astype(dt)
        gmem = setup_gmem(x, y, PerfCounters())
        assign = gmem["assign"]
        assert assign.dtype == np.dtype(dt)
        assert np.all(np.isinf(assign[:, 0]))
        assert np.all(assign[:, 1] == -1)
