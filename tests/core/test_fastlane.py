"""Property tests of the fault-free fast lane.

The contract: the hoisted operand caches (TF32-rounded matrix,
transposed update-feed operand) and the stacked per-chunk GEMM dispatch
are pure implementation shortcuts — labels, best-distance **bit
patterns** and fused update sums are identical to the legacy per-unit
path for any configuration, and under SEU injection the unit walk still
fires for every chunk a fault plan targets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accumulate import StreamedAccumulator, accumulate_oneshot
from repro.core.config import KMeansConfig
from repro.core.engine import FastPathEngine, resolve_operand_budget
from repro.core.tensorop import default_tensorop_tile
from repro.gpusim.counters import PerfCounters
from repro.gpusim.faults import FaultInjector

TILE = default_tensorop_tile(np.float32)


def _run(x, y, *, operand_cache, batch_chunks, chunk_bytes=None,
         tf32=True, injector_seed=None, p=0.7, weights=None, workers=1):
    """One fused assignment pass; returns everything comparable."""
    inj = (FaultInjector(injector_seed, p, np.float32)
           if injector_seed is not None else None)
    eng = FastPathEngine(None, np.float32, tile=TILE, tf32=tf32,
                         injector=inj, chunk_bytes=chunk_bytes,
                         operand_cache=operand_cache,
                         batch_chunks=batch_chunks, workers=workers)
    acc = StreamedAccumulator(y.shape[0], x.shape[1])
    acc.bind_weights(weights)
    counters = PerfCounters()
    try:
        eng.begin_fit(x, y.shape[0])
        labels, best = eng.assign(x, y, counters, accumulator=acc)
        return {
            "labels": labels.copy(),
            "best_bits": best.view(np.uint32).copy(),
            "sums_bits": acc.packed().view(np.uint64).copy(),
            "stats": eng.stats,
            "hoisted": (eng._cache.x_rounded is not None,
                        eng._cache.x_t is not None),
            "counters": counters,
        }
    finally:
        eng.end_fit()


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    x = rng.standard_normal((1500, 24)).astype(np.float32)
    y = rng.standard_normal((10, 24)).astype(np.float32)
    return x, y


class TestFastLaneBitIdentity:
    def test_hoisted_and_batched_vs_per_unit(self, data):
        """The acceptance property: fast lane == per-unit path, bitwise."""
        x, y = data
        ref = _run(x, y, operand_cache="off", batch_chunks=False)
        fast = _run(x, y, operand_cache=1 << 30, batch_chunks=True)
        assert fast["hoisted"] == (True, True)
        assert fast["stats"].batched_chunks == fast["stats"].chunks_run > 0
        assert np.array_equal(ref["labels"], fast["labels"])
        assert np.array_equal(ref["best_bits"], fast["best_bits"])
        assert np.array_equal(ref["sums_bits"], fast["sums_bits"])

    def test_hoist_only_and_batch_only(self, data):
        """Each shortcut is independently bit-identical."""
        x, y = data
        ref = _run(x, y, operand_cache="off", batch_chunks=False)
        hoist_only = _run(x, y, operand_cache=1 << 30, batch_chunks=False)
        batch_only = _run(x, y, operand_cache="off", batch_chunks=True)
        assert hoist_only["hoisted"] == (True, True)
        assert hoist_only["stats"].batched_chunks == 0
        # TF32 without a hoisted rounded operand cannot batch (the
        # stacked dispatch would need a chunk-sized rounding scratch)
        assert batch_only["stats"].batched_chunks == 0
        for got in (hoist_only, batch_only):
            assert np.array_equal(ref["labels"], got["labels"])
            assert np.array_equal(ref["best_bits"], got["best_bits"])
            assert np.array_equal(ref["sums_bits"], got["sums_bits"])

    def test_float64_batches_without_hoist(self, data):
        """No rounding on the float64 path: stacked dispatch fires even
        with the operand caches off, and the bits still match."""
        x, y = data
        x64, y64 = x.astype(np.float64), y.astype(np.float64)

        def run64(batch):
            eng = FastPathEngine(None, np.float64, tile=TILE, tf32=False,
                                 operand_cache="off", batch_chunks=batch,
                                 chunk_bytes=256 * 10 * 8)
            try:
                eng.begin_fit(x64, y64.shape[0])
                labels, best = eng.assign(x64, y64, PerfCounters())
                return (labels.copy(), best.view(np.uint64).copy(),
                        eng.stats.batched_chunks)
            finally:
                eng.end_fit()

        l_ref, b_ref, n_ref = run64(False)
        l_fast, b_fast, n_fast = run64(True)
        assert n_ref == 0 and n_fast > 0
        assert np.array_equal(l_ref, l_fast)
        assert np.array_equal(b_ref, b_fast)

    def test_weighted_sums_match_oneshot(self, data):
        """Bound-source weighted accumulation equals the seed scatter."""
        x, y = data
        w = np.random.default_rng(3).random(x.shape[0])
        fast = _run(x, y, operand_cache=1 << 30, batch_chunks=True,
                    weights=w)
        assert fast["hoisted"][1]
        one = accumulate_oneshot(x, fast["labels"], y.shape[0],
                                 sample_weight=w)
        assert np.array_equal(one.view(np.uint64), fast["sums_bits"])

    def test_threaded_dispatch_bit_identical(self, data):
        """The fast lane composes with worker threads (in-order commit)."""
        x, y = data
        ref = _run(x, y, operand_cache="off", batch_chunks=False,
                   chunk_bytes=256 * 10 * 4)
        fast = _run(x, y, operand_cache=1 << 30, batch_chunks=True,
                    chunk_bytes=256 * 10 * 4, workers=3)
        assert np.array_equal(ref["labels"], fast["labels"])
        assert np.array_equal(ref["best_bits"], fast["best_bits"])
        assert np.array_equal(ref["sums_bits"], fast["sums_bits"])

    @given(m=st.integers(40, 600), k=st.integers(2, 24),
           n=st.integers(2, 12), chunk_kb=st.sampled_from([1, 3, 16, 1024]),
           inject=st.booleans(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_property_fast_lane_bit_identical(self, m, k, n, chunk_kb,
                                              inject, seed):
        """Random shapes/budgets/injection: fast lane == per-unit path
        (labels and best-distance bit patterns)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, k)).astype(np.float32)
        y = rng.standard_normal((n, k)).astype(np.float32)
        inj_seed = seed if inject else None
        ref = _run(x, y, operand_cache="off", batch_chunks=False,
                   chunk_bytes=chunk_kb << 10, injector_seed=inj_seed)
        fast = _run(x, y, operand_cache=1 << 30, batch_chunks=True,
                    chunk_bytes=chunk_kb << 10, injector_seed=inj_seed)
        assert np.array_equal(ref["labels"], fast["labels"])
        assert np.array_equal(ref["best_bits"], fast["best_bits"])
        assert np.array_equal(ref["sums_bits"], fast["sums_bits"])
        if inject:
            assert (ref["counters"].errors_injected
                    == fast["counters"].errors_injected)


class TestFaultLaneStillWalks:
    def test_planned_chunks_walk_the_unit_grid(self, data):
        """With injection on, every chunk a plan targets must take the
        per-unit walk; with p=1 every block draws a plan, so no chunk
        may batch — and the bits still match the legacy path."""
        x, y = data
        ref = _run(x, y, operand_cache="off", batch_chunks=False,
                   chunk_bytes=256 * 10 * 4, injector_seed=5, p=1.0)
        fast = _run(x, y, operand_cache=1 << 30, batch_chunks=True,
                    chunk_bytes=256 * 10 * 4, injector_seed=5, p=1.0)
        assert fast["counters"].errors_injected > 0
        assert fast["stats"].batched_chunks == 0  # every chunk walked
        assert np.array_equal(ref["labels"], fast["labels"])
        assert np.array_equal(ref["best_bits"], fast["best_bits"])

    def test_sparse_plans_batch_the_clean_chunks(self, data):
        """With sparse injection, chunks without a plan batch and
        chunks with one walk — mixed dispatch, identical bits."""
        x, y = data
        fast = _run(x, y, operand_cache=1 << 30, batch_chunks=True,
                    chunk_bytes=256 * 10 * 4, injector_seed=123, p=0.02)
        ref = _run(x, y, operand_cache="off", batch_chunks=False,
                   chunk_bytes=256 * 10 * 4, injector_seed=123, p=0.02)
        stats = fast["stats"]
        if fast["counters"].errors_injected:
            assert stats.batched_chunks < stats.chunks_run
        assert np.array_equal(ref["labels"], fast["labels"])
        assert np.array_equal(ref["best_bits"], fast["best_bits"])


class TestOperandBudget:
    def test_over_budget_falls_back(self, data):
        """Operands that do not fit are simply not hoisted — the run
        stays on the legacy path and the budget is respected."""
        x, y = data
        got = _run(x, y, operand_cache=x.nbytes // 2, batch_chunks=True)
        assert got["hoisted"] == (False, False)
        ref = _run(x, y, operand_cache="off", batch_chunks=False)
        assert np.array_equal(ref["labels"], got["labels"])
        assert np.array_equal(ref["best_bits"], got["best_bits"])

    def test_budget_admits_one_operand(self, data):
        """A budget for exactly one x-sized operand hoists the rounded
        matrix (built at begin_fit) and skips the transpose."""
        x, y = data
        got = _run(x, y, operand_cache=x.nbytes, batch_chunks=True)
        assert got["hoisted"] == (True, False)

    def test_charged_to_alloc_tracker(self, data):
        x, y = data
        allocs = []
        eng = FastPathEngine(None, np.float32, tile=TILE, tf32=True,
                             operand_cache=1 << 30,
                             alloc_hook=lambda n, b: allocs.append((n, b)))
        acc = StreamedAccumulator(y.shape[0], x.shape[1])
        try:
            eng.begin_fit(x, y.shape[0])
            eng.assign(x, y, PerfCounters(), accumulator=acc)
        finally:
            eng.end_fit()
        names = {n for n, _ in allocs}
        assert "operand_cache_rounded" in names
        assert "operand_cache_transpose" in names
        charged = sum(b for n, b in allocs if n.startswith("operand_cache"))
        assert charged == 2 * x.nbytes

    def test_auto_budget_is_chunk_bytes(self):
        assert resolve_operand_budget("auto", 123) == 123
        assert resolve_operand_budget("off", 123) == 0
        assert resolve_operand_budget(77, 123) == 77
        with pytest.raises(ValueError):
            resolve_operand_budget(-1, 123)

    def test_config_validates_operand_cache(self):
        assert KMeansConfig(operand_cache="auto").operand_cache == "auto"
        assert KMeansConfig(operand_cache=4096).operand_cache == 4096
        with pytest.raises(ValueError):
            KMeansConfig(operand_cache="sometimes")
        with pytest.raises(ValueError):
            KMeansConfig(operand_cache=-5)

    def test_transient_pass_never_hoists(self, data):
        """predict/score-style passes on foreign data stay legacy: the
        operand caches describe only the fitted array."""
        x, y = data
        eng = FastPathEngine(None, np.float32, tile=TILE, tf32=True,
                             operand_cache=1 << 30)
        try:
            eng.begin_fit(x, y.shape[0])
            other = x[:300].copy()
            acc = StreamedAccumulator(y.shape[0], x.shape[1])
            labels, _ = eng.assign(other, y, PerfCounters(), accumulator=acc)
            # fed through the staging path, not the fit's bound source
            one = accumulate_oneshot(other, labels, y.shape[0])
            assert np.array_equal(one, acc.packed())
        finally:
            eng.end_fit()


class TestBoundSourceAccumulator:
    def test_bind_source_t_validates_shape(self):
        acc = StreamedAccumulator(4, 8)
        with pytest.raises(ValueError):
            acc.bind_source_t(np.zeros((7, 100)))

    def test_feed_past_bound_source_raises(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 8)).astype(np.float32)
        acc = StreamedAccumulator(4, 8)
        acc.bind_source_t(np.ascontiguousarray(x[:30].T))
        labels = np.zeros(50, dtype=np.int64)
        acc.feed(x[:30], labels[:30])
        with pytest.raises(ValueError, match="past bound source"):
            acc.feed(x[30:], labels[30:])

    def test_binding_survives_reset(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((200, 6)).astype(np.float32)
        labels = rng.integers(0, 5, 200)
        acc = StreamedAccumulator(5, 6)
        acc.bind_source_t(np.ascontiguousarray(x.T))
        for _ in range(2):
            acc.reset()
            for lo in range(0, 200, 64):
                acc.feed(x[lo:lo + 64], labels[lo:lo + 64])
            assert np.array_equal(acc.packed(),
                                  accumulate_oneshot(x, labels, 5))

    def test_unbind_restores_staging_path(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((100, 6)).astype(np.float32)
        labels = rng.integers(0, 5, 100)
        acc = StreamedAccumulator(5, 6)
        acc.bind_source_t(np.ascontiguousarray(x.T))
        acc.bind_source_t(None)
        acc.feed(x, labels)
        assert np.array_equal(acc.packed(), accumulate_oneshot(x, labels, 5))
